package repro

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Validate(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processors = 0
	err := Validate(cfg)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSimulate(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Simulate(cfg, Options{Replications: 2, Warmup: 100, Measure: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := res.UsefulWorkFraction.Mean
	if f <= 0 || f >= 1 {
		t.Fatalf("fraction = %v", f)
	}
}

func TestTrajectoryDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Trajectory(cfg, 9, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trajectory(cfg, 9, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsefulWorkFraction != b.UsefulWorkFraction {
		t.Fatal("same seed diverged")
	}
}

func TestTrajectoryRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MTTR = -1
	if _, err := Trajectory(cfg, 1, 10, 10); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestExperimentsListed(t *testing.T) {
	exps := Experiments()
	if len(exps) != 12 {
		t.Fatalf("%d experiments, want 12", len(exps))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFig7(t *testing.T) {
	fig, err := RunExperiment("fig7", Options{Replications: 2, Warmup: 50, Measure: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7" || len(fig.Series) != 3 {
		t.Fatalf("fig7 structure wrong: %s, %d series", fig.ID, len(fig.Series))
	}
}

func TestAnalyticHelpers(t *testing.T) {
	cfg := DefaultConfig()
	mtbf := cfg.MTTFPerNode / float64(cfg.Nodes())
	young, err := YoungInterval(Seconds(57), mtbf)
	if err != nil {
		t.Fatal(err)
	}
	daly, err := DalyInterval(Seconds(57), mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if young <= 0 || daly <= 0 {
		t.Fatal("non-positive optimum intervals")
	}
	eff, err := AnalyticEfficiency(cfg, Minutes(30))
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || eff >= 1 {
		t.Fatalf("analytic efficiency = %v", eff)
	}
}

func TestAnalyticEfficiencyBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MTTFPerNode = -1
	if _, err := AnalyticEfficiency(cfg, 0.5); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCoordinationHelpers(t *testing.T) {
	e := ExpectedCoordinationTime(65536, Seconds(10))
	// H_65536 ≈ ln(65536)+γ ≈ 11.67 → ≈ 116.7 s.
	if e < Seconds(110) || e > Seconds(125) {
		t.Fatalf("E[coord] = %v h", e)
	}
	p := CoordinationAbortProbability(65536, Seconds(10), Seconds(20))
	if p < 0.99 {
		t.Fatalf("tiny timeout abort prob = %v", p)
	}
}

func TestSimulateProtocol(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProcsPerNode = 8
	cfg.Processors = 1024 * 8 // 1024 nodes
	sum, err := SimulateProtocol(cfg, 64, Seconds(0.001), 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedCoordinationTime(1024, cfg.MTTQ)
	if math.Abs(sum.Coordination.Mean()-want)/want > 0.15 {
		t.Fatalf("protocol coordination %v vs lumped %v", sum.Coordination.Mean(), want)
	}
}

func TestSimulateProtocolBadInputs(t *testing.T) {
	if _, err := SimulateProtocol(DefaultConfig(), 1, 0, 10, 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
}

func TestCoordinationModeConstants(t *testing.T) {
	cfg := DefaultConfig()
	for _, m := range []CoordinationMode{CoordFixed, CoordNone, CoordMaxOfN} {
		cfg.Coordination = m
		if err := Validate(cfg); err != nil {
			t.Fatalf("mode %v rejected: %v", m, err)
		}
	}
}

func TestMachinePresets(t *testing.T) {
	for name, cfg := range map[string]Config{
		"BlueGene/L": BlueGeneLConfig(),
		"ASCI Q":     ASCIQConfig(),
	} {
		if err := Validate(cfg); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
	if BlueGeneLConfig().Nodes() != 65536 {
		t.Error("BlueGene/L node count wrong")
	}
	if ASCIQConfig().Processors != 8192 {
		t.Error("ASCI Q processor count wrong")
	}
}
