// Package repro is the public API of this reproduction of "Modeling
// Coordinated Checkpointing for Large-Scale Supercomputers" (Wang et al.,
// DSN 2005): a stochastic-activity-network model of a supercomputer with
// system-initiated coordinated checkpointing, simulated to estimate the
// useful-work fraction and total useful work under failures (including
// failures during checkpointing and recovery, coordination overhead, and
// correlated failures).
//
// # Quick start
//
//	cfg := repro.DefaultConfig()          // Table 3 parameters, 64K processors
//	cfg.Processors = 128 * 1024
//	res, err := repro.Simulate(cfg, repro.Options{})
//	if err != nil { ... }
//	fmt.Println(res.UsefulWorkFraction)   // e.g. 0.43 ± 0.01 (95%, n=5)
//
// Every table and figure of the paper's evaluation can be regenerated with
// RunExperiment (or the cmd/ccfigures binary); analytic baselines from
// Young [7] and Daly [8] are available for comparison.
package repro

import (
	"fmt"
	"io"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/configio"
	"repro/internal/cyclesim"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/protocol"
	"repro/internal/provenance"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sensitivity"
	"repro/internal/stats"
)

// Config parameterises the modeled system; see the field documentation for
// the Table 3 provenance of every default. Durations are in hours — use the
// Seconds/Minutes/Years helpers.
type Config = cluster.Config

// CoordinationMode selects how checkpoint coordination (quiesce) time is
// modeled: a fixed time (the base model), a single system-wide exponential
// ("no coordination"), or the max of n per-processor exponentials.
type CoordinationMode = cluster.CoordinationMode

// Coordination modes (Section 7 of the paper studies all three).
const (
	CoordFixed  = cluster.CoordFixed
	CoordNone   = cluster.CoordNone
	CoordMaxOfN = cluster.CoordMaxOfN
)

// Time-unit helpers: model time is hours.
var (
	// Seconds converts seconds to model hours.
	Seconds = cluster.Seconds
	// Minutes converts minutes to model hours.
	Minutes = cluster.Minutes
	// Years converts years to model hours.
	Years = cluster.Years
)

// DefaultConfig returns the paper's base configuration: 64K processors,
// 8 per node, MTTF 1 year/node, MTTR 10 minutes, 30-minute checkpoint
// interval and the Table 3 bandwidth/size parameters.
func DefaultConfig() Config { return cluster.Default() }

// BlueGeneLConfig returns a configuration shaped like the IBM BlueGene/L
// machine of the paper's Section 3.1 (64K dual-processor nodes, 1024 I/O
// nodes).
func BlueGeneLConfig() Config { return cluster.BlueGeneL() }

// ASCIQConfig returns a configuration shaped like the ASCI Q machine whose
// per-node MTTF of 1 year anchors the paper's failure parameters.
func ASCIQConfig() Config { return cluster.ASCIQ() }

// Options controls the steady-state estimation: replication count, the
// discarded transient (the paper uses 1000 h), the measurement window, the
// confidence level (default 95%), and the execution engine's worker count
// (Workers; 0 or 1 = sequential, n > 1 = that many workers, negative = one
// per CPU — results are bit-identical for every value). The zero value
// picks the defaults.
type Options = runner.Options

// Progress is a snapshot of an in-flight estimation, delivered to
// Options.Progress after every replication state change: replications
// done/total, cumulative simulation events fired, and wall time.
type Progress = runner.Progress

// Result aggregates the replications of one simulated configuration, with
// Student-t confidence intervals on the paper's two metrics.
type Result = runner.Result

// SpanCheck is the self-verification verdict populated in Result.SpanCheck
// when Options.VerifySpans is set: the reward-based useful-work estimate
// cross-checked against the independent phase-span accounting.
type SpanCheck = runner.SpanCheck

// Interval is a symmetric confidence interval.
type Interval = stats.Interval

// Metrics are the raw per-trajectory measures.
type Metrics = model.Metrics

// TimeBreakdown is the per-state occupancy of a measurement window:
// execution, quiesce, checkpoint dump, blocking-write wait, recovery and
// reboot shares that sum to 1.
type TimeBreakdown = model.Breakdown

// Comparison is a paired A/B estimate produced by CompareConfigs.
type Comparison = runner.Comparison

// MetricsRegistry is the observability registry: attach one via
// Options.Metrics to collect live counters, gauges, histograms and timers
// from the simulator, the worker pool and the runner. A single registry
// may be shared across estimates; see internal/obs for the metric catalog.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RunJournal is a structured JSONL run journal: attach one via
// Options.Journal to receive a "replication" record per trajectory and a
// closing "estimate" record. Journal content is byte-identical across
// worker counts apart from the wall-clock fields listed in
// JournalTimestampFields.
type RunJournal = obs.Journal

// NewRunJournal returns a journal writing JSONL records to w.
func NewRunJournal(w io.Writer) *RunJournal { return obs.NewJournal(w) }

// JournalTimestampFields names the journal fields that carry wall-clock
// values and are therefore excluded from the determinism contract.
var JournalTimestampFields = obs.TimestampFields

// ProvenanceStamp identifies the binary, platform and configuration that
// produced a result: git commit and dirty flag (from the build info the Go
// toolchain embeds), go version, GOOS/GOARCH, CPU model, host, and a
// content hash of the active configuration. Attach one via
// Options.Provenance to lead a run journal with a "provenance" record;
// the CLIs stamp their reports, run manifests and worker heartbeats with
// it automatically.
type ProvenanceStamp = provenance.Stamp

// CollectProvenance gathers the current process's provenance stamp.
func CollectProvenance() ProvenanceStamp { return provenance.Collect() }

// ServeDebug starts an HTTP debug endpoint on addr exposing net/http/pprof
// under /debug/pprof/, expvar under /debug/vars and a JSON snapshot of reg
// under /metricz. Close the returned server when done.
func ServeDebug(addr string, reg *MetricsRegistry) (*obs.DebugServer, error) {
	return obs.ServeDebug(addr, reg)
}

// Simulate estimates the useful-work metrics of cfg by independent
// replications of the SAN model.
func Simulate(cfg Config, opts Options) (Result, error) {
	return runner.Estimate(cfg, opts)
}

// CompareConfigs estimates two configurations with common random numbers
// and returns paired confidence intervals of their differences (B − A) —
// the right tool for quantifying a single design change (ablations,
// parameter nudges) with few replications.
func CompareConfigs(a, b Config, opts Options) (Comparison, error) {
	return runner.Compare(a, b, opts)
}

// OptimumSearch is the outcome of a simulation-driven candidate sweep.
type OptimumSearch = opt.Search

// OptimalProcessors finds the machine size maximising total useful work
// among the candidates — the paper's §7.1 capacity-planning question.
func OptimalProcessors(base Config, candidates []int, opts Options) (OptimumSearch, error) {
	return opt.OptimalProcessors(base, candidates, opts)
}

// OptimalInterval finds the checkpoint interval (hours) maximising total
// useful work among the candidates (Figure 4b's question).
func OptimalInterval(base Config, candidates []float64, opts Options) (OptimumSearch, error) {
	return opt.OptimalInterval(base, candidates, opts)
}

// OptimalTimeout finds the master timeout (hours; 0 = none) maximising the
// useful-work fraction among the candidates (Figure 6's question).
func OptimalTimeout(base Config, candidates []float64, opts Options) (OptimumSearch, error) {
	return opt.OptimalTimeout(base, candidates, opts)
}

// Trajectory runs a single trajectory with an explicit seed and returns its
// raw metrics — useful for deterministic regression tests and for studying
// individual runs; use Simulate for estimates with confidence intervals.
func Trajectory(cfg Config, seed uint64, warmup, measure float64) (Metrics, error) {
	in, err := model.New(cfg, seed)
	if err != nil {
		return Metrics{}, err
	}
	return in.RunSteadyState(warmup, measure)
}

// CycleResult is the outcome of the independent cycle-simulator engine.
type CycleResult = cyclesim.Result

// TrajectoryCycle runs one trajectory on the independent renewal-cycle
// engine (internal/cyclesim) — a from-scratch second implementation of the
// same model used to cross-validate the SAN executor. It accepts only
// configurations inside the cycle engine's envelope (pure-compute
// application, NoIOFailures, no correlated windows, no blocking writes, no
// incremental checkpointing).
func TrajectoryCycle(cfg Config, seed uint64, warmup, measure float64) (CycleResult, error) {
	s, err := cyclesim.New(cfg, seed)
	if err != nil {
		return CycleResult{}, err
	}
	return s.RunSteadyState(warmup, measure)
}

// LoadConfig reads a JSON configuration with human-friendly units
// (years/minutes/seconds/MB); absent fields default to Table 3.
func LoadConfig(r io.Reader) (Config, error) { return configio.Load(r) }

// SaveConfig writes cfg as indented JSON in the same schema.
func SaveConfig(w io.Writer, cfg Config) error { return configio.Save(w, cfg) }

// Scenario is one named, documented model configuration from the scenario
// catalog: a title, description, citation, tags and optional expected-metric
// band alongside the configuration itself.
type Scenario = scenario.Scenario

// ScenarioRegistry is a catalog of scenarios keyed by name.
type ScenarioRegistry = scenario.Registry

// BuiltinScenarios returns the embedded scenario catalog: the paper's six
// model variants plus the extended failure/recovery regimes, each runnable
// by name through Simulate (via Scenario.ClusterConfig) or the CLIs'
// -scenario flag.
func BuiltinScenarios() *ScenarioRegistry { return scenario.Builtin() }

// ResolveScenarios returns the built-in catalog extended (and overridden,
// name by name) by the scenario files in dir; an empty dir returns just the
// built-ins.
func ResolveScenarios(dir string) (*ScenarioRegistry, error) { return scenario.Resolve(dir) }

// Figure is one reproduced paper figure: named series of measured points.
type Figure = experiments.Figure

// Experiment describes one runnable reproduction (a paper figure) and the
// qualitative shape claim it must preserve.
type Experiment = experiments.Def

// Experiments lists every figure reproduction (fig4a–fig4h, fig5–fig8).
func Experiments() []Experiment { return experiments.All() }

// RunExperiment reproduces one figure by ID (e.g. "fig4a").
func RunExperiment(id string, opts Options) (*Figure, error) {
	def, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	return def.Run(opts)
}

// YoungInterval returns Young's first-order optimum checkpoint interval
// √(2δM) for checkpoint overhead δ and system MTBF M [7].
func YoungInterval(overhead, systemMTBF float64) (float64, error) {
	return analytic.YoungOptimalInterval(overhead, systemMTBF)
}

// DalyInterval returns Daly's higher-order optimum checkpoint interval [8].
func DalyInterval(overhead, systemMTBF float64) (float64, error) {
	return analytic.DalyOptimalInterval(overhead, systemMTBF)
}

// AnalyticEfficiency returns the classic exponential-failure expected
// efficiency of checkpoint/restart (no coordination, no correlated
// failures) — the kind of model the paper argues is insufficient at scale.
func AnalyticEfficiency(cfg Config, interval float64) (float64, error) {
	mtbf, err := analytic.SystemMTBF(cfg.Nodes(), cfg.MTTFPerNode)
	if err != nil {
		return 0, err
	}
	overhead := cfg.MTTQ + cfg.CheckpointDumpTime()
	return analytic.Efficiency(interval, overhead, cfg.MTTR, mtbf)
}

// ExpectedCoordinationTime returns the lumped model's expected quiesce
// coordination time MTTQ·H_n for n processors (Section 5).
func ExpectedCoordinationTime(processors int, mttq float64) float64 {
	return analytic.ExpectedCoordinationTime(processors, mttq)
}

// CoordinationAbortProbability returns the probability that max-of-n
// coordination exceeds the master's timeout — the probabilistic
// checkpoint-abort rate of Section 7.2.
func CoordinationAbortProbability(processors int, mttq, timeout float64) float64 {
	return analytic.CoordinationAbortProbability(processors, mttq, timeout)
}

// CoordinationEfficiencyFor evaluates the renewal-process analytic model
// (analytic.CoordinationEfficiency) for cfg at the given system MTBF,
// returning the predicted useful-work fraction and the checkpoint-abort
// probability. Under CoordFixed/CoordNone the coordination population is a
// single unit (n = 1); under CoordMaxOfN it is the processor count.
func CoordinationEfficiencyFor(cfg Config, systemMTBF float64) (float64, float64, error) {
	n := 1
	if cfg.Coordination == CoordMaxOfN {
		n = cfg.Processors
	}
	return analytic.CoordinationEfficiency(n, cfg.MTTQ, cfg.Timeout,
		cfg.CheckpointInterval, cfg.CheckpointDumpTime(), cfg.MTTR, systemMTBF)
}

// Completion summarises a job's wall-clock completion-time distribution.
type Completion = cyclesim.Completion

// JobCompletionTime estimates how long a job needing `work` hours of
// useful work takes on the configured machine, by independent replications
// on the cycle engine — the completion-time view of Kulkarni, Nicola &
// Trivedi [17] that the paper's useful-work reward abstracts. The
// configuration must be inside the cycle engine's envelope (see
// TrajectoryCycle).
func JobCompletionTime(cfg Config, work float64, replications int, seed uint64) (Completion, error) {
	return cyclesim.JobCompletion(cfg, work, replications, seed)
}

// SensitivityAnalysis ranks model parameters by their effect on the
// useful-work fraction.
type SensitivityAnalysis = sensitivity.Analysis

// SensitivityParameter identifies a perturbable parameter.
type SensitivityParameter = sensitivity.Parameter

// Sensitivity perturbs each model parameter by the relative factor (e.g.
// 1.5 for +50 %) and measures the useful-work response with paired
// replications, returning elasticities sorted by magnitude — which knob
// matters most on this machine.
func Sensitivity(cfg Config, factor float64, opts Options) (SensitivityAnalysis, error) {
	return sensitivity.Analyze(cfg, nil, factor, opts)
}

// ProtocolSummary aggregates message-level protocol rounds.
type ProtocolSummary = protocol.Summary

// SimulateProtocol runs the message-level simulation of the Section 3.2
// protocol (quiesce broadcast over a fanout-ary interconnect tree with the
// given per-hop latency, per-node exponential quiesce times, 'ready'
// reduction, timeout) for the given number of checkpoint rounds. It exists
// to validate the lumped max-of-n coordination abstraction.
func SimulateProtocol(cfg Config, fanout int, hopLatency float64, rounds int, seed uint64) (ProtocolSummary, error) {
	sim, err := protocol.New(cfg, fanout, hopLatency, seed)
	if err != nil {
		return ProtocolSummary{}, err
	}
	return sim.Run(rounds)
}

// Validate reports the first problem with cfg, wrapping the detailed
// message with the public package name for clearer call sites.
func Validate(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}
