package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-only", "fig8", "-reps", "2", "-warmup", "50", "-measure", "300"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Reproduction report", "fig8", "PASS", "claims pass"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "REPORT.md")
	var out bytes.Buffer
	err := run([]string{"-only", "fig8", "-reps", "2", "-warmup", "50", "-measure", "300", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| fig8 |") {
		t.Fatalf("file report missing rows:\n%s", data)
	}
}

func TestReportUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
