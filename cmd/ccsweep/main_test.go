package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func quickArgs(extra ...string) []string {
	base := []string{"-reps", "1", "-warmup", "10", "-measure", "60", "-procs", "8192"}
	return append(base, extra...)
}

func TestSweepProcs(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "8192,16384")); err != nil {
		t.Fatal(err)
	}
}

func TestSweepEveryParameter(t *testing.T) {
	cases := map[string]string{
		"interval-min": "15,30",
		"mttf-years":   "1,2",
		"mttr-min":     "10,20",
		"mttq-sec":     "2,10",
		"timeout-sec":  "60,120",
		"pe":           "0,0.1",
		"alpha":        "0,0.001",
	}
	for param, values := range cases {
		if err := run(quickArgs("-param", param, "-values", values)); err != nil {
			t.Fatalf("param %s: %v", param, err)
		}
	}
}

func TestSweepCoordinationModes(t *testing.T) {
	for _, mode := range []string{"fixed", "none", "max-of-n"} {
		if err := run(quickArgs("-param", "procs", "-values", "8192", "-coordination", mode)); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestSweepParallelRows(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "8192,16384,32768", "-workers", "3")); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRejectsBadValueBeforeSimulating(t *testing.T) {
	err := run(quickArgs("-param", "procs", "-values", "8192,-5"))
	if err == nil || !strings.Contains(err.Error(), "-5") {
		t.Fatalf("invalid row accepted: %v", err)
	}
}

func TestSweepRequiresValues(t *testing.T) {
	err := run([]string{"-param", "procs"})
	if err == nil || !strings.Contains(err.Error(), "-values") {
		t.Fatalf("missing values accepted: %v", err)
	}
}

func TestSweepRejectsUnknownParam(t *testing.T) {
	err := run(quickArgs("-param", "magic", "-values", "1"))
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown parameter accepted: %v", err)
	}
}

func TestSweepRejectsBadValue(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "banana")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestSweepRejectsInvalidConfigValue(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "-1")); err == nil {
		t.Fatal("invalid processor count accepted")
	}
}

func TestSweepRejectsBadMode(t *testing.T) {
	if err := run(quickArgs("-coordination", "nope", "-values", "1")); err == nil {
		t.Fatal("bad coordination mode accepted")
	}
}

// TestSweepJournalDeterministicAcrossWorkers checks that the per-row
// buffered journals concatenate in input order: apart from the wall-clock
// fields, a parallel sweep writes the same file as a sequential one.
func TestSweepJournalDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	sweep := func(workers, path string) []map[string]any {
		t.Helper()
		err := run(quickArgs("-param", "procs", "-values", "4096,8192",
			"-reps", "2", "-workers", workers, "-journal", path))
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var recs []map[string]any
		for _, l := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			var m map[string]any
			if err := json.Unmarshal([]byte(l), &m); err != nil {
				t.Fatalf("bad journal line %q: %v", l, err)
			}
			for _, f := range obs.TimestampFields {
				delete(m, f)
			}
			recs = append(recs, m)
		}
		return recs
	}
	seq := sweep("1", filepath.Join(dir, "seq.jsonl"))
	par := sweep("4", filepath.Join(dir, "par.jsonl"))
	if len(seq) != 6 { // 2 rows × (2 replications + 1 estimate)
		t.Fatalf("sequential journal has %d records, want 6", len(seq))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("journal differs across worker counts:\nseq %v\npar %v", seq, par)
	}
	if seq[0]["label"] != "procs=4096" || seq[3]["label"] != "procs=8192" {
		t.Fatalf("row labels out of order: %v %v", seq[0]["label"], seq[3]["label"])
	}
}

func TestSweepMetricsTable(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "4096", "-metrics")); err != nil {
		t.Fatal(err)
	}
}

func TestSweepScenarioBase(t *testing.T) {
	err := run([]string{
		"-scenario", "weibull-field", "-param", "procs", "-values", "8192,16384",
		"-reps", "1", "-warmup", "10", "-measure", "50",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}
