package main

import (
	"strings"
	"testing"
)

func quickArgs(extra ...string) []string {
	base := []string{"-reps", "1", "-warmup", "10", "-measure", "60", "-procs", "8192"}
	return append(base, extra...)
}

func TestSweepProcs(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "8192,16384")); err != nil {
		t.Fatal(err)
	}
}

func TestSweepEveryParameter(t *testing.T) {
	cases := map[string]string{
		"interval-min": "15,30",
		"mttf-years":   "1,2",
		"mttr-min":     "10,20",
		"mttq-sec":     "2,10",
		"timeout-sec":  "60,120",
		"pe":           "0,0.1",
		"alpha":        "0,0.001",
	}
	for param, values := range cases {
		if err := run(quickArgs("-param", param, "-values", values)); err != nil {
			t.Fatalf("param %s: %v", param, err)
		}
	}
}

func TestSweepCoordinationModes(t *testing.T) {
	for _, mode := range []string{"fixed", "none", "max-of-n"} {
		if err := run(quickArgs("-param", "procs", "-values", "8192", "-coordination", mode)); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestSweepParallelRows(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "8192,16384,32768", "-workers", "3")); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRejectsBadValueBeforeSimulating(t *testing.T) {
	err := run(quickArgs("-param", "procs", "-values", "8192,-5"))
	if err == nil || !strings.Contains(err.Error(), "-5") {
		t.Fatalf("invalid row accepted: %v", err)
	}
}

func TestSweepRequiresValues(t *testing.T) {
	err := run([]string{"-param", "procs"})
	if err == nil || !strings.Contains(err.Error(), "-values") {
		t.Fatalf("missing values accepted: %v", err)
	}
}

func TestSweepRejectsUnknownParam(t *testing.T) {
	err := run(quickArgs("-param", "magic", "-values", "1"))
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown parameter accepted: %v", err)
	}
}

func TestSweepRejectsBadValue(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "banana")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestSweepRejectsInvalidConfigValue(t *testing.T) {
	if err := run(quickArgs("-param", "procs", "-values", "-1")); err == nil {
		t.Fatal("invalid processor count accepted")
	}
}

func TestSweepRejectsBadMode(t *testing.T) {
	if err := run(quickArgs("-coordination", "nope", "-values", "1")); err == nil {
		t.Fatal("bad coordination mode accepted")
	}
}
