package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMain doubles as the worker-process entry point for the e2e test:
// when CCSWEEP_E2E_WORKER is set the binary behaves as a plain
// `ccsweep -worker` invocation instead of running the test suite, so the
// crash/resume test below can launch real, separately killable worker
// processes without building anything.
func TestMain(m *testing.M) {
	if dir := os.Getenv("CCSWEEP_E2E_WORKER"); dir != "" {
		args := []string{"-worker", dir, "-workers", "1",
			"-worker-name", os.Getenv("CCSWEEP_E2E_NAME"), "-lease-ttl", "1s"}
		if hb := os.Getenv("CCSWEEP_E2E_HEARTBEAT"); hb != "" {
			args = append(args, "-heartbeat-every", hb)
		}
		if err := run(args); err != nil {
			fmt.Fprintln(os.Stderr, "e2e worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCrashResumeBitIdentical is the process-level half of the sweep
// engine's determinism contract, run across two scenarios: plan a sweep
// into a run directory, let two real worker processes race over it,
// SIGKILL one mid-block, repair with -resume, let a fresh worker finish,
// and require the reduced journal to be byte-identical (timestamp fields
// aside) to the journal of a monolithic single-process run.
func TestCrashResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test")
	}
	for _, scen := range []string{"base", "max-of-n"} {
		t.Run(scen, func(t *testing.T) { crashResume(t, scen) })
	}
}

func crashResume(t *testing.T, scen string) {
	dir := t.TempDir()
	runDir := filepath.Join(dir, "run")
	mono := filepath.Join(dir, "mono.jsonl")
	reduced := filepath.Join(dir, "reduced.jsonl")
	sweep := []string{"-scenario", scen, "-param", "procs", "-values", "65536,131072",
		"-reps", "3", "-warmup", "100", "-measure", "30000", "-seed", "42"}

	// Reference: the monolithic run.
	if err := run(append(sweep, "-journal", mono)); err != nil {
		t.Fatal(err)
	}
	// Plan the identical sweep into a shared run directory.
	if err := run(append(sweep, "-manifest", runDir, "-block-size", "1")); err != nil {
		t.Fatal(err)
	}

	// Two worker processes race over the directory; the victim is killed
	// as soon as it has claimed a block, so it dies holding a lease (and
	// possibly mid-journal-write).
	victim := workerProc(t, runDir, "victim")
	survivor := workerProc(t, runDir, "survivor")
	killWhenLeased(t, runDir, "victim", victim)
	if err := survivor.Wait(); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}

	// Repair and finish. -resume drops whatever the crash left behind
	// (torn journal, expired lease, temp files); the rescuer re-runs any
	// reclaimed blocks. Both are no-ops when the survivor already
	// reclaimed everything — the output must be identical either way.
	if err := run([]string{"-resume", runDir}); err != nil {
		t.Fatal(err)
	}
	rescuer := workerProc(t, runDir, "rescuer")
	if err := rescuer.Wait(); err != nil {
		t.Fatalf("rescuer worker: %v", err)
	}

	if err := run([]string{"-reduce", runDir, "-journal", reduced}); err != nil {
		t.Fatal(err)
	}
	want, got := readStripped(t, mono), readStripped(t, reduced)
	if want != got {
		t.Errorf("reduced journal differs from monolithic run\nmonolithic:\n%s\nreduced:\n%s", want, got)
	}
}

// workerProc launches this test binary as a detached ccsweep worker.
func workerProc(t *testing.T, runDir, name string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "CCSWEEP_E2E_WORKER="+runDir, "CCSWEEP_E2E_NAME="+name)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// killWhenLeased SIGKILLs the worker process the moment a lease naming it
// appears, so the kill lands while it is executing a block. If the worker
// outruns the poll and exits cleanly, the run simply has no crash to
// recover — the identity check still stands.
func killWhenLeased(t *testing.T, runDir, name string, cmd *exec.Cmd) {
	t.Helper()
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			t.Logf("%s finished before the kill landed", name)
			return
		default:
		}
		if leaseHeldBy(runDir, name) {
			if err := cmd.Process.Signal(syscall.SIGKILL); err == nil {
				t.Logf("killed %s mid-block", name)
			}
			<-exited
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s neither claimed a block nor exited", name)
}

// leaseHeldBy reports whether any live lease file names the worker.
func leaseHeldBy(runDir, name string) bool {
	entries, err := os.ReadDir(filepath.Join(runDir, "leases"))
	if err != nil {
		return false
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(runDir, "leases", e.Name()))
		if err == nil && strings.Contains(string(data), `"worker":"`+name+`"`) {
			return true
		}
	}
	return false
}

// readStripped loads a journal with the wall-clock fields blanked — the
// only fields the engine does not promise to reproduce bit for bit.
func readStripped(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, f := range obs.TimestampFields {
		re := regexp.MustCompile(`"` + f + `":("[^"]*"|[0-9.e+-]+)`)
		s = re.ReplaceAllString(s, `"`+f+`":X`)
	}
	return s
}
