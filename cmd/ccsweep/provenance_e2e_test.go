package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/obs"
	"repro/internal/provenance"
)

// TestProvenanceAndProfilesEndToEnd is the sentinel half of the fleet e2e
// story: two real worker processes run a planned sweep, and afterwards the
// run directory must identify what produced it — every heartbeat stamped
// with the worker's binary provenance and the manifest hash it joined, a
// doctored stamp (as if a stale binary had joined the fleet) flagged by
// CollectFleet as a mixed-binary mismatch with the minority worker marked,
// and an armed ProfileCapture leaving parseable pprof files that
// obs.ReadProfiles (and therefore `cctop -run`) can list.
func TestProvenanceAndProfilesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process provenance test")
	}
	dir := t.TempDir()
	runDir := filepath.Join(dir, "run")
	if err := run([]string{"-param", "procs", "-values", "65536,131072",
		"-reps", "2", "-warmup", "100", "-measure", "20000", "-seed", "11",
		"-manifest", runDir, "-block-size", "1"}); err != nil {
		t.Fatal(err)
	}
	m, err := blocks.LoadManifest(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Provenance == nil {
		t.Fatal("CreateRun left the manifest unstamped")
	}

	const hbEvery = 50 * time.Millisecond
	alpha := fleetWorkerProc(t, runDir, "alpha", hbEvery)
	beta := fleetWorkerProc(t, runDir, "beta", hbEvery)
	if err := alpha.Wait(); err != nil {
		t.Fatalf("worker alpha: %v", err)
	}
	if err := beta.Wait(); err != nil {
		t.Fatalf("worker beta: %v", err)
	}

	// Uniform fleet: both heartbeats carry the same binary's stamp, with
	// ConfigHash proving which manifest each worker executed against.
	now := time.Now()
	_, st, fl, err := blocks.CollectFleet(runDir, now, blocks.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("sweep not complete: %+v", st)
	}
	if len(fl.Workers) != 2 {
		t.Fatalf("fleet has %d workers, want 2", len(fl.Workers))
	}
	for _, fw := range fl.Workers {
		if fw.Provenance == nil {
			t.Fatalf("worker %s heartbeat carries no provenance stamp", fw.Worker)
		}
		if fw.Provenance.ConfigHash != m.Hash {
			t.Fatalf("worker %s stamp config %q, want manifest hash %q",
				fw.Worker, fw.Provenance.ConfigHash, m.Hash)
		}
		if fw.Provenance.GoVersion == "" || fw.Provenance.Goos == "" {
			t.Fatalf("worker %s stamp incomplete: %+v", fw.Worker, fw.Provenance)
		}
		if fw.ProvenanceOutlier {
			t.Fatalf("uniform fleet flagged worker %s as outlier", fw.Worker)
		}
	}
	if fl.ProvenanceMismatch {
		t.Fatalf("uniform fleet flagged as mismatched: %v", fl.Binaries)
	}
	if len(fl.Binaries) != 1 {
		t.Fatalf("uniform fleet tallies %d binaries: %v", len(fl.Binaries), fl.Binaries)
	}
	for _, n := range fl.Binaries {
		if n != 2 {
			t.Fatalf("binary tally = %v, want both workers under one id", fl.Binaries)
		}
	}

	// Doctor beta's heartbeat as if a worker built from another commit had
	// joined the run: the fleet view must refuse to present the directory
	// as homogeneous. With one worker per binary the majority vote ties and
	// falls back to the smaller BinaryID; test binaries report
	// "unversioned", so a revision sorting above it keeps alpha in the
	// majority and pins beta as the outlier.
	doctorHeartbeatSHA(t, runDir, "beta", "zfeedfacefeedfacefeedfacefeedfac")
	_, _, fl2, err := blocks.CollectFleet(runDir, now, blocks.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fl2.ProvenanceMismatch || len(fl2.Binaries) != 2 {
		t.Fatalf("doctored fleet not flagged: mismatch=%v binaries=%v",
			fl2.ProvenanceMismatch, fl2.Binaries)
	}
	for _, fw := range fl2.Workers {
		wantOutlier := fw.Worker == "beta"
		if fw.ProvenanceOutlier != wantOutlier {
			t.Fatalf("worker %s outlier=%v, want %v", fw.Worker, fw.ProvenanceOutlier, wantOutlier)
		}
	}

	// An armed ProfileCapture drops parseable pprof files into the run
	// directory's profiles/ — the same location worker -profile-dir uses
	// and cctop -run lists.
	profiler := obs.NewProfileCapture(obs.ProfileCaptureOptions{
		Dir:    blocks.ProfileDir(runDir),
		Prefix: "sentinel",
		Window: 200 * time.Millisecond,
		Meta:   provenance.Collect().WithConfig(m.Hash),
	})
	if !profiler.Trigger("e2e") {
		t.Fatal("armed profiler refused the trigger")
	}
	profiler.Wait()
	infos, err := obs.ReadProfiles(blocks.ProfileDir(runDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("ReadProfiles found %d captures, want 1", len(infos))
	}
	info := infos[0]
	if info.Prefix != "sentinel" || info.Reason != "e2e" {
		t.Fatalf("capture = %+v", info)
	}
	var sawCPU, sawHeap bool
	for _, f := range info.Files {
		switch {
		case strings.HasSuffix(f, "-cpu.pprof"):
			sawCPU = true
		case strings.HasSuffix(f, "-heap.pprof"):
			sawHeap = true
		}
		if strings.HasSuffix(f, ".pprof") {
			checkPprof(t, filepath.Join(blocks.ProfileDir(runDir), f))
		}
	}
	if !sawCPU || !sawHeap {
		t.Fatalf("capture files = %v, want cpu and heap profiles", info.Files)
	}
}

// doctorHeartbeatSHA rewrites one worker's on-disk heartbeat with a foreign
// git revision, simulating a stale binary in the fleet.
func doctorHeartbeatSHA(t *testing.T, runDir, worker, sha string) {
	t.Helper()
	hbs, err := blocks.ReadHeartbeats(runDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, hb := range hbs {
		if hb.Worker != worker {
			continue
		}
		if hb.Provenance == nil {
			t.Fatalf("worker %s has no stamp to doctor", worker)
		}
		stamp := *hb.Provenance
		stamp.GitSHA = sha
		hb.Provenance = &stamp
		if err := blocks.WriteHeartbeat(runDir, hb); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("no heartbeat for worker %s", worker)
}

// checkPprof verifies a capture is a well-formed pprof file: gzip-framed
// (runtime/pprof always compresses) and fully decompressible to a non-empty
// protobuf payload.
func checkPprof(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("%s: not gzip-framed: %v", filepath.Base(path), err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: truncated gzip stream: %v", filepath.Base(path), err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("%s: gzip checksum: %v", filepath.Base(path), err)
	}
	if len(raw) == 0 {
		t.Fatalf("%s: empty profile payload", filepath.Base(path))
	}
}
