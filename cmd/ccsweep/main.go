// Command ccsweep sweeps a single model parameter and prints one row per
// value, for ad-hoc sensitivity studies beyond the fixed paper figures.
//
//	ccsweep -param procs -values 8192,16384,32768,65536,131072,262144
//	ccsweep -param interval-min -values 15,30,60,120,240 -procs 65536
//	ccsweep -param mttf-years -values 0.5,1,2,4 -procs 131072
//	ccsweep -param timeout-sec -values 20,60,100,120 -coordination max-of-n
//
// A sweep can also run as a resumable, multi-process job through a shared
// run directory (see internal/blocks): plan it once, point any number of
// worker processes — on any machines sharing the directory — at it, and
// reduce when done. The reduced output is bit-identical to the monolithic
// run above (timestamps aside), no matter how many workers ran or crashed.
//
//	ccsweep -param procs -values 8192,16384 -manifest run/   # plan
//	ccsweep -worker run/            # claim blocks until the sweep is done
//	ccsweep -status run/            # inspect progress (-json for machines)
//	ccsweep -resume run/            # repair after a crash (torn journals)
//	ccsweep -reduce run/            # merge journals, print the table
//
// A live run's telemetry lives in the directory too: each worker drops a
// periodic heartbeat snapshot (progress, metrics registry, flight
// recorder) into heartbeats/, and the journals/leases already encode every
// block's life. Three verbs surface it:
//
//	ccsweep -fleet run/             # fleet view JSON (workers alive/stale/dead)
//	ccsweep -timeline run/          # Chrome trace-event JSON for Perfetto
//	cctop -run run/                 # live fleet dashboard (see cmd/cctop)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/blocks"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/vr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccsweep", flag.ContinueOnError)
	var (
		param         = fs.String("param", "procs", "parameter to sweep: procs, interval-min, mttf-years, mttr-min, mttq-sec, timeout-sec, pe, alpha")
		values        = fs.String("values", "", "comma-separated values (required)")
		scenarioName  = fs.String("scenario", "", "base the sweep on a named scenario (see -list-scenarios; flags given explicitly override it)")
		scenarioDir   = fs.String("scenario-dir", "", "directory of scenario files extending/overriding the built-in catalog")
		listScenarios = fs.Bool("list-scenarios", false, "list the scenario catalog and exit")
		procs         = fs.Int("procs", 65536, "total compute processors")
		mttfYears     = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		mttrMin       = fs.Float64("mttr-min", 10, "system MTTR in minutes")
		intervalMin   = fs.Float64("interval-min", 30, "checkpoint interval in minutes")
		coordination  = fs.String("coordination", "fixed", "coordination mode: fixed, none, max-of-n")
		rFactor       = fs.Float64("r", 400, "correlated failure factor (used when sweeping pe/alpha)")
		reps          = fs.Int("reps", 3, "independent replications")
		warmup        = fs.Float64("warmup", 300, "transient hours to discard")
		measure       = fs.Float64("measure", 1500, "measured hours per replication")
		seed          = fs.Uint64("seed", 1, "root random seed")
		vrMode        = fs.String("vr", "none", "variance reduction: none or antithetic (pairs replications on reflected random streams; odd -reps rounds up; recorded in the manifest so workers and -reduce follow it)")
		workers       = fs.Int("workers", runtime.NumCPU(), "concurrent sweep rows, or in-block replications for -worker (1 = sequential; results are identical for any value)")
		journalPath   = fs.String("journal", "", "write a JSONL run journal (rows in input order, records labeled param=value) to this file; with -reduce, the merged journal")
		metrics       = fs.Bool("metrics", false, "print the collected telemetry table to stderr after the sweep")
		debugAddr     = fs.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metricz on this address during the sweep")

		manifestDir  = fs.String("manifest", "", "plan the sweep into this run directory (manifest + leases/ + journals/) and exit without simulating")
		blockSize    = fs.Int("block-size", 1, "replications per claimable block when planning with -manifest")
		workerDir    = fs.String("worker", "", "claim and execute blocks from this run directory until the sweep completes")
		workerName   = fs.String("worker-name", "", "worker identity recorded in leases and journals (default <host>-<pid>)")
		leaseTTL     = fs.Duration("lease-ttl", 10*time.Minute, "block lease time-to-live; a crashed worker's blocks are reclaimed after this long")
		resumeDir    = fs.String("resume", "", "repair this run directory after a crash (drop torn journals, clear expired leases) and exit")
		statusDir    = fs.String("status", "", "print this run directory's progress and exit")
		reduceDir    = fs.String("reduce", "", "merge this run directory's block journals and print the sweep table")
		jsonOut      = fs.Bool("json", false, "with -status: emit machine-readable JSON instead of the table")
		fleetDir     = fs.String("fleet", "", "print this run directory's fleet view (worker heartbeats fused with block status) as JSON and exit")
		timelineDir  = fs.String("timeline", "", "write this run directory's span timeline as Chrome trace-event JSON to stdout (load in Perfetto)")
		hbEvery      = fs.Duration("heartbeat-every", time.Second, "worker telemetry snapshot cadence for heartbeats/<worker>.json; negative disables")
		profileDir   = fs.String("profile-dir", "", "with -worker: where profile captures land (default <run>/profiles; 'off' disables)")
		profileEvery = fs.Duration("profile-every", 0, "with -worker: also capture profiles at this interval (0 = straggler auto-trigger only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	catalog, err := scenario.Resolve(*scenarioDir)
	if err != nil {
		return err
	}
	if *listScenarios {
		return catalog.WriteList(os.Stdout)
	}

	var reg *repro.MetricsRegistry
	if *metrics || *debugAddr != "" {
		reg = repro.NewMetricsRegistry()
	}
	if *debugAddr != "" {
		srv, err := repro.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ccsweep: debug endpoint on http://%s (/debug/pprof, /debug/vars, /metricz)\n", srv.Addr())
	}

	// Run-directory verbs need no sweep definition — the manifest carries it.
	switch {
	case *workerDir != "":
		return workCmd(*workerDir, *workers, *workerName, *leaseTTL, *hbEvery, reg, *metrics, *profileDir, *profileEvery)
	case *resumeDir != "":
		return resumeCmd(*resumeDir, os.Stdout)
	case *statusDir != "":
		m, st, err := blocks.Scan(*statusDir, time.Now())
		if err != nil {
			return err
		}
		if *jsonOut {
			return blocks.WriteStatusJSON(os.Stdout, m, st)
		}
		return blocks.WriteStatus(os.Stdout, m, st)
	case *fleetDir != "":
		return fleetCmd(*fleetDir, os.Stdout)
	case *timelineDir != "":
		return blocks.WriteTimeline(os.Stdout, *timelineDir, time.Now())
	case *reduceDir != "":
		return reduceCmd(*reduceDir, *journalPath, os.Stdout)
	}

	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	mode, err := vr.ParseMode(*vrMode)
	if err != nil {
		return err
	}
	if mode == vr.ModeAntithetic && *reps%2 == 1 {
		// Pairs need an even count; complete the last pair like ccsim does.
		*reps++
	}

	base := repro.DefaultConfig()
	if *scenarioName != "" {
		s, err := catalog.Get(*scenarioName)
		if err != nil {
			return err
		}
		if base, err = s.ClusterConfig(); err != nil {
			return err
		}
	}
	// With a scenario base, apply only the flags the user set explicitly so
	// flag defaults don't clobber it; without one, every base flag applies,
	// as before.
	var coordErr error
	applyBase := map[string]func(){
		"procs":        func() { base.Processors = *procs },
		"mttf-years":   func() { base.MTTFPerNode = repro.Years(*mttfYears) },
		"mttr-min":     func() { base.MTTR = repro.Minutes(*mttrMin) },
		"interval-min": func() { base.CheckpointInterval = repro.Minutes(*intervalMin) },
		"coordination": func() {
			switch *coordination {
			case "fixed":
				base.Coordination = repro.CoordFixed
			case "none":
				base.Coordination = repro.CoordNone
			case "max-of-n":
				base.Coordination = repro.CoordMaxOfN
			default:
				coordErr = fmt.Errorf("unknown coordination mode %q", *coordination)
			}
		},
	}
	if *scenarioName == "" {
		for _, f := range applyBase {
			f()
		}
	} else {
		fs.Visit(func(f *flag.Flag) {
			if a, ok := applyBase[f.Name]; ok {
				a()
			}
		})
	}
	if coordErr != nil {
		return coordErr
	}

	apply, err := setter(*param, *rFactor)
	if err != nil {
		return err
	}

	// Parse and validate every row before dispatch, so bad input surfaces
	// in input order; the simulations then fan out on the worker pool and
	// the rows print in input order once all are done.
	var vals []float64
	for _, raw := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return fmt.Errorf("value %q: %w", raw, err)
		}
		cfg := base
		apply(&cfg, v)
		if err := repro.Validate(cfg); err != nil {
			return fmt.Errorf("value %v: %w", v, err)
		}
		vals = append(vals, v)
	}

	// The sweep is a grid plan whether it runs here or in detached workers:
	// one cell per row, seeds pre-assigned by the planner. Monolithic mode
	// is simply "plan, claim everything, reduce" inside this process.
	cells := make([]blocks.Cell, len(vals))
	for i, v := range vals {
		cfg := base
		apply(&cfg, v)
		cells[i] = blocks.Cell{
			Label:        fmt.Sprintf("%s=%g", *param, v),
			X:            v,
			Seed:         *seed + uint64(i)*1000003,
			Replications: *reps,
			Config:       cfg,
		}
	}
	opts := repro.Options{
		Replications: *reps, Warmup: *warmup, Measure: *measure,
		Seed: *seed, Workers: *workers, Metrics: reg,
		VarianceReduction: mode,
	}
	m, err := runner.PlanGrid(*param, cells, *blockSize, opts)
	if err != nil {
		return err
	}

	if *manifestDir != "" {
		if err := blocks.CreateRun(*manifestDir, m); err != nil {
			return err
		}
		fmt.Printf("planned %s: %d cells x %d reps = %d blocks (size %d)\n",
			*param, len(m.Cells), *reps, len(m.Blocks), m.BlockSize)
		fmt.Printf("manifest %s\n", m.Hash)
		fmt.Printf("run 'ccsweep -worker %s' (any number of processes), then 'ccsweep -reduce %s'\n",
			*manifestDir, *manifestDir)
		return nil
	}

	// Each row journals into its own buffer; the buffers are concatenated
	// in input order after the fan-out, so the journal file stays
	// deterministic (modulo timestamps) at every worker count.
	journals := make([]bytes.Buffer, len(vals))
	results, err := runner.EstimateGrid(context.Background(), m, opts,
		func(ci int, o repro.Options) repro.Options {
			if *journalPath != "" {
				o.Journal = obs.NewJournal(&journals[ci])
			}
			return o
		})
	if err != nil {
		return err
	}

	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			return err
		}
		for i := range journals {
			if _, err := f.Write(journals[i].Bytes()); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("%-16s %-24s %-24s\n", *param, "useful work fraction", "total useful work")
	for i, r := range results {
		fmt.Printf("%-16g %-24v %-24v\n", vals[i], r.UsefulWorkFraction, r.TotalUsefulWork)
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "telemetry")
		reg.WriteTable(os.Stderr)
	}
	return nil
}

// workCmd runs one worker process against a shared run directory.
func workCmd(dir string, workers int, name string, ttl, hbEvery time.Duration, reg *repro.MetricsRegistry, printMetrics bool, profileDir string, profileEvery time.Duration) error {
	if reg == nil {
		// Workers always collect block telemetry; it feeds -status wall
		// stats (via trailers), the heartbeat snapshots, and, with
		// -debug-addr, live dashboards.
		reg = repro.NewMetricsRegistry()
	}
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ccsweep: worker: "+format+"\n", args...)
	}
	profiler, stopPeriodic := blocks.NewWorkerProfiler(dir, name, profileDir, profileEvery, log)
	defer stopPeriodic()
	sum, err := blocks.Work(context.Background(), dir, runner.BlockRunner(workers, reg), blocks.WorkerOptions{
		Name:      name,
		LeaseTTL:  ttl,
		Metrics:   reg,
		Heartbeat: hbEvery,
		Profiler:  profiler,
		// SIGTERM/SIGINT flush a final heartbeat naming the signal, so an
		// orderly kill leaves its reason in the run directory.
		HandleSignals: true,
		Log:           log,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %s done: %d blocks completed (%d reclaimed from crashed peers, %d already done), %d events\n",
		sum.Worker, sum.Completed, sum.Reclaimed, sum.SkippedComplete, sum.Events)
	if printMetrics {
		fmt.Fprintln(os.Stderr, "telemetry")
		reg.WriteTable(os.Stderr)
	}
	return nil
}

// fleetCmd prints the run directory's fleet view — worker heartbeats
// judged for liveness, fused with block status — as one JSON document.
// cctop -run renders the same data for humans.
func fleetCmd(dir string, w io.Writer) error {
	m, st, fl, err := blocks.CollectFleet(dir, time.Now(), blocks.FleetOptions{})
	if err != nil {
		return err
	}
	out := struct {
		Name     string       `json:"name"`
		Hash     string       `json:"hash"`
		Planned  int          `json:"planned"`
		Complete int          `json:"complete"`
		Done     bool         `json:"done"`
		Fleet    blocks.Fleet `json:"fleet"`
	}{m.Name, m.Hash, st.Planned, st.Complete, st.Done(), fl}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// resumeCmd repairs a crashed run directory and reports what it found.
func resumeCmd(dir string, w io.Writer) error {
	rep, m, err := blocks.Resume(dir, time.Now())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "resume %s: %d/%d blocks complete\n", m.Name, rep.Complete, len(m.Blocks))
	if len(rep.TornJournals) > 0 {
		fmt.Fprintf(w, "dropped %d torn journal(s) from crashed writers: blocks %v (will re-run)\n",
			len(rep.TornJournals), rep.TornJournals)
	}
	if len(rep.ExpiredLeases) > 0 {
		fmt.Fprintf(w, "cleared %d expired lease(s): blocks %v\n", len(rep.ExpiredLeases), rep.ExpiredLeases)
	}
	if rep.OrphanTemps > 0 {
		fmt.Fprintf(w, "removed %d orphaned temp file(s)\n", rep.OrphanTemps)
	}
	if rep.Remaining == 0 {
		fmt.Fprintln(w, "all blocks complete — ready to -reduce")
	} else {
		fmt.Fprintf(w, "%d block(s) remaining — run -worker to finish\n", rep.Remaining)
	}
	return nil
}

// reduceCmd merges the block journals and prints the same table a
// monolithic run prints.
func reduceCmd(dir, journalPath string, w io.Writer) error {
	m, cells, err := blocks.Reduce(dir)
	if err != nil {
		if errors.Is(err, blocks.ErrIncomplete) {
			return fmt.Errorf("%w; run '-resume %s' and '-worker %s' to finish, or '-status %s' to inspect", err, dir, dir, dir)
		}
		return err
	}
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return err
		}
		j := obs.NewJournal(f)
		if err := blocks.WriteReduced(j, m, cells); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%-16s %-24s %-24s\n", m.Name, "useful work fraction", "total useful work")
	for _, c := range cells {
		fmt.Fprintf(w, "%-16g %-24v %-24v\n", c.Cell.X,
			reducedCI(c.FlatValues(), m), reducedCI(c.Totals, m))
	}
	return nil
}

// reducedCI folds one cell's per-replication values into the interval the
// monolithic table prints: a plain CI normally, the pair-mean CI when the
// manifest ran antithetic variance reduction.
func reducedCI(values []float64, m *blocks.Manifest) stats.Interval {
	if m.VR == blocks.VRAntithetic {
		var p stats.PairedAccumulator
		for i := 0; i+1 < len(values); i += 2 {
			p.AddPair(values[i], values[i+1])
		}
		return p.CI(m.Confidence)
	}
	var a stats.Accumulator
	for _, v := range values {
		a.Add(v)
	}
	return a.CI(m.Confidence)
}

// setter maps a parameter name to a config mutator.
func setter(param string, r float64) (func(*repro.Config, float64), error) {
	switch param {
	case "procs":
		return func(c *repro.Config, v float64) { c.Processors = int(v) }, nil
	case "interval-min":
		return func(c *repro.Config, v float64) { c.CheckpointInterval = repro.Minutes(v) }, nil
	case "mttf-years":
		return func(c *repro.Config, v float64) { c.MTTFPerNode = repro.Years(v) }, nil
	case "mttr-min":
		return func(c *repro.Config, v float64) { c.MTTR = repro.Minutes(v) }, nil
	case "mttq-sec":
		return func(c *repro.Config, v float64) { c.MTTQ = repro.Seconds(v) }, nil
	case "timeout-sec":
		return func(c *repro.Config, v float64) { c.Timeout = repro.Seconds(v) }, nil
	case "pe":
		return func(c *repro.Config, v float64) {
			c.ProbCorrelated = v
			c.CorrelatedFactor = r
		}, nil
	case "alpha":
		return func(c *repro.Config, v float64) {
			c.GenericCorrelatedCoefficient = v
			c.CorrelatedFactor = r
		}, nil
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
}
