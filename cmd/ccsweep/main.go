// Command ccsweep sweeps a single model parameter and prints one row per
// value, for ad-hoc sensitivity studies beyond the fixed paper figures.
//
//	ccsweep -param procs -values 8192,16384,32768,65536,131072,262144
//	ccsweep -param interval-min -values 15,30,60,120,240 -procs 65536
//	ccsweep -param mttf-years -values 0.5,1,2,4 -procs 131072
//	ccsweep -param timeout-sec -values 20,60,100,120 -coordination max-of-n
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccsweep", flag.ContinueOnError)
	var (
		param         = fs.String("param", "procs", "parameter to sweep: procs, interval-min, mttf-years, mttr-min, mttq-sec, timeout-sec, pe, alpha")
		values        = fs.String("values", "", "comma-separated values (required)")
		scenarioName  = fs.String("scenario", "", "base the sweep on a named scenario (see -list-scenarios; flags given explicitly override it)")
		scenarioDir   = fs.String("scenario-dir", "", "directory of scenario files extending/overriding the built-in catalog")
		listScenarios = fs.Bool("list-scenarios", false, "list the scenario catalog and exit")
		procs         = fs.Int("procs", 65536, "total compute processors")
		mttfYears     = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		mttrMin       = fs.Float64("mttr-min", 10, "system MTTR in minutes")
		intervalMin   = fs.Float64("interval-min", 30, "checkpoint interval in minutes")
		coordination  = fs.String("coordination", "fixed", "coordination mode: fixed, none, max-of-n")
		rFactor       = fs.Float64("r", 400, "correlated failure factor (used when sweeping pe/alpha)")
		reps          = fs.Int("reps", 3, "independent replications")
		warmup        = fs.Float64("warmup", 300, "transient hours to discard")
		measure       = fs.Float64("measure", 1500, "measured hours per replication")
		seed          = fs.Uint64("seed", 1, "root random seed")
		workers       = fs.Int("workers", runtime.NumCPU(), "concurrent sweep rows (1 = sequential; results are identical for any value)")
		journalPath   = fs.String("journal", "", "write a JSONL run journal (rows in input order, records labeled param=value) to this file")
		metrics       = fs.Bool("metrics", false, "print the collected telemetry table to stderr after the sweep")
		debugAddr     = fs.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metricz on this address during the sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	catalog, err := scenario.Resolve(*scenarioDir)
	if err != nil {
		return err
	}
	if *listScenarios {
		return catalog.WriteList(os.Stdout)
	}
	if *values == "" {
		return fmt.Errorf("-values is required")
	}

	base := repro.DefaultConfig()
	if *scenarioName != "" {
		s, err := catalog.Get(*scenarioName)
		if err != nil {
			return err
		}
		if base, err = s.ClusterConfig(); err != nil {
			return err
		}
	}
	// With a scenario base, apply only the flags the user set explicitly so
	// flag defaults don't clobber it; without one, every base flag applies,
	// as before.
	var coordErr error
	applyBase := map[string]func(){
		"procs":        func() { base.Processors = *procs },
		"mttf-years":   func() { base.MTTFPerNode = repro.Years(*mttfYears) },
		"mttr-min":     func() { base.MTTR = repro.Minutes(*mttrMin) },
		"interval-min": func() { base.CheckpointInterval = repro.Minutes(*intervalMin) },
		"coordination": func() {
			switch *coordination {
			case "fixed":
				base.Coordination = repro.CoordFixed
			case "none":
				base.Coordination = repro.CoordNone
			case "max-of-n":
				base.Coordination = repro.CoordMaxOfN
			default:
				coordErr = fmt.Errorf("unknown coordination mode %q", *coordination)
			}
		},
	}
	if *scenarioName == "" {
		for _, f := range applyBase {
			f()
		}
	} else {
		fs.Visit(func(f *flag.Flag) {
			if a, ok := applyBase[f.Name]; ok {
				a()
			}
		})
	}
	if coordErr != nil {
		return coordErr
	}

	apply, err := setter(*param, *rFactor)
	if err != nil {
		return err
	}

	// Parse and validate every row before dispatch, so bad input surfaces
	// in input order; the simulations then fan out on the worker pool and
	// the rows print in input order once all are done.
	var vals []float64
	for _, raw := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return fmt.Errorf("value %q: %w", raw, err)
		}
		cfg := base
		apply(&cfg, v)
		if err := repro.Validate(cfg); err != nil {
			return fmt.Errorf("value %v: %w", v, err)
		}
		vals = append(vals, v)
	}

	var reg *repro.MetricsRegistry
	if *metrics || *debugAddr != "" {
		reg = repro.NewMetricsRegistry()
	}
	if *debugAddr != "" {
		srv, err := repro.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ccsweep: debug endpoint on http://%s (/debug/pprof, /debug/vars, /metricz)\n", srv.Addr())
	}

	// Each row journals into its own buffer; the buffers are concatenated
	// in input order after the fan-out, so the journal file stays
	// deterministic (modulo timestamps) at every worker count.
	type row struct {
		res     repro.Result
		journal bytes.Buffer
	}
	pool := exec.Pool{Workers: exec.WorkerCount(*workers), Metrics: reg}
	results, err := exec.Map(context.Background(), pool, len(vals),
		func(_ context.Context, i int) (*row, error) {
			cfg := base
			apply(&cfg, vals[i])
			r := &row{}
			opts := repro.Options{
				Replications: *reps, Warmup: *warmup, Measure: *measure,
				Seed:    *seed + uint64(i)*1000003,
				Workers: 1, // the row sweep is already parallel
				Metrics: reg,
				Label:   fmt.Sprintf("%s=%g", *param, vals[i]),
			}
			if *journalPath != "" {
				opts.Journal = obs.NewJournal(&r.journal)
			}
			var err error
			r.res, err = repro.Simulate(cfg, opts)
			return r, err
		})
	if err != nil {
		return err
	}

	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			return err
		}
		for _, r := range results {
			if _, err := f.Write(r.journal.Bytes()); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("%-16s %-24s %-24s\n", *param, "useful work fraction", "total useful work")
	for i, r := range results {
		fmt.Printf("%-16g %-24v %-24v\n", vals[i], r.res.UsefulWorkFraction, r.res.TotalUsefulWork)
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "telemetry")
		reg.WriteTable(os.Stderr)
	}
	return nil
}

// setter maps a parameter name to a config mutator.
func setter(param string, r float64) (func(*repro.Config, float64), error) {
	switch param {
	case "procs":
		return func(c *repro.Config, v float64) { c.Processors = int(v) }, nil
	case "interval-min":
		return func(c *repro.Config, v float64) { c.CheckpointInterval = repro.Minutes(v) }, nil
	case "mttf-years":
		return func(c *repro.Config, v float64) { c.MTTFPerNode = repro.Years(v) }, nil
	case "mttr-min":
		return func(c *repro.Config, v float64) { c.MTTR = repro.Minutes(v) }, nil
	case "mttq-sec":
		return func(c *repro.Config, v float64) { c.MTTQ = repro.Seconds(v) }, nil
	case "timeout-sec":
		return func(c *repro.Config, v float64) { c.Timeout = repro.Seconds(v) }, nil
	case "pe":
		return func(c *repro.Config, v float64) {
			c.ProbCorrelated = v
			c.CorrelatedFactor = r
		}, nil
	case "alpha":
		return func(c *repro.Config, v float64) {
			c.GenericCorrelatedCoefficient = v
			c.CorrelatedFactor = r
		}, nil
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
}
