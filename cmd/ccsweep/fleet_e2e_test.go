package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/obs"
)

// TestFleetTelemetryEndToEnd is the observability counterpart of
// TestCrashResumeBitIdentical: two real worker processes run a planned
// sweep, one is SIGKILLed mid-block, and the run directory's telemetry
// must tell the whole story afterwards — the victim flagged dead from
// heartbeat age with its last flight-recorder snapshot intact (SIGKILL
// runs no handler; the last periodic heartbeat IS the postmortem), the
// survivor's final snapshot saying "done", the -fleet JSON and -timeline
// trace-event export well-formed, and the merged fleet metrics rendering
// as valid Prometheus exposition text.
func TestFleetTelemetryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process telemetry test")
	}
	dir := t.TempDir()
	runDir := filepath.Join(dir, "run")
	if err := run([]string{"-param", "procs", "-values", "65536,131072",
		"-reps", "2", "-warmup", "100", "-measure", "20000", "-seed", "7",
		"-manifest", runDir, "-block-size", "1"}); err != nil {
		t.Fatal(err)
	}
	const hbEvery = 50 * time.Millisecond

	victim := fleetWorkerProc(t, runDir, "victim", hbEvery)
	survivor := fleetWorkerProc(t, runDir, "survivor", hbEvery)

	// Kill the victim only after it holds a lease AND a heartbeat carrying
	// that claim has had time to flush — the postmortem must be on disk
	// before the SIGKILL, because nothing runs after it.
	killAfterHeartbeat(t, runDir, "victim", victim, hbEvery)
	if err := survivor.Wait(); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	// The survivor reclaims the victim's block after the 1s lease TTL, so
	// by now the victim's last heartbeat is far older than its dead
	// threshold (6 intervals = 300ms).

	now := time.Now()
	m, st, fl, err := blocks.CollectFleet(runDir, now, blocks.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("sweep not complete after survivor exit: %+v", st)
	}
	byName := map[string]blocks.FleetWorker{}
	for _, fw := range fl.Workers {
		byName[fw.Worker] = fw
	}
	v, ok := byName["victim"]
	if !ok {
		t.Fatalf("victim left no heartbeat; fleet = %+v", fl.Workers)
	}
	if v.Health != blocks.WorkerDead || v.Final {
		t.Fatalf("victim = health %q final %v, want dead without a final snapshot", v.Health, v.Final)
	}
	var sawClaim bool
	for _, fe := range v.Flight {
		if fe.Kind == "claim" {
			sawClaim = true
		}
	}
	if !sawClaim {
		t.Fatalf("victim postmortem flight ring lacks its claim: %+v", v.Flight)
	}
	s, ok := byName["survivor"]
	if !ok || s.Health != blocks.WorkerExited || s.Reason != "done" {
		t.Fatalf("survivor = %+v, want exited/done", s.Heartbeat)
	}
	if s.Metrics == nil || s.Metrics.Counters["runner.events"] == 0 {
		t.Fatalf("survivor heartbeat carries no metrics registry: %+v", s.Metrics)
	}
	if s.Completed == 0 || s.Completed+s.SkippedComplete+v.Completed < st.Planned {
		t.Fatalf("fleet progress inconsistent: survivor %+v victim %+v planned %d",
			s.Heartbeat, v.Heartbeat, st.Planned)
	}

	// -fleet emits one valid JSON document naming both workers.
	var fleetBuf bytes.Buffer
	if err := fleetCmd(runDir, &fleetBuf); err != nil {
		t.Fatal(err)
	}
	var fleetDoc struct {
		Done  bool         `json:"done"`
		Fleet blocks.Fleet `json:"fleet"`
	}
	if err := json.Unmarshal(fleetBuf.Bytes(), &fleetDoc); err != nil {
		t.Fatalf("-fleet output not JSON: %v\n%s", err, fleetBuf.String())
	}
	if !fleetDoc.Done || len(fleetDoc.Fleet.Workers) != 2 {
		t.Fatalf("-fleet doc = %+v", fleetDoc)
	}

	// -timeline emits trace-event JSON: one named track per worker and a
	// complete span for every committed block.
	var tlBuf bytes.Buffer
	if err := blocks.WriteTimeline(&tlBuf, runDir, now); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Tid   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tlBuf.Bytes(), &trace); err != nil {
		t.Fatalf("-timeline output not JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	tracks := map[string]bool{}
	blockSpans := map[float64]bool{}
	for _, ev := range trace.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			name, _ := ev.Args["name"].(string)
			tracks[name] = true
		case ev.Phase == "X" && strings.HasPrefix(ev.Name, "block "):
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("span out of range: %+v", ev)
			}
			if id, ok := ev.Args["block"].(float64); ok {
				blockSpans[id] = true
			}
		}
	}
	if !tracks["victim"] || !tracks["survivor"] {
		t.Fatalf("timeline tracks = %v, want victim and survivor", tracks)
	}
	if len(blockSpans) != st.Planned {
		t.Fatalf("timeline covers %d committed blocks, want %d (%v)", len(blockSpans), st.Planned, blockSpans)
	}

	// The merged fleet registry renders as valid Prometheus text
	// exposition — what /metricz.prom serves on a live worker.
	if fl.Metrics == nil {
		t.Fatalf("fleet merged no metrics (err %q)", fl.MetricsErr)
	}
	var promBuf bytes.Buffer
	if err := obs.WriteProm(&promBuf, *fl.Metrics); err != nil {
		t.Fatal(err)
	}
	promLine := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)
	sc := bufio.NewScanner(&promBuf)
	var sawEvents bool
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		if strings.HasPrefix(line, "runner_events ") {
			sawEvents = true
		}
	}
	if !sawEvents {
		t.Fatal("merged exposition lacks runner_events")
	}
	_ = m
}

// fleetWorkerProc launches this test binary as a ccsweep worker with a
// fast heartbeat cadence.
func fleetWorkerProc(t *testing.T, runDir, name string, hb time.Duration) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"CCSWEEP_E2E_WORKER="+runDir,
		"CCSWEEP_E2E_NAME="+name,
		"CCSWEEP_E2E_HEARTBEAT="+hb.String())
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// killAfterHeartbeat waits for the worker to hold a lease, lets a few
// heartbeat intervals elapse so the claim reaches the on-disk flight ring,
// then SIGKILLs it.
func killAfterHeartbeat(t *testing.T, runDir, name string, cmd *exec.Cmd, hb time.Duration) {
	t.Helper()
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			t.Logf("%s finished before the kill landed", name)
			return
		default:
		}
		if leaseHeldBy(runDir, name) {
			time.Sleep(4 * hb)
			if err := cmd.Process.Signal(syscall.SIGKILL); err == nil {
				t.Logf("killed %s mid-block", name)
			}
			<-exited
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s neither claimed a block nor exited", name)
}
