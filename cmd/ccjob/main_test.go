package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJobForecast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-work", "100", "-procs", "16384", "-reps", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"expected completion", "stretch factor", "p50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("forecast missing %q:\n%s", want, s)
		}
	}
}

func TestJobWithConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(`{"processors": 16384, "mttfYears": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-config", path, "-work", "100", "-reps", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "16384 processors") {
		t.Fatalf("config file not used:\n%s", out.String())
	}
}

func TestJobErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-work", "-5"}, &out); err == nil {
		t.Error("negative work accepted")
	}
	if err := run([]string{"-procs", "-1"}, &out); err == nil {
		t.Error("bad config accepted")
	}
	if err := run([]string{"-config", "/missing.json"}, &out); err == nil {
		t.Error("missing config accepted")
	}
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
