// Command ccjob forecasts the wall-clock completion time of a job on the
// modeled machine: given the job's useful-work requirement, it reports the
// completion-time distribution (mean, quantiles, stretch factor) over
// independent replications of the cycle engine.
//
//	ccjob -work 5000 -procs 65536 -mttf-years 1
//	ccjob -work 5000 -config machine.json -reps 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/configio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccjob:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccjob", flag.ContinueOnError)
	var (
		configPath  = fs.String("config", "", "JSON configuration file")
		work        = fs.Float64("work", 1000, "useful work the job needs, hours")
		procs       = fs.Int("procs", 65536, "total compute processors")
		mttfYears   = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		intervalMin = fs.Float64("interval-min", 30, "checkpoint interval in minutes")
		reps        = fs.Int("reps", 10, "independent replications")
		seed        = fs.Uint64("seed", 1, "root random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := repro.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		loaded, err := configio.Load(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		cfg = loaded
	} else {
		cfg.Processors = *procs
		cfg.MTTFPerNode = repro.Years(*mttfYears)
		cfg.CheckpointInterval = repro.Minutes(*intervalMin)
	}
	// The completion engine requires the cycle envelope.
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	if err := repro.Validate(cfg); err != nil {
		return err
	}

	comp, err := repro.JobCompletionTime(cfg, *work, *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "job                 %.0f h of useful work on %d processors\n", *work, cfg.Processors)
	fmt.Fprintf(stdout, "expected completion %v h\n", comp.Mean)
	fmt.Fprintf(stdout, "stretch factor      %.2fx over a failure-free machine\n", comp.Stretch())
	fmt.Fprintf(stdout, "quantiles           p10 %.0f | p50 %.0f | p90 %.0f h\n",
		comp.Quantile(0.1), comp.Quantile(0.5), comp.Quantile(0.9))
	return nil
}
