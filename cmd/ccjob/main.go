// Command ccjob forecasts the wall-clock completion time of a job on the
// modeled machine: given the job's useful-work requirement, it reports the
// completion-time distribution (mean, quantiles, stretch factor) over
// independent replications of the cycle engine.
//
//	ccjob -work 5000 -procs 65536 -mttf-years 1
//	ccjob -work 5000 -config machine.json -reps 20
//
// Like ccsweep, a forecast can run as a resumable multi-process job
// through a shared run directory (see internal/blocks): the reduced
// result is bit-identical to the monolithic run regardless of worker
// count or crashes.
//
//	ccjob -work 5000 -reps 100 -manifest run/   # plan
//	ccjob -worker run/                          # any number of processes
//	ccjob -status run/ ; ccjob -resume run/     # inspect / repair
//	ccjob -reduce run/                          # merge and report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/blocks"
	"repro/internal/configio"
	"repro/internal/cyclesim"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccjob:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccjob", flag.ContinueOnError)
	var (
		configPath  = fs.String("config", "", "JSON configuration file")
		work        = fs.Float64("work", 1000, "useful work the job needs, hours")
		procs       = fs.Int("procs", 65536, "total compute processors")
		mttfYears   = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		intervalMin = fs.Float64("interval-min", 30, "checkpoint interval in minutes")
		reps        = fs.Int("reps", 10, "independent replications")
		seed        = fs.Uint64("seed", 1, "root random seed")

		manifestDir  = fs.String("manifest", "", "plan the forecast into this run directory and exit without simulating")
		blockSize    = fs.Int("block-size", 1, "replications per claimable block when planning with -manifest")
		workerDir    = fs.String("worker", "", "claim and execute blocks from this run directory until the forecast completes")
		workerName   = fs.String("worker-name", "", "worker identity recorded in leases and journals (default <host>-<pid>)")
		leaseTTL     = fs.Duration("lease-ttl", 10*time.Minute, "block lease time-to-live; a crashed worker's blocks are reclaimed after this long")
		resumeDir    = fs.String("resume", "", "repair this run directory after a crash and exit")
		statusDir    = fs.String("status", "", "print this run directory's progress and exit")
		reduceDir    = fs.String("reduce", "", "merge this run directory's block journals and print the forecast")
		jsonOut      = fs.Bool("json", false, "with -status: emit machine-readable JSON instead of the table")
		hbEvery      = fs.Duration("heartbeat-every", time.Second, "worker telemetry snapshot cadence for heartbeats/<worker>.json; negative disables")
		profileDir   = fs.String("profile-dir", "", "with -worker: where profile captures land (default <run>/profiles; 'off' disables)")
		profileEvery = fs.Duration("profile-every", 0, "with -worker: also capture profiles at this interval (0 = straggler auto-trigger only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *workerDir != "":
		log := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ccjob: worker: "+format+"\n", args...)
		}
		profiler, stopProfiler := blocks.NewWorkerProfiler(*workerDir, *workerName, *profileDir, *profileEvery, log)
		defer stopProfiler()
		sum, err := blocks.Work(context.Background(), *workerDir, completionRunner(), blocks.WorkerOptions{
			Name:     *workerName,
			LeaseTTL: *leaseTTL,
			// The registry rides along in heartbeat snapshots, giving the
			// fleet view block counters even for completion workers.
			Metrics:       obs.NewRegistry(),
			Heartbeat:     *hbEvery,
			Profiler:      profiler,
			HandleSignals: true,
			Log:           log,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "worker %s done: %d blocks completed (%d reclaimed from crashed peers, %d already done)\n",
			sum.Worker, sum.Completed, sum.Reclaimed, sum.SkippedComplete)
		return nil
	case *resumeDir != "":
		rep, m, err := blocks.Resume(*resumeDir, time.Now())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resume %s: %d/%d blocks complete, dropped %d torn journal(s), cleared %d expired lease(s)\n",
			m.Name, rep.Complete, len(m.Blocks), len(rep.TornJournals), len(rep.ExpiredLeases))
		return nil
	case *statusDir != "":
		m, st, err := blocks.Scan(*statusDir, time.Now())
		if err != nil {
			return err
		}
		if *jsonOut {
			return blocks.WriteStatusJSON(stdout, m, st)
		}
		return blocks.WriteStatus(stdout, m, st)
	case *reduceDir != "":
		return reduceCmd(*reduceDir, stdout)
	}

	cfg := repro.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		loaded, err := configio.Load(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		cfg = loaded
	} else {
		cfg.Processors = *procs
		cfg.MTTFPerNode = repro.Years(*mttfYears)
		cfg.CheckpointInterval = repro.Minutes(*intervalMin)
	}
	// The completion engine requires the cycle envelope.
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	if err := repro.Validate(cfg); err != nil {
		return err
	}

	if *manifestDir != "" {
		m, err := blocks.Plan([]blocks.Cell{{
			Label:        fmt.Sprintf("work=%g", *work),
			X:            *work,
			Seed:         *seed,
			Replications: *reps,
			Config:       cfg,
		}}, blocks.PlanOptions{
			Name:      "job",
			Kind:      blocks.KindCompletion,
			Work:      *work,
			BlockSize: *blockSize,
		})
		if err != nil {
			return err
		}
		if err := blocks.CreateRun(*manifestDir, m); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "planned job: %d reps = %d blocks (size %d)\n", *reps, len(m.Blocks), m.BlockSize)
		fmt.Fprintf(stdout, "manifest %s\n", m.Hash)
		fmt.Fprintf(stdout, "run 'ccjob -worker %s' (any number of processes), then 'ccjob -reduce %s'\n",
			*manifestDir, *manifestDir)
		return nil
	}

	comp, err := repro.JobCompletionTime(cfg, *work, *reps, *seed)
	if err != nil {
		return err
	}
	writeCompletion(stdout, cfg.Processors, comp)
	return nil
}

// writeCompletion renders the forecast — one function shared by the
// monolithic path and -reduce, so the two outputs cannot drift.
func writeCompletion(w io.Writer, processors int, comp repro.Completion) {
	fmt.Fprintf(w, "job                 %.0f h of useful work on %d processors\n", comp.Work, processors)
	fmt.Fprintf(w, "expected completion %v h\n", comp.Mean)
	fmt.Fprintf(w, "stretch factor      %.2fx over a failure-free machine\n", comp.Stretch())
	fmt.Fprintf(w, "quantiles           p10 %.0f | p50 %.0f | p90 %.0f h\n",
		comp.Quantile(0.1), comp.Quantile(0.5), comp.Quantile(0.9))
}

// completionRunner is the completion-kind blocks.RunFunc: one cycle-engine
// trajectory per pre-assigned seed, simulated until the job's work is
// done. Identical to the replication loop in cyclesim.JobCompletion, so a
// reduced run reproduces the monolithic forecast bit for bit.
func completionRunner() blocks.RunFunc {
	return func(ctx context.Context, m *blocks.Manifest, b blocks.Block) (blocks.BlockOutput, error) {
		if m.Kind != blocks.KindCompletion {
			return blocks.BlockOutput{}, fmt.Errorf("ccjob: cannot run %q blocks", m.Kind)
		}
		cell := m.Cells[b.CellIndex]
		maxWall := m.Work * 1000
		out := blocks.BlockOutput{}
		for i, seed := range b.Seeds {
			if err := ctx.Err(); err != nil {
				return blocks.BlockOutput{}, err
			}
			s, err := cyclesim.New(cell.Config, seed)
			if err != nil {
				return blocks.BlockOutput{}, err
			}
			wall, err := s.CompletionTime(m.Work, maxWall)
			if err != nil {
				return blocks.BlockOutput{}, err
			}
			fields := map[string]any{
				"rep":        b.RepStart + i,
				"seed":       seed,
				"wall_hours": wall,
			}
			if cell.Label != "" {
				fields["label"] = cell.Label
			}
			out.Records = append(out.Records, blocks.Record{Kind: "replication", Fields: fields})
		}
		return out, nil
	}
}

// reduceCmd merges the block journals back into the Completion summary a
// monolithic run computes: samples folded in replication order (the CI
// accumulates in the same order, so the interval is bit-identical), then
// sorted for the quantiles.
func reduceCmd(dir string, w io.Writer) error {
	m, cells, err := blocks.Reduce(dir)
	if err != nil {
		if errors.Is(err, blocks.ErrIncomplete) {
			return fmt.Errorf("%w; run '-resume %s' and '-worker %s' to finish, or '-status %s' to inspect", err, dir, dir, dir)
		}
		return err
	}
	if m.Kind != blocks.KindCompletion {
		return fmt.Errorf("ccjob: %s holds a %q sweep; reduce it with ccsweep", dir, m.Kind)
	}
	c := cells[0]
	var acc stats.Accumulator
	samples := c.FlatValues()
	for _, v := range samples {
		acc.Add(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	comp := repro.Completion{Work: m.Work, Samples: sorted, Mean: acc.CI(m.Confidence)}
	writeCompletion(w, c.Cell.Config.Processors, comp)
	return nil
}
