package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCfg(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsImprovement(t *testing.T) {
	a := writeCfg(t, "a.json", `{"processors": 16384, "mttfYears": 1}`)
	b := writeCfg(t, "b.json", `{"processors": 16384, "mttfYears": 4}`)
	var out bytes.Buffer
	err := run([]string{"-a", a, "-b", b, "-reps", "3", "-warmup", "50", "-measure", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "B is significantly better") {
		t.Fatalf("4x MTTF not detected as better:\n%s", out.String())
	}
}

func TestCompareIdenticalConfigs(t *testing.T) {
	a := writeCfg(t, "a.json", `{"processors": 16384}`)
	b := writeCfg(t, "b.json", `{"processors": 16384}`)
	var out bytes.Buffer
	err := run([]string{"-a", a, "-b", b, "-reps", "2", "-warmup", "20", "-measure", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no significant difference") {
		t.Fatalf("identical configs not recognised:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	a := writeCfg(t, "a.json", `{"processors": 16384}`)
	b := writeCfg(t, "b.json", `{"processors": 16384, "intervalMinutes": 240}`)
	var out bytes.Buffer
	err := run([]string{"-a", a, "-b", b, "-reps", "3", "-warmup", "50", "-measure", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "B is significantly worse") {
		t.Fatalf("4h interval not detected as worse:\n%s", out.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-a", "only-one.json"}, &out); err == nil {
		t.Error("missing -b accepted")
	}
	if err := run([]string{"-a", "/missing.json", "-b", "/missing.json"}, &out); err == nil {
		t.Error("missing files accepted")
	}
	bad := writeCfg(t, "bad.json", "{broken")
	good := writeCfg(t, "good.json", "{}")
	if err := run([]string{"-a", bad, "-b", good}, &out); err == nil {
		t.Error("broken config A accepted")
	}
	if err := run([]string{"-a", good, "-b", bad}, &out); err == nil {
		t.Error("broken config B accepted")
	}
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestCompareScenarioNames(t *testing.T) {
	// Sides can name catalog scenarios instead of files; migration on top
	// of base absorbs most failures, so B must come out better.
	var out bytes.Buffer
	err := run([]string{"-a", "base", "-b", "migration", "-reps", "3", "-warmup", "50", "-measure", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "B is significantly better") {
		t.Fatalf("migration not detected as better:\n%s", out.String())
	}
}

func TestCompareListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"base", "migration", "adaptive-interval"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareBadReference(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-a", "base", "-b", "no-such-thing"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no-such-thing") {
		t.Fatalf("want resolution error, got %v", err)
	}
}
