// Command cccompare estimates two systems with common random numbers and
// reports the paired difference of their useful-work metrics — the
// statistically sound way to answer "is B better than A?" for a single
// design or parameter change. Each side is either a JSON configuration
// file or a named scenario from the catalog (see -list-scenarios).
//
//	cccompare -a base.json -b candidate.json
//	cccompare -a base -b migration -reps 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/configio"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cccompare:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cccompare", flag.ContinueOnError)
	var (
		aPath         = fs.String("a", "", "baseline: JSON configuration file or scenario name (required)")
		bPath         = fs.String("b", "", "candidate: JSON configuration file or scenario name (required)")
		scenarioDir   = fs.String("scenario-dir", "", "directory of scenario files extending/overriding the built-in catalog")
		listScenarios = fs.Bool("list-scenarios", false, "list the scenario catalog and exit")
		reps          = fs.Int("reps", 5, "paired replications")
		warmup        = fs.Float64("warmup", 300, "transient hours to discard")
		measure       = fs.Float64("measure", 1500, "measured hours per replication")
		seed          = fs.Uint64("seed", 1, "root random seed (shared by both systems)")
		syncReport    = fs.Bool("sync-report", false, "audit the common-random-numbers pairing: per-purpose draw alignment and residual output correlation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := scenario.Resolve(*scenarioDir)
	if err != nil {
		return err
	}
	if *listScenarios {
		return reg.WriteList(stdout)
	}
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("both -a and -b are required")
	}
	a, err := loadConfig(reg, *aPath)
	if err != nil {
		return fmt.Errorf("config A: %w", err)
	}
	b, err := loadConfig(reg, *bPath)
	if err != nil {
		return fmt.Errorf("config B: %w", err)
	}
	comp, err := repro.CompareConfigs(a, b, repro.Options{
		Replications: *reps, Warmup: *warmup, Measure: *measure, Seed: *seed,
		SyncReport: *syncReport,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "A (%s)  useful fraction %v\n", *aPath, comp.A.UsefulWorkFraction)
	fmt.Fprintf(stdout, "B (%s)  useful fraction %v\n", *bPath, comp.B.UsefulWorkFraction)
	fmt.Fprintf(stdout, "paired difference (B−A)  fraction %v | total %v\n",
		comp.FractionDiff, comp.TotalDiff)
	switch {
	case !comp.Significant():
		fmt.Fprintln(stdout, "verdict: no significant difference at 95% confidence")
	case comp.FractionDiff.Mean > 0:
		fmt.Fprintln(stdout, "verdict: B is significantly better")
	default:
		fmt.Fprintln(stdout, "verdict: B is significantly worse")
	}
	if s := comp.Sync; s != nil {
		fmt.Fprintf(stdout, "CRN sync audit: %d pairs | in sync %.0f%% | output correlation %.3f | CI shrink ×%.2f\n",
			s.Pairs, 100*s.InSyncFraction, s.OutputCorrelation, s.CIShrinkFactor)
		for _, c := range s.Components {
			fmt.Fprintf(stdout, "  %-18s mean draws A %.1f | B %.1f | matched pairs %d/%d\n",
				c.Name, c.MeanDrawsA, c.MeanDrawsB, c.MatchedPairs, s.Pairs)
		}
	}
	return nil
}

// loadConfig resolves one side of the comparison: an existing file is
// loaded as a JSON configuration; anything else is looked up in the
// scenario catalog. A name that is neither reports both failures.
func loadConfig(reg *scenario.Registry, ref string) (repro.Config, error) {
	f, err := os.Open(ref)
	if err == nil {
		defer f.Close()
		return configio.Load(f)
	}
	s, serr := reg.Get(ref)
	if serr != nil {
		return repro.Config{}, fmt.Errorf("%q is neither a readable file (%v) nor a scenario (%v)", ref, err, serr)
	}
	return s.ClusterConfig()
}
