// Command ccfigures regenerates the paper's evaluation figures (4a–4h and
// 5–8) by running the corresponding experiments and printing text tables
// (or CSV) of each series — the same rows/series the paper plots.
//
//	ccfigures                       # every figure, text tables, quick scale
//	ccfigures -only fig4a,fig8      # a subset
//	ccfigures -paper                # paper-scale windows (slow)
//	ccfigures -csv -out results/    # CSV files, one per figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/asciichart"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccfigures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccfigures", flag.ContinueOnError)
	var (
		only          = fs.String("only", "", "comma-separated figure IDs (default: all)")
		scenarios     = fs.String("scenario", "", "comma-separated scenario names: run a processor sweep per scenario instead of the paper figures")
		scenarioDir   = fs.String("scenario-dir", "", "directory of scenario files extending/overriding the built-in catalog")
		listScenarios = fs.Bool("list-scenarios", false, "list the scenario catalog and exit")
		paper         = fs.Bool("paper", false, "paper-scale windows: 5 reps, 1000h warmup, 4000h measure (slow)")
		reps          = fs.Int("reps", 0, "override replication count")
		warmup        = fs.Float64("warmup", 0, "override transient hours to discard")
		measure       = fs.Float64("measure", 0, "override measured hours per replication")
		extras        = fs.Bool("extras", false, "include beyond-the-paper experiments (ablations, time breakdown)")
		chart         = fs.Bool("chart", false, "render ASCII charts alongside the tables")
		csv           = fs.Bool("csv", false, "emit CSV instead of text tables")
		out           = fs.String("out", "", "directory for per-figure output files (default: stdout)")
		seed          = fs.Uint64("seed", 1, "root random seed")
		workers       = fs.Int("workers", runtime.NumCPU(), "concurrent figure cells (1 = sequential; results are identical for any value)")
		metrics       = fs.Bool("metrics", false, "print the collected telemetry table to stderr when done")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	catalog, err := scenario.Resolve(*scenarioDir)
	if err != nil {
		return err
	}
	if *listScenarios {
		return catalog.WriteList(os.Stdout)
	}

	opts := repro.Options{Replications: 3, Warmup: 300, Measure: 1500, Seed: *seed}
	if *paper {
		opts = repro.Options{Replications: 5, Warmup: 1000, Measure: 4000, Seed: *seed}
	}
	opts.Workers = *workers
	if *reps > 0 {
		opts.Replications = *reps
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	var reg *repro.MetricsRegistry
	if *metrics {
		reg = repro.NewMetricsRegistry()
		opts.Metrics = reg
	}

	defs := experiments.All()
	if *extras {
		defs = append(defs, experiments.Extras()...)
	}
	if *scenarios != "" {
		defs = nil
		for _, name := range strings.Split(*scenarios, ",") {
			s, err := catalog.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			defs = append(defs, experiments.ScenarioDef(s))
		}
	}
	if *only != "" {
		var filtered []experiments.Def
		for _, id := range strings.Split(*only, ",") {
			d, err := experiments.LookupAny(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			filtered = append(filtered, d)
		}
		defs = filtered
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	for _, def := range defs {
		start := time.Now()
		fig, err := def.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", def.ID, err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", def.ID, time.Since(start).Round(time.Millisecond))
		if err := emit(fig, def, *csv, *chart, *out); err != nil {
			return err
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "telemetry")
		reg.WriteTable(os.Stderr)
	}
	return nil
}

func emit(fig *repro.Figure, def experiments.Def, csv, chart bool, outDir string) error {
	w := os.Stdout
	if outDir != "" {
		ext := ".txt"
		if csv {
			ext = ".csv"
		}
		f, err := os.Create(filepath.Join(outDir, def.ID+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if csv {
		return experiments.WriteCSV(w, fig)
	}
	if err := experiments.WriteTable(w, fig); err != nil {
		return err
	}
	if chart {
		logX := strings.Contains(fig.XLabel, "processors") || strings.Contains(fig.XLabel, "nodes")
		if _, err := fmt.Fprintln(w, asciichart.Render(fig, asciichart.Options{LogX: logX})); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  shape claim: %s\n\n", def.ShapeClaim)
	return err
}
