package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFiguresSubsetToDirectory(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-only", "fig4g", "-reps", "1", "-warmup", "20", "-measure", "120",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4g.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"fig4g", "MTTF=1yr", "shape claim"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-only", "fig4g", "-reps", "1", "-warmup", "20", "-measure", "120",
		"-out", dir, "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4g.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "figure,series,x,y") {
		t.Fatalf("CSV header missing:\n%s", data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 7 { // header + 2 series × 3 nodes
		t.Fatalf("CSV has %d lines, want 7", len(lines))
	}
}

func TestFiguresUnknownID(t *testing.T) {
	err := run([]string{"-only", "fig42"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown figure accepted: %v", err)
	}
}

func TestFiguresBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestFiguresBadOutDir(t *testing.T) {
	err := run([]string{
		"-only", "fig4g", "-reps", "1", "-warmup", "10", "-measure", "60",
		"-out", string([]byte{0}),
	})
	if err == nil {
		t.Fatal("invalid output directory accepted")
	}
}

func TestFiguresChart(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-only", "fig4g", "-reps", "1", "-warmup", "20", "-measure", "120",
		"-out", dir, "-chart",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4g.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "log scale") || !strings.Contains(out, "MTTF=1yr") {
		t.Fatalf("chart output missing:\n%s", out)
	}
}

func TestFiguresScenarioSweep(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-scenario", "weibull-field", "-reps", "1", "-warmup", "10", "-measure", "60",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-weibull-field.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"scenario-weibull-field", "Weibull", "useful work fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}
