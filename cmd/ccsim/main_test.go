package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/provenance"
)

func TestRunDefaultsQuick(t *testing.T) {
	err := run([]string{"-reps", "1", "-warmup", "20", "-measure", "100", "-procs", "8192"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseAndModes(t *testing.T) {
	for _, mode := range []string{"fixed", "none", "max-of-n"} {
		err := run([]string{
			"-reps", "1", "-warmup", "10", "-measure", "50",
			"-procs", "8192", "-coordination", mode, "-v",
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunCorrelatedFlags(t *testing.T) {
	err := run([]string{
		"-reps", "1", "-warmup", "10", "-measure", "50", "-procs", "8192",
		"-pe", "0.1", "-r", "400", "-alpha", "0.001", "-timeout-sec", "90",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWithProgress(t *testing.T) {
	err := run([]string{
		"-reps", "2", "-warmup", "10", "-measure", "50", "-procs", "8192",
		"-workers", "2", "-progress",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifySpans(t *testing.T) {
	err := run([]string{
		"-reps", "2", "-warmup", "20", "-measure", "100", "-procs", "8192",
		"-verify-spans",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	err := run([]string{"-coordination", "psychic"})
	if err == nil || !strings.Contains(err.Error(), "coordination") {
		t.Fatalf("bad mode accepted: %v", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-procs", "-5"}); err == nil {
		t.Fatal("negative processors accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	content := `{"processors": 16384, "mttfYears": 2, "intervalMinutes": 15}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// The file sets the base; explicit flags still override it.
	err := run([]string{"-config", path, "-reps", "1", "-warmup", "10", "-measure", "60", "-mttf-years", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMissingConfigFile(t *testing.T) {
	if err := run([]string{"-config", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing config file accepted")
	}
}

func TestRunWithBrokenConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err == nil {
		t.Fatal("broken config accepted")
	}
}

func TestRunJournalMetricsAndDebugAddr(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")
	err := run([]string{
		"-reps", "2", "-warmup", "20", "-measure", "100", "-procs", "8192",
		"-journal", journal, "-metrics", "-debug-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 4 { // 1 provenance + 2 replications + 1 estimate
		t.Fatalf("journal has %d lines, want 4:\n%s", len(lines), data)
	}
	var rec map[string]any
	for i, l := range lines {
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if i == 0 {
			if rec["kind"] != "provenance" || rec["config_hash"] == nil || rec["go_version"] == nil {
				t.Fatalf("leading record is not a provenance stamp: %s", l)
			}
		}
	}
	if rec["kind"] != "estimate" {
		t.Fatalf("last record kind = %v", rec["kind"])
	}
}

// TestRunProfileDir: -profile-dir commits a parseable capture (manifest +
// pprof files) during the run.
func TestRunProfileDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-reps", "1", "-warmup", "10", "-measure", "50", "-procs", "8192",
		"-profile-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := obs.ReadProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Reason != "start" || infos[0].Prefix != "ccsim" {
		t.Fatalf("profiles = %+v", infos)
	}
	var hasHeap bool
	for _, f := range infos[0].Files {
		if strings.HasSuffix(f, "-heap.pprof") {
			hasHeap = true
		}
	}
	if !hasHeap {
		t.Fatalf("capture files = %v", infos[0].Files)
	}
	// The manifest meta is a provenance stamp carrying the config hash.
	var stamp provenance.Stamp
	if err := json.Unmarshal(infos[0].Meta, &stamp); err != nil || stamp.ConfigHash == "" {
		t.Fatalf("capture meta = %s (err %v)", infos[0].Meta, err)
	}
}

func TestRunJournalUnwritablePath(t *testing.T) {
	if err := run([]string{
		"-reps", "1", "-warmup", "10", "-measure", "50", "-procs", "8192",
		"-journal", filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl"),
	}); err == nil {
		t.Fatal("expected error for unwritable journal path")
	}
}

func TestRunScenario(t *testing.T) {
	err := run([]string{"-scenario", "migration", "-reps", "1", "-warmup", "10", "-measure", "50"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioWithFlagOverride(t *testing.T) {
	// Explicit flags override the scenario, exactly as they do -config.
	err := run([]string{"-scenario", "base", "-procs", "8192", "-reps", "1", "-warmup", "10", "-measure", "50"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunListScenarios(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioAndConfigExclusive(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(cfgPath, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-scenario", "base", "-config", cfgPath})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "nope"})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-scenario error, got %v", err)
	}
}

func TestRunScenarioDirOverride(t *testing.T) {
	dir := t.TempDir()
	body := `{"name": "tiny", "title": "Tiny machine", "description": "d", "citation": "local",
		"tags": ["local"], "config": {"processors": 8192}}`
	if err := os.WriteFile(filepath.Join(dir, "tiny.json"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-scenario", "tiny", "-scenario-dir", dir, "-reps", "1", "-warmup", "10", "-measure", "50"})
	if err != nil {
		t.Fatal(err)
	}
}
