// Command ccsim runs the coordinated-checkpointing model for a single
// configuration and prints the paper's metrics with confidence intervals.
//
// Example (the paper's base model at 128K processors):
//
//	ccsim -procs 131072 -mttf-years 1 -mttr-min 10 -interval-min 30
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/configio"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/scenario"
	"repro/internal/vr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccsim", flag.ContinueOnError)
	var (
		configPath    = fs.String("config", "", "JSON configuration file (flags given explicitly override it)")
		scenarioName  = fs.String("scenario", "", "named scenario from the catalog (see -list-scenarios; flags given explicitly override it)")
		scenarioDir   = fs.String("scenario-dir", "", "directory of scenario files extending/overriding the built-in catalog")
		listScenarios = fs.Bool("list-scenarios", false, "list the scenario catalog and exit")
		procs         = fs.Int("procs", 65536, "total compute processors")
		procsPerNode  = fs.Int("procs-per-node", 8, "processors per node")
		mttfYears     = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		mttrMin       = fs.Float64("mttr-min", 10, "system MTTR in minutes")
		intervalMin   = fs.Float64("interval-min", 30, "checkpoint interval in minutes")
		mttqSec       = fs.Float64("mttq-sec", 10, "per-node mean time to quiesce in seconds")
		timeoutSec    = fs.Float64("timeout-sec", 0, "coordination timeout in seconds (0 = none)")
		coordination  = fs.String("coordination", "fixed", "coordination mode: fixed, none, max-of-n")
		pe            = fs.Float64("pe", 0, "probability of correlated failure (error propagation)")
		rFactor       = fs.Float64("r", 0, "correlated failure rate factor")
		alpha         = fs.Float64("alpha", 0, "generic correlated failure coefficient")
		reps          = fs.Int("reps", 5, "independent replications")
		warmup        = fs.Float64("warmup", 1000, "transient hours to discard")
		measure       = fs.Float64("measure", 4000, "measured hours per replication")
		seed          = fs.Uint64("seed", 1, "root random seed")
		workers       = fs.Int("workers", runtime.NumCPU(), "concurrent replications (1 = sequential; results are identical for any value)")
		progress      = fs.Bool("progress", false, "stream replication progress to stderr")
		verbose       = fs.Bool("v", false, "print per-replication metrics")
		journalPath   = fs.String("journal", "", "write a JSONL run journal (one record per replication plus the estimate) to this file")
		metrics       = fs.Bool("metrics", false, "print the collected telemetry table after the results")
		verifySpans   = fs.Bool("verify-spans", false, "cross-check the reward-based estimate against phase-span accounting and print the verdict")
		vrMode        = fs.String("vr", "none", "variance reduction: none or antithetic (pairs replications on reflected random streams; odd -reps rounds up)")
		rareLevel     = fs.Int("rare-level", 0, "estimate P[severe-failure level ≥ this within -rare-horizon] by importance splitting instead of the steady-state metrics (0 = off)")
		rareEffort    = fs.Int("rare-effort", 1000, "splitting trials per stage (with -rare-level)")
		rareHorizon   = fs.Float64("rare-horizon", 48, "trajectory time budget in hours (with -rare-level)")
		rareBrute     = fs.Bool("rare-brute", false, "also run the brute-force estimate of the same probability for cross-checking (with -rare-level)")
		debugAddr     = fs.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metricz on this address during the run (e.g. localhost:6060)")
		profileDir    = fs.String("profile-dir", "", "capture CPU/heap/goroutine profiles into this directory during the run")
		profileEvery  = fs.Duration("profile-every", 0, "re-capture profiles at this interval (0 = one capture at start; needs -profile-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	catalog, err := scenario.Resolve(*scenarioDir)
	if err != nil {
		return err
	}
	if *listScenarios {
		return catalog.WriteList(os.Stdout)
	}
	if *scenarioName != "" && *configPath != "" {
		return fmt.Errorf("-scenario and -config are mutually exclusive")
	}

	cfg := repro.DefaultConfig()
	switch {
	case *scenarioName != "":
		s, err := catalog.Get(*scenarioName)
		if err != nil {
			return err
		}
		if cfg, err = s.ClusterConfig(); err != nil {
			return err
		}
	case *configPath != "":
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		loaded, err := configio.Load(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		cfg = loaded
	}

	// Apply only the flags the user set explicitly, so a -config file or
	// -scenario is not clobbered by flag defaults.
	var coordErr error
	apply := map[string]func(){
		"procs":          func() { cfg.Processors = *procs },
		"procs-per-node": func() { cfg.ProcsPerNode = *procsPerNode },
		"mttf-years":     func() { cfg.MTTFPerNode = repro.Years(*mttfYears) },
		"mttr-min":       func() { cfg.MTTR = repro.Minutes(*mttrMin) },
		"interval-min":   func() { cfg.CheckpointInterval = repro.Minutes(*intervalMin) },
		"mttq-sec":       func() { cfg.MTTQ = repro.Seconds(*mttqSec) },
		"timeout-sec":    func() { cfg.Timeout = repro.Seconds(*timeoutSec) },
		"pe":             func() { cfg.ProbCorrelated = *pe },
		"r":              func() { cfg.CorrelatedFactor = *rFactor },
		"alpha":          func() { cfg.GenericCorrelatedCoefficient = *alpha },
		"coordination": func() {
			switch *coordination {
			case "fixed":
				cfg.Coordination = repro.CoordFixed
			case "none":
				cfg.Coordination = repro.CoordNone
			case "max-of-n":
				cfg.Coordination = repro.CoordMaxOfN
			default:
				coordErr = fmt.Errorf("unknown coordination mode %q", *coordination)
			}
		},
	}
	if *configPath == "" && *scenarioName == "" {
		// No file or scenario: every config flag applies, as before.
		for _, f := range apply {
			f()
		}
	} else {
		fs.Visit(func(f *flag.Flag) {
			if a, ok := apply[f.Name]; ok {
				a()
			}
		})
	}
	if coordErr != nil {
		return coordErr
	}
	if err := repro.Validate(cfg); err != nil {
		return err
	}
	mode, err := vr.ParseMode(*vrMode)
	if err != nil {
		return err
	}
	if *rareLevel > 0 {
		return runRare(cfg, *rareLevel, *rareEffort, *rareHorizon, *seed, *rareBrute)
	}

	opts := repro.Options{
		Replications: *reps, Warmup: *warmup, Measure: *measure, Seed: *seed,
		Workers: *workers, VerifySpans: *verifySpans,
		VarianceReduction: mode,
	}
	if *progress {
		// The hook is serialized by the worker pool, so plain writes are
		// safe; \r keeps it to one live status line on a terminal.
		opts.Progress = func(p repro.Progress) {
			fmt.Fprintf(os.Stderr, "\rccsim: replication %d/%d  events %d  %v ",
				p.Done, p.Total, p.Events, p.Elapsed.Round(10*time.Millisecond))
			if p.Final {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var reg *repro.MetricsRegistry
	if *metrics || *debugAddr != "" {
		reg = repro.NewMetricsRegistry()
		opts.Metrics = reg
	}
	if *debugAddr != "" {
		srv, err := repro.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ccsim: debug endpoint on http://%s (/debug/pprof, /debug/vars, /metricz)\n", srv.Addr())
	}
	var journalFile *os.File
	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			return err
		}
		journalFile = f
		opts.Journal = repro.NewRunJournal(f)
		// Lead the journal with a provenance record: which binary, on
		// which machine, simulated which configuration (and, when variance
		// reduction is on, under which VR mode — two runs differing only in
		// -vr must not hash alike).
		stamp := repro.CollectProvenance()
		if hash, err := configHash(cfg, mode); err == nil {
			stamp = stamp.WithConfig(hash)
		}
		opts.Provenance = &stamp
	}
	var profiler *obs.ProfileCapture
	if *profileDir != "" {
		stamp := repro.CollectProvenance()
		if hash, err := configHash(cfg, mode); err == nil {
			stamp = stamp.WithConfig(hash)
		}
		profiler = obs.NewProfileCapture(obs.ProfileCaptureOptions{
			Dir:    *profileDir,
			Prefix: "ccsim",
			Meta:   stamp,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ccsim: "+format+"\n", args...)
			},
		})
		profiler.Trigger("start")
		if *profileEvery > 0 {
			tick := time.NewTicker(*profileEvery)
			defer tick.Stop()
			done := make(chan struct{})
			defer close(done)
			go func() {
				for {
					select {
					case <-tick.C:
						profiler.Trigger("periodic")
					case <-done:
						return
					}
				}
			}()
		}
		defer profiler.Wait()
	}
	res, err := repro.Simulate(cfg, opts)
	if journalFile != nil {
		if jerr := opts.Journal.Err(); jerr != nil && err == nil {
			err = fmt.Errorf("journal: %w", jerr)
		}
		if cerr := journalFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("processors            %d (%d nodes, %d I/O nodes)\n", cfg.Processors, cfg.Nodes(), cfg.IONodes())
	fmt.Printf("useful work fraction  %v\n", res.UsefulWorkFraction)
	fmt.Printf("total useful work     %v\n", res.TotalUsefulWork)
	if r := res.VR; r != nil {
		fmt.Printf("variance reduction    %s: %d pairs, factor %.2f, leg correlation %.3f\n",
			r.Mode, r.Pairs, r.Factor, r.LegCorrelation)
	}
	printBreakdown(res)
	if sc := res.SpanCheck; sc != nil {
		verdict := "OK"
		if !sc.Within {
			verdict = "MISMATCH"
		}
		fmt.Printf("span check            %s  reward %.6f vs spans %.6f (max |Δ| %.3g, tolerance ±%.3g)\n",
			verdict, sc.RewardMean, sc.SpanMean, sc.MaxDelta, sc.Tolerance)
	}
	if *verbose {
		for i, m := range res.PerReplication {
			fmt.Printf("  rep %d: %v\n", i, m)
		}
	}
	if eff, err := repro.AnalyticEfficiency(cfg, cfg.CheckpointInterval); err == nil {
		fmt.Printf("analytic (Daly-style) efficiency, no coordination/correlation: %.4f\n", eff)
	}
	if *metrics {
		fmt.Println()
		fmt.Println("telemetry")
		reg.WriteTable(os.Stdout)
	}
	return nil
}

// configHash stamps the provenance record with what actually ran: the
// plain configuration when VR is off (bit-identical to historical stamps),
// or the configuration plus the VR mode when it is on.
func configHash(cfg repro.Config, mode vr.Mode) (string, error) {
	if mode == vr.ModeNone {
		return provenance.HashJSON(cfg)
	}
	return provenance.HashJSON(struct {
		Config repro.Config `json:"config"`
		VR     string       `json:"vr"`
	}{cfg, mode.String()})
}

// runRare estimates P[the severe-failure level reaches `level` within
// `horizon` hours of a cold start] by fixed-effort importance splitting,
// optionally cross-checked against the brute-force estimate of the same
// probability under the same seeding discipline.
func runRare(cfg repro.Config, level, effort int, horizon float64, seed uint64, brute bool) error {
	if err := model.ValidateRareLevel(cfg, level); err != nil {
		return err
	}
	tr, err := model.NewRareTrajectory(cfg)
	if err != nil {
		return err
	}
	opts := vr.SplitOptions{Level: level, Effort: effort, Horizon: horizon, Seed: seed}
	res, err := vr.SplitEstimate(tr, opts)
	if err != nil {
		return err
	}
	fmt.Printf("rare event            P[severe-failure level ≥ %d within %g h]\n", level, horizon)
	fmt.Printf("splitting estimate    P = %.6g  (%d trials, %d steps)\n", res.Probability, res.Trials, res.Steps)
	for k, f := range res.StageFractions {
		fmt.Printf("  stage %d             P[level %d | level %d] = %.4g  (%d entrances)\n",
			k, k+1, k, f, res.Entrances[k])
	}
	if brute {
		bres, err := vr.BruteForce(tr, opts)
		if err != nil {
			return err
		}
		fmt.Printf("brute-force           P = %.6g  (%d trials, %d steps)\n", bres.Probability, bres.Trials, bres.Steps)
	}
	return nil
}

// printBreakdown averages the per-state time shares over the replications
// and renders them as one line per state.
func printBreakdown(res repro.Result) {
	if len(res.PerReplication) == 0 {
		return
	}
	var b repro.TimeBreakdown
	var repeated float64
	for _, m := range res.PerReplication {
		b.Execution += m.Breakdown.Execution
		b.Quiesce += m.Breakdown.Quiesce
		b.Dump += m.Breakdown.Dump
		b.FSWait += m.Breakdown.FSWait
		b.Recovery += m.Breakdown.Recovery
		b.Reboot += m.Breakdown.Reboot
		repeated += m.RepeatedWorkFraction
	}
	n := float64(len(res.PerReplication))
	fmt.Printf("time breakdown        execution %.3f (repeated %.3f) | quiesce %.4f | dump %.4f | fs-wait %.4f | recovery %.3f | reboot %.3f\n",
		b.Execution/n, repeated/n, b.Quiesce/n, b.Dump/n, b.FSWait/n, b.Recovery/n, b.Reboot/n)
}
