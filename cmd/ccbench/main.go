// Command ccbench is the performance-regression sentinel: it converts
// `go test -bench` output into machine-readable JSON, archives stamped
// reports into a benchmark history, renders per-benchmark trends, and
// gates changes by comparing two runs with a statistically honest noise
// band.
//
// Subcommands:
//
//	ccbench [convert] [-o file.json] [-note s]   < bench-output
//	ccbench record -history BENCH_HISTORY.jsonl [-o file.json] [-note s] < bench-output
//	ccbench trend  -history BENCH_HISTORY.jsonl [-metric ns/op] [-w 40]
//	ccbench compare [flags] old.json new.json
//	ccbench compare [flags] -history BENCH_HISTORY.jsonl
//
// The default (convert) mode reads a benchmark transcript from stdin and
// emits one JSON document with the platform headers and every benchmark's
// metrics — the standard ns/op, B/op and allocs/op plus any custom
// b.ReportMetric units (events/s, opt-procs@1yr, ...):
//
//	go test -run NONE -bench 'ScheduleFire|RecycleVsRebuild' -benchmem \
//	    ./internal/des ./internal/model | ccbench -o BENCH_5.json
//
// `record` additionally stamps the report with the run's provenance
// (commit, go version, CPU, host) and a timestamp, and appends it as one
// line to a JSONL history file — the substrate `trend` and `compare
// -history` read. A FAIL line in the transcript makes ccbench exit
// non-zero, so a pipeline cannot silently archive a broken run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

// run dispatches the subcommand. Every subcommand owns a flag.FlagSet with
// real usage text; the bare form is an alias for `convert` so existing
// pipelines (`... | ccbench -o out.json`) keep working.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	cmd, rest := "convert", args
	if len(args) > 0 {
		switch args[0] {
		case "convert", "record", "trend", "compare":
			cmd, rest = args[0], args[1:]
		case "help", "-help", "--help", "-h":
			printUsage(stdout)
			return nil
		}
	}
	switch cmd {
	case "convert":
		return cmdConvert(rest, stdin, stdout)
	case "record":
		return cmdRecord(rest, stdin, stdout)
	case "trend":
		return cmdTrend(rest, stdout)
	case "compare":
		return cmdCompare(rest, stdout)
	}
	panic("unreachable")
}

func printUsage(w io.Writer) {
	fmt.Fprint(w, `ccbench — benchmark sentinel: convert, archive, trend and gate go benchmarks

usage:
  ccbench [convert] [-o file.json] [-note s]        < bench-output
  ccbench record -history FILE [-o file.json]       < bench-output
  ccbench trend  -history FILE [-metric unit] [-w n]
  ccbench compare [-threshold f] [-noise f] [-metric unit] [-warn-only] old.json new.json
  ccbench compare ... -history FILE                 (compares the last two entries)

Run any subcommand with -h for its flags.
`)
}

// newFlagSet builds a subcommand flag set that reports errors instead of
// exiting, with usage text routed to w.
func newFlagSet(name, usage string, w io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(w)
	fs.Usage = func() {
		fmt.Fprintf(w, "usage: %s\n", usage)
		fs.PrintDefaults()
	}
	return fs
}

// parseFlags runs fs over args, mapping -h/-help to a clean exit (the
// usage text has already been printed by the FlagSet).
func parseFlags(fs *flag.FlagSet, args []string) (help bool, err error) {
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// cmdConvert is the historic mode: transcript on stdin, JSON out.
func cmdConvert(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := newFlagSet("convert", "ccbench [convert] [-o file.json] [-note s] < bench-output", stdout)
	out := fs.String("o", "", "write the JSON report to this `file` instead of stdout")
	note := fs.String("note", "", "free-text label stored in the report (e.g. a PR number)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	rep, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	rep.Note = *note
	return writeReport(rep, *out, stdout)
}
