// Command ccbench converts `go test -bench` output into machine-readable
// JSON, so benchmark runs can be archived as CI artifacts and diffed across
// commits. It reads the benchmark transcript from stdin and emits one JSON
// document with the platform headers and every benchmark's metrics — the
// standard ns/op, B/op and allocs/op plus any custom b.ReportMetric units
// (events/s, opt-procs@1yr, ...):
//
//	go test -run NONE -bench 'ScheduleFire|RecycleVsRebuild' -benchmem \
//	    ./internal/des ./internal/model | ccbench -o BENCH_5.json
//
// A FAIL line in the transcript makes ccbench exit non-zero, so a pipeline
// cannot silently archive a broken run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	out := ""
	switch {
	case len(args) == 0:
	case len(args) == 2 && args[0] == "-o":
		out = args[1]
	default:
		return fmt.Errorf("usage: ccbench [-o file.json] < bench-output")
	}
	rep, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// Report is the JSON document ccbench emits.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line. With -count=N the same name appears N times.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBench scans a `go test -bench` transcript: platform headers
// (goos/goarch/pkg/cpu), benchmark result lines, and the trailing ok/FAIL
// package lines. Unrecognized lines are skipped, FAIL is an error.
func parseBench(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL"):
			return rep, fmt.Errorf("benchmark transcript contains a failure: %s", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return rep, err
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkScheduleFire-8  24941218  48.0 ns/op  0 B/op  0 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	b := Benchmark{Metrics: make(map[string]float64)}
	b.Name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q in %q: %w", f[i], line, err)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}
