package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// cmdCompare judges new benchmark numbers against old ones. Two modes:
// two positional report files (convert/record -o artifacts), or -history
// FILE which compares the last two recorded entries. A change only counts
// as a regression when it clears BOTH the relative threshold and the
// noise band derived from the old run's own -count samples (median ±
// noise·MAD) — a single-sample run has no measurable noise, which is why
// bench-smoke runs -count=3.
func cmdCompare(args []string, stdout io.Writer) error {
	fs := newFlagSet("compare",
		"ccbench compare [-threshold f] [-noise f] [-metric unit] [-warn-only] old.json new.json | -history FILE", stdout)
	history := fs.String("history", "", "compare the last two entries of this JSONL history `file`")
	threshold := fs.Float64("threshold", 0.10, "minimum relative degradation to flag (0.10 = 10%)")
	noise := fs.Float64("noise", 3, "noise band width in MADs of the old run's samples")
	metric := fs.String("metric", "", "compare only this metric `unit` (default: every directional unit)")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit zero (CI soft gate)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	var oldRep, newRep Report
	switch {
	case *history != "" && fs.NArg() == 0:
		reports, err := readHistory(*history)
		if err != nil {
			return err
		}
		if len(reports) < 2 {
			fmt.Fprintf(stdout, "history %s has %d entries — nothing to compare yet\n", *history, len(reports))
			return nil
		}
		oldRep, newRep = reports[len(reports)-2], reports[len(reports)-1]
	case *history == "" && fs.NArg() == 2:
		var err error
		if oldRep, err = loadReport(fs.Arg(0)); err != nil {
			return err
		}
		if newRep, err = loadReport(fs.Arg(1)); err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("compare needs either two report files or -history FILE")
	}
	deltas := compareReports(oldRep, newRep, *metric, *threshold, *noise)
	printCompare(stdout, oldRep, newRep, deltas)
	var regressed []string
	for _, d := range deltas {
		if d.Regression {
			regressed = append(regressed, fmt.Sprintf("%s %s %+.1f%%", d.Key, d.Unit, d.Percent))
		}
	}
	if len(regressed) == 0 {
		return nil
	}
	if *warnOnly {
		fmt.Fprintf(stdout, "WARNING: %d regression(s) (warn-only): %s\n",
			len(regressed), strings.Join(regressed, "; "))
		return nil
	}
	return fmt.Errorf("%d benchmark regression(s): %s", len(regressed), strings.Join(regressed, "; "))
}

// Delta is one (benchmark, metric) judgement.
type Delta struct {
	Key, Unit          string
	OldMedian          float64
	NewMedian          float64
	Percent            float64 // signed relative change, + = value grew
	OldMAD             float64
	Samples            int // old-run sample count behind the noise band
	Regression         bool
	Improvement        bool
	HigherBetter       bool
	ExceedsNoise, Gone bool
}

// higherBetter classifies a metric unit by direction: rates (events/s,
// MB/s, anything per second) grow when things improve; per-op costs
// shrink. Unknown units default to lower-better, matching ns/op intuition.
func higherBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

// compareReports reduces each report's -count duplicates to medians and
// judges every (benchmark, metric) pair present in both. A pair is a
// regression when the degradation exceeds both threshold·oldMedian and
// noise·MAD(old samples); the symmetric rule marks improvements.
func compareReports(oldRep, newRep Report, onlyUnit string, threshold, noiseMult float64) []Delta {
	type key struct{ k, unit string }
	samplesOf := func(rep Report) map[key][]float64 {
		m := map[key][]float64{}
		for _, b := range rep.Benchmarks {
			for unit, v := range b.Metrics {
				if onlyUnit != "" && unit != onlyUnit {
					continue
				}
				kk := key{b.Key(), unit}
				m[kk] = append(m[kk], v)
			}
		}
		return m
	}
	olds, news := samplesOf(oldRep), samplesOf(newRep)
	var keys []key
	for k := range olds {
		if _, ok := news[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].k != keys[j].k {
			return keys[i].k < keys[j].k
		}
		return keys[i].unit < keys[j].unit
	})
	var out []Delta
	for _, k := range keys {
		oldS, newS := olds[k], news[k]
		d := Delta{
			Key: k.k, Unit: k.unit,
			OldMedian:    median(oldS),
			NewMedian:    median(newS),
			OldMAD:       mad(oldS),
			Samples:      len(oldS),
			HigherBetter: higherBetter(k.unit),
		}
		if d.OldMedian != 0 {
			d.Percent = (d.NewMedian - d.OldMedian) / math.Abs(d.OldMedian) * 100
		}
		// degradation: positive when the change hurts.
		degradation := d.NewMedian - d.OldMedian
		if d.HigherBetter {
			degradation = -degradation
		}
		band := math.Max(threshold*math.Abs(d.OldMedian), noiseMult*d.OldMAD)
		d.ExceedsNoise = math.Abs(d.NewMedian-d.OldMedian) > band
		if degradation > band && band > 0 {
			d.Regression = true
		} else if -degradation > band && band > 0 {
			d.Improvement = true
		}
		out = append(out, d)
	}
	return out
}

func printCompare(w io.Writer, oldRep, newRep Report, deltas []Delta) {
	oldID, newID := reportID(oldRep), reportID(newRep)
	fmt.Fprintf(w, "comparing %s -> %s (%d series)\n", oldID, newID, len(deltas))
	for _, d := range deltas {
		mark := " "
		switch {
		case d.Regression:
			mark = "✗"
		case d.Improvement:
			mark = "✓"
		}
		fmt.Fprintf(w, "%s %-50s %-10s %12s -> %-12s %+.1f%% (n=%d, mad=%s)\n",
			mark, d.Key, d.Unit, formatValue(d.OldMedian), formatValue(d.NewMedian),
			d.Percent, d.Samples, formatValue(d.OldMAD))
	}
}

// reportID labels a report for the comparison header: its provenance
// binary ID when stamped, else its note, else "unstamped".
func reportID(rep Report) string {
	if rep.Provenance != nil {
		return rep.Provenance.BinaryID()
	}
	if rep.Note != "" {
		return rep.Note
	}
	return "unstamped"
}

// median returns the middle of a copy of xs (upper middle for even n —
// consistent everywhere a median is taken in this command).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// mad is the median absolute deviation from the median — the robust noise
// scale compare's band is built from. Zero for n < 2 (one sample has no
// spread to measure; the threshold alone gates then).
func mad(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return median(dev)
}
