package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/provenance"
)

// Report is the JSON document ccbench emits. Convert mode fills only the
// transcript-derived fields; record mode stamps UnixMS and Provenance so a
// history line is self-describing months later.
type Report struct {
	// UnixMS is when the report was recorded (record mode only).
	UnixMS int64 `json:"unix_ms,omitempty"`
	// Note is a free-text label (-note), e.g. a PR number or "baseline".
	Note string `json:"note,omitempty"`
	// Provenance identifies the binary/platform that produced the numbers
	// (record mode only).
	Provenance *provenance.Stamp `json:"provenance,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one result line. With -count=N the same name appears N
// times — compare and trend reduce the duplicates with medians, so the
// rows must survive into the report (and history) unmerged.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Key identifies a benchmark series across reports.
func (b Benchmark) Key() string {
	if b.Pkg == "" {
		return b.Name
	}
	return b.Pkg + "." + b.Name
}

// parseBench scans a `go test -bench` transcript: platform headers
// (goos/goarch/pkg/cpu), benchmark result lines, and the trailing ok/FAIL
// package lines. Unrecognized lines are skipped, FAIL is an error.
func parseBench(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL"):
			return rep, fmt.Errorf("benchmark transcript contains a failure: %s", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return rep, err
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkScheduleFire-8  24941218  48.0 ns/op  0 B/op  0 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The trailing
// "-N" is the GOMAXPROCS suffix go test appends (the go convention: split
// on the LAST dash, like x/perf). Sub-benchmark names with `/` and `-`
// segments survive because only the final dash-number is eaten — which is
// ambiguous by construction for a name genuinely ending in "-<digits>"
// run at GOMAXPROCS=1 (no suffix appended); there is no fix that doesn't
// break the common case, so we follow the convention and pin the behavior
// in tests. A name that is nothing but the suffix ("Benchmark-8") keeps
// its dash-number as the name.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	b := Benchmark{Metrics: make(map[string]float64)}
	b.Name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil && procs > 0 {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q in %q: %w", f[i], line, err)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}

// writeReport emits rep as indented JSON to path, or to stdout when path
// is empty.
func writeReport(rep Report, path string, stdout io.Writer) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}

// loadReport reads one report JSON file (a convert/record -o artifact).
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
