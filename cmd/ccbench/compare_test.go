package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// mkReport builds a report with -count style duplicate rows: one row per
// sample value, all under the same name.
func mkReport(name, unit string, samples ...float64) Report {
	rep := Report{}
	for _, v := range samples {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Pkg: "p", Name: name, Iterations: 1,
			Metrics: map[string]float64{unit: v},
		})
	}
	return rep
}

func TestMedianAndMAD(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := median(nil); !math.IsNaN(m) {
		t.Fatalf("median(nil) = %v", m)
	}
	// median of {10,12,14,100} is 14 (upper middle); deviations sort to
	// {0,2,4,86}, whose upper middle is 4.
	if m := mad([]float64{10, 12, 14, 100}); m != 4 {
		t.Fatalf("mad = %v", m)
	}
	if m := mad([]float64{5}); m != 0 {
		t.Fatalf("single-sample mad = %v", m)
	}
}

// TestCompareDetectsRegression: a 3x slowdown on ns/op clears both the
// threshold and the noise band and is flagged; the error names the
// benchmark.
func TestCompareDetectsRegression(t *testing.T) {
	oldRep := mkReport("Fire", "ns/op", 48, 49, 50)
	newRep := mkReport("Fire", "ns/op", 150, 151, 149)
	deltas := compareReports(oldRep, newRep, "", 0.10, 3)
	if len(deltas) != 1 || !deltas[0].Regression {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Improvement {
		t.Fatal("both flags set")
	}
}

// TestCompareNoiseBandSuppressesJitter: a 15% "regression" inside the MAD
// noise band of a wildly jittery old run is NOT flagged, even though it
// clears the relative threshold.
func TestCompareNoiseBandSuppressesJitter(t *testing.T) {
	oldRep := mkReport("Jitter", "ns/op", 100, 60, 140) // MAD = 40
	newRep := mkReport("Jitter", "ns/op", 115, 115, 115)
	deltas := compareReports(oldRep, newRep, "", 0.10, 3)
	if len(deltas) != 1 || deltas[0].Regression {
		t.Fatalf("jitter flagged as regression: %+v", deltas)
	}
	// The same 15% move against a quiet old run IS a regression.
	quiet := mkReport("Jitter", "ns/op", 100, 100, 100)
	deltas = compareReports(quiet, newRep, "", 0.10, 3)
	if !deltas[0].Regression {
		t.Fatalf("15%% over a quiet baseline not flagged: %+v", deltas)
	}
}

// TestCompareDirectionality: events/s is higher-better — a drop is a
// regression, a rise is an improvement; ns/op is the reverse.
func TestCompareDirectionality(t *testing.T) {
	oldRep := mkReport("Rate", "events/s", 1000, 1000, 1000)
	slower := mkReport("Rate", "events/s", 500, 500, 500)
	faster := mkReport("Rate", "events/s", 2000, 2000, 2000)
	if d := compareReports(oldRep, slower, "", 0.10, 3); !d[0].Regression {
		t.Fatalf("events/s drop not a regression: %+v", d)
	}
	if d := compareReports(oldRep, faster, "", 0.10, 3); !d[0].Improvement || d[0].Regression {
		t.Fatalf("events/s rise not an improvement: %+v", d)
	}
	oldNs := mkReport("Op", "ns/op", 100, 100, 100)
	fastNs := mkReport("Op", "ns/op", 50, 50, 50)
	if d := compareReports(oldNs, fastNs, "", 0.10, 3); !d[0].Improvement {
		t.Fatalf("ns/op drop not an improvement: %+v", d)
	}
}

// TestCompareMetricFilterAndDisjoint: -metric restricts the series; a
// benchmark present on only one side is skipped, not crashed on.
func TestCompareMetricFilterAndDisjoint(t *testing.T) {
	oldRep := mkReport("A", "ns/op", 100)
	oldRep.Benchmarks = append(oldRep.Benchmarks, Benchmark{Pkg: "p", Name: "A", Metrics: map[string]float64{"B/op": 64}})
	newRep := mkReport("A", "ns/op", 300)
	newRep.Benchmarks = append(newRep.Benchmarks, mkReport("OnlyNew", "ns/op", 1).Benchmarks...)
	deltas := compareReports(oldRep, newRep, "B/op", 0.10, 3)
	if len(deltas) != 0 {
		t.Fatalf("B/op exists only in old; deltas = %+v", deltas)
	}
	deltas = compareReports(oldRep, newRep, "ns/op", 0.10, 3)
	if len(deltas) != 1 || deltas[0].Key != "p.A" {
		t.Fatalf("deltas = %+v", deltas)
	}
}

// TestCmdCompareFilesAndWarnOnly drives the subcommand end to end over
// report files: a regression exits non-zero naming the benchmark, and
// -warn-only downgrades it to a warning.
func TestCmdCompareFilesAndWarnOnly(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.json", dir+"/new.json"
	var sink bytes.Buffer
	if err := writeReport(mkReport("Fire", "ns/op", 48, 49, 50), oldPath, &sink); err != nil {
		t.Fatal(err)
	}
	if err := writeReport(mkReport("Fire", "ns/op", 150, 151, 149), newPath, &sink); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"compare", oldPath, newPath}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "Fire") {
		t.Fatalf("regression error = %v", err)
	}
	out.Reset()
	if err := run([]string{"compare", "-warn-only", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("warn-only exited non-zero: %v", err)
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Fatalf("warn-only output missing warning:\n%s", out.String())
	}
	// Usage errors: no files, or files plus -history.
	if err := run([]string{"compare"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("compare with no inputs accepted")
	}
	if err := run([]string{"compare", "-history", "h.jsonl", oldPath, newPath}, strings.NewReader(""), &out); err == nil {
		t.Fatal("compare with both modes accepted")
	}
}
