package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const transcript = `goos: linux
goarch: amd64
pkg: repro/internal/des
cpu: AMD EPYC 7B13
BenchmarkScheduleFire-8   	24941218	        48.03 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleCancel-8 	18000000	        66.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/des	2.511s
pkg: repro/internal/model
BenchmarkRecycleVsRebuild/rebuild-8 	     100	  11000000 ns/op	  920000 B/op	   12000 allocs/op
BenchmarkRecycleVsRebuild/recycle-8 	     120	  10400000 ns/op	 3714600 events/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/model	3.001s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("platform headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "ScheduleFire" || first.Procs != 8 || first.Pkg != "repro/internal/des" {
		t.Fatalf("first benchmark wrong: %+v", first)
	}
	if first.Iterations != 24941218 || first.Metrics["ns/op"] != 48.03 || first.Metrics["allocs/op"] != 0 {
		t.Fatalf("first metrics wrong: %+v", first)
	}
	recycle := rep.Benchmarks[3]
	if recycle.Name != "RecycleVsRebuild/recycle" || recycle.Pkg != "repro/internal/model" {
		t.Fatalf("subbenchmark name wrong: %+v", recycle)
	}
	if recycle.Metrics["events/s"] != 3714600 {
		t.Fatalf("custom metric lost: %+v", recycle.Metrics)
	}
}

func TestParseBenchRejectsFailure(t *testing.T) {
	in := "BenchmarkX-4 10 5.0 ns/op\nFAIL\trepro/internal/des\t0.1s\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("FAIL transcript accepted")
	}
}

func TestParseBenchRejectsMalformedLine(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX-4 notanumber 5.0 ns/op\n",
		"BenchmarkX-4 10 oops ns/op\n",
		"BenchmarkX-4 10 5.0\n", // odd field count: unit missing
	} {
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed line accepted: %q", in)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("round-tripped %d benchmarks, want 4", len(rep.Benchmarks))
	}
}

// TestParseLineEdgeCases pins the -procs suffix split on awkward names:
// sub-benchmarks whose segments contain `/` and `-`, names ending in a
// dash-number at GOMAXPROCS=1 (the documented ambiguity: the number is
// eaten as procs, per the go convention), names that are nothing but a
// dash-number, and custom b.ReportMetric units.
func TestParseLineEdgeCases(t *testing.T) {
	cases := []struct {
		line      string
		name      string
		procs     int
		unit      string
		value     float64
		iterCount int64
	}{
		{"BenchmarkSweep/n=64-2/mode=max-of-n-8 100 5.0 ns/op", "Sweep/n=64-2/mode=max-of-n", 8, "ns/op", 5, 100},
		{"BenchmarkFib-20 100 5.0 ns/op", "Fib", 20, "ns/op", 5, 100}, // GOMAXPROCS=1 ambiguity, pinned
		{"Benchmark-8 100 5.0 ns/op", "-8", 0, "ns/op", 5, 100},       // suffix-only name survives
		{"BenchmarkX-0 100 5.0 ns/op", "X-0", 0, "ns/op", 5, 100},     // procs must be positive
		{"BenchmarkOpt-4 7 1.25 opt-procs@1yr", "Opt", 4, "opt-procs@1yr", 1.25, 7},
		{"BenchmarkRate-4 7 3714600 events/s", "Rate", 4, "events/s", 3714600, 7},
	}
	for _, tc := range cases {
		b, err := parseLine(tc.line)
		if err != nil {
			t.Fatalf("%q: %v", tc.line, err)
		}
		if b.Name != tc.name || b.Procs != tc.procs || b.Iterations != tc.iterCount {
			t.Fatalf("%q parsed as %+v, want name %q procs %d iters %d", tc.line, b, tc.name, tc.procs, tc.iterCount)
		}
		if b.Metrics[tc.unit] != tc.value {
			t.Fatalf("%q metrics = %v, want %s=%v", tc.line, b.Metrics, tc.unit, tc.value)
		}
	}
}

// TestParseBenchFailMidStream: a FAIL after valid benchmark lines still
// poisons the transcript.
func TestParseBenchFailMidStream(t *testing.T) {
	in := "BenchmarkA-4 10 5.0 ns/op\nFAIL\trepro/internal/des\t0.1s\nBenchmarkB-4 10 5.0 ns/op\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("mid-stream FAIL accepted")
	}
	// --- lines from -benchtime warnings and arbitrary noise are skipped.
	in = "noise\nBenchmarkA-4 10 5.0 ns/op\nPASS\n"
	rep, err := parseBench(strings.NewReader(in))
	if err != nil || len(rep.Benchmarks) != 1 {
		t.Fatalf("noisy transcript: %+v, %v", rep, err)
	}
}

// TestParseBenchCountDuplicates: -count=N duplicate rows must all survive
// (compare derives its noise band from them).
func TestParseBenchCountDuplicates(t *testing.T) {
	in := "pkg: p\nBenchmarkA-4 10 5.0 ns/op\nBenchmarkA-4 11 5.5 ns/op\nBenchmarkA-4 12 4.5 ns/op\n"
	rep, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("duplicates collapsed: %+v", rep.Benchmarks)
	}
	for _, b := range rep.Benchmarks {
		if b.Key() != "p.A" {
			t.Fatalf("key = %q", b.Key())
		}
	}
}

func TestRunStdoutAndErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"ScheduleFire"`) {
		t.Fatalf("stdout JSON missing benchmark:\n%s", out.String())
	}
	if err := run([]string{"-x"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(nil, strings.NewReader("PASS\nok x 1s\n"), &out); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
}
