package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const transcript = `goos: linux
goarch: amd64
pkg: repro/internal/des
cpu: AMD EPYC 7B13
BenchmarkScheduleFire-8   	24941218	        48.03 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleCancel-8 	18000000	        66.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/des	2.511s
pkg: repro/internal/model
BenchmarkRecycleVsRebuild/rebuild-8 	     100	  11000000 ns/op	  920000 B/op	   12000 allocs/op
BenchmarkRecycleVsRebuild/recycle-8 	     120	  10400000 ns/op	 3714600 events/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/model	3.001s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("platform headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "ScheduleFire" || first.Procs != 8 || first.Pkg != "repro/internal/des" {
		t.Fatalf("first benchmark wrong: %+v", first)
	}
	if first.Iterations != 24941218 || first.Metrics["ns/op"] != 48.03 || first.Metrics["allocs/op"] != 0 {
		t.Fatalf("first metrics wrong: %+v", first)
	}
	recycle := rep.Benchmarks[3]
	if recycle.Name != "RecycleVsRebuild/recycle" || recycle.Pkg != "repro/internal/model" {
		t.Fatalf("subbenchmark name wrong: %+v", recycle)
	}
	if recycle.Metrics["events/s"] != 3714600 {
		t.Fatalf("custom metric lost: %+v", recycle.Metrics)
	}
}

func TestParseBenchRejectsFailure(t *testing.T) {
	in := "BenchmarkX-4 10 5.0 ns/op\nFAIL\trepro/internal/des\t0.1s\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("FAIL transcript accepted")
	}
}

func TestParseBenchRejectsMalformedLine(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX-4 notanumber 5.0 ns/op\n",
		"BenchmarkX-4 10 oops ns/op\n",
		"BenchmarkX-4 10 5.0\n", // odd field count: unit missing
	} {
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed line accepted: %q", in)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("round-tripped %d benchmarks, want 4", len(rep.Benchmarks))
	}
}

func TestRunStdoutAndErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"ScheduleFire"`) {
		t.Fatalf("stdout JSON missing benchmark:\n%s", out.String())
	}
	if err := run([]string{"-x"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(nil, strings.NewReader("PASS\nok x 1s\n"), &out); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
}
