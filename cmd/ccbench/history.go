package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/asciichart"
	"repro/internal/provenance"
)

// cmdRecord parses a transcript, stamps it with provenance and a
// timestamp, and appends it as one compact JSON line to the history file.
// The append is O_APPEND on a single line, so concurrent recorders from
// different CI jobs interleave whole records, never torn ones.
func cmdRecord(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := newFlagSet("record", "ccbench record -history FILE [-o file.json] [-note s] < bench-output", stdout)
	history := fs.String("history", "", "append the stamped report to this JSONL `file` (required)")
	out := fs.String("o", "", "also write the stamped report as indented JSON to this `file`")
	note := fs.String("note", "", "free-text label stored in the report (e.g. a commit subject)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *history == "" || fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("record needs -history FILE and no positional arguments")
	}
	rep, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	rep.Note = *note
	rep.UnixMS = time.Now().UnixMilli()
	stamp := provenance.Collect()
	rep.Provenance = &stamp
	if err := appendHistory(*history, rep); err != nil {
		return err
	}
	if *out != "" {
		if err := writeReport(rep, *out, stdout); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "recorded %d benchmarks to %s (%s)\n",
		len(rep.Benchmarks), *history, stamp.BinaryID())
	return nil
}

// appendHistory adds one report as a single JSONL line.
func appendHistory(path string, rep Report) error {
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readHistory loads every report line, oldest first. Blank lines are
// skipped; a malformed line is an error (the history is an append-only
// artifact — corruption should stop the pipeline, not be papered over).
func readHistory(path string) ([]Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Report
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rep Report
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(out)+1, err)
		}
		out = append(out, rep)
	}
	return out, sc.Err()
}

// defaultTrendMetrics are the units trend renders when -metric is unset.
var defaultTrendMetrics = []string{"ns/op", "events/s", "allocs/op"}

// cmdTrend renders one sparkline per benchmark and metric across the
// history: per-entry medians (collapsing -count duplicates), oldest to
// newest, annotated with the latest value and the delta against the
// previous entry.
func cmdTrend(args []string, stdout io.Writer) error {
	fs := newFlagSet("trend", "ccbench trend -history FILE [-metric unit] [-w n]", stdout)
	history := fs.String("history", "", "JSONL history `file` written by ccbench record (required)")
	metric := fs.String("metric", "", "render only this metric `unit` (default: ns/op, events/s, allocs/op)")
	width := fs.Int("w", 40, "sparkline width in cells")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *history == "" || fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("trend needs -history FILE and no positional arguments")
	}
	reports, err := readHistory(*history)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("%s: empty history", *history)
	}
	metrics := defaultTrendMetrics
	if *metric != "" {
		metrics = []string{*metric}
	}

	last := reports[len(reports)-1]
	fmt.Fprintf(stdout, "history %s: %d entries", *history, len(reports))
	if last.Provenance != nil {
		fmt.Fprintf(stdout, ", latest %s", last.Provenance.BinaryID())
	}
	if last.UnixMS != 0 {
		fmt.Fprintf(stdout, " at %s", time.UnixMilli(last.UnixMS).UTC().Format(time.RFC3339))
	}
	fmt.Fprintln(stdout)

	for _, key := range historyKeys(reports) {
		printed := false
		for _, unit := range metrics {
			series := seriesOf(reports, key, unit)
			if !hasValue(series) {
				continue
			}
			if !printed {
				fmt.Fprintf(stdout, "%s\n", key)
				printed = true
			}
			cur, prev, n := lastTwo(series)
			delta := ""
			if n >= 2 && prev != 0 {
				delta = fmt.Sprintf("  %+.1f%%", (cur-prev)/prev*100)
			}
			fmt.Fprintf(stdout, "  %-10s %s  %s%s\n",
				unit, asciichart.Sparkline(series, *width), formatValue(cur), delta)
		}
	}
	return nil
}

// historyKeys returns every benchmark key seen across the history, sorted.
func historyKeys(reports []Report) []string {
	seen := map[string]bool{}
	for _, rep := range reports {
		for _, b := range rep.Benchmarks {
			seen[b.Key()] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seriesOf extracts one (benchmark, metric) series: the per-report median
// over -count duplicates, NaN when a report lacks the benchmark (renders
// as a gap in the sparkline rather than shifting the series).
func seriesOf(reports []Report, key, unit string) []float64 {
	out := make([]float64, len(reports))
	for i, rep := range reports {
		var samples []float64
		for _, b := range rep.Benchmarks {
			if b.Key() != key {
				continue
			}
			if v, ok := b.Metrics[unit]; ok {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			out[i] = nan()
			continue
		}
		out[i] = median(samples)
	}
	return out
}

func hasValue(series []float64) bool {
	for _, v := range series {
		if v == v { // not NaN
			return true
		}
	}
	return false
}

// lastTwo returns the newest and second-newest finite values and how many
// finite values exist.
func lastTwo(series []float64) (cur, prev float64, n int) {
	cur, prev = nan(), nan()
	for i := len(series) - 1; i >= 0; i-- {
		if v := series[i]; v == v {
			n++
			if n == 1 {
				cur = v
			} else if n == 2 {
				prev = v
				// keep counting for n, values are set
			}
		}
	}
	return cur, prev, n
}

func formatValue(v float64) string {
	if v != v {
		return "-"
	}
	switch {
	case v >= 1e6 || (v > 0 && v < 1e-3):
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func nan() float64 { return math.NaN() }
