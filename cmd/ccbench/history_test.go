package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordAppendsStampedHistory: record parses the transcript, stamps
// provenance + timestamp, appends one JSONL line per invocation, and the
// duplicate -count rows survive into the history.
func TestRecordAppendsStampedHistory(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	var out bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := run([]string{"record", "-history", hist, "-note", "run"}, strings.NewReader(transcript), &out); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := readHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("history entries = %d, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.UnixMS == 0 || rep.Provenance == nil || rep.Provenance.GoVersion == "" {
			t.Fatalf("unstamped history entry: %+v", rep)
		}
		if rep.Note != "run" {
			t.Fatalf("note = %q", rep.Note)
		}
		if len(rep.Benchmarks) != 4 {
			t.Fatalf("benchmarks = %d, want 4 (duplicates must survive)", len(rep.Benchmarks))
		}
	}
	// record without -history is a usage error; empty input is an error.
	if err := run([]string{"record"}, strings.NewReader(transcript), &out); err == nil {
		t.Fatal("record without -history accepted")
	}
	if err := run([]string{"record", "-history", hist}, strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("benchmark-free record accepted")
	}
}

// TestRecordAlsoWritesReport: -o emits the same stamped report as a
// pretty-printed artifact.
func TestRecordAlsoWritesReport(t *testing.T) {
	dir := t.TempDir()
	hist, rep := filepath.Join(dir, "h.jsonl"), filepath.Join(dir, "r.json")
	var out bytes.Buffer
	if err := run([]string{"record", "-history", hist, "-o", rep}, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Provenance == nil || loaded.UnixMS == 0 {
		t.Fatalf("-o report unstamped: %+v", loaded)
	}
}

// TestTrendRendersSparklines: trend prints one sparkline row per
// benchmark/metric with the latest value and a delta, plus the history
// header with the latest binary ID.
func TestTrendRendersSparklines(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	for _, ns := range []float64{100, 110, 200} {
		if err := appendHistory(hist, mkReport("Fire", "ns/op", ns, ns+1, ns-1)); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"trend", "-history", hist}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "3 entries") || !strings.Contains(s, "p.Fire") || !strings.Contains(s, "ns/op") {
		t.Fatalf("trend output:\n%s", s)
	}
	// 110 -> 200 is +81.8%; the sparkline uses block runes.
	if !strings.Contains(s, "+81.8%") {
		t.Fatalf("trend delta missing:\n%s", s)
	}
	if !strings.ContainsAny(s, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparkline in trend output:\n%s", s)
	}
	// -metric filters to one unit; an unknown unit renders nothing but
	// still succeeds (the header remains).
	out.Reset()
	if err := run([]string{"trend", "-history", hist, "-metric", "B/op"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ns/op") {
		t.Fatalf("-metric filter leaked other units:\n%s", out.String())
	}
	// Usage / error paths.
	if err := run([]string{"trend"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("trend without -history accepted")
	}
	if err := run([]string{"trend", "-history", filepath.Join(t.TempDir(), "missing.jsonl")}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing history accepted")
	}
}

// TestTrendGapsForMissingBenchmarks: a benchmark absent from one history
// entry renders as a gap, and series alignment is preserved.
func TestTrendGapsForMissingBenchmarks(t *testing.T) {
	reports := []Report{
		mkReport("A", "ns/op", 100),
		mkReport("B", "ns/op", 5),
		mkReport("A", "ns/op", 120),
	}
	series := seriesOf(reports, "p.A", "ns/op")
	if len(series) != 3 || series[0] != 100 || series[2] != 120 {
		t.Fatalf("series = %v", series)
	}
	if series[1] == series[1] { // middle must be NaN
		t.Fatalf("gap not NaN: %v", series)
	}
	cur, prev, n := lastTwo(series)
	if cur != 120 || prev != 100 || n != 2 {
		t.Fatalf("lastTwo = %v %v %d", cur, prev, n)
	}
}

// TestCompareHistoryMode: -history compares the last two entries; a
// single-entry history is a clean no-op (first CI run ever).
func TestCompareHistoryMode(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := appendHistory(hist, mkReport("Fire", "ns/op", 48, 49, 50)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"compare", "-history", hist}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("single-entry history errored: %v", err)
	}
	if !strings.Contains(out.String(), "nothing to compare") {
		t.Fatalf("output:\n%s", out.String())
	}
	if err := appendHistory(hist, mkReport("Fire", "ns/op", 150, 151, 149)); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"compare", "-history", hist}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "Fire") {
		t.Fatalf("history regression error = %v", err)
	}
}

// TestHelpAndUsage: the top-level help and per-subcommand -h exit cleanly
// with usage text.
func TestHelpAndUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"help"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ccbench record") {
		t.Fatalf("help output:\n%s", out.String())
	}
	for _, cmd := range []string{"convert", "record", "trend", "compare"} {
		out.Reset()
		if err := run([]string{cmd, "-h"}, strings.NewReader(""), &out); err != nil {
			t.Fatalf("%s -h: %v", cmd, err)
		}
		if !strings.Contains(out.String(), "usage:") {
			t.Fatalf("%s -h output:\n%s", cmd, out.String())
		}
	}
}
