package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runRealBench executes a real (tiny) benchmark in this module and
// returns its transcript — the same shape `make bench-smoke` produces.
func runRealBench(t *testing.T) string {
	t.Helper()
	cmd := exec.Command("go", "test", "-run", "NONE", "-bench", "ScheduleFire$",
		"-benchtime", "10x", "-count", "3", "repro/internal/des")
	cmd.Dir = "../.." // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go test -bench: %v\n%s", err, out)
	}
	return string(out)
}

// TestSentinelEndToEnd is the full sentinel loop: record two real
// benchmark runs into a history, render the trend, compare the last two
// entries (warn-only — two honest runs may legitimately jitter), then
// doctor a 5x regression into the history and require compare to exit
// non-zero naming the benchmark.
func TestSentinelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go test -bench")
	}
	hist := filepath.Join(t.TempDir(), "BENCH_HISTORY.jsonl")
	var out bytes.Buffer
	for i := 0; i < 2; i++ {
		transcript := runRealBench(t)
		if err := run([]string{"record", "-history", hist, "-note", "e2e"},
			strings.NewReader(transcript), &out); err != nil {
			t.Fatalf("record run %d: %v\n%s", i, err, out.String())
		}
	}
	reports, err := readHistory(hist)
	if err != nil || len(reports) != 2 {
		t.Fatalf("history = %d entries, err %v", len(reports), err)
	}
	for _, rep := range reports {
		if rep.Provenance == nil || rep.Provenance.GoVersion == "" {
			t.Fatalf("history entry unstamped: %+v", rep)
		}
		if len(rep.Benchmarks) != 3 {
			t.Fatalf("-count=3 rows did not survive: %+v", rep.Benchmarks)
		}
	}

	out.Reset()
	if err := run([]string{"trend", "-history", hist}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("trend: %v", err)
	}
	if !strings.Contains(out.String(), "ScheduleFire") || !strings.Contains(out.String(), "ns/op") {
		t.Fatalf("trend output:\n%s", out.String())
	}

	// Two honest runs of the same code: gate in warn-only mode must pass.
	out.Reset()
	if err := run([]string{"compare", "-history", hist, "-warn-only"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("warn-only compare of identical code failed: %v\n%s", err, out.String())
	}

	// Doctor a regression: the same run, every ns/op multiplied by 5 —
	// far outside any noise band a 3-sample run can produce.
	doctored := reports[1]
	doctored.Benchmarks = append([]Benchmark(nil), doctored.Benchmarks...)
	for i, b := range doctored.Benchmarks {
		m := make(map[string]float64, len(b.Metrics))
		for unit, v := range b.Metrics {
			if unit == "ns/op" {
				v *= 5
			}
			m[unit] = v
		}
		doctored.Benchmarks[i].Metrics = m
	}
	if err := appendHistory(hist, doctored); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"compare", "-history", hist}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("doctored regression not caught:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "ScheduleFire") || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("regression error does not name the benchmark: %v", err)
	}
}
