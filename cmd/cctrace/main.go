// Command cctrace runs a single trajectory of the checkpointing model and
// streams every activity firing as NDJSON, for debugging the model and for
// ad-hoc analysis of individual runs (failure inter-arrivals, checkpoint
// cycle timelines, recovery cascades). With -spans it emits semantic phase
// spans instead of raw firings, and -chrome exports the timeline as Chrome
// trace-event JSON for Perfetto (ui.perfetto.dev).
//
//	cctrace -horizon 100 -procs 65536 > trace.ndjson
//	cctrace -horizon 100 -only comp_failure,reboot -marking
//	cctrace -horizon 100 -spans
//	cctrace -horizon 100 -spans -chrome out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/phasetrace"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("cctrace", flag.ContinueOnError)
	var (
		procs     = fs.Int("procs", 65536, "total compute processors")
		mttfYears = fs.Float64("mttf-years", 1, "per-node MTTF in years")
		horizon   = fs.Float64("horizon", 100, "simulated hours to trace")
		seed      = fs.Uint64("seed", 1, "random seed")
		only      = fs.String("only", "", "comma-separated activity names to keep (default: all)")
		marking   = fs.Bool("marking", false, "include the non-empty marking in each event")
		summary   = fs.Bool("summary", false, "print per-activity counts instead of events")
		spans     = fs.Bool("spans", false, "emit phase spans (computation/rework/quiesce/dump/fswait/recovery/downtime) instead of raw firings")
		chrome    = fs.String("chrome", "", "with -spans: write the timeline as Chrome trace-event JSON to this file (open in ui.perfetto.dev)")
		fullscan  = fs.Bool("fullscan", false, "use the full-rescan scheduler instead of the incremental one (debugging; traces are bit-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chrome != "" && !*spans {
		return fmt.Errorf("-chrome requires -spans")
	}

	cfg := cluster.Default()
	cfg.Processors = *procs
	cfg.MTTFPerNode = repro.Years(*mttfYears)
	if err := cfg.Validate(); err != nil {
		return err
	}
	in, err := model.New(cfg, *seed)
	if err != nil {
		return err
	}
	in.SetFullScan(*fullscan)

	// The phase recorder rides a firing hook, independent of the SetTrace
	// observer, so -spans composes with -only/-summary event streaming.
	var rec *phasetrace.Recorder
	if *spans {
		rec = in.AttachPhases()
	}

	keep := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			keep[name] = true
		}
	}

	w := trace.NewWriter(stdout)
	var events []trace.Event
	var traceErr error
	if !*spans {
		in.SetTrace(func(t float64, activity string, mk map[string]int) {
			if len(keep) > 0 && !keep[activity] {
				return
			}
			ev := trace.Event{Time: t, Activity: activity, Marking: mk}
			if *summary {
				events = append(events, ev)
				return
			}
			if err := w.Write(ev); err != nil && traceErr == nil {
				traceErr = err
			}
		}, *marking)
	}

	in.Advance(*horizon)
	if traceErr != nil {
		return traceErr
	}
	if rec != nil {
		tl := rec.Finish(in.Now()).SplitRework()
		if *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				return err
			}
			if err := tl.WriteChrome(f, fmt.Sprintf("cctrace procs=%d seed=%d", *procs, *seed)); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "cctrace: wrote %s (%d spans, %d rollbacks; load in ui.perfetto.dev)\n",
				*chrome, len(tl.Spans), len(tl.Losses))
		}
		return writeSpans(stdout, tl, *summary)
	}
	if *summary {
		s := trace.Summarize(events)
		fmt.Fprintf(stdout, "horizon %.1fh, %d events\n", *horizon, len(events))
		for _, a := range sortedKeys(s.Counts) {
			fmt.Fprintf(stdout, "%-24s %d\n", a, s.Counts[a])
		}
		return nil
	}
	return w.Flush()
}

// writeSpans emits the timeline: one span per NDJSON line, or with summary
// the per-phase time budget.
func writeSpans(stdout *os.File, tl *phasetrace.Timeline, summary bool) error {
	if summary {
		b := tl.Budget()
		total := b.Total()
		fmt.Fprintf(stdout, "horizon %.1fh, %d spans, %d rollbacks\n", tl.End, len(tl.Spans), len(tl.Losses))
		for _, p := range phasetrace.Phases() {
			if b[p] == 0 {
				continue
			}
			fmt.Fprintf(stdout, "%-24s %10.3fh  %6.2f%%\n", p.String(), b[p], 100*b[p]/total)
		}
		return nil
	}
	enc := json.NewEncoder(stdout)
	for _, sp := range tl.Spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	for _, l := range tl.Losses {
		if err := enc.Encode(struct {
			Rollback phasetrace.Loss `json:"rollback"`
		}{l}); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
