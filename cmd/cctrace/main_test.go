package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// runToFile executes run with stdout captured in a temp file and returns
// the output.
func runToFile(t *testing.T, args []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestTraceEmitsNDJSON(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "3", "-procs", "8192", "-seed", "5"})
	events, err := trace.ReadAll(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	sawCheckpoint := false
	for _, ev := range events {
		if ev.Activity == "dump_chkpt" {
			sawCheckpoint = true
		}
		if ev.Time < 0 || ev.Time > 3 {
			t.Fatalf("event outside horizon: %+v", ev)
		}
	}
	if !sawCheckpoint {
		t.Fatal("no checkpoint dump within 3 hours")
	}
}

func TestTraceFilterAndMarking(t *testing.T) {
	out := runToFile(t, []string{
		"-horizon", "3", "-procs", "8192", "-seed", "5",
		"-only", "dump_chkpt", "-marking",
	})
	events, err := trace.ReadAll(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Activity != "dump_chkpt" {
			t.Fatalf("filter leaked activity %q", ev.Activity)
		}
		if len(ev.Marking) == 0 {
			t.Fatal("marking requested but empty")
		}
	}
	if len(events) < 4 {
		t.Fatalf("expected ~6 checkpoint dumps in 3h, got %d", len(events))
	}
}

func TestTraceFullScanByteIdentical(t *testing.T) {
	args := []string{"-horizon", "10", "-procs", "8192", "-seed", "7", "-marking"}
	incr := runToFile(t, args)
	full := runToFile(t, append(args, "-fullscan"))
	if incr != full {
		t.Fatal("incremental and full-scan traces differ")
	}
	if len(incr) == 0 {
		t.Fatal("empty trace")
	}
}

func TestTraceSummary(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "3", "-procs", "8192", "-seed", "5", "-summary"})
	if !strings.Contains(out, "dump_chkpt") || !strings.Contains(out, "events") {
		t.Fatalf("summary output unexpected:\n%s", out)
	}
}

func TestTraceRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-procs", "-1"}, os.Stdout); err == nil {
		t.Fatal("bad config accepted")
	}
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
}
