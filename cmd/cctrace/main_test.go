package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/phasetrace"
	"repro/internal/trace"
)

// runToFile executes run with stdout captured in a temp file and returns
// the output.
func runToFile(t *testing.T, args []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestTraceEmitsNDJSON(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "3", "-procs", "8192", "-seed", "5"})
	events, err := trace.ReadAll(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	sawCheckpoint := false
	for _, ev := range events {
		if ev.Activity == "dump_chkpt" {
			sawCheckpoint = true
		}
		if ev.Time < 0 || ev.Time > 3 {
			t.Fatalf("event outside horizon: %+v", ev)
		}
	}
	if !sawCheckpoint {
		t.Fatal("no checkpoint dump within 3 hours")
	}
}

func TestTraceFilterAndMarking(t *testing.T) {
	out := runToFile(t, []string{
		"-horizon", "3", "-procs", "8192", "-seed", "5",
		"-only", "dump_chkpt", "-marking",
	})
	events, err := trace.ReadAll(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Activity != "dump_chkpt" {
			t.Fatalf("filter leaked activity %q", ev.Activity)
		}
		if len(ev.Marking) == 0 {
			t.Fatal("marking requested but empty")
		}
	}
	if len(events) < 4 {
		t.Fatalf("expected ~6 checkpoint dumps in 3h, got %d", len(events))
	}
}

func TestTraceFullScanByteIdentical(t *testing.T) {
	args := []string{"-horizon", "10", "-procs", "8192", "-seed", "7", "-marking"}
	incr := runToFile(t, args)
	full := runToFile(t, append(args, "-fullscan"))
	if incr != full {
		t.Fatal("incremental and full-scan traces differ")
	}
	if len(incr) == 0 {
		t.Fatal("empty trace")
	}
}

func TestTraceSummary(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "3", "-procs", "8192", "-seed", "5", "-summary"})
	if !strings.Contains(out, "dump_chkpt") || !strings.Contains(out, "events") {
		t.Fatalf("summary output unexpected:\n%s", out)
	}
}

func TestTraceSpansNDJSON(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "50", "-procs", "65536", "-seed", "3", "-spans"})
	dec := json.NewDecoder(strings.NewReader(out))
	var spans []phasetrace.Span
	rollbacks := 0
	for dec.More() {
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("span output not NDJSON: %v", err)
		}
		if rb, ok := raw["rollback"]; ok {
			var l phasetrace.Loss
			if err := json.Unmarshal(rb, &l); err != nil {
				t.Fatalf("bad rollback record: %v", err)
			}
			if l.Amount <= 0 {
				t.Fatalf("rollback with non-positive loss: %+v", l)
			}
			rollbacks++
			continue
		}
		data, _ := json.Marshal(raw)
		var sp phasetrace.Span
		if err := json.Unmarshal(data, &sp); err != nil {
			t.Fatalf("bad span record: %v", err)
		}
		spans = append(spans, sp)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	// Spans must tile [0, horizon] without gaps or overlaps.
	if spans[0].Start != 0 {
		t.Fatalf("first span starts at %v", spans[0].Start)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("gap between spans %d and %d: %v != %v", i-1, i, spans[i-1].End, spans[i].Start)
		}
	}
	if got := spans[len(spans)-1].End; got != 50 {
		t.Fatalf("last span ends at %v, want 50", got)
	}
	sawDump := false
	for _, sp := range spans {
		if sp.Phase == phasetrace.Dump {
			sawDump = true
		}
	}
	if !sawDump {
		t.Fatal("no checkpoint-dump span in 50 hours")
	}
}

func TestTraceSpansSummary(t *testing.T) {
	out := runToFile(t, []string{"-horizon", "50", "-procs", "65536", "-seed", "3", "-spans", "-summary"})
	for _, want := range []string{"spans", "computation", "dump", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span summary missing %q:\n%s", want, out)
		}
	}
}

func TestTraceChromeExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runToFile(t, []string{"-horizon", "50", "-procs", "65536", "-seed", "3", "-spans", "-chrome", path})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file must be valid trace-event JSON: an object with a traceEvents
	// array whose entries carry the required per-format fields.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Pid   int     `json:"pid"`
			Tid   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	sawComplete := false
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			sawComplete = true
			if ev.Dur <= 0 {
				t.Fatalf("complete event with non-positive dur: %+v", ev)
			}
		case "M", "i":
		default:
			t.Fatalf("unexpected event phase %q", ev.Phase)
		}
		if ev.Name == "" {
			t.Fatalf("unnamed event: %+v", ev)
		}
	}
	if !sawComplete {
		t.Fatal("no complete (X) span events in chrome export")
	}
}

func TestTraceChromeRequiresSpans(t *testing.T) {
	if err := run([]string{"-chrome", "x.json"}, os.Stdout); err == nil {
		t.Fatal("-chrome without -spans accepted")
	}
}

func TestTraceRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-procs", "-1"}, os.Stdout); err == nil {
		t.Fatal("bad config accepted")
	}
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
}
