package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/trace"
)

// buildTrace produces an NDJSON trace from the model.
func buildTrace(t *testing.T, cfg cluster.Config, horizon float64) string {
	t.Helper()
	in, err := model.New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	in.SetTrace(func(tm float64, activity string, _ map[string]int) {
		if err := w.Write(trace.Event{Time: tm, Activity: activity}); err != nil {
			t.Fatal(err)
		}
	}, false)
	in.Advance(horizon)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFitIndependentTrace(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(3)
	nd := buildTrace(t, cfg, 2000)
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(nd), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"failures", "MTBF", "coefficient of variation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "Poisson") {
		t.Fatalf("independent trace not recognised as Poisson-like:\n%s", s)
	}
}

func TestFitCorrelatedTrace(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(3)
	cfg.ProbCorrelated = 0.3
	cfg.CorrelatedFactor = 800
	nd := buildTrace(t, cfg, 2000)
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(nd), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "bursty") {
		t.Fatalf("correlated trace not flagged bursty:\n%s", s)
	}
	if !strings.Contains(s, "rate multiplier") {
		t.Fatalf("no rate multiplier estimated:\n%s", s)
	}
}

func TestFitFromFile(t *testing.T) {
	cfg := cluster.Default()
	nd := buildTrace(t, cfg, 300)
	dir := t.TempDir()
	path := dir + "/trace.ndjson"
	if err := writeFile(path, nd); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MTBF") {
		t.Fatalf("file input produced no report:\n%s", out.String())
	}
}

func TestFitErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run(nil, strings.NewReader("{broken"), &out); err == nil {
		t.Error("broken NDJSON accepted")
	}
	if err := run([]string{"-in", "/missing.ndjson"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
