// Command ccfit fits failure-process parameters from an NDJSON trajectory
// trace (as produced by cctrace): the system MTBF, burstiness measures and
// detected correlated-failure bursts with their empirical rate multiplier —
// the same analysis the paper's correlated-failure parameters were grounded
// in (Tang & Iyer [6], Zhang et al. [18]).
//
//	cctrace -horizon 2000 | ccfit
//	ccfit -in trace.ndjson -burst-window-min 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faultlog"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccfit:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccfit", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "NDJSON trace file (default: stdin)")
		activities = fs.String("activities", "comp_failure,recovery_failure,io_failure",
			"comma-separated activity names counted as failures")
		burstWindowMin = fs.Float64("burst-window-min", 3, "max gap within a burst, minutes")
		burstMinCount  = fs.Int("burst-min-count", 3, "minimum failures per burst")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadAll(r)
	if err != nil {
		return err
	}
	keep := map[string]bool{}
	for _, a := range strings.Split(*activities, ",") {
		if a = strings.TrimSpace(a); a != "" {
			keep[a] = true
		}
	}
	var times []float64
	for _, ev := range events {
		if keep[ev.Activity] {
			times = append(times, ev.Time)
		}
	}
	log := faultlog.New(times)
	if log.Len() < 3 {
		return fmt.Errorf("only %d failure events in trace; need at least 3", log.Len())
	}

	fmt.Fprintf(stdout, "failures                 %d over %.1f h\n", log.Len(), log.Span())
	if mtbf, err := log.MLEExponentialMean(); err == nil {
		fmt.Fprintf(stdout, "MTBF (MLE, exponential)  %.3f h\n", mtbf)
	}
	if cov, err := log.CoefficientOfVariation(); err == nil {
		verdict := "consistent with independent (Poisson) failures"
		if cov > 1.3 {
			verdict = "bursty: correlated failures likely"
		}
		fmt.Fprintf(stdout, "coefficient of variation %.3f (%s)\n", cov, verdict)
	}
	if iod, err := log.IndexOfDispersion(log.Span() / 50); err == nil {
		fmt.Fprintf(stdout, "index of dispersion      %.3f\n", iod)
	}
	window := cluster.Minutes(*burstWindowMin)
	bursts := log.DetectBursts(window, *burstMinCount)
	fmt.Fprintf(stdout, "bursts (gap<=%.0fmin, n>=%d) %d\n", *burstWindowMin, *burstMinCount, len(bursts))
	if len(bursts) > 0 {
		total := 0
		for _, b := range bursts {
			total += b.Count
		}
		fmt.Fprintf(stdout, "failures in bursts       %d (%.1f%%)\n",
			total, 100*float64(total)/float64(log.Len()))
		if ratio, err := log.RateRatio(bursts, window/3); err == nil {
			fmt.Fprintf(stdout, "in-burst rate multiplier %.0fx (paper's frate_correlated_factor)\n", ratio)
		}
	}
	return nil
}
