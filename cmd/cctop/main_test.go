package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/obs"
	"repro/internal/provenance"
)

// liveRegistry builds a registry shaped like a real verify-spans run.
func liveRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("runner.replications").Add(8)
	reg.Counter("runner.events").Add(1234567)
	reg.Counter("phase.rollbacks").Add(3)
	reg.FloatGauge("runner.ci_half_width").Set(0.0021)
	reg.FloatGauge("runner.events_per_sec").Set(250000)
	reg.Gauge("exec.jobs_running").Set(2)
	for phase, hours := range map[string]float64{
		"computation": 720, "dump": 12, "quiesce": 1.5, "recovery": 9,
	} {
		reg.Histogram("phase.hours."+phase, obs.ExpBuckets(0.25, 2, 16)).Observe(hours)
	}
	reg.Timer("runner.replication_wall_s").Observe(1500 * time.Millisecond)
	reg.Counter("runner.instance_builds").Add(2)
	reg.Counter("runner.instance_recycles").Add(6)
	reg.Counter("des.pool_hits").Add(990)
	reg.Counter("des.pool_misses").Add(10)
	obs.RecordMemStats(reg)
	return reg
}

func TestRenderFrame(t *testing.T) {
	snap := liveRegistry().Snapshot()
	var hist history
	hist.push(snap)
	hist.push(snap)
	out := render(snap, &hist, "localhost:6060", 32)
	for _, want := range []string{
		"cctop — localhost:6060",
		"8 done", "2 running",
		"1,234,567",
		"CI half-width 0.0021",
		"▁", // sparkline present
		"phase budget",
		"computation", "dump",
		"█", "%", // bars with percentages
		"rollbacks    3",
		"replication wall time",
		"p50", "p99",
		"instances     2 built, 6 recycled",
		"event pool 99.0% hit",
		"heap          ", "GCs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	// The dominant phase must get the widest bar.
	compLine, dumpLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "computation") {
			compLine = line
		}
		if strings.Contains(line, "dump") && !strings.Contains(line, "budget") {
			dumpLine = line
		}
	}
	if strings.Count(compLine, "█") <= strings.Count(dumpLine, "█") {
		t.Fatalf("computation bar not dominant:\n%s", out)
	}
}

func TestRenderWithoutPhaseMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("runner.replications").Add(1)
	snap := reg.Snapshot()
	var hist history
	hist.push(snap)
	out := render(snap, &hist, "x", 32)
	if strings.Contains(out, "phase budget") {
		t.Fatalf("phase section rendered with no phase metrics:\n%s", out)
	}
	if !strings.Contains(out, "1 done") {
		t.Fatalf("replication count missing:\n%s", out)
	}
	// A run predating the allocation-economy metrics renders no heap or
	// instance lines.
	if strings.Contains(out, "instances") || strings.Contains(out, "heap") {
		t.Fatalf("memory section rendered without its metrics:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:                "512 B",
		2048:               "2.0 KiB",
		3 << 20:            "3.00 MiB",
		5 << 30:            "5.00 GiB",
		36700160:           "35.00 MiB",
		int64(1)<<10 + 512: "1.5 KiB",
	}
	for n, want := range cases {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunAgainstLiveEndpoint(t *testing.T) {
	srv, err := obs.ServeDebug("127.0.0.1:0", liveRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var buf bytes.Buffer
	err = run([]string{"-addr", srv.Addr(), "-n", "2", "-interval", "10ms", "-plain"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "cctop — ") != 2 {
		t.Fatalf("want 2 plain frames:\n%s", out)
	}
	if !strings.Contains(out, "phase budget") || !strings.Contains(out, "p90") {
		t.Fatalf("live frame incomplete:\n%s", out)
	}
	if strings.Contains(out, "\033[") {
		t.Fatalf("-plain frame contains ANSI escapes:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-interval", "0s"}, &buf); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := run([]string{"-width", "2"}, &buf); err == nil {
		t.Fatal("tiny width accepted")
	}
}

func TestRunUnreachableEndpoint(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-n", "1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "debug-addr") {
		t.Fatalf("unreachable endpoint error unhelpful: %v", err)
	}
}

func TestGroupDigits(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 12: "12", 123: "123", 1234: "1,234",
		1234567: "1,234,567", 100000: "100,000",
	}
	for n, want := range cases {
		if got := groupDigits(n); got != want {
			t.Errorf("groupDigits(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestBlocksSection(t *testing.T) {
	reg := liveRegistry()
	snap := reg.Snapshot()
	var hist history
	hist.push(snap)
	// Without blocks.* counters the section is absent entirely.
	if out := render(snap, &hist, "x", 32); strings.Contains(out, "blocks") {
		t.Fatalf("monolithic frame grew a blocks section:\n%s", out)
	}
	reg.Counter("blocks.planned").Add(12)
	reg.Counter("blocks.claimed").Add(5)
	reg.Counter("blocks.completed").Add(4)
	reg.Counter("blocks.reclaimed").Add(1)
	reg.Counter("blocks.skipped").Add(6)
	reg.Timer("blocks.block_wall_s").Observe(2 * time.Second)
	out := render(reg.Snapshot(), &hist, "x", 32)
	for _, want := range []string{
		"blocks        4/12 completed by this worker (5 claimed)",
		"1 reclaimed from crashed peers",
		"6 done elsewhere",
		"block wall    p50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderFleet pins the run-directory dashboard layout from synthetic
// fleet data — no live sweep needed, renderFleet is pure.
func TestRenderFleet(t *testing.T) {
	m := &blocks.Manifest{Name: "procs", Kind: blocks.KindEstimate,
		Cells: []blocks.Cell{{}, {}}, Hash: "sha256:deadbeef"}
	st := blocks.Status{Planned: 8, Complete: 4, Leased: 2, Torn: 1, Unclaimed: 1,
		Workers: []blocks.WorkerStats{{Worker: "host-1", Completed: 4, Events: 1234567}}}
	fl := blocks.Fleet{
		Alive: 1, Dead: 1, Exited: 1, EventsPerSec: 250000, ETAMS: 95_000,
		Workers: []blocks.FleetWorker{
			{Heartbeat: blocks.Heartbeat{Worker: "host-1", CurrentBlock: 6,
				Completed: 4, EventsPerSec: 250000}, Health: blocks.WorkerAlive, AgeMS: 200},
			{Heartbeat: blocks.Heartbeat{Worker: "host-2", CurrentBlock: 7,
				Flight: []obs.FlightEvent{{Kind: "claim", Block: 7}}},
				Health: blocks.WorkerDead, AgeMS: 45000},
			{Heartbeat: blocks.Heartbeat{Worker: "host-3", CurrentBlock: -1,
				Final: true, Reason: "done"}, Health: blocks.WorkerExited, AgeMS: 60000},
		},
	}
	now := time.Now()
	out := renderFleet("run/", m, st, fl, nil, now, 16)
	for _, want := range []string{
		"sweep procs (estimate, 2 cells)",
		"4/8", "2 running", "1 torn",
		"1 alive, 1 DEAD, 1 exited",
		"250,000 ev/s",
		"ETA 1m35s",
		"host-1", "#6",
		"host-2", "dead", "no heartbeat — last: claim #7",
		"host-3", "exited", "done",
		"journal  host-1", "1,234,567 events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet frame missing %q:\n%s", want, out)
		}
	}
	// A healthy single-binary fleet raises no provenance warning and, with
	// no captures on disk, no profiles section.
	for _, absent := range []string{"MIXED BINARIES", "DIFFERENT BINARY", "profiles ("} {
		if strings.Contains(out, absent) {
			t.Fatalf("fleet frame unexpectedly contains %q:\n%s", absent, out)
		}
	}
	// A finished, empty fleet still renders.
	done := renderFleet("run/", m, blocks.Status{Planned: 8, Complete: 8}, blocks.Fleet{ETAMS: 0}, nil, now, 16)
	if !strings.Contains(done, "ready to -reduce") {
		t.Fatalf("done frame:\n%s", done)
	}
}

// TestRenderFleetProvenanceAndProfiles pins the sentinel additions to the
// dashboard: the mixed-binary warning, the per-worker outlier note, and the
// captured-profiles listing.
func TestRenderFleetProvenanceAndProfiles(t *testing.T) {
	mine := &provenance.Stamp{GitSHA: "aaaaaaaaaaaaaaaa", GoVersion: "go1.22.0"}
	theirs := &provenance.Stamp{GitSHA: "bbbbbbbbbbbbbbbb", GoVersion: "go1.22.0"}
	m := &blocks.Manifest{Name: "procs", Kind: blocks.KindEstimate,
		Cells: []blocks.Cell{{}}, Hash: "sha256:deadbeef"}
	fl := blocks.Fleet{
		Alive:              2,
		ProvenanceMismatch: true,
		Binaries: map[string]int{
			mine.BinaryID():   2,
			theirs.BinaryID(): 1,
		},
		Workers: []blocks.FleetWorker{
			{Heartbeat: blocks.Heartbeat{Worker: "host-1", CurrentBlock: 3,
				Provenance: mine}, Health: blocks.WorkerAlive},
			{Heartbeat: blocks.Heartbeat{Worker: "host-2", CurrentBlock: 4,
				Provenance: theirs}, Health: blocks.WorkerAlive, ProvenanceOutlier: true},
		},
	}
	now := time.UnixMilli(10_000)
	profiles := []obs.ProfileInfo{
		{Prefix: "host-2", Seq: 1, Reason: "straggler", UnixMS: 4_000,
			Files: []string{"host-2-001-cpu.pprof", "host-2-001-heap.pprof", "host-2-001-goroutine.pprof"}},
	}
	out := renderFleet("run/", m, blocks.Status{Planned: 8, Complete: 2}, fl, profiles, now, 16)
	for _, want := range []string{
		"MIXED BINARIES",
		mine.BinaryID() + " ×2",
		theirs.BinaryID() + " ×1",
		"DIFFERENT BINARY " + theirs.BinaryID(),
		"profiles (1 captured in " + blocks.ProfileDir("run/") + ")",
		"host-2", "#001", "6s ago", "cpu+heap+grt", "straggler",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet frame missing %q:\n%s", want, out)
		}
	}
	// The in-majority worker carries no outlier note on its row.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "host-1") && strings.Contains(line, "DIFFERENT BINARY") {
			t.Fatalf("majority worker flagged as outlier:\n%s", out)
		}
	}
}
