// Command cctop is a live terminal dashboard for an in-flight run: it polls
// the /metricz endpoint that ccsim/ccsweep expose behind -debug-addr and
// renders replication progress, throughput, confidence-interval convergence
// (as a sparkline), the phase time budget, and replication wall-time
// quantiles.
//
//	ccsim -procs 131072 -reps 64 -debug-addr localhost:6060 &
//	cctop -addr localhost:6060
//
// By default each frame clears the screen; -plain appends frames instead
// (for logs or pipes), and -n bounds the number of polls.
//
// With -run it watches a distributed sweep's shared run directory instead
// of an HTTP endpoint: worker heartbeats (heartbeats/<worker>.json) fused
// with block status become a fleet dashboard — workers alive/stale/dead by
// heartbeat age, per-worker event rates, stragglers, ETA, and a crashed
// worker's final flight-recorder events.
//
//	ccsweep -param procs -values 8192,16384 -manifest run/
//	ccsweep -worker run/ & ccsweep -worker run/ &
//	cctop -run run/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/asciichart"
	"repro/internal/blocks"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cctop:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cctop", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:6060", "debug endpoint address (host:port of a -debug-addr run)")
		runDir   = fs.String("run", "", "watch this sweep run directory (worker heartbeats + block status) instead of polling -addr")
		interval = fs.Duration("interval", time.Second, "poll interval")
		polls    = fs.Int("n", 0, "stop after this many polls (0 = poll until interrupted)")
		plain    = fs.Bool("plain", false, "append frames instead of clearing the screen (for logs/pipes)")
		width    = fs.Int("width", 48, "sparkline and bar width in characters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	if *width < 8 {
		return fmt.Errorf("-width must be at least 8")
	}

	if *runDir != "" {
		for i := 0; *polls == 0 || i < *polls; i++ {
			if i > 0 {
				time.Sleep(*interval)
			}
			now := time.Now()
			m, st, fl, err := blocks.CollectFleet(*runDir, now, blocks.FleetOptions{})
			if err != nil {
				return err
			}
			// Captured profiles are part of the fleet story: a straggler row
			// usually has a matching capture explaining it.
			profiles, _ := obs.ReadProfiles(blocks.ProfileDir(*runDir))
			if !*plain {
				fmt.Fprint(stdout, "\033[H\033[2J")
			}
			fmt.Fprint(stdout, renderFleet(*runDir, m, st, fl, profiles, now, *width))
			if st.Done() && fl.Alive+fl.Stale == 0 {
				break // sweep over, no one left to watch
			}
		}
		return nil
	}

	url := fmt.Sprintf("http://%s/metricz", *addr)
	client := &http.Client{Timeout: 5 * time.Second}
	var hist history
	for i := 0; *polls == 0 || i < *polls; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := fetch(client, url)
		if err != nil {
			return err
		}
		hist.push(snap)
		if !*plain {
			fmt.Fprint(stdout, "\033[H\033[2J")
		}
		fmt.Fprint(stdout, render(snap, &hist, *addr, *width))
	}
	return nil
}

// fetch pulls one registry snapshot from the /metricz endpoint.
func fetch(client *http.Client, url string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, fmt.Errorf("polling %s: %w (is the run started with -debug-addr?)", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("polling %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("polling %s: %w", url, err)
	}
	return snap, nil
}

// history accumulates the polled values the sparklines trend over.
type history struct {
	ciHalf []float64 // runner.ci_half_width per poll
	eps    []float64 // runner.events_per_sec per poll
}

func (h *history) push(s obs.Snapshot) {
	h.ciHalf = append(h.ciHalf, s.FloatGauges["runner.ci_half_width"])
	h.eps = append(h.eps, s.FloatGauges["runner.events_per_sec"])
}

// render draws one dashboard frame from a snapshot plus the poll history.
// It is a pure function of its inputs, so tests can pin the layout without
// a live HTTP endpoint.
func render(s obs.Snapshot, hist *history, addr string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cctop — %s\n\n", addr)

	reps := s.Counters["runner.replications"]
	events := s.Counters["runner.events"]
	fmt.Fprintf(&sb, "replications  %d done", reps)
	if running, ok := s.Gauges["exec.jobs_running"]; ok {
		fmt.Fprintf(&sb, ", %d running", running)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "events        %s", groupDigits(events))
	if eps := s.FloatGauges["runner.events_per_sec"]; eps > 0 {
		fmt.Fprintf(&sb, "  (%s/s)", groupDigits(uint64(eps)))
	}
	sb.WriteByte('\n')

	if len(hist.ciHalf) > 0 {
		cur := hist.ciHalf[len(hist.ciHalf)-1]
		fmt.Fprintf(&sb, "CI half-width %.3g  %s\n", cur, asciichart.Sparkline(hist.ciHalf, width))
	}
	if len(hist.eps) > 0 {
		fmt.Fprintf(&sb, "events/sec    %s\n", asciichart.Sparkline(hist.eps, width))
	}

	if bars := phaseBars(s, width); bars != "" {
		sb.WriteString("\nphase budget (simulated hours across finished replications)\n")
		sb.WriteString(bars)
	}

	if wall, ok := s.Timers["runner.replication_wall_s"]; ok && wall.Count > 0 {
		fmt.Fprintf(&sb, "\nreplication wall time  p50 %.2fs  p90 %.2fs  p99 %.2fs  (n=%d)\n",
			wall.P50, wall.P90, wall.P99, wall.Count)
	}
	if line := blocksLine(s); line != "" {
		sb.WriteString(line)
	}
	if line := memLine(s); line != "" {
		sb.WriteString(line)
	}
	return sb.String()
}

// renderFleet draws one fleet-dashboard frame for a run directory. Like
// render it is a pure function of its inputs, so tests can pin the layout
// without a live sweep.
func renderFleet(dir string, m *blocks.Manifest, st blocks.Status, fl blocks.Fleet, profiles []obs.ProfileInfo, now time.Time, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cctop — %s  sweep %s (%s, %d cells)\n\n", dir, m.Name, m.Kind, len(m.Cells))

	// Block progress bar.
	frac := 0.0
	if st.Planned > 0 {
		frac = float64(st.Complete) / float64(st.Planned)
	}
	filled := int(frac*float64(width) + 0.5)
	fmt.Fprintf(&sb, "blocks   [%s%s] %d/%d",
		strings.Repeat("█", filled), strings.Repeat("·", width-filled), st.Complete, st.Planned)
	if st.Leased > 0 {
		fmt.Fprintf(&sb, "  ·  %d running", st.Leased)
	}
	if st.Torn > 0 {
		fmt.Fprintf(&sb, "  ·  %d torn", st.Torn)
	}
	if st.Expired > 0 {
		fmt.Fprintf(&sb, "  ·  %d expired-lease", st.Expired)
	}
	sb.WriteByte('\n')

	fmt.Fprintf(&sb, "fleet    %d alive", fl.Alive)
	if fl.Stale > 0 {
		fmt.Fprintf(&sb, ", %d stale", fl.Stale)
	}
	if fl.Dead > 0 {
		fmt.Fprintf(&sb, ", %d DEAD", fl.Dead)
	}
	if fl.Exited > 0 {
		fmt.Fprintf(&sb, ", %d exited", fl.Exited)
	}
	if fl.EventsPerSec > 0 {
		fmt.Fprintf(&sb, "  ·  %s ev/s", groupDigits(uint64(fl.EventsPerSec)))
	}
	switch {
	case fl.ETAMS == 0 && st.Done():
		sb.WriteString("  ·  complete — ready to -reduce")
	case fl.ETAMS > 0:
		fmt.Fprintf(&sb, "  ·  ETA %v", (time.Duration(fl.ETAMS) * time.Millisecond).Round(time.Second))
	}
	sb.WriteByte('\n')
	if fl.MetricsErr != "" {
		fmt.Fprintf(&sb, "warning  metrics merge failed: %s\n", fl.MetricsErr)
	}
	if fl.ProvenanceMismatch {
		var bins []string
		for id, n := range fl.Binaries {
			bins = append(bins, fmt.Sprintf("%s ×%d", id, n))
		}
		sort.Strings(bins)
		fmt.Fprintf(&sb, "warning  MIXED BINARIES in one run directory: %s — results must not be merged silently\n",
			strings.Join(bins, ", "))
	}

	if len(fl.Workers) > 0 {
		fmt.Fprintf(&sb, "\n%-24s %-7s %7s %7s %6s %12s  %s\n",
			"worker", "health", "age", "block", "done", "ev/s", "note")
		for _, fw := range fl.Workers {
			age := (time.Duration(fw.AgeMS) * time.Millisecond).Round(100 * time.Millisecond)
			block := "-"
			if fw.CurrentBlock >= 0 {
				block = fmt.Sprintf("#%d", fw.CurrentBlock)
			}
			note := ""
			switch {
			case fw.Health == blocks.WorkerExited:
				note = fw.Reason
			case fw.Health == blocks.WorkerDead:
				note = "no heartbeat — " + lastFlight(fw.Heartbeat)
			case fw.Straggler:
				note = "straggler (below half the fleet median rate)"
			}
			if fw.ProvenanceOutlier {
				outlier := "DIFFERENT BINARY"
				if p := fw.Provenance; p != nil {
					outlier = "DIFFERENT BINARY " + p.BinaryID()
				}
				if note != "" {
					note += " · "
				}
				note += outlier
			}
			fmt.Fprintf(&sb, "%-24s %-7s %7s %7s %6d %12s  %s\n",
				fw.Worker, string(fw.Health), age, block, fw.Completed,
				groupDigits(uint64(fw.EventsPerSec)), note)
		}
	}

	// Per-worker committed totals from the journals themselves — this
	// covers workers that never heartbeat (older binaries).
	for _, ws := range st.Workers {
		fmt.Fprintf(&sb, "journal  %-24s %4d blocks  %12s events\n",
			ws.Worker, ws.Completed, groupDigits(ws.Events))
	}

	// Captured profiles, newest-last per worker: the in-run postmortems
	// obs.ProfileCapture committed into <run>/profiles.
	if len(profiles) > 0 {
		fmt.Fprintf(&sb, "\nprofiles (%d captured in %s)\n", len(profiles), blocks.ProfileDir(dir))
		for _, p := range profiles {
			age := now.Sub(time.UnixMilli(p.UnixMS)).Round(time.Second)
			fmt.Fprintf(&sb, "  %-24s #%03d %8s ago  %-9s %s\n",
				p.Prefix, p.Seq, age, fileKinds(p.Files), p.Reason)
		}
	}
	return sb.String()
}

// fileKinds compresses a capture's file list to its kinds ("cpu+heap+grt").
func fileKinds(files []string) string {
	var kinds []string
	for _, f := range files {
		switch {
		case strings.HasSuffix(f, "-cpu.pprof"):
			kinds = append(kinds, "cpu")
		case strings.HasSuffix(f, "-heap.pprof"):
			kinds = append(kinds, "heap")
		case strings.HasSuffix(f, "-goroutine.pprof"):
			kinds = append(kinds, "grt")
		case strings.HasSuffix(f, "-trace.out"):
			kinds = append(kinds, "trace")
		}
	}
	return strings.Join(kinds, "+")
}

// lastFlight summarises a dead worker's final flight-recorder entries —
// the postmortem its last periodic heartbeat carried.
func lastFlight(hb blocks.Heartbeat) string {
	if len(hb.Flight) == 0 {
		return "no flight events"
	}
	n := len(hb.Flight)
	tail := hb.Flight
	if n > 3 {
		tail = tail[n-3:]
	}
	parts := make([]string, 0, len(tail))
	for _, fe := range tail {
		p := fe.Kind
		if fe.Block >= 0 {
			p = fmt.Sprintf("%s #%d", fe.Kind, fe.Block)
		}
		parts = append(parts, p)
	}
	return "last: " + strings.Join(parts, ", ")
}

// blocksLine renders the sweep-block telemetry a distributed worker
// (ccsweep/ccjob -worker) publishes: claim/complete progress against the
// plan, crash reclaims, and the per-block wall-time distribution. Empty
// when the process runs no block engine (no blocks.* counters), so
// monolithic dashboards are unchanged.
func blocksLine(s obs.Snapshot) string {
	planned := s.Counters["blocks.planned"]
	if planned == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nblocks        %d/%d completed by this worker",
		s.Counters["blocks.completed"], planned)
	if claimed := s.Counters["blocks.claimed"]; claimed > 0 {
		fmt.Fprintf(&sb, " (%d claimed)", claimed)
	}
	if reclaimed := s.Counters["blocks.reclaimed"]; reclaimed > 0 {
		fmt.Fprintf(&sb, "  ·  %d reclaimed from crashed peers", reclaimed)
	}
	if skipped := s.Counters["blocks.skipped"]; skipped > 0 {
		fmt.Fprintf(&sb, "  ·  %d done elsewhere", skipped)
	}
	sb.WriteByte('\n')
	if wall, ok := s.Timers["blocks.block_wall_s"]; ok && wall.Count > 0 {
		fmt.Fprintf(&sb, "block wall    p50 %.2fs  p90 %.2fs  p99 %.2fs  (n=%d)\n",
			wall.P50, wall.P90, wall.P99, wall.Count)
	}
	return sb.String()
}

// memLine renders the allocation-economy lines: model instances built vs
// recycled, event-pool hit rate, and the GC gauges from obs.RecordMemStats.
// Empty when the run predates these metrics (no runner.instance_* counters
// and no runtime.* gauges), so old endpoints still render.
func memLine(s obs.Snapshot) string {
	var sb strings.Builder
	builds := s.Counters["runner.instance_builds"]
	recycles := s.Counters["runner.instance_recycles"]
	if builds+recycles > 0 {
		fmt.Fprintf(&sb, "\ninstances     %d built, %d recycled", builds, recycles)
		hits, misses := s.Counters["des.pool_hits"], s.Counters["des.pool_misses"]
		if hits+misses > 0 {
			fmt.Fprintf(&sb, "  ·  event pool %.1f%% hit", 100*float64(hits)/float64(hits+misses))
		}
		sb.WriteByte('\n')
	}
	if heap, ok := s.Gauges["runtime.heap_live_bytes"]; ok {
		fmt.Fprintf(&sb, "heap          %s live", formatBytes(heap))
		if objs, ok := s.Gauges["runtime.heap_objects"]; ok {
			fmt.Fprintf(&sb, " (%s objects)", groupDigits(uint64(objs)))
		}
		fmt.Fprintf(&sb, "  ·  %d GCs, %.1fms paused",
			s.Gauges["runtime.gc_count"], 1000*s.FloatGauges["runtime.gc_pause_total_s"])
		sb.WriteByte('\n')
	}
	return sb.String()
}

// formatBytes renders a byte count with a binary-prefix unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// phaseBars renders the phase.hours.* histograms as a horizontal bar chart
// of each phase's share of total simulated time. Empty when the run was not
// started with span verification (no phase.* metrics).
func phaseBars(s obs.Snapshot, width int) string {
	type row struct {
		name  string
		hours float64
	}
	var rows []row
	total := 0.0
	for name, h := range s.Histograms {
		if phase, ok := strings.CutPrefix(name, "phase.hours."); ok {
			rows = append(rows, row{phase, h.Sum})
			total += h.Sum
		}
	}
	if len(rows) == 0 || total <= 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].hours > rows[j].hours })
	var sb strings.Builder
	for _, r := range rows {
		frac := r.hours / total
		filled := int(frac*float64(width) + 0.5)
		if filled == 0 && r.hours > 0 {
			filled = 1 // non-zero phases always show at least a sliver
		}
		bar := strings.Repeat("█", filled) + strings.Repeat("·", width-filled)
		fmt.Fprintf(&sb, "  %-12s %s %6.2f%%  %.1fh\n", r.name, bar, 100*frac, r.hours)
	}
	if rb := s.Counters["phase.rollbacks"]; rb > 0 {
		fmt.Fprintf(&sb, "  rollbacks    %d\n", rb)
	}
	return sb.String()
}

// groupDigits formats n with thousands separators (1234567 → "1,234,567").
func groupDigits(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(s[i : i+3])
	}
	return sb.String()
}
