package model

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/san"
)

// RareTrajectory adapts one Instance to the level-crossing view the
// importance-splitting driver (internal/vr) needs. The importance function
// is the paper's severe-failure ladder: level 1 is reached when a failure
// puts the system into recovery, and each consecutive failure that strikes
// *during* recovery climbs one more level (the recovery_failures place,
// whose count triggers a system reboot at SevereFailureThreshold). The
// level is the running maximum over the trajectory, observed through a
// san.Simulator firing hook — strictly observational, so driven and
// plainly-run trajectories are bit-identical.
//
// One RareTrajectory wraps one Instance and is reused across all splitting
// stages via Prime (full rewind) and Reseed (future randomness only, for
// branching a replayed path mid-run).
type RareTrajectory struct {
	in     *Instance
	level  int
	levelT float64 // simulated time the current level was first reached
}

// NewRareTrajectory builds a primed trajectory for cfg. Call Prime before
// the first use.
func NewRareTrajectory(cfg cluster.Config) (*RareTrajectory, error) {
	in, err := New(cfg, 0)
	if err != nil {
		return nil, err
	}
	r := &RareTrajectory{in: in}
	pl := in.pl
	in.sim.AddFiringHook(func(t float64, _ *san.Activity, m *san.Marking) {
		if !(m.Has(pl.recoveryStage1) || m.Has(pl.recoveryStage2) || m.Has(pl.rebooting)) {
			return
		}
		if lvl := 1 + m.Get(pl.recoveryFailures); lvl > r.level {
			r.level = lvl
			r.levelT = t
		}
	})
	return r, nil
}

// Prime rewinds the trajectory to t = 0 under the given root seed.
func (r *RareTrajectory) Prime(seed uint64) {
	r.level = 0
	r.levelT = 0
	r.in.Recycle(seed)
}

// Step advances the trajectory by one event firing.
func (r *RareTrajectory) Step() bool { return r.in.sim.Step() }

// Now returns the current simulated time in hours.
func (r *RareTrajectory) Now() float64 { return r.in.sim.Now() }

// Level returns the highest importance level reached so far.
func (r *RareTrajectory) Level() int { return r.level }

// Reseed swaps the trajectory's future randomness without touching its
// state — already-scheduled events keep their times. This is the branch
// point of fixed-effort splitting: replay a recorded path to a level
// crossing, then Reseed to explore an independent continuation.
func (r *RareTrajectory) Reseed(seed uint64) { r.in.src.Reseed(seed) }

// MaxLevel returns the highest meaningful splitting level for cfg: reaching
// SevereFailureThreshold consecutive recovery failures reboots the system,
// so levels beyond 1+threshold are unreachable.
func MaxLevel(cfg cluster.Config) int { return 1 + cfg.SevereFailureThreshold }

// ValidateRareLevel checks a requested splitting level against cfg.
func ValidateRareLevel(cfg cluster.Config, level int) error {
	if level < 1 {
		return fmt.Errorf("model: rare-event level must be >= 1 (level 1 = system enters recovery)")
	}
	if max := MaxLevel(cfg); level > max {
		return fmt.Errorf("model: rare-event level %d unreachable — %d consecutive recovery failures force a reboot (max level %d)",
			level, cfg.SevereFailureThreshold, max)
	}
	return nil
}
