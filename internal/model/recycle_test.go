package model

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// runTrajectory traces one trajectory of an already-built (or recycled)
// instance to the horizon and returns the full event trace plus the final
// metrics. The trace observer is detached afterwards so the instance can be
// recycled and re-measured allocation-free.
func runTrajectory(t *testing.T, in *Instance, horizon float64) ([]traceRecord, Metrics) {
	t.Helper()
	var events []traceRecord
	in.SetTrace(func(tm float64, activity string, _ map[string]int) {
		events = append(events, traceRecord{tm, activity})
	}, false)
	defer in.SetTrace(nil, false)
	mt, err := in.RunSteadyState(horizon/2, horizon/2)
	if err != nil {
		t.Fatal(err)
	}
	return events, mt
}

// TestRecycleMatchesFreshBuild is the recycle differential test: for every
// model variant and seed, an instance that has already run an unrelated
// dirty trajectory and is then Recycle(seed)d must reproduce the trajectory
// of New(cfg, seed) bit-for-bit — same event trace, same metrics. A second
// Recycle of the same instance must match too (recycling is idempotent in
// generation, not just fresh-to-recycled).
func TestRecycleMatchesFreshBuild(t *testing.T) {
	const horizon = 3000.0
	for name, cfg := range differentialConfigs() {
		t.Run(name, func(t *testing.T) {
			// One instance per variant, dirtied once and then recycled for
			// every seed — exactly the runner's per-worker cache lifecycle.
			in, err := New(cfg, 999)
			if err != nil {
				t.Fatal(err)
			}
			in.Advance(500) // leave pending events, rewards, a warm pool
			for _, seed := range []uint64{1, 7, 42} {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					fresh, freshMt := collectTrajectory(t, cfg, seed, false, horizon)
					if len(fresh) == 0 {
						t.Fatal("empty fresh trace")
					}
					in.Recycle(seed)
					sameTrajectory(t, "recycled", fresh, freshMt, in, horizon)
					in.Recycle(seed)
					sameTrajectory(t, "re-recycled", fresh, freshMt, in, horizon)
				})
			}
		})
	}
}

// sameTrajectory runs in to the horizon and fails unless trace and metrics
// match the fresh-build reference exactly.
func sameTrajectory(t *testing.T, label string, fresh []traceRecord, freshMt Metrics, in *Instance, horizon float64) {
	t.Helper()
	got, gotMt := runTrajectory(t, in, horizon)
	if len(got) != len(fresh) {
		t.Fatalf("%s event count %d, fresh build %d", label, len(got), len(fresh))
	}
	for i := range got {
		if got[i] != fresh[i] {
			t.Fatalf("%s event %d differs: %+v, fresh build %+v", label, i, got[i], fresh[i])
		}
	}
	if gotMt != freshMt {
		t.Fatalf("%s metrics differ:\n%+v\nfresh build:\n%+v", label, gotMt, freshMt)
	}
}

// TestRecycleZeroAlloc pins the allocation contract the runner relies on:
// once an instance has run a trajectory of a given seed (pool and queue
// sized), replaying Recycle + RunSteadyState allocates nothing.
func TestRecycleZeroAlloc(t *testing.T) {
	in, err := New(cluster.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	replicate := func() error {
		in.Recycle(7)
		_, err := in.RunSteadyState(50, 200)
		return err
	}
	if err := replicate(); err != nil { // warm: size pool, queue, free list
		t.Fatal(err)
	}
	var runErr error
	avg := testing.AllocsPerRun(10, func() {
		if err := replicate(); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg != 0 {
		t.Errorf("recycled replication allocates %.1f objects, want 0", avg)
	}
}

// BenchmarkRecycleVsRebuild measures what the runner's per-worker instance
// cache buys: one replication via model.New per iteration versus one via
// Recycle on a warm instance. Compare allocs/op as well as ns/op.
func BenchmarkRecycleVsRebuild(b *testing.B) {
	cfg := cluster.Default()
	const warmup, measure = 100.0, 400.0
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			in, err := New(cfg, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := in.RunSteadyState(warmup, measure); err != nil {
				b.Fatal(err)
			}
			events += in.Fired()
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("recycle", func(b *testing.B) {
		in, err := New(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.RunSteadyState(warmup, measure); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			in.Recycle(uint64(i) + 1)
			if _, err := in.RunSteadyState(warmup, measure); err != nil {
				b.Fatal(err)
			}
			events += in.Fired() // Recycle rewinds Fired; this is per-replication
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
}
