package model

import (
	"testing"

	"repro/internal/cluster"
)

// TestPermanentFailuresExtendRecovery: the extension's reconfiguration
// time lengthens recoveries and lowers the useful-work fraction.
func TestPermanentFailuresExtendRecovery(t *testing.T) {
	base := cluster.Default()
	plain := mustNew(t, base, 70)
	mPlain, err := plain.RunSteadyState(300, 2500)
	if err != nil {
		t.Fatal(err)
	}
	perm := base
	perm.ProbPermanentFailure = 0.5
	perm.ReconfigurationTime = cluster.Minutes(30)
	pin := mustNew(t, perm, 70)
	mPerm, err := pin.RunSteadyState(300, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if mPerm.Counters.PermanentFailures == 0 {
		t.Fatal("no permanent failures recorded at p=0.5")
	}
	// Roughly half the failures should be permanent.
	ratio := float64(mPerm.Counters.PermanentFailures) / float64(mPerm.Counters.ComputeFailures)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("permanent ratio = %v, want ≈0.5", ratio)
	}
	if mPerm.UsefulWorkFraction >= mPlain.UsefulWorkFraction {
		t.Fatalf("reconfiguration did not hurt: %v vs %v",
			mPerm.UsefulWorkFraction, mPlain.UsefulWorkFraction)
	}
	if mPerm.Breakdown.Recovery <= mPlain.Breakdown.Recovery {
		t.Fatalf("recovery share did not grow: %v vs %v",
			mPerm.Breakdown.Recovery, mPlain.Breakdown.Recovery)
	}
}

// TestPermanentFlagClearedByRecovery: a successful recovery consumes the
// pending reconfiguration.
func TestPermanentFlagClearedByRecovery(t *testing.T) {
	cfg := reliable()
	cfg.ProbPermanentFailure = 1.0
	cfg.ReconfigurationTime = cluster.Minutes(5)
	in := mustNew(t, cfg, 71)
	in.Advance(0.6)
	in.computeFailure(in.sim.Marking())
	if in.Snapshot()["reconfig_needed"] != 1 {
		t.Fatal("permanent failure did not set reconfig_needed at p=1")
	}
	// Run until recovery completes.
	in.Advance(in.Now() + 5)
	snap := in.Snapshot()
	if snap["sys_up"] != 1 {
		t.Fatalf("system did not recover: %v", snap)
	}
	if snap["reconfig_needed"] != 0 {
		t.Fatal("reconfig_needed not cleared by successful recovery")
	}
}

// TestPermanentDisabledByDefault: the paper's model (p=0) never flags
// permanent failures.
func TestPermanentDisabledByDefault(t *testing.T) {
	in := mustNew(t, cluster.Default(), 72)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.PermanentFailures != 0 {
		t.Fatalf("permanent failures with p=0: %d", m.Counters.PermanentFailures)
	}
}

// TestPermanentValidation: the config demands a positive reconfiguration
// time when the probability is set.
func TestPermanentValidation(t *testing.T) {
	cfg := cluster.Default()
	cfg.ProbPermanentFailure = 0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("missing reconfiguration time accepted")
	}
	cfg.ReconfigurationTime = cluster.Minutes(10)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid extension config rejected: %v", err)
	}
	cfg.ProbPermanentFailure = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}
