package model

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vr"
)

// SetVR with both flags off must be a true no-op: an instance that toggled
// VR on and off again reproduces the plain trajectory bit for bit. This is
// the plain-mode bit-identity half of the PR's acceptance criteria at the
// model layer.
func TestSetVROffIsBitTransparent(t *testing.T) {
	const horizon = 2000.0
	for name, cfg := range differentialConfigs() {
		t.Run(name, func(t *testing.T) {
			want, wantMt := collectTrajectory(t, cfg, 11, false, horizon)
			in, err := New(cfg, 999)
			if err != nil {
				t.Fatal(err)
			}
			in.SetVR(true, true) // detour through both modes
			in.Recycle(5)
			in.Advance(200)
			in.SetVR(false, false)
			in.Recycle(11)
			sameTrajectory(t, "vr-off", want, wantMt, in, horizon)
		})
	}
}

// A reflected leg must differ from the plain leg (it is a different
// trajectory) while staying deterministic: two reflected runs of the same
// seed are identical, whether reflection was set on a fresh or a recycled
// instance.
func TestReflectedLegDeterministicAndDistinct(t *testing.T) {
	cfg := cluster.Default()
	const seed, horizon = 17, 2000.0

	plain, plainMt := collectTrajectory(t, cfg, seed, false, horizon)

	reflect := func() ([]traceRecord, Metrics) {
		in, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		in.SetVR(true, false)
		in.Recycle(seed)
		return runTrajectory(t, in, horizon)
	}
	ra, raMt := reflect()
	rb, rbMt := reflect()
	if len(ra) != len(rb) {
		t.Fatalf("reflected runs diverged: %d vs %d events", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("reflected runs diverged at event %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	if raMt.UsefulWorkFraction != rbMt.UsefulWorkFraction {
		t.Fatalf("reflected metrics diverged: %v vs %v", raMt.UsefulWorkFraction, rbMt.UsefulWorkFraction)
	}
	// Distinct from plain: same seed, mirrored draws.
	same := len(ra) == len(plain)
	if same {
		same = false
		for i := range ra {
			if ra[i] != plain[i] {
				break
			}
			if i == len(ra)-1 {
				same = true
			}
		}
	}
	if same && raMt.UsefulWorkFraction == plainMt.UsefulWorkFraction {
		t.Fatal("reflected trajectory is identical to the plain one — reflection is not reaching the simulator")
	}
}

// Under CRN routing every stochastic purpose draws from its own counted
// sub-stream; the counters must be populated and reset per Recycle, and the
// trajectory must stay deterministic in the seed.
func TestCRNDrawCountsAndDeterminism(t *testing.T) {
	cfg := cluster.Default()
	cfg.ProbCorrelated = 0.3
	cfg.CorrelatedFactor = 400
	in, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.SetVR(false, true)
	in.Recycle(21)
	a, aMt := runTrajectory(t, in, 3000)
	counts := in.DrawCounts()
	if counts == nil {
		t.Fatal("DrawCounts nil under CRN")
	}
	names := PurposeNames()
	if len(counts) != len(names) {
		t.Fatalf("%d counts for %d purposes", len(counts), len(names))
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no draws counted on any purpose")
	}
	if counts[purposeCompFailure] == 0 {
		t.Fatal("compute-failure purpose consumed no draws over a 3000h trajectory")
	}
	// Determinism: recycle with the same seed reproduces trace and counts.
	in.Recycle(21)
	b, bMt := runTrajectory(t, in, 3000)
	if len(a) != len(b) {
		t.Fatalf("CRN runs diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CRN runs diverged at event %d", i)
		}
	}
	if aMt.UsefulWorkFraction != bMt.UsefulWorkFraction {
		t.Fatalf("CRN metrics diverged")
	}
	counts2 := in.DrawCounts()
	for p := range counts {
		if counts[p] != counts2[p] {
			t.Fatalf("draw counts not reproducible: purpose %s %d vs %d", names[p], counts[p], counts2[p])
		}
	}
	// Off again → nil.
	in.SetVR(false, false)
	if in.DrawCounts() != nil {
		t.Fatal("DrawCounts should be nil with CRN off")
	}
}

// smallRareConfig shrinks the cluster so failures (and failures during
// recovery) are frequent enough to brute-force: a short-MTTF machine with a
// long MTTR, so recovery windows are wide.
func smallRareConfig() cluster.Config {
	cfg := cluster.Default()
	cfg.Processors = 4096 // 512 nodes → system MTTF ≈ 17h
	cfg.MTTFPerNode = cluster.Years(1)
	cfg.MTTR = cluster.Minutes(60) // long recovery: failures can strike inside
	return cfg
}

// The splitting driver over the real SAN must agree with brute force on a
// small config — the unbiasedness pin of the tentpole's third leg.
func TestRareTrajectorySplitMatchesBruteForce(t *testing.T) {
	cfg := smallRareConfig()
	const level = 2 // a failure strikes while the system is recovering
	if err := ValidateRareLevel(cfg, level); err != nil {
		t.Fatal(err)
	}
	tr, err := NewRareTrajectory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 48.0 // hours
	brute, err := vr.BruteForce(tr, vr.SplitOptions{Level: level, Effort: 3000, Horizon: horizon, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if brute.Probability <= 0 || brute.Probability >= 0.5 {
		t.Fatalf("brute-force P = %v; config not in the testable band", brute.Probability)
	}
	split, err := vr.SplitEstimate(tr, vr.SplitOptions{Level: level, Effort: 1500, Horizon: horizon, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if split.Probability <= 0 {
		t.Fatalf("splitting estimated zero; stage fractions %v", split.StageFractions)
	}
	// Agreement within combined binomial noise (conservative 5σ band; the
	// splitting estimator's variance is below the binomial bound at this
	// effort).
	se := math.Sqrt(brute.Probability*(1-brute.Probability)/3000) +
		math.Sqrt(split.Probability*(1-split.Probability)/1500)
	if diff := math.Abs(split.Probability - brute.Probability); diff > 5*se {
		t.Fatalf("splitting %v vs brute force %v: |Δ| = %v > 5σ = %v",
			split.Probability, brute.Probability, diff, 5*se)
	}
}

func TestValidateRareLevel(t *testing.T) {
	cfg := cluster.Default()
	if err := ValidateRareLevel(cfg, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if err := ValidateRareLevel(cfg, 1); err != nil {
		t.Errorf("level 1 rejected: %v", err)
	}
	if err := ValidateRareLevel(cfg, MaxLevel(cfg)); err != nil {
		t.Errorf("max level rejected: %v", err)
	}
	if err := ValidateRareLevel(cfg, MaxLevel(cfg)+1); err == nil {
		t.Error("unreachable level accepted")
	}
}
