// Package model assembles the paper's SAN: the twelve submodels of Table 1
// (computing & checkpointing, failure & recovery, correlated failure, and
// useful work), composed by state sharing exactly as in Figure 1, executing
// on the SAN engine of internal/san.
//
// All compute nodes are modeled as a single unit and all I/O nodes as
// another (Section 4), which is what lets the model scale to hundreds of
// thousands of processors with modest simulation cost.
package model

import "repro/internal/san"

// places collects every place of the composed model, grouped by submodel.
// Shared states appear once and are referenced by several submodels, which
// is how Figure 1's "state sharing" composition is realised.
type places struct {
	// compute_nodes submodel: the compute processors' position in the
	// checkpoint cycle (Figure 2a).
	execution     *san.Place // executing the application (initial)
	quiescing     *san.Place // stopping activity for a checkpoint
	checkpointing *san.Place // dumping state to the I/O nodes
	fsWait        *san.Place // blocked on the FS write (ablation: BlockingCheckpointWrite)

	// app_workload submodel (Figure 2c).
	appCompute *san.Place // application computing (initial)
	appIO      *san.Place // application in foreground I/O

	// master submodel (Figure 2d).
	masterSleep         *san.Place // between checkpoints (initial)
	masterCheckpointing *san.Place // protocol in progress
	timedOut            *san.Place // coordination timer expired

	// coordination submodel (Figure 2e).
	completeCoordination *san.Place // all nodes reported 'ready'

	// io_nodes submodel (Figure 2b).
	ionodeIdle     *san.Place // I/O nodes idle (initial)
	writingChkpt   *san.Place // background checkpoint write to FS
	writingAppData *san.Place // background application-data write to FS
	enableChkpt    *san.Place // buffered checkpoint awaiting FS write
	appDataPending *san.Place // application data awaiting FS write
	chkptBuffered  *san.Place // newest checkpoint still buffered in I/O memory

	// failure & recovery module.
	sysUp            *san.Place // compute subsystem operational (initial)
	recoveryStage1   *san.Place // I/O nodes reading checkpoint from the FS
	recoveryStage2   *san.Place // compute nodes reading from I/O + reinit
	recoveryFailures *san.Place // consecutive unsuccessful recoveries
	ioUp             *san.Place // I/O subsystem operational (initial)
	ioRestarting     *san.Place // all I/O nodes restarting
	rebooting        *san.Place // whole-system reboot in progress
	reconfigNeeded   *san.Place // permanent failure: spare-node reconfiguration pending
	incrSeq          *san.Place // checkpoints since the last full one (incremental extension)
	migrating        *san.Place // proactive migration after a predicted failure (migration extension)

	// correlated_failures submodel: a token marks the correlated-failure
	// window during which all failure rates are multiplied by r. The
	// window is a fixed-length burst from the triggering failure; it
	// closes on expiry or on a successful recovery.
	corrWindow *san.Place
}

// newPlaces declares all places with their initial markings (the block
// arrows of Figure 2: execution, master_sleep, compute, ionode_idle, plus
// the up flags).
func newPlaces(m *san.Model) *places {
	return &places{
		execution:     m.Place("execution", 1),
		quiescing:     m.Place("quiescing", 0),
		checkpointing: m.Place("checkpointing", 0),
		fsWait:        m.Place("fs_wait", 0),

		appCompute: m.Place("app_compute", 1),
		appIO:      m.Place("app_io", 0),

		masterSleep:         m.Place("master_sleep", 1),
		masterCheckpointing: m.Place("master_checkpointing", 0),
		timedOut:            m.Place("timedout", 0),

		completeCoordination: m.Place("complete_coordination", 0),

		ionodeIdle:     m.Place("ionode_idle", 1),
		writingChkpt:   m.Place("writing_chkpt", 0),
		writingAppData: m.Place("writing_appdata", 0),
		enableChkpt:    m.Place("enable_chkpt", 0),
		appDataPending: m.Place("appdata_pending", 0),
		chkptBuffered:  m.Place("chkpt_buffered", 0),

		sysUp:            m.Place("sys_up", 1),
		recoveryStage1:   m.Place("recovery_stage1", 0),
		recoveryStage2:   m.Place("recovery_stage2", 0),
		recoveryFailures: m.Place("recovery_failures", 0),
		ioUp:             m.Place("io_up", 1),
		ioRestarting:     m.Place("io_restarting", 0),
		rebooting:        m.Place("rebooting", 0),
		reconfigNeeded:   m.Place("reconfig_needed", 0),
		incrSeq:          m.Place("incr_seq", 0),
		migrating:        m.Place("migrating", 0),

		corrWindow: m.Place("corr_window", 0),
	}
}
