package model

import (
	"testing"

	"repro/internal/cluster"
)

// TestInvariantsHoldOnStressedConfigs turns on per-firing invariant
// checking and drives heavy trajectories across the feature matrix; any
// violation panics inside the simulator.
func TestInvariantsHoldOnStressedConfigs(t *testing.T) {
	configs := map[string]func(*cluster.Config){
		"base short mttf": func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(0.25)
			c.SevereFailureThreshold = 3
		},
		"timeout and coordination": func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(0.5)
			c.Coordination = cluster.CoordMaxOfN
			c.Timeout = cluster.Seconds(90)
		},
		"correlated windows": func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(1)
			c.ProbCorrelated = 0.3
			c.CorrelatedFactor = 800
		},
		"blocking writes": func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(0.5)
			c.BlockingCheckpointWrite = true
		},
		"everything": func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(0.5)
			c.Coordination = cluster.CoordMaxOfN
			c.Timeout = cluster.Seconds(100)
			c.ProbCorrelated = 0.2
			c.CorrelatedFactor = 400
			c.ProbPermanentFailure = 0.2
			c.ReconfigurationTime = cluster.Minutes(15)
			c.IncrementalFraction = 0.2
			c.FullCheckpointEvery = 4
			c.StragglerFraction = 0.01
			c.StragglerMTTQMultiplier = 10
		},
	}
	for name, mut := range configs {
		t.Run(name, func(t *testing.T) {
			cfg := cluster.Default()
			mut(&cfg)
			in := mustNew(t, cfg, 90)
			in.EnableInvariantChecks()
			if _, err := in.RunSteadyState(100, 1500); err != nil {
				t.Fatal(err)
			}
		})
	}
}
