package model

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/san"
)

// This file holds the config-selectable model variants beyond the paper's
// switches: the Weibull failure-distribution family (Tan & DeBardeleben
// 2019 field-data fits), proactive migration after predicted failures
// (Cappello, Casanova & Robert 2009), and the adaptive checkpoint-interval
// controller (malleable intervals, Raghavendra & Vadhiyar). All three are
// reachable purely from cluster.Config — and hence from scenario files —
// and all three leave the paper's default configurations bit-identical:
// under the defaults every code path below reduces to the pre-existing
// behavior without consuming extra random numbers.

// failureDelay samples the next failure inter-arrival time for the given
// (possibly marking-dependent) rate. Under the exponential default this is
// exactly the historic rng.Exponential draw; under FailureWeibull the scale
// is derived from the precomputed Γ(1+1/k) so the mean stays 1/rate — the
// configured MTTF is preserved, only the burstiness changes. Both branches
// consume exactly one uniform from src.
//
// Weibull inter-arrivals are not memoryless, so the correlated-window
// reactivation (which resamples the clock when the window opens or closes)
// is an approximation: each resample restarts the Weibull age. That matches
// the usual renewal treatment of rate-modulated Weibull processes and errs
// toward more frequent failures for shape < 1.
func (in *Instance) failureDelay(rate float64, src rng.Source) float64 {
	mean := 1 / rate
	if in.cfg.FailureDist == cluster.FailureWeibull {
		return rng.Weibull{Shape: in.cfg.FailureShape, Scale: mean / in.weibullMeanDivisor}.Sample(src)
	}
	return rng.Exponential{MeanValue: mean}.Sample(src)
}

// intervalDelay is the checkpoint_trigger delay: the configured interval,
// or — when AdaptiveInterval is set — Young's first-order optimum
// √(2·overhead·MTBF̂) re-evaluated every time the master re-arms, with
// MTBF̂ the trajectory's observed mean time between failures (compute and
// I/O subsystems combined). Until the first failure the configured
// interval serves as the prior. The estimate is clamped to the configured
// [min, max] band so a lucky failure-free stretch cannot push checkpoints
// arbitrarily far apart.
func (in *Instance) intervalDelay(*san.Marking, rng.Source) float64 {
	cfg := &in.cfg
	if !cfg.AdaptiveInterval {
		return cfg.CheckpointInterval
	}
	fails := in.counters.ComputeFailures + in.counters.IOFailures
	if fails == 0 {
		return clampInterval(cfg, cfg.CheckpointInterval)
	}
	// A failure has fired, so the simulator exists and has advanced.
	mtbf := in.sim.Now() / float64(fails)
	overhead := cfg.MTTQ + cfg.CheckpointDumpTime()
	return clampInterval(cfg, math.Sqrt(2*overhead*mtbf))
}

// clampInterval bounds the controller's recommendation to the configured
// adaptive band.
func clampInterval(cfg *cluster.Config, iv float64) float64 {
	if iv < cfg.AdaptiveIntervalMin {
		return cfg.AdaptiveIntervalMin
	}
	if iv > cfg.AdaptiveIntervalMax {
		return cfg.AdaptiveIntervalMax
	}
	return iv
}

// maybeMigrate intercepts a compute-subsystem failure when the failure
// predictor announced it in time: with probability FailurePredictionAccuracy
// the endangered processes migrate to spare nodes instead of crashing. The
// migration pauses the application (no useful work accrues, any checkpoint
// protocol in progress is abandoned exactly as on a real failure) but loses
// no work: there is no rollback, the buffered and durable checkpoints stay
// valid, and recovery never starts. Returns true when the failure was
// absorbed. Consumes no randomness when the extension is disabled.
func (in *Instance) maybeMigrate(m *san.Marking) bool {
	cfg := &in.cfg
	if cfg.FailurePredictionAccuracy <= 0 || in.u01(purposeMigration) >= cfg.FailurePredictionAccuracy {
		return false
	}
	pl := in.pl
	in.counters.Migrations++

	// Pause the compute side wherever it was; the system itself stays up
	// (sysUp keeps its token), so unpredicted failures can still strike
	// mid-migration and trigger a genuine rollback.
	m.Clear(pl.execution)
	m.Clear(pl.quiescing)
	m.Clear(pl.checkpointing)
	m.Clear(pl.fsWait)

	// Abandon any checkpoint protocol in flight; a partially dumped
	// checkpoint is discarded and the previous one remains valid, as on
	// an ordinary failure (Section 3.2).
	m.Clear(pl.completeCoordination)
	m.Clear(pl.timedOut)
	m.Set(pl.masterSleep, 1)
	m.Clear(pl.masterCheckpointing)
	in.resetApp(m)

	m.Set(pl.migrating, 1)
	return true
}

// addMigration wires the migration submodel: a deterministic pause after
// which the application resumes exactly where the predictor interrupted it,
// with no work lost. The activity exists only when the extension is
// enabled, so legacy nets keep their exact structure.
func (in *Instance) addMigration() {
	pl, cfg := in.pl, in.cfg
	if cfg.FailurePredictionAccuracy <= 0 {
		return
	}
	in.mod.AddTimed(san.Activity{
		Name:  "migrate_complete",
		Input: san.AllOf(pl.migrating, pl.sysUp),
		Delay: det(cfg.MigrationTime),
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.migrating)
			m.Set(pl.execution, 1)
		}),
	})
}
