package model

import "repro/internal/rng"

// Variance-reduction plumbing for an Instance. Two orthogonal modes, both
// off by default and bit-transparent when off:
//
//   - reflected: the simulator draws through an rng.Antithetic wrapper and
//     the output-gate decisions reflect their uniforms, so the whole
//     trajectory is the antithetic mirror of the plain one with the same
//     seed. runner.Estimate schedules (plain, reflected) pairs sharing a
//     seed and averages them (DESIGN.md §19).
//
//   - crn: every random purpose draws from its own sub-stream derived from
//     the replication seed by a stable per-purpose Split label, instead of
//     the single interleaved simulator stream. Two configurations run with
//     the same seed then consume the same failure sequence even when one of
//     them draws more or fewer variates elsewhere — the common-random-
//     numbers hardening for runner.Compare. Each purpose stream is wrapped
//     in a draw counter so a SyncReport can quantify residual divergence.
//
// Both flags only take full effect at the next Recycle: the initial settle
// samples delays, so the trajectory must be rebuilt under the new routing.

// purpose enumerates the independent random uses of a trajectory. The order
// is frozen — it defines both the Split labels of the CRN sub-streams and
// the layout of DrawCounts.
type purpose int

const (
	purposeCompFailure purpose = iota
	purposeRecoveryFailure
	purposeIOFailure
	purposeRecovery
	purposeIORestart
	purposeCoord
	purposePermanent
	purposeCorrWindow
	purposeMigration
	numPurposes
)

var purposeNames = [numPurposes]string{
	"comp_failure", "recovery_failure", "io_failure", "recovery",
	"io_restart", "coord", "permanent", "corr_window", "migration",
}

// PurposeNames returns the stable names of the per-purpose CRN sub-streams,
// index-aligned with DrawCounts.
func PurposeNames() []string {
	out := make([]string, numPurposes)
	copy(out, purposeNames[:])
	return out
}

// crnSalt decorrelates the CRN root from the plain trajectory stream, which
// is seeded from the same replication seed.
const crnSalt = 0x43524e5f73616c74 // "CRN_salt"

// SetVR selects the instance's variance-reduction routing. It may be called
// repeatedly (the runner alternates legs on cached instances); call it
// before Recycle so the initial settle already draws through the new
// routing. With both flags false the instance is bit-identical to one that
// never saw this method.
func (in *Instance) SetVR(reflected, crn bool) {
	in.vrReflected, in.vrCRN = reflected, crn
	if reflected {
		in.sim.SetSource(rng.Antithetic{Inner: in.src})
	} else {
		in.sim.SetSource(in.src)
	}
	if !crn {
		in.purposes = [numPurposes]*rng.Counter{}
	}
}

// VRReflected reports whether the instance runs the reflected leg.
func (in *Instance) VRReflected() bool { return in.vrReflected }

// DrawCounts returns the number of variates each purpose consumed in the
// current trajectory (nil unless CRN routing is on). Index-aligned with
// PurposeNames.
func (in *Instance) DrawCounts() []uint64 {
	if !in.vrCRN {
		return nil
	}
	out := make([]uint64, numPurposes)
	for p, c := range in.purposes {
		if c != nil {
			out[p] = c.N
		}
	}
	return out
}

// derivePurposes builds the per-purpose CRN sub-streams for one
// replication. Every purpose splits off a salted root with its own stable
// label, so configuration A's k-th failure draw pairs with configuration
// B's k-th failure draw regardless of what either config consumes for other
// purposes.
func (in *Instance) derivePurposes(seed uint64) {
	root := rng.New(seed ^ crnSalt)
	for p := purpose(0); p < numPurposes; p++ {
		var s rng.Source = root.Split(uint64(p) + 1)
		if in.vrReflected {
			s = rng.Antithetic{Inner: s}
		}
		in.purposes[p] = &rng.Counter{Src: s}
	}
}

// delaySrc routes a timed activity's delay sampling: the purpose sub-stream
// under CRN, otherwise the source the simulator passed in (which is the
// antithetic wrapper on reflected legs). The non-CRN path returns src
// untouched, so plain trajectories are bit-identical to the pre-VR code.
func (in *Instance) delaySrc(p purpose, src rng.Source) rng.Source {
	if in.vrCRN {
		return in.purposes[p]
	}
	return src
}

// u01 draws the uniform behind an output-gate decision (permanent-failure,
// correlated-window, migration). Gates draw from the instance stream rather
// than the simulator source, so reflected legs reflect here explicitly; CRN
// routes to the purpose sub-stream.
func (in *Instance) u01(p purpose) float64 {
	if in.vrCRN {
		return in.purposes[p].Float64()
	}
	u := in.src.Float64()
	if in.vrReflected {
		u = rng.Reflect(u)
	}
	return u
}
