package model

import (
	"testing"

	"repro/internal/cluster"
)

// TestBlockingWriteCostsThroughput: without the two-step background I/O
// (paper footnote 1) the file-system write joins the critical path, so the
// failure-free fraction drops by roughly writeTime/interval ≈ 7 %.
func TestBlockingWriteCostsThroughput(t *testing.T) {
	bg := reliable()
	background := mustNew(t, bg, 40)
	mBG, err := background.RunSteadyState(100, 1500)
	if err != nil {
		t.Fatal(err)
	}
	bl := reliable()
	bl.BlockingCheckpointWrite = true
	blocking := mustNew(t, bl, 40)
	mBL, err := blocking.RunSteadyState(100, 1500)
	if err != nil {
		t.Fatal(err)
	}
	gap := mBG.UsefulWorkFraction - mBL.UsefulWorkFraction
	// Expected extra overhead per 30-min cycle: the 131 s FS write.
	want := bl.CheckpointFSWriteTime() / bl.CheckpointInterval
	if gap < want*0.5 || gap > want*1.5 {
		t.Fatalf("blocking-write gap = %v, want ≈ %v", gap, want)
	}
	if mBL.Counters.CheckpointsDumped == 0 || mBL.Counters.CheckpointsWritten == 0 {
		t.Fatalf("blocking mode did not checkpoint: %+v", mBL.Counters)
	}
}

// TestBlockingWriteSurvivesFailures: the blocking ablation must stay
// structurally sound under heavy failures (state machine does not wedge).
func TestBlockingWriteSurvivesFailures(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(0.25)
	cfg.BlockingCheckpointWrite = true
	in := mustNew(t, cfg, 41)
	m, err := in.RunSteadyState(200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.ComputeFailures == 0 || m.Counters.CheckpointsDumped == 0 {
		t.Fatalf("blocking run degenerate: %+v", m.Counters)
	}
	if m.UsefulWorkFraction <= 0 || m.UsefulWorkFraction >= 1 {
		t.Fatalf("fraction = %v", m.UsefulWorkFraction)
	}
}

// TestNoBufferedRecoveryHurts: ignoring the I/O-node buffers forces stage-1
// recovery and larger rollbacks, so the fraction must drop.
func TestNoBufferedRecoveryHurts(t *testing.T) {
	base := cluster.Default() // MTTF 1yr, plenty of failures
	with := mustNew(t, base, 42)
	mWith, err := with.RunSteadyState(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	no := base
	no.NoBufferedRecovery = true
	without := mustNew(t, no, 42)
	mWithout, err := without.RunSteadyState(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if mWithout.UsefulWorkFraction >= mWith.UsefulWorkFraction {
		t.Fatalf("no-buffer recovery did not hurt: %v vs %v",
			mWithout.UsefulWorkFraction, mWith.UsefulWorkFraction)
	}
}

// TestNoBufferedRecoveryAlwaysStage1: a failure right after a dump must
// enter stage 1 despite the fresh buffer.
func TestNoBufferedRecoveryAlwaysStage1(t *testing.T) {
	cfg := reliable()
	cfg.NoBufferedRecovery = true
	in := mustNew(t, cfg, 43)
	in.Advance(0.6) // past the first checkpoint; buffer exists
	if in.Snapshot()["chkpt_buffered"] != 1 {
		t.Fatal("no buffered checkpoint to ignore")
	}
	in.computeFailure(in.sim.Marking())
	snap := in.Snapshot()
	if snap["recovery_stage1"] != 1 || snap["recovery_stage2"] != 0 {
		t.Fatalf("recovery should ignore the buffer: %v", snap)
	}
}

// TestNoBufferedRecoveryRollsBackToDurable: work secured only by the buffer
// is lost when the buffer is not used for recovery.
func TestNoBufferedRecoveryRollsBackToDurable(t *testing.T) {
	cfg := reliable()
	cfg.NoBufferedRecovery = true
	in := mustNew(t, cfg, 44)
	// Step into the window after the first dump but before its FS write
	// completes: capB > capD.
	for in.Now() < 2 && in.SecuredBuffered() <= in.SecuredDurable() {
		if !in.sim.Step() {
			break
		}
	}
	if in.SecuredBuffered() <= in.SecuredDurable() {
		t.Skip("no buffered-ahead window observed")
	}
	durable := in.SecuredDurable()
	in.computeFailure(in.sim.Marking())
	if got := in.Useful(); got != durable {
		t.Fatalf("useful after failure = %v, want durable level %v", got, durable)
	}
}

// TestBlockingWriteStateHasFsWaitExclusive: fs_wait participates in the
// compute-unit state exclusivity.
func TestBlockingWriteStateExclusive(t *testing.T) {
	cfg := cluster.Default()
	cfg.BlockingCheckpointWrite = true
	cfg.MTTFPerNode = cluster.Years(0.5)
	in := mustNew(t, cfg, 45)
	for step := 0; step < 2000; step++ {
		if !in.sim.Step() {
			break
		}
		snap := in.Snapshot()
		if snap["execution"]+snap["quiescing"]+snap["checkpointing"]+snap["fs_wait"] > 1 {
			t.Fatalf("compute unit in two states at t=%v: %v", in.Now(), snap)
		}
		if snap["fs_wait"] == 1 && snap["master_checkpointing"] != 1 {
			t.Fatalf("fs_wait without master in protocol at t=%v: %v", in.Now(), snap)
		}
	}
}
