package model

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// TestBreakdownSumsToOne: the macro states partition wall time.
func TestBreakdownSumsToOne(t *testing.T) {
	configs := map[string]cluster.Config{
		"reliable": reliable(),
		"base":     cluster.Default(),
		"stressed": func() cluster.Config {
			c := cluster.Default()
			c.MTTFPerNode = cluster.Years(0.25)
			c.SevereFailureThreshold = 3
			return c
		}(),
		"blocking": func() cluster.Config {
			c := cluster.Default()
			c.BlockingCheckpointWrite = true
			return c
		}(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			in := mustNew(t, cfg, 60)
			m, err := in.RunSteadyState(100, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if s := m.Breakdown.Sum(); math.Abs(s-1) > 1e-9 {
				t.Fatalf("breakdown sums to %v: %+v", s, m.Breakdown)
			}
		})
	}
}

// TestBreakdownFailureFree: a reliable system spends no time recovering or
// rebooting, and its execution share matches the useful-work fraction.
func TestBreakdownFailureFree(t *testing.T) {
	in := mustNew(t, reliable(), 61)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Breakdown
	if b.Recovery != 0 || b.Reboot != 0 || b.FSWait != 0 {
		t.Fatalf("reliable system has failure-time: %+v", b)
	}
	if math.Abs(b.Execution-m.UsefulWorkFraction) > 1e-9 {
		t.Fatalf("execution %v != useful fraction %v without failures", b.Execution, m.UsefulWorkFraction)
	}
	if m.RepeatedWorkFraction != 0 {
		t.Fatalf("repeated work on reliable system: %v", m.RepeatedWorkFraction)
	}
	if b.Quiesce <= 0 || b.Dump <= 0 {
		t.Fatalf("checkpoint phases missing from breakdown: %+v", b)
	}
	// Quiesce ≈ 10 s per ~31 min cycle; dump ≈ 46.8 s per cycle.
	if b.Dump < b.Quiesce {
		t.Fatalf("dump share %v should exceed quiesce share %v (46.8s vs 10s)", b.Dump, b.Quiesce)
	}
}

// TestBreakdownPaperHeadline: at the Figure 4a peak (128K procs, MTTF
// 1 yr) more than half the machine's time goes to failure handling —
// repeated work + recovery + reboot (§7.1: "over 50% of system time is
// spent in handling failures").
func TestBreakdownPaperHeadline(t *testing.T) {
	cfg := cluster.Default()
	cfg.Processors = 128 * 1024
	in := mustNew(t, cfg, 62)
	m, err := in.RunSteadyState(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	failureShare := m.RepeatedWorkFraction + m.Breakdown.Recovery + m.Breakdown.Reboot
	if failureShare < 0.4 {
		t.Fatalf("failure handling share = %v, paper says > 0.5 at the peak", failureShare)
	}
	if m.UsefulWorkFraction+failureShare > 1.0+1e-9 {
		t.Fatalf("useful + failure share exceed 1: %v + %v", m.UsefulWorkFraction, failureShare)
	}
}

// TestBreakdownBlockingWriteHasFSWait: the blocking ablation shows up as a
// non-zero FSWait share close to writeTime/interval.
func TestBreakdownBlockingWriteHasFSWait(t *testing.T) {
	cfg := reliable()
	cfg.BlockingCheckpointWrite = true
	in := mustNew(t, cfg, 63)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.CheckpointFSWriteTime() / cfg.CheckpointInterval
	if m.Breakdown.FSWait < want*0.5 || m.Breakdown.FSWait > want*1.5 {
		t.Fatalf("FSWait share = %v, want ≈ %v", m.Breakdown.FSWait, want)
	}
}

// TestBreakdownRecoveryGrowsWithFailures: recovery share increases with
// the failure rate.
func TestBreakdownRecoveryGrowsWithFailures(t *testing.T) {
	shares := make([]float64, 0, 2)
	for i, mttf := range []float64{2, 0.25} {
		cfg := cluster.Default()
		cfg.MTTFPerNode = cluster.Years(mttf)
		in := mustNew(t, cfg, uint64(64+i))
		m, err := in.RunSteadyState(200, 1500)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, m.Breakdown.Recovery)
	}
	if shares[1] <= shares[0] {
		t.Fatalf("recovery share did not grow with failure rate: %v", shares)
	}
}

func TestBreakdownZeroWindow(t *testing.T) {
	var from, to [6]float64
	if b := breakdownBetween(from, to, 0); b.Sum() != 0 {
		t.Fatal("zero window should give empty breakdown")
	}
}

func TestBreakdownOverhead(t *testing.T) {
	b := Breakdown{Execution: 0.7, Quiesce: 0.1, Dump: 0.1, Recovery: 0.1}
	if math.Abs(b.Overhead()-0.3) > 1e-12 {
		t.Fatalf("overhead = %v", b.Overhead())
	}
}

// TestLostWorkStatistics: with a 30-minute interval, failures land
// uniformly within the cycle, so the mean rollback discards roughly a
// quarter hour of work (plus protocol-phase losses), and no single
// rollback can exceed a couple of intervals under independent failures.
func TestLostWorkStatistics(t *testing.T) {
	cfg := cluster.Default()
	in := mustNew(t, cfg, 66)
	m, err := in.RunSteadyState(300, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.ComputeFailures == 0 {
		t.Fatal("no failures to measure")
	}
	if m.MeanLostWorkPerFailure < 0.15 || m.MeanLostWorkPerFailure > 0.45 {
		t.Fatalf("mean lost work = %v h, want ≈ 0.25-0.3 h", m.MeanLostWorkPerFailure)
	}
	if m.MaxLostWork < m.MeanLostWorkPerFailure {
		t.Fatalf("max %v below mean %v", m.MaxLostWork, m.MeanLostWorkPerFailure)
	}
	// Consistency: repeated-work share ≈ failures × meanLost / time.
	approx := float64(m.Counters.ComputeFailures) * m.MeanLostWorkPerFailure / (3000 + 300)
	if m.RepeatedWorkFraction < approx*0.6 || m.RepeatedWorkFraction > approx*1.5 {
		t.Fatalf("repeated-work %v inconsistent with loss stats %v", m.RepeatedWorkFraction, approx)
	}
}

// TestNoLossWithoutFailures: the loss statistics stay zero on a reliable
// system.
func TestNoLossWithoutFailures(t *testing.T) {
	in := mustNew(t, reliable(), 67)
	m, err := in.RunSteadyState(50, 500)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanLostWorkPerFailure != 0 || m.MaxLostWork != 0 {
		t.Fatalf("loss stats nonzero on reliable system: %v / %v", m.MeanLostWorkPerFailure, m.MaxLostWork)
	}
}
