package model

import (
	"repro/internal/phasetrace"
	"repro/internal/san"
)

// phaseState digests the marking into the handful of booleans the phase
// recorder classifies spans from.
func (in *Instance) phaseState(m *san.Marking) phasetrace.State {
	pl := in.pl
	return phasetrace.State{
		Execution:      m.Get(pl.execution) > 0,
		Quiescing:      m.Get(pl.quiescing) > 0,
		Checkpointing:  m.Get(pl.checkpointing) > 0,
		FSWait:         m.Get(pl.fsWait) > 0,
		RecoveryStage1: m.Get(pl.recoveryStage1) > 0,
		RecoveryStage2: m.Get(pl.recoveryStage2) > 0,
		Rebooting:      m.Get(pl.rebooting) > 0,
		Migrating:      m.Get(pl.migrating) > 0,
		SysUp:          m.Get(pl.sysUp) > 0,
	}
}

// AttachPhases wires a phase-span recorder to the instance's simulator via
// a firing hook and returns it. The hook reads the post-firing marking
// directly (no map snapshot), so phase recording costs a few place reads
// per firing and — being purely observational — provably cannot change the
// trajectory (see TestPhaseRecordingIsObservational).
//
// Attach before the first RunSteadyState/Advance call: the recorder opens
// its first span at the instance's current time and state. The returned
// recorder is live until the instance is recycled or discarded; call Finish
// at the horizon to extract the timeline.
//
// The simulator's hook list is append-only, so the instance registers one
// forwarding hook on first use and routes it through in.phaseRec. That is
// what lets a recycled instance attach a fresh recorder per replication
// without accumulating hooks (each Recycle detaches the previous recorder).
func (in *Instance) AttachPhases() *phasetrace.Recorder {
	rec := phasetrace.NewRecorder(phasetrace.Options{
		NoBufferedRecovery: in.cfg.NoBufferedRecovery,
	})
	rec.Begin(in.sim.Now(), in.phaseState(in.sim.CurrentMarking()))
	in.phaseRec = rec
	if !in.phaseHook {
		in.phaseHook = true
		in.sim.AddFiringHook(func(t float64, a *san.Activity, m *san.Marking) {
			if r := in.phaseRec; r != nil {
				r.Observe(t, a.Name, in.phaseState(m))
			}
		})
	}
	return rec
}
