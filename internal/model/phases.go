package model

import (
	"repro/internal/phasetrace"
	"repro/internal/san"
)

// AttachPhases wires a phase-span recorder to the instance's simulator via
// a firing hook and returns it. The hook reads the post-firing marking
// directly (no map snapshot), so phase recording costs a few place reads
// per firing and — being purely observational — provably cannot change the
// trajectory (see TestPhaseRecordingIsObservational).
//
// Attach before the first RunSteadyState/Advance call: the recorder opens
// its first span at the instance's current time and state. The returned
// recorder is live until the simulator is discarded; call Finish at the
// horizon to extract the timeline.
func (in *Instance) AttachPhases() *phasetrace.Recorder {
	rec := phasetrace.NewRecorder(phasetrace.Options{
		NoBufferedRecovery: in.cfg.NoBufferedRecovery,
	})
	pl := in.pl
	digest := func(m *san.Marking) phasetrace.State {
		return phasetrace.State{
			Execution:      m.Get(pl.execution) > 0,
			Quiescing:      m.Get(pl.quiescing) > 0,
			Checkpointing:  m.Get(pl.checkpointing) > 0,
			FSWait:         m.Get(pl.fsWait) > 0,
			RecoveryStage1: m.Get(pl.recoveryStage1) > 0,
			RecoveryStage2: m.Get(pl.recoveryStage2) > 0,
			Rebooting:      m.Get(pl.rebooting) > 0,
			SysUp:          m.Get(pl.sysUp) > 0,
		}
	}
	rec.Begin(in.sim.Now(), digest(in.sim.CurrentMarking()))
	in.sim.AddFiringHook(func(t float64, a *san.Activity, m *san.Marking) {
		rec.Observe(t, a.Name, digest(m))
	})
	return rec
}
