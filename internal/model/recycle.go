package model

import "repro/internal/stats"

// Recycle rewinds the instance to the state New(cfg, seed) would return,
// without reconstructing anything: the SAN graph, its dependency index, the
// reward registrations and the simulator (engine, event pool, queue storage,
// per-activity caches) are all reused. Only trajectory state is rewound —
// the random stream is reseeded in place, the reward scalars and counters
// are zeroed, any attached phase recorder is detached, and san.Simulator.
// Reset restores the initial marking and reschedules the initial events.
//
// A recycled instance reproduces the trajectory of a freshly built one
// bit-for-bit (pinned by TestRecycleMatchesFreshBuild across every model
// variant × seed): the reseeded stream emits the same values, the reset
// engine restarts its FIFO sequence numbers, and the initial settle
// reconciles in creation order exactly as at construction. This is what
// lets runner workers build each model configuration once and reuse it for
// all their replications with zero allocations in the measured window.
//
// The seed ordering matters: the stream is reseeded before sim.Reset,
// because the initial settle already samples activity delays.
func (in *Instance) Recycle(seed uint64) {
	in.src.Reseed(seed)
	if in.vrCRN {
		// Fresh per-purpose CRN sub-streams (and draw counters) for the
		// new replication, derived before sim.Reset for the same reason
		// the main stream is reseeded first.
		in.derivePurposes(seed)
	}
	in.pendingWriteScale = 1
	in.lost = 0
	in.capB = 0
	in.capD = 0
	in.lossStats = stats.Accumulator{}
	in.counters = Counters{}
	in.phaseRec = nil
	in.sim.Reset()
}

// PoolStats exposes the engine's event-pool telemetry for this trajectory:
// Schedule calls served from the free list, Schedule calls that allocated,
// and the events currently pooled. Hits and misses rewind on Recycle, so
// they describe the current replication only.
func (in *Instance) PoolStats() (hits, misses uint64, size int) {
	return in.sim.PoolStats()
}
