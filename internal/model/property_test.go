package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

// randomConfig derives a valid configuration from raw fuzz inputs,
// spanning coordination modes, timeouts, correlated failures, ablations
// and the permanent-failure extension.
func randomConfig(procsRaw, mttfRaw, intervalRaw, mttqRaw uint16, flags uint8) cluster.Config {
	cfg := cluster.Default()
	cfg.Processors = (int(procsRaw)%4096 + 64) * 8
	cfg.MTTFPerNode = cluster.Years(float64(mttfRaw%32)/8 + 0.125)
	cfg.CheckpointInterval = cluster.Minutes(float64(intervalRaw%226) + 15)
	cfg.MTTQ = cluster.Seconds(float64(mttqRaw%100)/10 + 0.5)
	switch flags % 3 {
	case 0:
		cfg.Coordination = cluster.CoordFixed
	case 1:
		cfg.Coordination = cluster.CoordNone
	default:
		cfg.Coordination = cluster.CoordMaxOfN
	}
	if flags&4 != 0 {
		cfg.Timeout = cluster.Seconds(float64(flags%120) + 20)
	}
	if flags&8 != 0 {
		cfg.ProbCorrelated = 0.2
		cfg.CorrelatedFactor = 400
	}
	if flags&16 != 0 {
		cfg.BlockingCheckpointWrite = true
	}
	if flags&32 != 0 {
		cfg.NoBufferedRecovery = true
	}
	if flags&64 != 0 {
		cfg.ProbPermanentFailure = 0.3
		cfg.ReconfigurationTime = cluster.Minutes(20)
	}
	if flags&128 != 0 {
		cfg.GenericCorrelatedCoefficient = 0.0025
		cfg.CorrelatedFactor = 400
	}
	return cfg
}

// TestModelInvariantsUnderRandomConfigs drives short trajectories of
// arbitrary valid configurations and checks the global invariants: the
// fraction lies in [0,1], secured work is ordered capD ≤ capB ≤ useful,
// the time breakdown partitions the window, and FS-written checkpoints
// never exceed dumped ones.
func TestModelInvariantsUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, procsRaw, mttfRaw, intervalRaw, mttqRaw uint16, flags uint8) bool {
		cfg := randomConfig(procsRaw, mttfRaw, intervalRaw, mttqRaw, flags)
		if err := cfg.Validate(); err != nil {
			t.Logf("generated invalid config: %v", err)
			return false
		}
		in, err := New(cfg, seed)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		m, err := in.RunSteadyState(20, 200)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if m.UsefulWorkFraction < 0 || m.UsefulWorkFraction > 1 {
			t.Logf("fraction %v out of range", m.UsefulWorkFraction)
			return false
		}
		u, b, d := in.Useful(), in.SecuredBuffered(), in.SecuredDurable()
		if d > b+1e-9 || b > u+1e-9 {
			t.Logf("cap ordering broken: d=%v b=%v u=%v", d, b, u)
			return false
		}
		if s := m.Breakdown.Sum(); math.Abs(s-1) > 1e-6 {
			t.Logf("breakdown sums to %v", s)
			return false
		}
		if m.Counters.CheckpointsWritten > m.Counters.CheckpointsDumped {
			t.Logf("written %d > dumped %d", m.Counters.CheckpointsWritten, m.Counters.CheckpointsDumped)
			return false
		}
		if m.RepeatedWorkFraction < 0 || m.RepeatedWorkFraction > m.Breakdown.Execution+1e-9 {
			t.Logf("repeated work %v inconsistent with execution %v",
				m.RepeatedWorkFraction, m.Breakdown.Execution)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestModelDeterminismUnderRandomConfigs: identical (config, seed) pairs
// give identical trajectories for arbitrary configurations.
func TestModelDeterminismUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, procsRaw, mttfRaw uint16, flags uint8) bool {
		cfg := randomConfig(procsRaw, mttfRaw, 500, 100, flags)
		run := func() (Metrics, bool) {
			in, err := New(cfg, seed)
			if err != nil {
				return Metrics{}, false
			}
			m, err := in.RunSteadyState(10, 150)
			return m, err == nil
		}
		a, okA := run()
		b, okB := run()
		if !okA || !okB {
			return false
		}
		return a.UsefulWorkFraction == b.UsefulWorkFraction && a.Counters == b.Counters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
