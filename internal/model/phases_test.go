package model

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/phasetrace"
)

// aggressive returns a config that exercises failures, recoveries and
// reboots within a short horizon, so phase extraction sees every phase.
func aggressive() cluster.Config {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(10)
	return cfg
}

// TestPhaseRecordingIsObservational pins the differential guarantee:
// attaching a phase recorder never changes the trajectory. Two instances,
// same seed, one traced — bitwise-identical metrics and event counts.
func TestPhaseRecordingIsObservational(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		plain := mustNew(t, aggressive(), seed)
		traced := mustNew(t, aggressive(), seed)
		rec := traced.AttachPhases()

		mPlain, err := plain.RunSteadyState(50, 400)
		if err != nil {
			t.Fatal(err)
		}
		mTraced, err := traced.RunSteadyState(50, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mPlain, mTraced) {
			t.Errorf("seed %d: tracing changed the metrics:\nplain  %+v\ntraced %+v", seed, mPlain, mTraced)
		}
		if plain.Fired() != traced.Fired() {
			t.Errorf("seed %d: tracing changed the event count: %d vs %d", seed, plain.Fired(), traced.Fired())
		}
		if tl := rec.Finish(traced.Now()); len(tl.Spans) == 0 {
			t.Errorf("seed %d: recorder saw no spans", seed)
		}
	}
}

// TestTimelineTilesHorizon: the spans of a timeline partition [0, horizon]
// exactly — no gaps, no overlaps, budget total == horizon.
func TestTimelineTilesHorizon(t *testing.T) {
	in := mustNew(t, aggressive(), 3)
	rec := in.AttachPhases()
	in.Advance(500)
	tl := rec.Finish(in.Now())
	if len(tl.Spans) < 3 {
		t.Fatalf("expected a real timeline, got %d spans", len(tl.Spans))
	}
	prev := 0.0
	for i, sp := range tl.Spans {
		if sp.Start != prev {
			t.Fatalf("span %d starts at %v, previous ended at %v", i, sp.Start, prev)
		}
		if sp.End <= sp.Start {
			t.Fatalf("span %d not positive: %+v", i, sp)
		}
		prev = sp.End
	}
	if prev != 500 {
		t.Fatalf("last span ends at %v, want 500", prev)
	}
	if got := tl.Budget().Total(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("budget total %v, want 500", got)
	}
}

// TestSpanUsefulMatchesReward is the heart of the self-verification story:
// the span-derived useful-work fraction must re-derive the reward-based
// estimate — same trajectory, independent bookkeeping — for each variant.
func TestSpanUsefulMatchesReward(t *testing.T) {
	variants := map[string]func() cluster.Config{
		"base": aggressive,
		"timeout": func() cluster.Config {
			cfg := aggressive()
			cfg.Timeout = cluster.Seconds(120)
			return cfg
		},
		"correlated": func() cluster.Config {
			cfg := aggressive()
			cfg.ProbCorrelated = 0.3
			cfg.CorrelatedFactor = 100
			return cfg
		},
		"max-of-n": func() cluster.Config {
			cfg := aggressive()
			cfg.Coordination = cluster.CoordMaxOfN
			return cfg
		},
		"no-buffered-recovery": func() cluster.Config {
			cfg := aggressive()
			cfg.NoBufferedRecovery = true
			return cfg
		},
		"blocking-fs-write": func() cluster.Config {
			cfg := aggressive()
			cfg.BlockingCheckpointWrite = true
			return cfg
		},
	}
	const warmup, measure = 100, 800
	for name, mkCfg := range variants {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 3} {
				in := mustNew(t, mkCfg(), seed)
				rec := in.AttachPhases()
				m, err := in.RunSteadyState(warmup, measure)
				if err != nil {
					t.Fatal(err)
				}
				tl := rec.Finish(in.Now())
				spanFrac := tl.UsefulFraction(warmup, warmup+measure)
				if d := math.Abs(spanFrac - m.UsefulWorkFraction); d > 1e-9 {
					t.Errorf("seed %d: span-derived %v vs reward %v (Δ=%g)",
						seed, spanFrac, m.UsefulWorkFraction, d)
				}
				// The occupancy breakdown and the phase budget are two
				// more independent derivations of the same occupancies.
				b := tl.BudgetBetween(warmup, warmup+measure)
				if d := math.Abs(b[phasetrace.Computation]/measure - m.Breakdown.Execution); d > 1e-9 {
					t.Errorf("seed %d: computation share %v vs breakdown %v",
						seed, b[phasetrace.Computation]/measure, m.Breakdown.Execution)
				}
			}
		})
	}
}

// TestSplitReworkMatchesRepeatedFraction: rework split over the window
// agrees with the model's RepeatedWorkFraction (execution − useful).
func TestSplitReworkMatchesRepeatedFraction(t *testing.T) {
	const warmup, measure = 100, 800
	in := mustNew(t, aggressive(), 5)
	rec := in.AttachPhases()
	m, err := in.RunSteadyState(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	tl := rec.Finish(in.Now()).SplitRework()
	b := tl.BudgetBetween(warmup, warmup+measure)
	// Rework in the window plus losses charged to the window equals the
	// repeated-work share; the split only localises *where* in the
	// execution time the repetition happened, so compare the sum.
	spanRepeated := (b[phasetrace.Computation]+b[phasetrace.Rework])/measure - tl.UsefulFraction(warmup, warmup+measure)
	if d := math.Abs(spanRepeated - m.RepeatedWorkFraction); d > 1e-9 {
		t.Errorf("span repeated %v vs model %v (Δ=%g)", spanRepeated, m.RepeatedWorkFraction, d)
	}
	if m.Counters.ComputeFailures > 0 && b[phasetrace.Rework] == 0 && m.RepeatedWorkFraction > 0 {
		t.Error("failures occurred but the split found no rework")
	}
}
