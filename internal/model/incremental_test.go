package model

import (
	"testing"

	"repro/internal/cluster"
)

// TestIncrementalCheckpointingReducesOverhead: with small incremental
// dumps between full ones, the failure-free checkpoint overhead shrinks
// toward the incremental dump time.
func TestIncrementalCheckpointingReducesOverhead(t *testing.T) {
	full := reliable()
	fin := mustNew(t, full, 80)
	mFull, err := fin.RunSteadyState(100, 1500)
	if err != nil {
		t.Fatal(err)
	}
	incr := full
	incr.IncrementalFraction = 0.1
	incr.FullCheckpointEvery = 6
	iin := mustNew(t, incr, 80)
	mIncr, err := iin.RunSteadyState(100, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if mIncr.UsefulWorkFraction <= mFull.UsefulWorkFraction {
		t.Fatalf("incremental checkpointing did not help: %v vs %v",
			mIncr.UsefulWorkFraction, mFull.UsefulWorkFraction)
	}
	// Expected gain ≈ (1 - (1 + (k-1)f)/k) × dumpTime/interval ≈ 1.95%.
	gain := mIncr.UsefulWorkFraction - mFull.UsefulWorkFraction
	k, f := 6.0, 0.1
	want := (1 - (1+(k-1)*f)/k) * full.CheckpointDumpTime() / full.CheckpointInterval
	if gain < want*0.5 || gain > want*1.5 {
		t.Fatalf("incremental gain = %v, want ≈ %v", gain, want)
	}
}

// TestIncrementalPatternFullEveryK: the dump sizes cycle full, k-1
// incrementals, full, …
func TestIncrementalPatternFullEveryK(t *testing.T) {
	cfg := reliable()
	cfg.IncrementalFraction = 0.25
	cfg.FullCheckpointEvery = 3
	in := mustNew(t, cfg, 81)
	var seqs []int
	in.SetTrace(func(_ float64, activity string, mk map[string]int) {
		if activity == "dump_chkpt" {
			seqs = append(seqs, mk["incr_seq"])
		}
	}, true)
	in.Advance(4) // ~7 checkpoints at ~31 min each
	if len(seqs) < 6 {
		t.Fatalf("only %d checkpoints observed", len(seqs))
	}
	// The post-dump counter cycles 1,2,0,1,2,0,… (0 after each full-chain
	// completion, i.e. the NEXT dump is full).
	for i, s := range seqs {
		if want := (i + 1) % 3; s != want {
			t.Fatalf("dump %d: incr_seq = %d, want %d (pattern full,inc,inc)", i, s, want)
		}
	}
}

// TestIncrementalValidation: the config cross-field checks.
func TestIncrementalValidation(t *testing.T) {
	cfg := cluster.Default()
	cfg.IncrementalFraction = 0.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("missing FullCheckpointEvery accepted")
	}
	cfg.FullCheckpointEvery = 2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid incremental config rejected: %v", err)
	}
	cfg.IncrementalFraction = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("fraction 1.0 accepted (must be < 1)")
	}
}
