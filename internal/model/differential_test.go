package model

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

// traceRecord is one firing as captured for differential comparison. Times
// are compared with exact float64 equality: the incremental scheduler must
// be bit-identical to the full scan, not merely statistically equivalent.
type traceRecord struct {
	t        float64
	activity string
}

// collectTrajectory runs one trajectory of cfg to the horizon with the
// chosen scheduler and returns the full event trace plus the final metrics.
func collectTrajectory(t *testing.T, cfg cluster.Config, seed uint64, fullScan bool, horizon float64) ([]traceRecord, Metrics) {
	t.Helper()
	in, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	in.SetFullScan(fullScan)
	var events []traceRecord
	in.SetTrace(func(tm float64, activity string, _ map[string]int) {
		events = append(events, traceRecord{tm, activity})
	}, false)
	mt, err := in.RunSteadyState(horizon/2, horizon/2)
	if err != nil {
		t.Fatal(err)
	}
	return events, mt
}

// differentialConfigs are the model configurations the differential suites
// run on — the incremental-vs-fullscan comparison, the recycle-vs-fresh
// comparison and the scenario-registry pinning all iterate them. The nine
// variants exercise every structural variant of the net: the paper's base
// model, max-of-n coordination, timeouts with aborts, error propagation,
// the blocking-write ablation (fsWait path and its resume instantaneous
// activity), incremental checkpointing (the incrSeq place and size-scaled
// dumps), Weibull failure inter-arrivals, proactive migration (the
// migrating place and migrate_complete activity), and the adaptive
// interval controller (counter-dependent trigger delays).
//
// The keys double as scenario names: every entry must have an embedded
// scenario that builds the identical cluster.Config, which
// TestScenarioRegistryPinsVariants enforces bit-for-bit.
func differentialConfigs() map[string]cluster.Config {
	base := cluster.Default()

	maxOfN := cluster.Default()
	maxOfN.Coordination = cluster.CoordMaxOfN

	timeout := cluster.Default()
	timeout.Coordination = cluster.CoordMaxOfN
	timeout.Timeout = cluster.Seconds(25) // tight: forces skip_chkpt aborts

	errProp := cluster.Default()
	errProp.ProbCorrelated = 0.3
	errProp.CorrelatedFactor = 400

	blocking := cluster.Default()
	blocking.BlockingCheckpointWrite = true

	incr := cluster.Default()
	incr.IncrementalFraction = 0.2
	incr.FullCheckpointEvery = 4

	weibull := cluster.Default()
	weibull.FailureDist = cluster.FailureWeibull
	weibull.FailureShape = 0.7

	migration := cluster.Default()
	migration.FailurePredictionAccuracy = 0.7
	migration.MigrationTime = cluster.Minutes(2)

	adaptive := cluster.Default()
	adaptive.AdaptiveInterval = true
	adaptive.AdaptiveIntervalMin = cluster.Minutes(5)
	adaptive.AdaptiveIntervalMax = cluster.Minutes(240)

	return map[string]cluster.Config{
		"base":              base,
		"max-of-n":          maxOfN,
		"timeout":           timeout,
		"error-propagation": errProp,
		"blocking-write":    blocking,
		"incremental-ckpt":  incr,
		"weibull-field":     weibull,
		"migration":         migration,
		"adaptive-interval": adaptive,
	}
}

// TestIncrementalMatchesFullScan is the model-level differential test: for
// every covered configuration and seed, the incremental dependency-index
// scheduler and the conservative full-rescan scheduler must produce
// bit-identical event traces and identical reward totals.
func TestIncrementalMatchesFullScan(t *testing.T) {
	const horizon = 4000.0
	for name, cfg := range differentialConfigs() {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				incr, incrMt := collectTrajectory(t, cfg, seed, false, horizon)
				full, fullMt := collectTrajectory(t, cfg, seed, true, horizon)
				if len(incr) == 0 {
					t.Fatal("empty trace")
				}
				if len(incr) != len(full) {
					t.Fatalf("event counts differ: incremental %d, full scan %d", len(incr), len(full))
				}
				for i := range incr {
					if incr[i] != full[i] {
						t.Fatalf("event %d differs: incremental %+v, full scan %+v", i, incr[i], full[i])
					}
				}
				if incrMt.UsefulWorkFraction != fullMt.UsefulWorkFraction {
					t.Fatalf("useful-work fraction differs: %v vs %v",
						incrMt.UsefulWorkFraction, fullMt.UsefulWorkFraction)
				}
				if incrMt.Breakdown != fullMt.Breakdown {
					t.Fatalf("breakdown differs: %+v vs %+v", incrMt.Breakdown, fullMt.Breakdown)
				}
				if incrMt.Counters != fullMt.Counters {
					t.Fatalf("counters differ: %+v vs %+v", incrMt.Counters, fullMt.Counters)
				}
				if incrMt.MeanLostWorkPerFailure != fullMt.MeanLostWorkPerFailure ||
					incrMt.MaxLostWork != fullMt.MaxLostWork {
					t.Fatalf("loss statistics differ: (%v, %v) vs (%v, %v)",
						incrMt.MeanLostWorkPerFailure, incrMt.MaxLostWork,
						fullMt.MeanLostWorkPerFailure, fullMt.MaxLostWork)
				}
			})
		}
	}
}

// TestTimeoutConfigAborts guards the timeout differential config against
// becoming vacuous: it must actually exercise the skip_chkpt abort path.
func TestTimeoutConfigAborts(t *testing.T) {
	cfg := differentialConfigs()["timeout"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(2000)
	if in.Counters().CheckpointAborts == 0 {
		t.Fatal("timeout config produced no checkpoint aborts; differential coverage lost")
	}
}

// TestErrorPropagationConfigOpensWindows guards the error-propagation
// differential config the same way: correlated windows (and hence the
// reactivation machinery) must actually trigger.
func TestErrorPropagationConfigOpensWindows(t *testing.T) {
	cfg := differentialConfigs()["error-propagation"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(4000)
	if in.Counters().CorrWindows == 0 {
		t.Fatal("error-propagation config opened no correlated windows; differential coverage lost")
	}
}

// TestBlockingWriteConfigWaits guards the blocking-write differential
// config: the compute nodes must actually spend time blocked on the
// file-system write (the fsWait place and resume_after_fs_write activity).
func TestBlockingWriteConfigWaits(t *testing.T) {
	cfg := differentialConfigs()["blocking-write"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := in.RunSteadyState(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Breakdown.FSWait == 0 {
		t.Fatal("blocking-write config spent no time in fsWait; differential coverage lost")
	}
}

// TestIncrementalCkptConfigCycles guards the incremental-checkpoint
// differential config: dumps must actually alternate full and incremental
// (the incrSeq place advances past zero).
func TestIncrementalCkptConfigCycles(t *testing.T) {
	cfg := differentialConfigs()["incremental-ckpt"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxSeq := 0
	in.SetTrace(func(_ float64, _ string, mk map[string]int) {
		if s := mk["incr_seq"]; s > maxSeq {
			maxSeq = s
		}
	}, true)
	in.Advance(2000)
	if in.Counters().CheckpointsDumped < uint64(cfg.FullCheckpointEvery) {
		t.Fatalf("only %d dumps in the window; incremental cycle not exercised", in.Counters().CheckpointsDumped)
	}
	if maxSeq == 0 {
		t.Fatal("incr_seq never advanced; incremental dumps not exercised")
	}
}

// TestScenarioRegistryPinsVariants is the registry-equivalence contract:
// every differential config has an embedded scenario of the same name, the
// scenario must decode to the *identical* cluster.Config (exact float64
// equality, via Go struct comparison), and — belt and braces, since equal
// configs should imply it — the scenario-built instance must replay a
// bit-identical event trace. This is what makes "variants as data" safe:
// moving a variant from code into a scenario file cannot silently change
// its trajectory.
func TestScenarioRegistryPinsVariants(t *testing.T) {
	const horizon = 2000.0
	reg := scenario.Builtin()
	for name, direct := range differentialConfigs() {
		t.Run(name, func(t *testing.T) {
			s, err := reg.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			fromScenario, err := s.ClusterConfig()
			if err != nil {
				t.Fatal(err)
			}
			if fromScenario != direct {
				t.Fatalf("scenario config differs from direct construction:\nscenario %+v\ndirect   %+v",
					fromScenario, direct)
			}
			a, amt := collectTrajectory(t, direct, 42, false, horizon)
			b, bmt := collectTrajectory(t, fromScenario, 42, false, horizon)
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("event counts differ: direct %d, scenario %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("event %d differs: direct %+v, scenario %+v", i, a[i], b[i])
				}
			}
			if amt.UsefulWorkFraction != bmt.UsefulWorkFraction || amt.Counters != bmt.Counters {
				t.Fatalf("metrics differ: %+v vs %+v", amt, bmt)
			}
		})
	}
}

// TestLegacyUnaffectedByVariantPlumbing pins the refactor's no-regression
// contract at the trajectory level: with all variant switches off, the
// migrating place, the failureDelay indirection and the intervalDelay hook
// must be trajectory-neutral. The golden digests below — event counts,
// exact useful-work fractions (hex float64) and failure counters — were
// recorded from the pre-refactor model at seed commit 5e0a740; if plumbing
// a new variant shifts any of them, the extension is not properly gated.
func TestLegacyUnaffectedByVariantPlumbing(t *testing.T) {
	gold := []struct {
		seed     uint64
		events   int
		useful   float64
		failures [3]uint64 // compute, io, recovery
		dumps    [2]uint64 // dumped, written
	}{
		{1, 307046, 0x1.4d41f1efe10f5p-01, [3]uint64{3299, 73, 525}, [2]uint64{5186, 5177}},
		{7, 306273, 0x1.4951b53e97fap-01, [3]uint64{3278, 47, 550}, [2]uint64{5147, 5147}},
	}
	for _, g := range gold {
		events, mt := collectTrajectory(t, cluster.Default(), g.seed, false, 4000)
		if len(events) != g.events {
			t.Errorf("seed %d: %d events; pre-refactor model produced %d", g.seed, len(events), g.events)
		}
		if mt.UsefulWorkFraction != g.useful {
			t.Errorf("seed %d: useful-work fraction %x; pre-refactor model produced %x",
				g.seed, mt.UsefulWorkFraction, g.useful)
		}
		c := mt.Counters
		got3 := [3]uint64{c.ComputeFailures, c.IOFailures, c.RecoveryFailures}
		got2 := [2]uint64{c.CheckpointsDumped, c.CheckpointsWritten}
		if got3 != g.failures || got2 != g.dumps || c.Migrations != 0 {
			t.Errorf("seed %d: counters %+v; pre-refactor failures %v dumps %v", g.seed, c, g.failures, g.dumps)
		}
	}
}

// TestMigrationConfigMigrates guards the migration differential config
// against vacuity: predicted failures must actually be absorbed by
// migrations, and unpredicted ones must still roll back.
func TestMigrationConfigMigrates(t *testing.T) {
	cfg := differentialConfigs()["migration"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(4000)
	c := in.Counters()
	if c.Migrations == 0 {
		t.Fatal("migration config absorbed no failures; differential coverage lost")
	}
	if c.ComputeFailures <= c.Migrations {
		t.Fatal("every compute failure was predicted; unpredicted-failure rollback path not exercised")
	}
}

// TestWeibullConfigChangesArrivals guards the Weibull differential config:
// with shape 0.7 the failure inter-arrival law must actually differ from
// the exponential base (same seed, different trajectory), while the
// configured mean is preserved by construction.
func TestWeibullConfigChangesArrivals(t *testing.T) {
	const horizon = 4000.0
	base, _ := collectTrajectory(t, cluster.Default(), 7, false, horizon)
	weib, _ := collectTrajectory(t, differentialConfigs()["weibull-field"], 7, false, horizon)
	same := len(base) == len(weib)
	if same {
		for i := range base {
			if base[i] != weib[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("weibull trajectory identical to exponential base; distribution not applied")
	}
}

// TestAdaptiveIntervalRetunes guards the adaptive-interval differential
// config: after failures are observed the controller must move the
// checkpoint trigger away from the configured interval (toward Young's
// optimum), i.e. consecutive trigger gaps must not all equal the default.
func TestAdaptiveIntervalRetunes(t *testing.T) {
	cfg := differentialConfigs()["adaptive-interval"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var triggers []float64
	in.SetTrace(func(tm float64, activity string, _ map[string]int) {
		if activity == "checkpoint_trigger" {
			triggers = append(triggers, tm)
		}
	}, false)
	in.Advance(4000)
	if in.Counters().ComputeFailures == 0 {
		t.Fatal("no failures in the window; adaptive controller never had data")
	}
	retuned := false
	for i := 1; i < len(triggers); i++ {
		gap := triggers[i] - triggers[i-1]
		if diff := gap - cfg.CheckpointInterval; diff > 1e-9 || diff < -1e-9 {
			retuned = true
			break
		}
	}
	if !retuned {
		t.Fatal("every trigger gap equals the configured interval; controller never retuned")
	}
}
