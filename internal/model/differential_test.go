package model

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// traceRecord is one firing as captured for differential comparison. Times
// are compared with exact float64 equality: the incremental scheduler must
// be bit-identical to the full scan, not merely statistically equivalent.
type traceRecord struct {
	t        float64
	activity string
}

// collectTrajectory runs one trajectory of cfg to the horizon with the
// chosen scheduler and returns the full event trace plus the final metrics.
func collectTrajectory(t *testing.T, cfg cluster.Config, seed uint64, fullScan bool, horizon float64) ([]traceRecord, Metrics) {
	t.Helper()
	in, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	in.SetFullScan(fullScan)
	var events []traceRecord
	in.SetTrace(func(tm float64, activity string, _ map[string]int) {
		events = append(events, traceRecord{tm, activity})
	}, false)
	mt, err := in.RunSteadyState(horizon/2, horizon/2)
	if err != nil {
		t.Fatal(err)
	}
	return events, mt
}

// differentialConfigs are the model configurations the differential suites
// run on — the incremental-vs-fullscan comparison and the recycle-vs-fresh
// comparison both iterate them. The six variants exercise every structural
// variant of the net: the paper's base model, max-of-n coordination,
// timeouts with aborts, error propagation, the blocking-write ablation
// (fsWait path and its resume instantaneous activity), and incremental
// checkpointing (the incrSeq place and size-scaled dumps).
func differentialConfigs() map[string]cluster.Config {
	base := cluster.Default()

	maxOfN := cluster.Default()
	maxOfN.Coordination = cluster.CoordMaxOfN

	timeout := cluster.Default()
	timeout.Coordination = cluster.CoordMaxOfN
	timeout.Timeout = cluster.Seconds(25) // tight: forces skip_chkpt aborts

	errProp := cluster.Default()
	errProp.ProbCorrelated = 0.3
	errProp.CorrelatedFactor = 400

	blocking := cluster.Default()
	blocking.BlockingCheckpointWrite = true

	incr := cluster.Default()
	incr.IncrementalFraction = 0.2
	incr.FullCheckpointEvery = 4

	return map[string]cluster.Config{
		"base":              base,
		"max-of-n":          maxOfN,
		"timeout":           timeout,
		"error-propagation": errProp,
		"blocking-write":    blocking,
		"incremental-ckpt":  incr,
	}
}

// TestIncrementalMatchesFullScan is the model-level differential test: for
// every covered configuration and seed, the incremental dependency-index
// scheduler and the conservative full-rescan scheduler must produce
// bit-identical event traces and identical reward totals.
func TestIncrementalMatchesFullScan(t *testing.T) {
	const horizon = 4000.0
	for name, cfg := range differentialConfigs() {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				incr, incrMt := collectTrajectory(t, cfg, seed, false, horizon)
				full, fullMt := collectTrajectory(t, cfg, seed, true, horizon)
				if len(incr) == 0 {
					t.Fatal("empty trace")
				}
				if len(incr) != len(full) {
					t.Fatalf("event counts differ: incremental %d, full scan %d", len(incr), len(full))
				}
				for i := range incr {
					if incr[i] != full[i] {
						t.Fatalf("event %d differs: incremental %+v, full scan %+v", i, incr[i], full[i])
					}
				}
				if incrMt.UsefulWorkFraction != fullMt.UsefulWorkFraction {
					t.Fatalf("useful-work fraction differs: %v vs %v",
						incrMt.UsefulWorkFraction, fullMt.UsefulWorkFraction)
				}
				if incrMt.Breakdown != fullMt.Breakdown {
					t.Fatalf("breakdown differs: %+v vs %+v", incrMt.Breakdown, fullMt.Breakdown)
				}
				if incrMt.Counters != fullMt.Counters {
					t.Fatalf("counters differ: %+v vs %+v", incrMt.Counters, fullMt.Counters)
				}
				if incrMt.MeanLostWorkPerFailure != fullMt.MeanLostWorkPerFailure ||
					incrMt.MaxLostWork != fullMt.MaxLostWork {
					t.Fatalf("loss statistics differ: (%v, %v) vs (%v, %v)",
						incrMt.MeanLostWorkPerFailure, incrMt.MaxLostWork,
						fullMt.MeanLostWorkPerFailure, fullMt.MaxLostWork)
				}
			})
		}
	}
}

// TestTimeoutConfigAborts guards the timeout differential config against
// becoming vacuous: it must actually exercise the skip_chkpt abort path.
func TestTimeoutConfigAborts(t *testing.T) {
	cfg := differentialConfigs()["timeout"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(2000)
	if in.Counters().CheckpointAborts == 0 {
		t.Fatal("timeout config produced no checkpoint aborts; differential coverage lost")
	}
}

// TestErrorPropagationConfigOpensWindows guards the error-propagation
// differential config the same way: correlated windows (and hence the
// reactivation machinery) must actually trigger.
func TestErrorPropagationConfigOpensWindows(t *testing.T) {
	cfg := differentialConfigs()["error-propagation"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(4000)
	if in.Counters().CorrWindows == 0 {
		t.Fatal("error-propagation config opened no correlated windows; differential coverage lost")
	}
}

// TestBlockingWriteConfigWaits guards the blocking-write differential
// config: the compute nodes must actually spend time blocked on the
// file-system write (the fsWait place and resume_after_fs_write activity).
func TestBlockingWriteConfigWaits(t *testing.T) {
	cfg := differentialConfigs()["blocking-write"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := in.RunSteadyState(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Breakdown.FSWait == 0 {
		t.Fatal("blocking-write config spent no time in fsWait; differential coverage lost")
	}
}

// TestIncrementalCkptConfigCycles guards the incremental-checkpoint
// differential config: dumps must actually alternate full and incremental
// (the incrSeq place advances past zero).
func TestIncrementalCkptConfigCycles(t *testing.T) {
	cfg := differentialConfigs()["incremental-ckpt"]
	in, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxSeq := 0
	in.SetTrace(func(_ float64, _ string, mk map[string]int) {
		if s := mk["incr_seq"]; s > maxSeq {
			maxSeq = s
		}
	}, true)
	in.Advance(2000)
	if in.Counters().CheckpointsDumped < uint64(cfg.FullCheckpointEvery) {
		t.Fatalf("only %d dumps in the window; incremental cycle not exercised", in.Counters().CheckpointsDumped)
	}
	if maxSeq == 0 {
		t.Fatal("incr_seq never advanced; incremental dumps not exercised")
	}
}
