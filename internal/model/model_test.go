package model

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// reliable returns a config whose failure processes are effectively off,
// for isolating the checkpointing mechanics.
func reliable() cluster.Config {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(1e9)
	return cfg
}

func mustNew(t *testing.T, cfg cluster.Config, seed uint64) *Instance {
	t.Helper()
	in, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestModelHasAllSubmodels is the Table 1 structural check: every submodel
// of the paper is represented by its places and activities.
func TestModelHasAllSubmodels(t *testing.T) {
	cfg := cluster.Default()
	cfg.Timeout = cluster.Seconds(60)
	cfg.ProbCorrelated = 0.1
	cfg.CorrelatedFactor = 400
	in := mustNew(t, cfg, 1)

	wantPlaces := map[string][]string{
		"compute_nodes":      {"execution", "quiescing", "checkpointing"},
		"app_workload":       {"app_compute", "app_io"},
		"master":             {"master_sleep", "master_checkpointing", "timedout"},
		"coordination":       {"complete_coordination"},
		"io_nodes":           {"ionode_idle", "writing_chkpt", "writing_appdata", "enable_chkpt", "chkpt_buffered"},
		"comp_node_recovery": {"recovery_stage1", "recovery_stage2", "recovery_failures"},
		"io_node_recovery":   {"io_restarting"},
		"system_reboot":      {"rebooting"},
		"correlated":         {"corr_window"},
		"failure_flags":      {"sys_up", "io_up"},
	}
	for sub, names := range wantPlaces {
		for _, n := range names {
			if in.Model().LookupPlace(n) == nil {
				t.Errorf("submodel %s: place %q missing", sub, n)
			}
		}
	}

	wantActs := []string{
		"checkpoint_trigger", "recv_quiesce", "master_timer", "coord",
		"coordinate", "skip_chkpt", "timeout_clear", "dump_chkpt",
		"app_compute_end", "app_io_end",
		"start_write_chkpt", "write_chkpt", "start_write_appdata", "write_appdata",
		"comp_failure", "recover_stage1", "recover_stage2", "recovery_failure",
		"io_failure", "io_restart", "reboot", "corr_window_end",
	}
	have := map[string]bool{}
	for _, a := range in.Model().Activities() {
		have[a.Name] = true
	}
	for _, n := range wantActs {
		if !have[n] {
			t.Errorf("activity %q missing", n)
		}
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	cfg := cluster.Default()
	cfg.Processors = -1
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRejectsInvalidWindow(t *testing.T) {
	in := mustNew(t, reliable(), 1)
	if _, err := in.RunSteadyState(-1, 10); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := in.RunSteadyState(0, 0); err == nil {
		t.Error("zero measure accepted")
	}
}

// TestFailureFreeFraction checks the pure checkpoint-overhead fraction:
// interval / (interval + E[wait for app IO] + quiesce + dump) ≈ 0.969 for
// Table 3 defaults with the fixed quiesce time of the base model.
func TestFailureFreeFraction(t *testing.T) {
	in := mustNew(t, reliable(), 2)
	m, err := in.RunSteadyState(200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.UsefulWorkFraction < 0.960 || m.UsefulWorkFraction > 0.975 {
		t.Fatalf("failure-free fraction = %v, want ≈0.969", m.UsefulWorkFraction)
	}
	if m.Counters.ComputeFailures != 0 || m.Counters.Reboots != 0 {
		t.Fatalf("reliable system had failures: %+v", m.Counters)
	}
	// One checkpoint per ~31 min over 2200 h ⇒ ≈ 4270 dumps (count includes
	// the warmup window; counters span the whole trajectory).
	if m.Counters.CheckpointsDumped < 4000 || m.Counters.CheckpointsDumped > 4500 {
		t.Fatalf("checkpoints dumped = %d, want ≈4270", m.Counters.CheckpointsDumped)
	}
	// Every dumped checkpoint gets written to the file system eventually.
	written := m.Counters.CheckpointsWritten
	if written < m.Counters.CheckpointsDumped-1 || written > m.Counters.CheckpointsDumped {
		t.Fatalf("written=%d vs dumped=%d", written, m.Counters.CheckpointsDumped)
	}
}

func TestPureComputeWorkloadHasNoIOPhases(t *testing.T) {
	cfg := reliable()
	cfg.ComputeFraction = 1.0
	in := mustNew(t, cfg, 3)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Without foreground I/O waits the overhead is just quiesce + dump.
	interval := cfg.CheckpointInterval
	want := interval / (interval + cfg.MTTQ + cfg.CheckpointDumpTime())
	if math.Abs(m.UsefulWorkFraction-want) > 0.003 {
		t.Fatalf("pure-compute fraction = %v, want ≈%v", m.UsefulWorkFraction, want)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cluster.Default()
	cfg.ProbCorrelated = 0.1
	cfg.CorrelatedFactor = 400
	cfg.Timeout = cluster.Seconds(90)
	cfg.Coordination = cluster.CoordMaxOfN
	a := mustNew(t, cfg, 77)
	b := mustNew(t, cfg, 77)
	ma, err := a.RunSteadyState(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.RunSteadyState(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if ma.UsefulWorkFraction != mb.UsefulWorkFraction || ma.Counters != mb.Counters {
		t.Fatalf("same seed diverged: %v vs %v", ma, mb)
	}
	c := mustNew(t, cfg, 78)
	mc, err := c.RunSteadyState(500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Counters == ma.Counters {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestFailuresReduceUsefulWork: the defining property of the useful-work
// measure — work since the last checkpoint is subtracted on failure.
func TestFailuresReduceUsefulWork(t *testing.T) {
	cfg := cluster.Default() // MTTF 1 yr, 8192 nodes: ~0.93 failures/h
	in := mustNew(t, cfg, 4)
	m, err := in.RunSteadyState(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.ComputeFailures == 0 {
		t.Fatal("expected failures at MTTF 1yr with 8K nodes")
	}
	rel := mustNew(t, reliable(), 4)
	mRel, err := rel.RunSteadyState(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if m.UsefulWorkFraction >= mRel.UsefulWorkFraction-0.1 {
		t.Fatalf("failures barely hurt: %v vs reliable %v", m.UsefulWorkFraction, mRel.UsefulWorkFraction)
	}
	// Paper Section 7.1: at 64K processors, MTTF 1 yr, the useful work
	// fraction is well above the 128K peak value but far below 1.
	if m.UsefulWorkFraction < 0.5 || m.UsefulWorkFraction > 0.8 {
		t.Fatalf("64K fraction = %v, expected ~0.6–0.7", m.UsefulWorkFraction)
	}
}

// TestBaseModelHeadline reproduces the paper's headline claim (§7.1): with
// MTTF 1 yr per node, MTTR 10 min, interval 30 min, the total useful work
// peaks at an interior optimum (128K in the paper) and the fraction at the
// peak is below 50%.
func TestBaseModelHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	cfg := cluster.Default()
	scales := []int{64 * 1024, 128 * 1024, 256 * 1024}
	totals := make([]float64, len(scales))
	fracs := make([]float64, len(scales))
	for i, n := range scales {
		c := cfg
		c.Processors = n
		// Two replications per point for stability.
		var sum float64
		for r := 0; r < 2; r++ {
			in := mustNew(t, c, uint64(100+10*i+r))
			m, err := in.RunSteadyState(1000, 4000)
			if err != nil {
				t.Fatal(err)
			}
			sum += m.TotalUsefulWork
		}
		totals[i] = sum / 2
		fracs[i] = totals[i] / float64(n)
	}
	if !(totals[1] > totals[0] && totals[1] > totals[2]) {
		t.Fatalf("no interior optimum at 128K: totals = %v", totals)
	}
	if fracs[1] >= 0.5 {
		t.Fatalf("fraction at peak = %v, paper says < 50%%", fracs[1])
	}
}

// TestRecoverySkipsStage1WhenBuffered: after a successful dump the
// checkpoint is buffered at the I/O nodes, so a compute failure goes
// straight to recovery stage 2 (Section 4).
func TestRecoverySkipsStage1WhenBuffered(t *testing.T) {
	cfg := reliable()
	in := mustNew(t, cfg, 5)
	// Run past one checkpoint so a buffered checkpoint exists.
	in.Advance(0.6)
	snap := in.Snapshot()
	if snap["chkpt_buffered"] != 1 {
		t.Fatalf("no buffered checkpoint after one interval: %v", snap)
	}
	// Inject a failure through the public failure path.
	in.computeFailure(in.sim.Marking())
	snap = in.Snapshot()
	if snap["recovery_stage1"] != 0 || snap["recovery_stage2"] != 1 {
		t.Fatalf("buffered recovery should skip stage 1: %v", snap)
	}
}

func TestRecoveryUsesStage1WithoutBuffer(t *testing.T) {
	cfg := reliable()
	in := mustNew(t, cfg, 6)
	in.Advance(0.01) // before the first checkpoint: nothing buffered
	if in.Snapshot()["chkpt_buffered"] != 0 {
		t.Fatal("unexpected buffered checkpoint")
	}
	in.computeFailure(in.sim.Marking())
	snap := in.Snapshot()
	if snap["recovery_stage1"] != 1 || snap["recovery_stage2"] != 0 {
		t.Fatalf("unbuffered recovery should start at stage 1: %v", snap)
	}
}

// TestUsefulWorkRollback: a failure subtracts exactly the work accrued
// since the buffered capture point.
func TestUsefulWorkRollback(t *testing.T) {
	cfg := reliable()
	in := mustNew(t, cfg, 7)
	in.Advance(0.6) // past the first checkpoint
	secured := in.SecuredBuffered()
	if secured <= 0 {
		t.Fatal("nothing secured after first checkpoint")
	}
	in.Advance(0.7) // accrue a bit more at-risk work
	preUseful := in.Useful()
	if preUseful <= secured {
		t.Fatal("no at-risk work accrued")
	}
	in.computeFailure(in.sim.Marking())
	if got := in.Useful(); math.Abs(got-secured) > 1e-9 {
		t.Fatalf("useful after failure = %v, want rollback to %v", got, secured)
	}
}

// TestCapOrderingInvariant: capD ≤ capB ≤ useful must hold throughout a
// long failure-heavy trajectory.
func TestCapOrderingInvariant(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(0.5)
	cfg.ProbCorrelated = 0.2
	cfg.CorrelatedFactor = 800
	in := mustNew(t, cfg, 8)
	for step := 0; step < 200; step++ {
		in.Advance(float64(step) * 5)
		u, b, d := in.Useful(), in.SecuredBuffered(), in.SecuredDurable()
		if d > b+1e-9 || b > u+1e-9 {
			t.Fatalf("invariant broken at t=%v: durable=%v buffered=%v useful=%v", in.Now(), d, b, u)
		}
	}
}

// TestTimeoutAbortsCheckpoints: with max-of-n coordination at 64K
// processors (E[Y] ≈ 116 s for MTTQ 10 s) a 20-second timeout aborts
// essentially every checkpoint (Figure 6's collapse region).
func TestTimeoutAbortsCheckpoints(t *testing.T) {
	cfg := reliable()
	cfg.Coordination = cluster.CoordMaxOfN
	cfg.Timeout = cluster.Seconds(20)
	in := mustNew(t, cfg, 9)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.CheckpointAborts == 0 {
		t.Fatal("no aborts with a 20s timeout at 64K processors")
	}
	if m.Counters.CheckpointsDumped > m.Counters.CheckpointAborts/10 {
		t.Fatalf("expected nearly all aborts: dumped=%d aborts=%d",
			m.Counters.CheckpointsDumped, m.Counters.CheckpointAborts)
	}
}

// TestGenerousTimeoutNeverAborts: a 10-minute timeout is far above the
// coordination scale, so no aborts occur (Figure 6's insensitive region).
func TestGenerousTimeoutNeverAborts(t *testing.T) {
	cfg := reliable()
	cfg.Coordination = cluster.CoordMaxOfN
	cfg.Timeout = cluster.Minutes(10)
	in := mustNew(t, cfg, 10)
	m, err := in.RunSteadyState(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.CheckpointAborts != 0 {
		t.Fatalf("aborts with generous timeout: %d", m.Counters.CheckpointAborts)
	}
	if m.Counters.CheckpointsDumped == 0 {
		t.Fatal("no checkpoints at all")
	}
}

// TestCoordinationCostGrowsWithN: under max-of-n coordination the
// failure-free useful fraction decreases with processor count (Figure 5).
func TestCoordinationCostGrowsWithN(t *testing.T) {
	fractions := make([]float64, 0, 3)
	for i, n := range []int{1024, 64 * 1024, 4 * 1024 * 1024} {
		cfg := reliable()
		cfg.Coordination = cluster.CoordMaxOfN
		cfg.Processors = n
		in := mustNew(t, cfg, uint64(20+i))
		m, err := in.RunSteadyState(100, 1500)
		if err != nil {
			t.Fatal(err)
		}
		fractions = append(fractions, m.UsefulWorkFraction)
	}
	if !(fractions[0] > fractions[1] && fractions[1] > fractions[2]) {
		t.Fatalf("coordination cost not increasing in n: %v", fractions)
	}
}

// TestIOFailureDuringCheckpointWriteDoesNotStopCompute: an I/O failure
// while writing a checkpoint aborts the write and restarts the I/O nodes,
// but the compute nodes keep working (Section 3.4).
func TestIOFailureDuringCheckpointWrite(t *testing.T) {
	cfg := reliable()
	in := mustNew(t, cfg, 11)
	// Advance into the FS-write window right after the first dump. The
	// first trigger fires at ~0.5h; dump completes ~57s later; the write
	// takes 131s. Step until writing_chkpt is marked.
	for in.Now() < 2 && in.Snapshot()["writing_chkpt"] == 0 {
		if !in.sim.Step() {
			break
		}
	}
	if in.Snapshot()["writing_chkpt"] != 1 {
		t.Fatal("never observed a checkpoint FS write")
	}
	buffered := in.SecuredBuffered()
	durable := in.SecuredDurable()
	if buffered <= durable {
		t.Fatal("expected buffered checkpoint ahead of durable")
	}
	in.ioFailure(in.sim.Marking())
	snap := in.Snapshot()
	if snap["execution"] != 1 || snap["sys_up"] != 1 {
		t.Fatalf("compute side affected by checkpoint-write I/O failure: %v", snap)
	}
	if snap["io_restarting"] != 1 || snap["io_up"] != 0 {
		t.Fatalf("I/O nodes not restarting: %v", snap)
	}
	if snap["chkpt_buffered"] != 0 {
		t.Fatal("buffer survived I/O restart")
	}
	if in.SecuredBuffered() != durable {
		t.Fatalf("buffered capture should revert to durable %v, got %v", durable, in.SecuredBuffered())
	}
}

// TestIOFailureDuringAppDataWriteRollsBack: application results are lost
// and the system rolls back to the last checkpoint (Section 3.4).
func TestIOFailureDuringAppDataWrite(t *testing.T) {
	cfg := reliable()
	in := mustNew(t, cfg, 12)
	for in.Now() < 2 && in.Snapshot()["writing_appdata"] == 0 {
		if !in.sim.Step() {
			break
		}
	}
	if in.Snapshot()["writing_appdata"] != 1 {
		t.Fatal("never observed an application-data FS write")
	}
	in.ioFailure(in.sim.Marking())
	snap := in.Snapshot()
	if snap["sys_up"] != 0 {
		t.Fatalf("compute side kept running after app-data loss: %v", snap)
	}
	if snap["recovery_stage1"] != 1 {
		t.Fatalf("rollback should need stage-1 recovery (buffer lost): %v", snap)
	}
}

// TestRebootAfterThreshold: consecutive recovery failures beyond the
// threshold trigger a whole-system reboot, after which compute nodes read
// the durable checkpoint (stage 1).
func TestRebootAfterThreshold(t *testing.T) {
	cfg := reliable()
	cfg.SevereFailureThreshold = 3
	in := mustNew(t, cfg, 13)
	in.Advance(0.6)
	mk := in.sim.Marking()
	in.computeFailure(mk)
	for i := 0; i < 3; i++ {
		if in.Snapshot()["rebooting"] == 1 {
			break
		}
		// Simulate a recovery failure by driving the same path the
		// recovery_failure activity takes.
		in.counters.RecoveryFailures++
		mk.Add(in.pl.recoveryFailures, 1)
		if mk.Get(in.pl.recoveryFailures) >= cfg.SevereFailureThreshold {
			in.startReboot(mk)
		}
	}
	snap := in.Snapshot()
	if snap["rebooting"] != 1 {
		t.Fatalf("no reboot after %d recovery failures: %v", cfg.SevereFailureThreshold, snap)
	}
	if snap["sys_up"] != 0 || snap["io_up"] != 0 {
		t.Fatalf("reboot should take the whole system down: %v", snap)
	}
	if in.Counters().Reboots != 1 {
		t.Fatalf("reboot counter = %d", in.Counters().Reboots)
	}
}

// TestCorrelatedWindowRaisesFailureRate: with pe=1 and a large factor,
// every failure opens a window and failures cluster, so the same horizon
// sees far more failures than the independent case.
func TestCorrelatedWindowRaisesFailureRate(t *testing.T) {
	base := cluster.Default()
	base.MTTFPerNode = cluster.Years(3)
	indep := mustNew(t, base, 14)
	mi, err := indep.RunSteadyState(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	corr := base
	corr.ProbCorrelated = 1.0
	corr.CorrelatedFactor = 1600
	cin := mustNew(t, corr, 14)
	mc, err := cin.RunSteadyState(500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Counters.CorrWindows == 0 {
		t.Fatal("no correlated windows opened with pe=1")
	}
	totalIndep := mi.Counters.ComputeFailures + mi.Counters.RecoveryFailures
	totalCorr := mc.Counters.ComputeFailures + mc.Counters.RecoveryFailures
	if totalCorr <= totalIndep {
		t.Fatalf("correlated failures did not increase failure count: %d vs %d", totalCorr, totalIndep)
	}
}

// TestErrorPropagationBarelyMovesFraction reproduces the Figure 7 claim:
// correlated failures due to error propagation (windows during recovery)
// change the useful-work fraction only slightly.
func TestErrorPropagationBarelyMovesFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison run")
	}
	base := cluster.Default()
	base.Processors = 64 * 1024
	base.MTTFPerNode = cluster.Years(3)
	indep := mustNew(t, base, 15)
	mi, err := indep.RunSteadyState(1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	corr := base
	corr.ProbCorrelated = 0.2
	corr.CorrelatedFactor = 1600
	cin := mustNew(t, corr, 15)
	mc, err := cin.RunSteadyState(1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(mi.UsefulWorkFraction - mc.UsefulWorkFraction); diff > 0.08 {
		t.Fatalf("error propagation moved fraction by %v; paper says the effect is small", diff)
	}
}

// TestGenericCorrelatedDegradesFraction reproduces the Figure 8 claim: the
// doubled failure rate of generic correlated failures (r=400, α=0.0025)
// causes a large drop in useful-work fraction.
func TestGenericCorrelatedDegradesFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison run")
	}
	base := cluster.Default()
	base.Processors = 128 * 1024
	base.MTTFPerNode = cluster.Years(3)
	indep := mustNew(t, base, 16)
	mi, err := indep.RunSteadyState(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	gen := base
	gen.CorrelatedFactor = 400
	gen.GenericCorrelatedCoefficient = 0.0025
	gin := mustNew(t, gen, 16)
	mg, err := gin.RunSteadyState(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if mg.UsefulWorkFraction >= mi.UsefulWorkFraction-0.05 {
		t.Fatalf("generic correlated failures barely hurt: %v vs %v",
			mg.UsefulWorkFraction, mi.UsefulWorkFraction)
	}
}

// TestStateExclusivity: the compute unit is in at most one of execution /
// quiescing / checkpointing, and all state places stay 0/1, throughout a
// failure-heavy run.
func TestStateExclusivity(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(0.25)
	cfg.Timeout = cluster.Seconds(60)
	cfg.Coordination = cluster.CoordMaxOfN
	cfg.ProbCorrelated = 0.2
	cfg.CorrelatedFactor = 400
	in := mustNew(t, cfg, 17)
	flags := []string{
		"execution", "quiescing", "checkpointing", "app_compute", "app_io",
		"master_sleep", "master_checkpointing", "sys_up", "io_up",
		"recovery_stage1", "recovery_stage2", "rebooting", "io_restarting",
		"ionode_idle", "writing_chkpt", "writing_appdata", "chkpt_buffered",
	}
	for step := 0; step < 3000; step++ {
		if !in.sim.Step() {
			break
		}
		snap := in.Snapshot()
		for _, f := range flags {
			if snap[f] < 0 || snap[f] > 1 {
				t.Fatalf("place %s = %d at t=%v", f, snap[f], in.Now())
			}
		}
		if snap["execution"]+snap["quiescing"]+snap["checkpointing"]+snap["fs_wait"] > 1 {
			t.Fatalf("compute unit in two states at t=%v: %v", in.Now(), snap)
		}
		if snap["app_compute"]+snap["app_io"] > 1 {
			t.Fatalf("app in two phases at t=%v: %v", in.Now(), snap)
		}
		if snap["master_sleep"]+snap["master_checkpointing"] != 1 {
			t.Fatalf("master state broken at t=%v: %v", in.Now(), snap)
		}
		if snap["ionode_idle"]+snap["writing_chkpt"]+snap["writing_appdata"]+snap["io_restarting"]+snap["rebooting"] > 1 {
			t.Fatalf("I/O unit in two states at t=%v: %v", in.Now(), snap)
		}
		if snap["sys_up"] == 1 && (snap["recovery_stage1"]+snap["recovery_stage2"] > 0) {
			t.Fatalf("recovering while up at t=%v: %v", in.Now(), snap)
		}
	}
}

// TestCountersAdvance sanity-checks counter plumbing on a stressed system.
func TestCountersAdvance(t *testing.T) {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(0.125)
	cfg.SevereFailureThreshold = 2 // make reboots reachable on this horizon
	in := mustNew(t, cfg, 18)
	m, err := in.RunSteadyState(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Counters
	if c.ComputeFailures == 0 || c.RecoveryFailures == 0 || c.Reboots == 0 ||
		c.CheckpointsDumped == 0 || c.IOFailures == 0 {
		t.Fatalf("expected all counters active on stressed system: %+v", c)
	}
	if m.UsefulWorkFraction <= 0 || m.UsefulWorkFraction >= 1 {
		t.Fatalf("fraction = %v out of (0,1)", m.UsefulWorkFraction)
	}
}

// TestMetricsString covers the human-readable rendering.
func TestMetricsString(t *testing.T) {
	in := mustNew(t, reliable(), 19)
	m, err := in.RunSteadyState(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() == "" {
		t.Fatal("empty Metrics.String()")
	}
}

// TestNoTimeoutMeansNoTimerActivity: Timeout=0 disables the timer entirely.
func TestNoTimeoutMeansNoTimerActivity(t *testing.T) {
	in := mustNew(t, reliable(), 20)
	for _, a := range in.Model().Activities() {
		if a.Name == "master_timer" {
			t.Fatal("master_timer present with Timeout=0")
		}
	}
}

// TestCoordinationModes: the three modes produce ordered overheads at large
// n: fixed(MTTQ) ≈ exp(MTTQ) ≪ max-of-n.
func TestCoordinationModes(t *testing.T) {
	fracs := map[cluster.CoordinationMode]float64{}
	for i, mode := range []cluster.CoordinationMode{cluster.CoordFixed, cluster.CoordNone, cluster.CoordMaxOfN} {
		cfg := reliable()
		cfg.Processors = 256 * 1024
		cfg.Coordination = mode
		in := mustNew(t, cfg, uint64(30+i))
		m, err := in.RunSteadyState(100, 1500)
		if err != nil {
			t.Fatal(err)
		}
		fracs[mode] = m.UsefulWorkFraction
	}
	if fracs[cluster.CoordMaxOfN] >= fracs[cluster.CoordFixed] {
		t.Fatalf("max-of-n should cost more than fixed: %v", fracs)
	}
	if math.Abs(fracs[cluster.CoordFixed]-fracs[cluster.CoordNone]) > 0.01 {
		t.Fatalf("fixed and single-exponential quiesce should be close: %v", fracs)
	}
}
