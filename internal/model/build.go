package model

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/phasetrace"
	"repro/internal/rng"
	"repro/internal/san"
	"repro/internal/stats"
)

// Instance is one executable copy of the composed SAN with its reward
// state. Create with New; run with RunSteadyState or Advance.
type Instance struct {
	cfg cluster.Config
	mod *san.Model
	sim *san.Simulator
	pl  *places
	src *rng.Stream // concrete so Recycle can Reseed in place

	// Coordination delay distribution (Section 5 / Section 7.2 modes).
	coordDist rng.Dist

	// weibullMeanDivisor is Γ(1+1/shape), precomputed so the Weibull
	// failure sampler can derive the scale matching any (possibly
	// marking-dependent) target mean. 0 under the exponential default.
	weibullMeanDivisor float64

	// pendingWriteScale is the size of the dumped checkpoint relative to
	// a full one, consumed by the background FS write's delay.
	pendingWriteScale float64

	// Useful-work reward state (Section 7 metric; DESIGN.md §5).
	progress *san.RateReward // raw accrued work P(t)
	lost     float64         // L: total work lost to rollbacks
	capB     float64         // useful work secured by the buffered checkpoint
	capD     float64         // useful work secured by the durable checkpoint

	// states are the occupancy rewards behind the time Breakdown.
	states stateRewards

	// lossStats accumulates the work lost per rollback (hours of useful
	// work discarded each time the system rolls back to a checkpoint).
	lossStats stats.Accumulator

	counters Counters

	// Phase recording indirection: the simulator's firing hooks cannot be
	// removed, so the instance installs a single forwarding hook the first
	// time AttachPhases is called and swaps the recorder behind it. Recycle
	// clears phaseRec, detaching recording without touching the hook list.
	phaseRec  *phasetrace.Recorder
	phaseHook bool

	// Variance-reduction routing (vr.go): antithetic reflection and
	// common-random-numbers purpose sub-streams. Both off by default;
	// effective from the next Recycle.
	vrReflected bool
	vrCRN       bool
	purposes    [numPurposes]*rng.Counter
}

// Counters tallies discrete events of one trajectory.
type Counters struct {
	ComputeFailures    uint64 // failures of the compute subsystem while up
	IOFailures         uint64 // failures of the I/O subsystem
	RecoveryFailures   uint64 // failures during recovery
	CheckpointsDumped  uint64 // successful dumps to the I/O nodes
	CheckpointsWritten uint64 // checkpoints made durable in the FS
	CheckpointAborts   uint64 // coordination timeouts (skip_chkpt)
	Reboots            uint64 // severe-failure system reboots
	CorrWindows        uint64 // correlated-failure windows opened
	PermanentFailures  uint64 // failures flagged permanent (extension)
	Migrations         uint64 // failures predicted and averted by proactive migration (extension)
}

// New validates cfg and builds an instance seeded with seed.
func New(cfg cluster.Config, seed uint64) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	inst := &Instance{cfg: cfg, src: rng.New(seed), pendingWriteScale: 1}
	inst.coordDist = coordinationDist(cfg)
	if cfg.FailureDist == cluster.FailureWeibull {
		inst.weibullMeanDivisor = math.Gamma(1 + 1/cfg.FailureShape)
	}
	inst.mod = san.NewModel("coordinated-checkpointing")
	inst.pl = newPlaces(inst.mod)
	inst.addComputeAndMaster()
	inst.addAppWorkload()
	inst.addIONodes()
	inst.addFailureAndRecovery()
	inst.addCorrelated()
	inst.addMigration()
	sim, err := san.NewSimulator(inst.mod, inst.src)
	if err != nil {
		return nil, err
	}
	inst.sim = sim
	inst.progress = sim.AddRateReward("progress", inst.progressRate,
		inst.pl.execution, inst.pl.sysUp)
	inst.addStateRewards()
	return inst, nil
}

// coordinationDist maps the configured coordination mode to the quiesce
// delay distribution of the coord activity (Section 5 / Section 7.2).
// Under CoordMaxOfN a straggler population (heterogeneous quiesce speeds,
// an extension beyond the paper's i.i.d. assumption) splits the processors
// into fast and slow groups whose maxima race.
func coordinationDist(cfg cluster.Config) rng.Dist {
	switch cfg.Coordination {
	case cluster.CoordNone:
		return rng.Exponential{MeanValue: cfg.MTTQ}
	case cluster.CoordMaxOfN:
		if slow := cfg.StragglerCount(); slow > 0 {
			return rng.MaxOfGroups{Groups: []rng.MaxOfNExponentials{
				{N: cfg.Processors - slow, PerNodeMean: cfg.MTTQ},
				{N: slow, PerNodeMean: cfg.MTTQ * cfg.StragglerMTTQMultiplier},
			}}
		}
		return rng.MaxOfNExponentials{N: cfg.Processors, PerNodeMean: cfg.MTTQ}
	default: // CoordFixed — the base model's fixed quiesce time.
		return rng.Deterministic{Value: cfg.MTTQ}
	}
}

// Config returns the instance's configuration.
func (in *Instance) Config() cluster.Config { return in.cfg }

// Model exposes the underlying SAN structure (for structural tests).
func (in *Instance) Model() *san.Model { return in.mod }

// Counters returns the event tallies so far.
func (in *Instance) Counters() Counters { return in.counters }

// progressRate is the useful-work accrual rate: 1 while the compute nodes
// are executing the application (computation or application I/O both count,
// Section 7), 0 while quiescing, checkpointing, recovering or rebooting.
func (in *Instance) progressRate(m *san.Marking) float64 {
	if m.Has(in.pl.execution) && m.Has(in.pl.sysUp) {
		return 1
	}
	return 0
}

// useful returns the net useful work accrued so far, P − L.
func (in *Instance) useful() float64 { return in.progress.Integral() - in.lost }

// ---- computing & checkpointing module ----

// addComputeAndMaster wires the master and compute_nodes submodels
// (Figures 2a, 2d) and the coordination submodel (Figure 2e). Every input
// gate declares the places its predicate reads so the simulator's
// place→activity dependency index can reconcile enabling incrementally.
func (in *Instance) addComputeAndMaster() {
	pl, cfg := in.pl, in.cfg

	// The checkpoint interval expires and the master starts the protocol
	// (and its timeout timer, the start_timer gate of Figure 2d). The
	// delay is the configured interval, or — under the adaptive-interval
	// extension — whatever the marking-dependent controller currently
	// recommends (see intervalDelay).
	in.mod.AddTimed(san.Activity{
		Name:  "checkpoint_trigger",
		Input: san.AllOf(pl.masterSleep, pl.sysUp),
		Delay: in.intervalDelay,
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.masterSleep, pl.masterCheckpointing)
		}),
	})

	// Compute nodes receive the 'quiesce' broadcast after the broadcast
	// overhead and stop at a consistent state.
	in.mod.AddTimed(san.Activity{
		Name:  "recv_quiesce",
		Input: san.AllOf(pl.masterCheckpointing, pl.execution, pl.sysUp),
		Delay: det(cfg.BroadcastOverhead),
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.execution, pl.quiescing)
		}),
	})

	// The master's coordination timer. It is disarmed as soon as the
	// compute nodes enter checkpointing (all 'ready' responses arrived).
	if cfg.Timeout > 0 {
		in.mod.AddTimed(san.Activity{
			Name: "master_timer",
			Input: san.When(func(m *san.Marking) bool {
				return m.Has(pl.masterCheckpointing) &&
					!m.Has(pl.checkpointing) && !m.Has(pl.fsWait)
			}, pl.masterCheckpointing, pl.checkpointing, pl.fsWait),
			Delay:  det(cfg.Timeout),
			Output: san.Out(func(m *san.Marking) { m.Set(pl.timedOut, 1) }),
		})
	}

	// Coordination: the slowest node's quiesce time (Figure 2e). It can
	// only begin once the application is in its compute phase — a node
	// doing foreground I/O must finish it first (Figure 2c).
	in.mod.AddTimed(san.Activity{
		Name:  "coord",
		Input: san.AllOf(pl.quiescing, pl.appCompute, pl.sysUp),
		Delay: func(_ *san.Marking, src rng.Source) float64 {
			return in.coordDist.Sample(in.delaySrc(purposeCoord, src))
		},
		Output: san.Out(func(m *san.Marking) {
			m.Set(pl.completeCoordination, 1)
		}),
	})

	// Coordination finished: compute nodes move to checkpoint dumping.
	in.mod.AddInstant(san.Activity{
		Name:     "coordinate",
		Priority: 1,
		Input:    san.AllOf(pl.quiescing, pl.completeCoordination),
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.completeCoordination)
			m.Move(pl.quiescing, pl.checkpointing)
		}),
	})

	// Timer expired before coordination completed: abort the checkpoint
	// (skip_chkpt2 of Figure 2a/2d). Higher priority than coordinate so a
	// simultaneous expiry aborts, matching the master-decides semantics.
	in.mod.AddInstant(san.Activity{
		Name:     "skip_chkpt",
		Priority: 2,
		Input:    san.AllOf(pl.timedOut, pl.quiescing),
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.timedOut)
			m.Clear(pl.completeCoordination)
			m.Move(pl.quiescing, pl.execution)
			m.Move(pl.masterCheckpointing, pl.masterSleep)
			in.resetApp(m)
			in.counters.CheckpointAborts++
		}),
	})

	// A stray timeout token with no quiesce in progress is discarded
	// (e.g. the timer and the dump completed simultaneously).
	in.mod.AddInstant(san.Activity{
		Name:     "timeout_clear",
		Priority: 0,
		Input: san.When(func(m *san.Marking) bool {
			return m.Has(pl.timedOut) && !m.Has(pl.quiescing)
		}, pl.timedOut, pl.quiescing),
		Output: san.Out(func(m *san.Marking) { m.Clear(pl.timedOut) }),
	})

	// Checkpoint dump: every group of compute nodes streams its state to
	// its I/O node in parallel (ionode_is_idle input gate of Figure 2a).
	// With the incremental extension, only every k-th dump carries the
	// full state; the others move IncrementalFraction of it.
	in.mod.AddTimed(san.Activity{
		Name:  "dump_chkpt",
		Input: san.AllOf(pl.checkpointing, pl.ionodeIdle, pl.ioUp, pl.sysUp),
		Delay: func(m *san.Marking, _ rng.Source) float64 {
			return cfg.CheckpointDumpTime() * in.checkpointScale(m)
		},
		Output: san.Out(func(m *san.Marking) {
			in.pendingWriteScale = in.checkpointScale(m)
			in.advanceIncrSeq(m)
			m.Set(pl.enableChkpt, 1)
			m.Set(pl.chkptBuffered, 1)
			// The buffered checkpoint captures all work up to the
			// quiesce point; nothing accrued since, so the secured
			// level is exactly the current useful work.
			in.capB = in.useful()
			in.counters.CheckpointsDumped++
			if cfg.BlockingCheckpointWrite {
				// Ablation: without two-step background I/O the
				// compute nodes stay stopped until the file-system
				// write finishes (paper footnote 1).
				m.Move(pl.checkpointing, pl.fsWait)
				return
			}
			m.Move(pl.checkpointing, pl.execution)
			m.Move(pl.masterCheckpointing, pl.masterSleep)
			in.resetApp(m)
		}, pl.incrSeq),
	})

	if cfg.BlockingCheckpointWrite {
		// The compute nodes resume once the file-system write has
		// finished — or been aborted by an I/O failure, which clears
		// both the write request and the in-progress write.
		in.mod.AddInstant(san.Activity{
			Name: "resume_after_fs_write",
			Input: san.When(func(m *san.Marking) bool {
				return m.Has(pl.fsWait) && !m.Has(pl.enableChkpt) && !m.Has(pl.writingChkpt)
			}, pl.fsWait, pl.enableChkpt, pl.writingChkpt),
			Output: san.Out(func(m *san.Marking) {
				m.Move(pl.fsWait, pl.execution)
				m.Move(pl.masterCheckpointing, pl.masterSleep)
				in.resetApp(m)
			}),
		})
	}
}

// resetApp returns the application workload to a fresh compute phase, as
// the paper does when checkpointing completes or aborts and after recovery
// ("the app_workload resets at the compute state", Figure 2c).
func (in *Instance) resetApp(m *san.Marking) {
	m.Clear(in.pl.appIO)
	m.Set(in.pl.appCompute, 1)
}

// det builds a deterministic DelayFunc.
func det(v float64) san.DelayFunc {
	return func(*san.Marking, rng.Source) float64 { return v }
}

// checkpointScale returns the relative size of the next checkpoint: 1 for
// a full dump, IncrementalFraction for an incremental one.
func (in *Instance) checkpointScale(m *san.Marking) float64 {
	if in.cfg.IncrementalFraction <= 0 {
		return 1
	}
	if m.Get(in.pl.incrSeq) == 0 {
		return 1
	}
	return in.cfg.IncrementalFraction
}

// advanceIncrSeq cycles the full/incremental counter: every k-th
// checkpoint is full.
func (in *Instance) advanceIncrSeq(m *san.Marking) {
	if in.cfg.IncrementalFraction <= 0 {
		return
	}
	next := (m.Get(in.pl.incrSeq) + 1) % in.cfg.FullCheckpointEvery
	m.Set(in.pl.incrSeq, next)
}
