package model

import (
	"testing"

	"repro/internal/cluster"
)

// BenchmarkTrajectory runs one steady-state trajectory of the paper's base
// model per iteration (short warmup + measurement window) and reports
// events/sec throughput, incremental vs full-scan scheduling. The ≥1.3×
// incremental speedup recorded in REPORT.md comes from this benchmark.
func BenchmarkTrajectory(b *testing.B) {
	const warmup, measure = 200.0, 1800.0
	for _, mode := range []struct {
		name     string
		fullScan bool
	}{{"incremental", false}, {"fullscan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				in, err := New(cluster.Default(), uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				in.SetFullScan(mode.fullScan)
				if _, err := in.RunSteadyState(warmup, measure); err != nil {
					b.Fatal(err)
				}
				events += in.Fired()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
