package model

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// BenchmarkTrajectory runs one steady-state trajectory of the paper's base
// model per iteration (short warmup + measurement window) and reports
// events/sec throughput, incremental vs full-scan scheduling. The ≥1.3×
// incremental speedup recorded in REPORT.md comes from this benchmark.
func BenchmarkTrajectory(b *testing.B) {
	const warmup, measure = 200.0, 1800.0
	for _, mode := range []struct {
		name     string
		fullScan bool
	}{{"incremental", false}, {"fullscan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				in, err := New(cluster.Default(), uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				in.SetFullScan(mode.fullScan)
				if _, err := in.RunSteadyState(warmup, measure); err != nil {
					b.Fatal(err)
				}
				events += in.Fired()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkObsOverhead measures the cost of attaching the observability
// shard to a trajectory: "bare" is the uninstrumented event loop,
// "instrumented" runs the same trajectory with every san.*/des.* metric
// recorded into a per-worker shard and merged at the end. The events/s gap
// between the two is the instrumentation overhead; REPORT.md pins it
// below 3 %.
func BenchmarkObsOverhead(b *testing.B) {
	const warmup, measure = 200.0, 1800.0
	run := func(b *testing.B, instrument bool) {
		var reg *obs.Registry
		if instrument {
			reg = obs.NewRegistry()
		}
		var events uint64
		for i := 0; i < b.N; i++ {
			in, err := New(cluster.Default(), uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			var sh *obs.Shard
			if instrument {
				sh = reg.NewShard()
				in.Instrument(sh)
			}
			if _, err := in.RunSteadyState(warmup, measure); err != nil {
				b.Fatal(err)
			}
			events += in.Fired()
			if instrument {
				in.FlushEngineStats()
				sh.Merge()
			}
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}
