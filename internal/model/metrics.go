package model

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/san"
)

// Metrics are the paper's performance measures for one simulated
// trajectory, measured over the post-transient window (Section 7).
type Metrics struct {
	// UsefulWorkFraction is the fraction of time the system makes forward
	// progress toward job completion, excluding work repeated because of
	// failures (Section 7).
	UsefulWorkFraction float64
	// TotalUsefulWork is UsefulWorkFraction × number of compute
	// processors: how many ideal failure-free processors the system is
	// worth (Section 7, "job units" per unit time).
	TotalUsefulWork float64
	// MeasuredTime is the length of the measurement window in hours.
	MeasuredTime float64
	// Breakdown is the per-state occupancy of the measurement window.
	Breakdown Breakdown
	// RepeatedWorkFraction is the share of wall time spent executing work
	// that was later lost to a rollback: Breakdown.Execution −
	// UsefulWorkFraction. Together with Recovery and Reboot it makes up
	// the paper's "time spent handling failures".
	RepeatedWorkFraction float64
	// MeanLostWorkPerFailure is the average useful work (hours) discarded
	// per rollback over the whole trajectory; 0 when no rollback occurred.
	MeanLostWorkPerFailure float64
	// MaxLostWork is the largest single rollback observed.
	MaxLostWork float64
	// Counters tallies discrete events over the whole trajectory
	// (including the transient, which is irrelevant for counts used as
	// rates over long runs but documented for precision).
	Counters Counters
}

func (mt Metrics) String() string {
	return fmt.Sprintf("useful=%.4f total=%.1f (T=%.0fh, fail=%d io=%d rec=%d ckpt=%d abort=%d reboot=%d)",
		mt.UsefulWorkFraction, mt.TotalUsefulWork, mt.MeasuredTime,
		mt.Counters.ComputeFailures, mt.Counters.IOFailures, mt.Counters.RecoveryFailures,
		mt.Counters.CheckpointsDumped, mt.Counters.CheckpointAborts, mt.Counters.Reboots)
}

// RunSteadyState simulates one trajectory: a transient period of warmup
// hours is discarded (the paper uses 1000 h), then the useful-work measures
// are taken over the following measure hours.
func (in *Instance) RunSteadyState(warmup, measure float64) (Metrics, error) {
	if warmup < 0 || measure <= 0 {
		return Metrics{}, fmt.Errorf("model: invalid window warmup=%v measure=%v", warmup, measure)
	}
	in.sim.RunUntil(warmup)
	usefulAtWarmup := in.useful()
	statesAtWarmup := in.breakdownSnapshot()
	in.sim.RunUntil(warmup + measure)
	useful := in.useful() - usefulAtWarmup
	frac := useful / measure
	if frac < 0 {
		// A rollback that straddles the warmup boundary can push the
		// windowed useful work slightly negative on pathological
		// configurations; clamp, since negative forward progress over
		// a window only means "nothing retained".
		frac = 0
	}
	breakdown := breakdownBetween(statesAtWarmup, in.breakdownSnapshot(), measure)
	repeated := breakdown.Execution - frac
	if repeated < 0 {
		repeated = 0
	}
	return Metrics{
		UsefulWorkFraction:     frac,
		TotalUsefulWork:        frac * float64(in.cfg.Processors),
		MeasuredTime:           measure,
		Breakdown:              breakdown,
		RepeatedWorkFraction:   repeated,
		MeanLostWorkPerFailure: in.lossStats.Mean(),
		MaxLostWork:            in.lossStats.Max(),
		Counters:               in.counters,
	}, nil
}

// Advance runs the trajectory to the given absolute time (for tests that
// inspect intermediate state).
func (in *Instance) Advance(to float64) { in.sim.RunUntil(to) }

// SetFullScan switches the underlying simulator between the incremental
// dependency-index scheduler (default) and the conservative full-rescan
// path. The two are bit-identical by construction; the full-scan mode
// exists for differential testing and debugging.
func (in *Instance) SetFullScan(on bool) { in.sim.FullScan = on }

// Instrument attaches the underlying simulator's telemetry (firings,
// settles, reactivations, dirty-closure sizes, queue depths) to the given
// observability shard; nil detaches. Call FlushEngineStats once when the
// trajectory ends, then merge the shard.
func (in *Instance) Instrument(sh *obs.Shard) { in.sim.Instrument(sh) }

// FlushEngineStats folds the event engine's cumulative counters into the
// attached shard (see san.Simulator.FlushEngineStats).
func (in *Instance) FlushEngineStats() { in.sim.FlushEngineStats() }

// Useful returns the net useful work accrued since time zero.
func (in *Instance) Useful() float64 { return in.useful() }

// Now returns the instance's current simulated time.
func (in *Instance) Now() float64 { return in.sim.Now() }

// Fired returns the number of activity firings executed so far — the
// trajectory's event count, used for progress reporting and throughput
// accounting by the runner.
func (in *Instance) Fired() uint64 { return in.sim.Fired() }

// Snapshot exposes the current marking by place name (tests only).
func (in *Instance) Snapshot() map[string]int { return in.sim.Snapshot() }

// SecuredBuffered returns the useful work secured by the buffered
// checkpoint (tests only).
func (in *Instance) SecuredBuffered() float64 { return in.capB }

// SecuredDurable returns the useful work secured by the durable checkpoint
// (tests only).
func (in *Instance) SecuredDurable() float64 { return in.capD }

// SetTrace installs an observer invoked after every activity firing with
// the firing time, the activity name and (when includeMarking is set) the
// non-empty places of the post-firing marking. A nil observer disables
// tracing. Tracing a long trajectory is expensive; it exists for debugging
// and for the cctrace tool.
func (in *Instance) SetTrace(f func(t float64, activity string, marking map[string]int), includeMarking bool) {
	if f == nil {
		in.sim.SetTrace(nil)
		return
	}
	in.sim.SetTrace(func(t float64, a *san.Activity, m *san.Marking) {
		var snap map[string]int
		if includeMarking {
			snap = make(map[string]int)
			for _, p := range in.mod.Places() {
				if n := m.Get(p); n > 0 {
					snap[p.Name] = n
				}
			}
		}
		f(t, a.Name, snap)
	})
}
