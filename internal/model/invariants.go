package model

import (
	"fmt"

	"repro/internal/san"
)

// EnableInvariantChecks registers the model's structural invariants with
// the SAN simulator; every firing then validates them and panics on
// violation. Intended for tests and debugging — the checks cost a few
// predicate evaluations per event.
func (in *Instance) EnableInvariantChecks() {
	pl := in.pl
	count := func(m *san.Marking, ps ...*san.Place) int {
		n := 0
		for _, p := range ps {
			n += m.Get(p)
		}
		return n
	}
	in.sim.AddInvariant("compute unit in one state", func(m *san.Marking) error {
		if n := count(m, pl.execution, pl.quiescing, pl.checkpointing, pl.fsWait); n > 1 {
			return fmt.Errorf("%d compute states marked", n)
		}
		return nil
	})
	in.sim.AddInvariant("app in one phase", func(m *san.Marking) error {
		if n := count(m, pl.appCompute, pl.appIO); n != 1 {
			return fmt.Errorf("%d app phases marked", n)
		}
		return nil
	})
	in.sim.AddInvariant("master in one state", func(m *san.Marking) error {
		if n := count(m, pl.masterSleep, pl.masterCheckpointing); n != 1 {
			return fmt.Errorf("%d master states marked", n)
		}
		return nil
	})
	in.sim.AddInvariant("io unit in one state", func(m *san.Marking) error {
		if n := count(m, pl.ionodeIdle, pl.writingChkpt, pl.writingAppData, pl.ioRestarting, pl.rebooting); n > 1 {
			return fmt.Errorf("%d I/O states marked", n)
		}
		return nil
	})
	in.sim.AddInvariant("no recovery while up", func(m *san.Marking) error {
		if m.Has(pl.sysUp) && count(m, pl.recoveryStage1, pl.recoveryStage2) > 0 {
			return fmt.Errorf("recovering while sys_up")
		}
		return nil
	})
	in.sim.AddInvariant("at most one recovery stage", func(m *san.Marking) error {
		if n := count(m, pl.recoveryStage1, pl.recoveryStage2); n > 1 {
			return fmt.Errorf("%d recovery stages marked", n)
		}
		return nil
	})
	in.sim.AddInvariant("secured work ordered", func(*san.Marking) error {
		if in.capD > in.capB+1e-9 || in.capB > in.useful()+1e-9 {
			return fmt.Errorf("capD=%v capB=%v useful=%v", in.capD, in.capB, in.useful())
		}
		return nil
	})
}
