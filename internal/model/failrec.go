package model

import (
	"repro/internal/rng"
	"repro/internal/san"
)

// addAppWorkload wires the app_workload submodel (Figure 2c): the BSP
// compute / foreground-I/O alternation of Section 3.3. Phase timers only
// advance while the compute nodes are executing; when a checkpoint or
// recovery interrupts the application, the workload is reset to a fresh
// compute phase (Figure 2c's to_reset_processor_state).
func (in *Instance) addAppWorkload() {
	pl, cfg := in.pl, in.cfg
	if cfg.AppIOForegroundTime() <= 0 {
		// Pure compute application: the workload stays in app_compute
		// forever and no I/O-phase activities are needed.
		return
	}
	in.mod.AddTimed(san.Activity{
		Name:  "app_compute_end",
		Input: san.AllOf(pl.appCompute, pl.execution, pl.sysUp),
		Delay: det(cfg.AppComputeTime()),
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.appCompute, pl.appIO)
		}),
	})
	// Foreground I/O is non-preemptive: once started it runs to
	// completion even while the nodes are quiescing for a checkpoint
	// (Section 3.3), so the enabling condition deliberately does not
	// require the execution state.
	in.mod.AddTimed(san.Activity{
		Name:  "app_io_end",
		Input: san.AllOf(pl.appIO, pl.sysUp),
		Delay: det(cfg.AppIOForegroundTime()),
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.appIO, pl.appCompute)
			// The transferred data now sits in the I/O nodes'
			// buffers awaiting the background file-system write.
			m.Add(pl.appDataPending, 1)
		}),
	})
}

// addIONodes wires the io_nodes submodel (Figure 2b): background writes of
// checkpoints and application data to the file system. Checkpoint writes
// take precedence over application-data writes when both are pending.
func (in *Instance) addIONodes() {
	pl, cfg := in.pl, in.cfg

	in.mod.AddInstant(san.Activity{
		Name:     "start_write_chkpt",
		Priority: 1,
		Input:    san.AllOf(pl.ionodeIdle, pl.enableChkpt, pl.ioUp),
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.enableChkpt)
			m.Move(pl.ionodeIdle, pl.writingChkpt)
		}),
	})
	in.mod.AddTimed(san.Activity{
		Name:  "write_chkpt",
		Input: san.AllOf(pl.writingChkpt, pl.ioUp),
		Delay: func(*san.Marking, rng.Source) float64 {
			return cfg.CheckpointFSWriteTime() * in.pendingWriteScale
		},
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.writingChkpt, pl.ionodeIdle)
			// The durable checkpoint catches up with the buffer.
			in.capD = in.capB
			in.counters.CheckpointsWritten++
		}),
	})

	in.mod.AddInstant(san.Activity{
		Name:     "start_write_appdata",
		Priority: 0,
		Input:    san.AllOf(pl.ionodeIdle, pl.appDataPending, pl.ioUp),
		Output: san.Out(func(m *san.Marking) {
			m.Add(pl.appDataPending, -1)
			m.Move(pl.ionodeIdle, pl.writingAppData)
		}),
	})
	in.mod.AddTimed(san.Activity{
		Name:  "write_appdata",
		Input: san.AllOf(pl.writingAppData, pl.ioUp),
		Delay: det(cfg.AppIOBackgroundWriteTime()),
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.writingAppData, pl.ionodeIdle)
		}),
	})
}

// addFailureAndRecovery wires the comp_node_failure, comp_node_recovery,
// io_node_failure, io_node_recovery and system_reboot submodels
// (Sections 3.4 and 4).
func (in *Instance) addFailureAndRecovery() {
	pl, cfg := in.pl, in.cfg

	computeRate := cfg.ComputeFailureRate() + cfg.GenericCorrelatedRate()
	ioRate := cfg.IOFailureRate()

	// Compute-subsystem failure: may strike in any state while the system
	// is up — executing, quiescing or checkpoint dumping (Section 3.4).
	// The rate is multiplied by r inside a correlated-failure window;
	// ReactivateOn makes the delay resample when the window opens or
	// closes (sound by memorylessness under the exponential default; an
	// explicit renewal approximation under FailureWeibull, see
	// failureDelay). The output gate reads the buffer/window places
	// through computeFailure's branching. With the migration extension a
	// predicted failure is absorbed by maybeMigrate instead of rolling
	// back.
	in.mod.AddTimed(san.Activity{
		Name:  "comp_failure",
		Input: san.AllOf(pl.sysUp),
		Delay: func(m *san.Marking, src rng.Source) float64 {
			return in.failureDelay(computeRate*in.corrMult(m), in.delaySrc(purposeCompFailure, src))
		},
		ReactivateOn: []*san.Place{pl.corrWindow},
		Output: san.Out(func(m *san.Marking) {
			in.counters.ComputeFailures++
			if in.maybeMigrate(m) {
				return
			}
			in.computeFailure(m)
		}, pl.chkptBuffered, pl.corrWindow),
	})

	// Recovery stage 1: the I/O nodes read the last durable checkpoint
	// from the file system into their buffers. Skipped entirely (the
	// place never gets a token) when the checkpoint is still buffered.
	in.mod.AddTimed(san.Activity{
		Name:  "recover_stage1",
		Input: san.AllOf(pl.recoveryStage1, pl.ioUp),
		Delay: det(cfg.CheckpointFSReadTime()),
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.recoveryStage1, pl.recoveryStage2)
			// The checkpoint is buffered again; the buffer equals
			// the durable copy so no extra work is secured.
			m.Set(pl.chkptBuffered, 1)
			in.capB = in.capD
		}),
	})

	// Recovery stage 2: compute nodes read the checkpoint from the I/O
	// nodes and reinitialise. Figure 3 models recovery with a rate µ, so
	// the stage is exponential with the system MTTR as its mean. After a
	// permanent failure the extension adds the deterministic spare-node
	// reconfiguration time (§3.4 / footnote 2 of the paper).
	in.mod.AddTimed(san.Activity{
		Name:  "recover_stage2",
		Input: san.AllOf(pl.recoveryStage2, pl.ioUp),
		Delay: func(m *san.Marking, src rng.Source) float64 {
			d := rng.Exponential{MeanValue: cfg.MTTR}.Sample(in.delaySrc(purposeRecovery, src))
			if m.Has(pl.reconfigNeeded) {
				d += cfg.ReconfigurationTime
			}
			return d
		},
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.recoveryStage2)
			m.Clear(pl.recoveryFailures)
			m.Clear(pl.reconfigNeeded)
			m.Set(pl.sysUp, 1)
			m.Set(pl.execution, 1)
			in.resetApp(m)
			// A successful recovery wipes latent errors: the system
			// exits the correlated-failure window (Section 4).
			m.Clear(pl.corrWindow)
		}),
	})

	// Failures during recovery (the paper's key departure from classic
	// models): each one restarts the recovery; after
	// SevereFailureThreshold consecutive unsuccessful recoveries the
	// whole system reboots ("severe failures", Figure 1).
	in.mod.AddTimed(san.Activity{
		Name: "recovery_failure",
		Input: san.When(func(m *san.Marking) bool {
			return (m.Has(pl.recoveryStage1) || m.Has(pl.recoveryStage2)) && !m.Has(pl.rebooting)
		}, pl.recoveryStage1, pl.recoveryStage2, pl.rebooting),
		Delay: func(m *san.Marking, src rng.Source) float64 {
			return in.failureDelay(computeRate*in.corrMult(m), in.delaySrc(purposeRecoveryFailure, src))
		},
		ReactivateOn: []*san.Place{pl.corrWindow},
		Output: san.Out(func(m *san.Marking) {
			in.counters.RecoveryFailures++
			in.maybeOpenCorrWindow(m)
			m.Add(pl.recoveryFailures, 1)
			if m.Get(pl.recoveryFailures) >= cfg.SevereFailureThreshold {
				in.startReboot(m)
				return
			}
			// Restart recovery at the appropriate stage.
			m.Clear(pl.recoveryStage1)
			m.Clear(pl.recoveryStage2)
			m.Set(in.recoveryEntryStage(m), 1)
		}, pl.recoveryFailures, pl.chkptBuffered, pl.corrWindow),
	})

	// I/O-subsystem failure (Section 3.4): restarts all I/O nodes; the
	// consequences depend on what the I/O nodes were doing. The
	// NoIOFailures ablation removes the process entirely.
	if !cfg.NoIOFailures {
		in.mod.AddTimed(san.Activity{
			Name:  "io_failure",
			Input: san.AllOf(pl.ioUp),
			Delay: func(m *san.Marking, src rng.Source) float64 {
				return in.failureDelay(ioRate*in.corrMult(m), in.delaySrc(purposeIOFailure, src))
			},
			ReactivateOn: []*san.Place{pl.corrWindow},
			Output: san.Out(func(m *san.Marking) {
				in.counters.IOFailures++
				in.ioFailure(m)
			}, pl.writingAppData, pl.appDataPending, pl.sysUp,
				pl.recoveryStage1, pl.recoveryStage2, pl.recoveryFailures,
				pl.chkptBuffered, pl.corrWindow),
		})
	}

	// I/O restart: "When an I/O node fails, all the I/O nodes need to be
	// restarted" (Section 3.4); Table 3 gives a 1-minute MTTR.
	in.mod.AddTimed(san.Activity{
		Name:  "io_restart",
		Input: san.AllOf(pl.ioRestarting),
		Delay: func(_ *san.Marking, src rng.Source) float64 {
			return rng.Exponential{MeanValue: cfg.MTTRIONodes}.Sample(in.delaySrc(purposeIORestart, src))
		},
		Output: san.Out(func(m *san.Marking) {
			m.Move(pl.ioRestarting, pl.ionodeIdle)
			m.Set(pl.ioUp, 1)
		}),
	})

	// System reboot (system_reboot submodel): after it completes the I/O
	// processors are ready but the compute nodes still need to read the
	// last durable checkpoint and recover (Figure 1's "reboot completes"
	// arrows into io_nodes and comp_node_failure).
	in.mod.AddTimed(san.Activity{
		Name:  "reboot",
		Input: san.AllOf(pl.rebooting),
		Delay: det(cfg.RebootTime),
		Output: san.Out(func(m *san.Marking) {
			m.Clear(pl.rebooting)
			m.Set(pl.ioUp, 1)
			m.Set(pl.ionodeIdle, 1)
			m.Set(pl.recoveryStage1, 1) // buffer was lost; durable read required
		}),
	})
}

// computeFailure applies the full consequence of a compute-subsystem
// failure: all work since the newest valid checkpoint is lost, any
// checkpoint protocol in progress is aborted (the previous checkpoint
// remains valid), and two-stage recovery starts — stage 1 skipped when the
// checkpoint is still buffered at the I/O nodes.
func (in *Instance) computeFailure(m *san.Marking) {
	pl := in.pl
	if in.cfg.NoBufferedRecovery {
		// Ablation: recovery ignores the I/O-node buffers, so work
		// secured only by a buffered checkpoint is lost too.
		in.capB = in.capD
	}
	// Negative impulse: the computation since the last valid checkpoint
	// must be repeated and is not useful work (Section 7).
	lost := in.useful() - in.capB
	in.lossStats.Add(lost)
	in.lost += lost

	// Tear down the compute side wherever it was (an in-progress
	// migration is overtaken by the unpredicted failure).
	m.Clear(pl.execution)
	m.Clear(pl.quiescing)
	m.Clear(pl.checkpointing)
	m.Clear(pl.fsWait)
	m.Clear(pl.migrating)
	m.Clear(pl.sysUp)

	// Abort the protocol; a partially dumped checkpoint is discarded and
	// the previous checkpoint stays valid (Section 3.2).
	m.Clear(pl.completeCoordination)
	m.Clear(pl.timedOut)
	m.Set(pl.masterSleep, 1)
	m.Clear(pl.masterCheckpointing)
	in.resetApp(m)

	// Permanent-failure extension: with the configured probability this
	// failure took hardware out for good, so the coming recovery must
	// first reconfigure onto spare nodes and remap the checkpoint.
	if in.cfg.ProbPermanentFailure > 0 && in.u01(purposePermanent) < in.cfg.ProbPermanentFailure {
		in.counters.PermanentFailures++
		m.Set(pl.reconfigNeeded, 1)
	}

	// Enter recovery.
	m.Clear(pl.recoveryStage1)
	m.Clear(pl.recoveryStage2)
	m.Set(in.recoveryEntryStage(m), 1)
	in.maybeOpenCorrWindow(m)
}

// recoveryEntryStage returns the recovery stage a rollback enters: stage 2
// when a buffered checkpoint can be used (Section 4), stage 1 otherwise.
func (in *Instance) recoveryEntryStage(m *san.Marking) *san.Place {
	if m.Has(in.pl.chkptBuffered) && !in.cfg.NoBufferedRecovery {
		return in.pl.recoveryStage2
	}
	return in.pl.recoveryStage1
}

// ioFailure applies the consequence of an I/O-subsystem failure. All I/O
// nodes restart, which always invalidates the buffered checkpoint; work it
// covered beyond the durable copy becomes at-risk again. If application
// data was buffered or being written, the application results are lost and
// the system rolls back to the last durable checkpoint (Section 3.4).
func (in *Instance) ioFailure(m *san.Marking) {
	pl := in.pl

	appDataLoss := m.Has(pl.writingAppData) || m.Has(pl.appDataPending)

	// The restart wipes I/O-node memory: buffered checkpoint and pending
	// write requests are gone. Work secured only by the buffer reverts
	// to at-risk (it is not lost yet — only a failure loses it).
	m.Clear(pl.chkptBuffered)
	in.capB = in.capD
	m.Clear(pl.enableChkpt)
	m.Clear(pl.appDataPending)
	m.Clear(pl.ionodeIdle)
	m.Clear(pl.writingChkpt)
	m.Clear(pl.writingAppData)
	m.Clear(pl.ioUp)
	m.Set(pl.ioRestarting, 1)

	recovering := m.Has(pl.recoveryStage1) || m.Has(pl.recoveryStage2)
	switch {
	case appDataLoss && m.Has(pl.sysUp):
		// Application results lost: full rollback of the compute side
		// to the last durable checkpoint.
		in.computeFailure(m)
	case recovering:
		// An I/O failure during recovery makes the attempt
		// unsuccessful; restart from stage 1 (buffer gone) and count
		// it toward the severe-failure threshold.
		in.counters.RecoveryFailures++
		m.Add(pl.recoveryFailures, 1)
		m.Clear(pl.recoveryStage1)
		m.Clear(pl.recoveryStage2)
		if m.Get(pl.recoveryFailures) >= in.cfg.SevereFailureThreshold {
			in.startReboot(m)
		} else {
			m.Set(pl.recoveryStage1, 1)
		}
		in.maybeOpenCorrWindow(m)
	default:
		// Compute nodes are not affected (e.g. the I/O nodes were idle
		// or writing a checkpoint); they keep executing and the
		// checkpoint write, if any, is simply aborted.
		in.maybeOpenCorrWindow(m)
	}
}

// startReboot puts the whole system (compute and I/O nodes) into the
// system_reboot submodel.
func (in *Instance) startReboot(m *san.Marking) {
	pl := in.pl
	in.counters.Reboots++
	m.Clear(pl.recoveryStage1)
	m.Clear(pl.recoveryStage2)
	m.Clear(pl.recoveryFailures)
	m.Clear(pl.execution)
	m.Clear(pl.quiescing)
	m.Clear(pl.checkpointing)
	m.Clear(pl.fsWait)
	m.Clear(pl.migrating)
	m.Clear(pl.sysUp)
	m.Set(pl.masterSleep, 1)
	m.Clear(pl.masterCheckpointing)
	m.Clear(pl.timedOut)
	m.Clear(pl.completeCoordination)
	m.Clear(pl.ioUp)
	m.Clear(pl.ioRestarting)
	m.Clear(pl.ionodeIdle)
	m.Clear(pl.writingChkpt)
	m.Clear(pl.writingAppData)
	m.Clear(pl.enableChkpt)
	m.Clear(pl.appDataPending)
	m.Clear(pl.chkptBuffered)
	in.capB = in.capD
	m.Clear(pl.corrWindow)
	// A full reboot reinitialises the node mapping, so any pending
	// spare-node reconfiguration is subsumed by it.
	m.Clear(pl.reconfigNeeded)
	m.Set(pl.rebooting, 1)
}

// addCorrelated wires the correlated_failures submodel: the window-end
// timer. The window place's token count increments on every trigger so the
// deterministic end timer reactivates, extending the burst.
func (in *Instance) addCorrelated() {
	pl, cfg := in.pl, in.cfg
	if cfg.ProbCorrelated <= 0 {
		return
	}
	in.mod.AddTimed(san.Activity{
		Name:         "corr_window_end",
		Input:        san.AllOf(pl.corrWindow),
		Delay:        det(cfg.CorrelatedWindow),
		ReactivateOn: []*san.Place{pl.corrWindow},
		Output:       san.Out(func(m *san.Marking) { m.Clear(pl.corrWindow) }),
	})
}

// corrMult returns the failure-rate multiplier of the correlated-failure
// window: r inside a window, 1 outside (Section 6).
func (in *Instance) corrMult(m *san.Marking) float64 {
	if m.Has(in.pl.corrWindow) && in.cfg.CorrelatedFactor > 0 {
		return in.cfg.CorrelatedFactor
	}
	return 1
}

// maybeOpenCorrWindow opens a correlated-failure window with probability
// p_e after a failure: error propagation makes follow-on failures r times
// more likely for the window's duration (Section 3.5). The window is a
// fixed-length error burst measured from the triggering failure; follow-on
// failures inside it do not extend it (the burst would otherwise
// self-sustain at the paper's r values, where p = λc/(λc+µ) ≈ 1).
func (in *Instance) maybeOpenCorrWindow(m *san.Marking) {
	cfg := in.cfg
	if cfg.ProbCorrelated <= 0 || m.Has(in.pl.corrWindow) {
		return
	}
	if in.u01(purposeCorrWindow) < cfg.ProbCorrelated {
		in.counters.CorrWindows++
		m.Set(in.pl.corrWindow, 1)
	}
}
