package model

import "repro/internal/san"

// Breakdown is the fraction of wall time the compute subsystem spends in
// each macro state. The components sum to 1 (up to floating point): at any
// instant the lumped compute unit is executing, quiescing, dumping a
// checkpoint, blocked on a blocking file-system write, recovering (either
// stage, including waits for I/O-node restarts), or rebooting.
//
// The paper's "over 50% of system time is spent in handling failures"
// claim (§7.1) is Recovery + Reboot + the repeated-work share of
// Execution; see Metrics.RepeatedWorkFraction.
type Breakdown struct {
	// Execution is time spent running the application (including
	// application I/O) — useful and to-be-lost work alike.
	Execution float64
	// Quiesce is time spent stopping for checkpoints (broadcast wait and
	// coordination), plus aborted-coordination waits.
	Quiesce float64
	// Dump is time spent dumping checkpoints to the I/O nodes.
	Dump float64
	// FSWait is time blocked on checkpoint file-system writes; always 0
	// unless the BlockingCheckpointWrite ablation is on.
	FSWait float64
	// Recovery is time spent in recovery stages 1 and 2, including time
	// waiting for I/O nodes to restart before a stage can proceed.
	Recovery float64
	// Reboot is time spent in whole-system reboots.
	Reboot float64
}

// Sum returns the total of all components (≈ 1 for a full window).
func (b Breakdown) Sum() float64 {
	return b.Execution + b.Quiesce + b.Dump + b.FSWait + b.Recovery + b.Reboot
}

// Overhead returns everything that is not application execution.
func (b Breakdown) Overhead() float64 { return b.Sum() - b.Execution }

// stateRewards are the per-state occupancy rate rewards behind Breakdown.
type stateRewards struct {
	execution *san.RateReward
	quiesce   *san.RateReward
	dump      *san.RateReward
	fsWait    *san.RateReward
	recovery  *san.RateReward
	reboot    *san.RateReward
}

// addStateRewards registers the occupancy rewards on the simulator. Each
// reward declares the places its rate function reads so the simulator only
// re-evaluates it when one of them changes.
func (in *Instance) addStateRewards() {
	pl := in.pl
	ind := func(p *san.Place) func(m *san.Marking) float64 {
		return func(m *san.Marking) float64 {
			if m.Has(p) {
				return 1
			}
			return 0
		}
	}
	in.states = stateRewards{
		execution: in.sim.AddRateReward("state_execution", ind(pl.execution), pl.execution),
		quiesce:   in.sim.AddRateReward("state_quiesce", ind(pl.quiescing), pl.quiescing),
		dump:      in.sim.AddRateReward("state_dump", ind(pl.checkpointing), pl.checkpointing),
		fsWait:    in.sim.AddRateReward("state_fswait", ind(pl.fsWait), pl.fsWait),
		recovery: in.sim.AddRateReward("state_recovery", func(m *san.Marking) float64 {
			if m.Has(pl.recoveryStage1) || m.Has(pl.recoveryStage2) {
				return 1
			}
			return 0
		}, pl.recoveryStage1, pl.recoveryStage2),
		reboot: in.sim.AddRateReward("state_reboot", ind(pl.rebooting), pl.rebooting),
	}
}

// breakdownSnapshot captures the state integrals at one instant.
func (in *Instance) breakdownSnapshot() [6]float64 {
	return [6]float64{
		in.states.execution.Integral(),
		in.states.quiesce.Integral(),
		in.states.dump.Integral(),
		in.states.fsWait.Integral(),
		in.states.recovery.Integral(),
		in.states.reboot.Integral(),
	}
}

// breakdownBetween converts two snapshots into per-state fractions of the
// elapsed window.
func breakdownBetween(from, to [6]float64, window float64) Breakdown {
	if window <= 0 {
		return Breakdown{}
	}
	return Breakdown{
		Execution: (to[0] - from[0]) / window,
		Quiesce:   (to[1] - from[1]) / window,
		Dump:      (to[2] - from[2]) / window,
		FSWait:    (to[3] - from[3]) / window,
		Recovery:  (to[4] - from[4]) / window,
		Reboot:    (to[5] - from[5]) / window,
	}
}
