package sensitivity

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/runner"
)

func quickOpts() runner.Options {
	return runner.Options{Replications: 3, Warmup: 100, Measure: 800, Seed: 13}
}

func TestAnalyzeBaseSystem(t *testing.T) {
	// At the paper's base point (64K procs, MTTF 1yr) failures dominate,
	// so MTTF must be the most sensitive parameter, with a positive
	// elasticity; MTTR's must be negative.
	a, err := Analyze(cluster.Default(), nil, 1.5, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Effects) != len(AllParameters()) {
		t.Fatalf("effects = %d", len(a.Effects))
	}
	if a.MostSensitive() != ParamMTTF {
		t.Fatalf("most sensitive = %s, want mttf (effects: %+v)", a.MostSensitive(), a.Effects)
	}
	byParam := map[Parameter]Effect{}
	for _, e := range a.Effects {
		byParam[e.Parameter] = e
	}
	if byParam[ParamMTTF].Elasticity <= 0 {
		t.Fatalf("MTTF elasticity = %v, want positive", byParam[ParamMTTF].Elasticity)
	}
	if byParam[ParamMTTR].Elasticity >= 0 {
		t.Fatalf("MTTR elasticity = %v, want negative", byParam[ParamMTTR].Elasticity)
	}
	if byParam[ParamInterval].Elasticity >= 0 {
		t.Fatalf("interval elasticity = %v, want negative at 30min base", byParam[ParamInterval].Elasticity)
	}
}

func TestAnalyzeSubset(t *testing.T) {
	a, err := Analyze(cluster.Default(), []Parameter{ParamCkptSize}, 2.0, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Effects) != 1 || a.Effects[0].Parameter != ParamCkptSize {
		t.Fatalf("effects = %+v", a.Effects)
	}
	// Doubling the checkpoint size doubles dump+write times: small
	// negative effect.
	if a.Effects[0].FractionDiff.Mean >= 0 {
		t.Fatalf("bigger checkpoints should hurt: %v", a.Effects[0].FractionDiff)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(cluster.Default(), nil, 1.0, quickOpts()); err == nil {
		t.Error("factor 1 accepted")
	}
	if _, err := Analyze(cluster.Default(), nil, -0.5, quickOpts()); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := Analyze(cluster.Default(), []Parameter{"nonsense"}, 1.2, quickOpts()); err == nil {
		t.Error("unknown parameter accepted")
	}
	bad := cluster.Default()
	bad.Processors = 0
	if _, err := Analyze(bad, nil, 1.2, quickOpts()); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestApplyCoversAllParameters(t *testing.T) {
	base := cluster.Default()
	for _, p := range AllParameters() {
		cfg, err := apply(base, p, 1.25)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if cfg == base {
			t.Fatalf("%s: perturbation did not change the config", p)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: perturbed config invalid: %v", p, err)
		}
	}
}
