// Package sensitivity performs one-at-a-time sensitivity analysis of the
// checkpointing model: each parameter is perturbed by a relative factor and
// the useful-work fraction response is estimated with common random numbers
// (paired replications), yielding elasticities — the tornado diagram behind
// questions like "is this machine limited by MTTF, MTTR or the checkpoint
// interval?".
package sensitivity

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Parameter identifies a perturbable model parameter.
type Parameter string

// The perturbable parameters.
const (
	ParamMTTF        Parameter = "mttf"
	ParamMTTR        Parameter = "mttr"
	ParamInterval    Parameter = "interval"
	ParamMTTQ        Parameter = "mttq"
	ParamCkptSize    Parameter = "checkpoint-size"
	ParamIOBandwidth Parameter = "io-bandwidth"
	ParamFSBandwidth Parameter = "fs-bandwidth"
)

// AllParameters returns every perturbable parameter.
func AllParameters() []Parameter {
	return []Parameter{
		ParamMTTF, ParamMTTR, ParamInterval, ParamMTTQ,
		ParamCkptSize, ParamIOBandwidth, ParamFSBandwidth,
	}
}

// apply scales the parameter by factor and returns the mutated config.
func apply(cfg cluster.Config, p Parameter, factor float64) (cluster.Config, error) {
	switch p {
	case ParamMTTF:
		cfg.MTTFPerNode *= factor
	case ParamMTTR:
		cfg.MTTR *= factor
	case ParamInterval:
		cfg.CheckpointInterval *= factor
	case ParamMTTQ:
		cfg.MTTQ *= factor
	case ParamCkptSize:
		cfg.CheckpointSizePerNode *= factor
	case ParamIOBandwidth:
		cfg.BandwidthToIONode *= factor
	case ParamFSBandwidth:
		cfg.BandwidthIOToFS *= factor
	default:
		return cluster.Config{}, fmt.Errorf("sensitivity: unknown parameter %q", p)
	}
	return cfg, nil
}

// Effect is the measured response to perturbing one parameter.
type Effect struct {
	Parameter Parameter
	// Factor is the applied relative change (e.g. 1.2 for +20 %).
	Factor float64
	// FractionDiff is the paired CI of (perturbed − base) useful-work
	// fraction.
	FractionDiff stats.Interval
	// Elasticity is d(ln fraction)/d(ln param) ≈ (Δf/f)/(Δp/p),
	// evaluated at the base point.
	Elasticity float64
}

// Analysis is the full one-at-a-time result, sorted by effect magnitude.
type Analysis struct {
	// BaseFraction is the unperturbed useful-work fraction.
	BaseFraction stats.Interval
	// Effects holds one entry per parameter, largest |elasticity| first.
	Effects []Effect
}

// MostSensitive returns the parameter with the largest |elasticity|.
func (a Analysis) MostSensitive() Parameter {
	if len(a.Effects) == 0 {
		return ""
	}
	return a.Effects[0].Parameter
}

// Analyze perturbs each parameter by the given relative factor (> 0,
// ≠ 1, e.g. 1.2) and estimates the response with paired replications.
func Analyze(cfg cluster.Config, params []Parameter, factor float64, opts runner.Options) (Analysis, error) {
	if factor <= 0 || factor == 1 {
		return Analysis{}, fmt.Errorf("sensitivity: factor %v must be positive and ≠ 1", factor)
	}
	if len(params) == 0 {
		params = AllParameters()
	}
	// The base estimate can use the full worker budget (it runs alone);
	// the per-parameter comparisons then fan out one job per parameter.
	base, err := runner.Estimate(cfg, opts)
	if err != nil {
		return Analysis{}, err
	}
	out := Analysis{BaseFraction: base.UsefulWorkFraction}
	pool := exec.Pool{Workers: exec.WorkerCount(opts.Workers)}
	out.Effects, err = exec.Map(context.Background(), pool, len(params),
		func(_ context.Context, i int) (Effect, error) {
			p := params[i]
			perturbed, err := apply(cfg, p, factor)
			if err != nil {
				return Effect{}, err
			}
			if err := perturbed.Validate(); err != nil {
				return Effect{}, fmt.Errorf("sensitivity: %s×%v: %w", p, factor, err)
			}
			o := opts
			o.Workers = 1 // the parameter fan-out is already parallel
			o.Progress = nil
			comp, err := runner.Compare(cfg, perturbed, o)
			if err != nil {
				return Effect{}, err
			}
			eff := Effect{Parameter: p, Factor: factor, FractionDiff: comp.FractionDiff}
			if f := base.UsefulWorkFraction.Mean; f > 0 {
				relF := comp.FractionDiff.Mean / f
				relP := factor - 1
				eff.Elasticity = relF / relP
			}
			return eff, nil
		})
	if err != nil {
		return Analysis{}, err
	}
	sort.Slice(out.Effects, func(i, j int) bool {
		return abs(out.Effects[i].Elasticity) > abs(out.Effects[j].Elasticity)
	})
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
