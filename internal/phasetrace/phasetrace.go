// Package phasetrace turns a trajectory of the checkpointing model into a
// timeline of semantic phase spans — the time budgets the paper's headline
// quantities are made of. Where internal/trace records *what fired when*,
// phasetrace records *what the machine was doing*: computing, quiescing for
// a checkpoint, dumping state to the I/O nodes, blocked on a file-system
// write, recovering, or down in a whole-system reboot.
//
// The extractor is a small deterministic state machine fed one observation
// per activity firing (time, activity name, and a digest of the post-firing
// marking). It works identically for every model variant — the base model,
// max-of-n coordination, the master timeout, and correlated failures —
// because the phase is a pure function of the compute-side macro state,
// which all variants share; variant-specific activities only differ in
// *when* they move the system between those states.
//
// Besides spans the recorder mirrors the model's useful-work bookkeeping
// (buffered/durable checkpoint levels, rollback losses), which lets a
// timeline independently re-derive the reward-based useful-work estimate:
// useful work over a window is computation time minus the work lost to
// rollbacks in that window. The runner's self-verification pass
// (runner.Options.VerifySpans) cross-checks the two derivations against
// each other — observability that audits the simulator with itself.
package phasetrace

import (
	"encoding/json"
	"fmt"
)

// Phase is a semantic machine state. The zero value is Computation, the
// state the model starts in.
type Phase uint8

const (
	// Computation: the compute nodes execute the application (including
	// foreground application I/O — the paper counts both as execution).
	Computation Phase = iota
	// Rework: computation that re-does work lost to a rollback. Produced
	// only by Timeline.SplitRework, which splits Computation spans at the
	// point where the pre-failure high-water mark is re-attained; the raw
	// recorder cannot know at span-open time whether work will survive.
	Rework
	// Quiesce: stopping for a checkpoint — broadcast wait plus the
	// coordination (slowest-node quiesce), including waits that a master
	// timeout later aborts.
	Quiesce
	// Dump: checkpoint state streaming to the I/O nodes.
	Dump
	// FSWait: compute nodes blocked on the checkpoint file-system write
	// (only under the BlockingCheckpointWrite ablation).
	FSWait
	// Recovery: recovery stages 1 and 2, including waits for I/O-node
	// restarts before a stage can proceed.
	Recovery
	// Downtime: whole-system reboot after severe failures.
	Downtime
	// Migration: proactive process migration after a predicted failure
	// (only under the FailurePredictionAccuracy extension). The
	// application is paused but no work is lost and no rollback occurs.
	Migration

	// NumPhases is the number of distinct phases (array sizing).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"computation", "rework", "quiesce", "dump", "fswait", "recovery", "downtime",
	"migration",
}

// String returns the lower-case phase name used in span records, metric
// names and trace-viewer labels.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// MarshalJSON encodes the phase as its name.
func (p Phase) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes a phase name.
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range phaseNames {
		if name == s {
			*p = Phase(i)
			return nil
		}
	}
	return fmt.Errorf("phasetrace: unknown phase %q", s)
}

// Phases lists every phase in display order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Span is one contiguous interval the system spent in a phase. Times are
// simulated hours.
type Span struct {
	Phase Phase   `json:"phase"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Cause is the activity whose firing opened the span ("init" for the
	// span open when recording began).
	Cause string `json:"cause"`
}

// Duration returns End − Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Loss is one rollback impulse: at Time, Amount hours of useful work were
// discarded because the system rolled back to its newest valid checkpoint.
type Loss struct {
	Time   float64 `json:"t"`
	Amount float64 `json:"lost"`
	Cause  string  `json:"cause"`
}

// State is the marking digest the recorder needs: the compute-side macro
// state places plus the up flag. Exactly one macro state holds at any
// instant in a well-formed trajectory; Phase() resolves them in priority
// order so a digest from a transient mid-effect marking still classifies.
type State struct {
	Execution      bool // place "execution"
	Quiescing      bool // place "quiescing"
	Checkpointing  bool // place "checkpointing"
	FSWait         bool // place "fs_wait"
	RecoveryStage1 bool // place "recovery_stage1"
	RecoveryStage2 bool // place "recovery_stage2"
	Rebooting      bool // place "rebooting"
	Migrating      bool // place "migrating"
	SysUp          bool // place "sys_up"
}

// Phase classifies the digest.
func (st State) Phase() Phase {
	switch {
	case st.Rebooting:
		return Downtime
	case st.RecoveryStage1 || st.RecoveryStage2:
		return Recovery
	case st.FSWait:
		return FSWait
	case st.Checkpointing:
		return Dump
	case st.Quiescing:
		return Quiesce
	case st.Migrating:
		return Migration
	default:
		return Computation
	}
}

// Options configures a recorder.
type Options struct {
	// NoBufferedRecovery mirrors cluster.Config.NoBufferedRecovery: under
	// that ablation a rollback ignores the buffered checkpoint, so the
	// loss accounting must fall back to the durable level first.
	NoBufferedRecovery bool
}

// Recorder is the live phase-span extractor: feed it one Observe per
// activity firing (model.Instance.AttachPhases wires this up) and call
// Finish at the horizon. A Recorder is single-goroutine, like the
// simulator that feeds it.
type Recorder struct {
	opts    Options
	started bool

	cur      Phase
	curStart float64
	curCause string
	lastT    float64

	prevSysUp     bool
	prevRebooting bool

	// Useful-work mirror of model.Instance: useful accrues at rate 1
	// during Computation; capB/capD track the buffered/durable checkpoint
	// levels; a rollback resets useful to capB.
	useful, capB, capD float64

	spans  []Span
	losses []Loss
}

// NewRecorder returns an idle recorder; call Begin before Observe.
func NewRecorder(opts Options) *Recorder { return &Recorder{opts: opts} }

// Begin opens the first span at time t from the given state. Beginning
// twice panics — a recorder extracts exactly one trajectory.
func (r *Recorder) Begin(t float64, st State) {
	if r.started {
		panic("phasetrace: Begin called twice")
	}
	r.started = true
	r.cur = st.Phase()
	r.curStart, r.lastT = t, t
	r.curCause = "init"
	r.prevSysUp, r.prevRebooting = st.SysUp, st.Rebooting
}

// Observe feeds one activity firing: the firing time, the activity name
// and the post-firing marking digest. Observations must be time-ordered.
func (r *Recorder) Observe(t float64, activity string, st State) {
	if !r.started {
		panic("phasetrace: Observe before Begin")
	}
	if r.cur == Computation {
		r.useful += t - r.lastT
	}
	r.lastT = t

	// Checkpoint-level bookkeeping, mirroring the model's effects in the
	// order the effects apply them (see internal/model/failrec.go).
	switch activity {
	case "dump_chkpt":
		// The buffered checkpoint captures all work up to the quiesce
		// point; nothing accrued since, so it secures exactly the
		// current useful level.
		r.capB = r.useful
	case "write_chkpt":
		// The durable copy catches up with the buffer.
		r.capD = r.capB
	case "io_failure":
		// The I/O restart wipes the buffers before any rollback the
		// same firing may trigger.
		r.capB = r.capD
	case "recover_stage1":
		// Stage 1 re-reads the durable checkpoint into the buffers.
		r.capB = r.capD
	}
	if st.Rebooting && !r.prevRebooting {
		// Entering a reboot loses the I/O-node buffers too.
		r.capB = r.capD
	}
	// Rollback: the compute subsystem went down while up. Every such
	// transition — compute failure, or an I/O failure that lost
	// application data — discards the work since the newest valid
	// checkpoint.
	if r.prevSysUp && !st.SysUp {
		if r.opts.NoBufferedRecovery {
			r.capB = r.capD
		}
		lost := r.useful - r.capB
		r.losses = append(r.losses, Loss{Time: t, Amount: lost, Cause: activity})
		r.useful = r.capB
	}
	r.prevSysUp, r.prevRebooting = st.SysUp, st.Rebooting

	if p := st.Phase(); p != r.cur {
		if t > r.curStart {
			r.spans = append(r.spans, Span{Phase: r.cur, Start: r.curStart, End: t, Cause: r.curCause})
		}
		// A zero-length span (several phase changes at one instant)
		// is dropped; the latest activity becomes the new span's cause.
		r.cur, r.curStart, r.curCause = p, t, activity
	}
}

// Finish closes the open span at the horizon and returns the timeline.
// The recorder itself stays usable, so a caller may take an intermediate
// timeline and keep observing (later Finish calls supersede earlier ones).
func (r *Recorder) Finish(t float64) *Timeline {
	if !r.started {
		panic("phasetrace: Finish before Begin")
	}
	spans := append([]Span(nil), r.spans...)
	if t > r.curStart {
		spans = append(spans, Span{Phase: r.cur, Start: r.curStart, End: t, Cause: r.curCause})
	}
	return &Timeline{
		Start:  startOf(spans, r.curStart),
		End:    t,
		Spans:  spans,
		Losses: append([]Loss(nil), r.losses...),
	}
}

func startOf(spans []Span, fallback float64) float64 {
	if len(spans) > 0 {
		return spans[0].Start
	}
	return fallback
}

// Timeline is one extracted trajectory: phase spans in time order plus the
// rollback losses.
type Timeline struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Spans  []Span  `json:"spans"`
	Losses []Loss  `json:"losses,omitempty"`
}

// Budget is the total hours per phase, indexed by Phase.
type Budget [NumPhases]float64

// Total sums every phase.
func (b Budget) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Budget aggregates the whole timeline.
func (tl *Timeline) Budget() Budget { return tl.BudgetBetween(tl.Start, tl.End) }

// BudgetBetween aggregates the spans clipped to [t0, t1].
func (tl *Timeline) BudgetBetween(t0, t1 float64) Budget {
	var b Budget
	for _, sp := range tl.Spans {
		lo, hi := sp.Start, sp.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi > lo {
			b[sp.Phase] += hi - lo
		}
	}
	return b
}

// LostBetween sums the rollback losses with t0 < t ≤ t1 — the half-open
// window convention the runner's measurement window uses (a loss exactly
// at the warmup boundary was already absorbed into the warmup snapshot).
func (tl *Timeline) LostBetween(t0, t1 float64) float64 {
	var lost float64
	for _, l := range tl.Losses {
		if l.Time > t0 && l.Time <= t1 {
			lost += l.Amount
		}
	}
	return lost
}

// UsefulFraction re-derives the paper's useful-work fraction over the
// window (t0, t1] from spans alone: computation time minus rollback
// losses, clamped at zero exactly as model.RunSteadyState clamps the
// reward-based estimate, divided by the window length.
func (tl *Timeline) UsefulFraction(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	b := tl.BudgetBetween(t0, t1)
	useful := b[Computation] + b[Rework] - tl.LostBetween(t0, t1)
	if useful < 0 {
		useful = 0
	}
	return useful / (t1 - t0)
}

// SplitRework returns a copy of the timeline whose Computation spans are
// split into Rework (re-doing work discarded by an earlier rollback) and
// Computation (new forward progress). The split point of a span is where
// accrued work re-attains the pre-failure high-water mark; losses move
// the accrued level down, never the high-water mark.
func (tl *Timeline) SplitRework() *Timeline {
	out := &Timeline{Start: tl.Start, End: tl.End, Losses: append([]Loss(nil), tl.Losses...)}
	var useful, hwm float64
	li := 0
	for _, sp := range tl.Spans {
		// Apply every loss up to and including the span's start first:
		// losses fire at span boundaries (a rollback always changes the
		// phase), so by the time a span opens, earlier losses are final.
		for li < len(tl.Losses) && tl.Losses[li].Time <= sp.Start {
			useful -= tl.Losses[li].Amount
			li++
		}
		if sp.Phase != Computation {
			out.Spans = append(out.Spans, sp)
			continue
		}
		if hwm > useful {
			redo := hwm - useful
			if redo > sp.Duration() {
				redo = sp.Duration()
			}
			out.Spans = append(out.Spans, Span{Phase: Rework, Start: sp.Start, End: sp.Start + redo, Cause: sp.Cause})
			if sp.Start+redo < sp.End {
				out.Spans = append(out.Spans, Span{Phase: Computation, Start: sp.Start + redo, End: sp.End, Cause: sp.Cause})
			}
		} else {
			out.Spans = append(out.Spans, sp)
		}
		useful += sp.Duration()
		if useful > hwm {
			hwm = useful
		}
	}
	return out
}
