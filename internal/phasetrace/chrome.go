package phasetrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: one JSON object loadable by Perfetto
// (ui.perfetto.dev) or chrome://tracing. Trace-event timestamps are
// microseconds; we map 1 simulated hour to 1e6 µs, so one trace "second"
// reads as one simulated hour and span durations stay exact in float64.
const usPerHour = 1e6

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the timeline as Chrome trace-event JSON: complete
// ("X") events for each span on a "phases" track, instant ("i") events
// for each rollback loss, and metadata naming the process and threads.
func (tl *Timeline) WriteChrome(w io.Writer, label string) error {
	if label == "" {
		label = "trajectory"
	}
	const (
		pid      = 1
		phaseTid = 1
		lossTid  = 2
	)
	ct := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents: []chromeEvent{
			{Name: "process_name", Phase: "M", Pid: pid, Args: map[string]any{"name": label}},
			{Name: "thread_name", Phase: "M", Pid: pid, Tid: phaseTid, Args: map[string]any{"name": "phases (1 s = 1 sim hour)"}},
			{Name: "thread_name", Phase: "M", Pid: pid, Tid: lossTid, Args: map[string]any{"name": "rollback losses"}},
		},
	}
	for _, sp := range tl.Spans {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  sp.Phase.String(),
			Phase: "X",
			Ts:    sp.Start * usPerHour,
			Dur:   sp.Duration() * usPerHour,
			Pid:   pid,
			Tid:   phaseTid,
			Args: map[string]any{
				"cause":       sp.Cause,
				"start_hours": sp.Start,
				"hours":       sp.Duration(),
			},
		})
	}
	for _, l := range tl.Losses {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  fmt.Sprintf("rollback (-%.3g h)", l.Amount),
			Phase: "i",
			Ts:    l.Time * usPerHour,
			Pid:   pid,
			Tid:   lossTid,
			Scope: "t",
			Args:  map[string]any{"cause": l.Cause, "lost_hours": l.Amount},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ct); err != nil {
		return fmt.Errorf("phasetrace: chrome export: %w", err)
	}
	return nil
}
