package phasetrace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func mk(places ...string) map[string]int {
	m := make(map[string]int)
	for _, p := range places {
		m[p] = 1
	}
	return m
}

// A hand-built trajectory exercising one checkpoint cycle, a compute
// failure with rollback, recovery and a reboot:
//
//	0–10   execution            (computation)
//	10–11  quiescing            (quiesce)
//	11–12  checkpointing        (dump; dump_chkpt at 12 secures 10 h)
//	12–20  execution            (computation; write_chkpt at 14 makes it durable)
//	20–23  recovery             (compute_failure at 20 loses 20−12 = 8 h)
//	23–30  execution            (computation, first 8 h of it rework)
//	30–33  rebooting            (downtime; loses 30−23 = 7 h at entry… )
//	33–40  execution
func testEvents() []trace.Event {
	return []trace.Event{
		{Time: 10, Activity: "start_quiesce", Marking: mk("quiescing", "sys_up")},
		{Time: 11, Activity: "coordinate", Marking: mk("checkpointing", "sys_up")},
		{Time: 12, Activity: "dump_chkpt", Marking: mk("execution", "sys_up")},
		{Time: 14, Activity: "write_chkpt", Marking: mk("execution", "sys_up")},
		{Time: 20, Activity: "compute_failure", Marking: mk("recovery_stage1")},
		{Time: 23, Activity: "recover_stage2", Marking: mk("execution", "sys_up")},
		{Time: 30, Activity: "severe_failure", Marking: mk("rebooting")},
		{Time: 33, Activity: "reboot_done", Marking: mk("execution", "sys_up")},
	}
}

func TestRecorderSpansAndLosses(t *testing.T) {
	tl, err := FromEvents(testEvents(), 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Span{
		{Phase: Computation, Start: 0, End: 10, Cause: "init"},
		{Phase: Quiesce, Start: 10, End: 11, Cause: "start_quiesce"},
		{Phase: Dump, Start: 11, End: 12, Cause: "coordinate"},
		{Phase: Computation, Start: 12, End: 20, Cause: "dump_chkpt"},
		{Phase: Recovery, Start: 20, End: 23, Cause: "compute_failure"},
		{Phase: Computation, Start: 23, End: 30, Cause: "recover_stage2"},
		{Phase: Downtime, Start: 30, End: 33, Cause: "severe_failure"},
		{Phase: Computation, Start: 33, End: 40, Cause: "reboot_done"},
	}
	if len(tl.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(tl.Spans), len(want), tl.Spans)
	}
	for i, sp := range tl.Spans {
		if sp != want[i] {
			t.Errorf("span %d: got %+v want %+v", i, sp, want[i])
		}
	}
	// Losses: 8 h at t=20 (work since the checkpoint at 12), 7 h at t=30
	// (work since recovery finished at 23; the buffered level survives in
	// memory until the reboot wipes it, but the rollback is computed
	// before capB changes only via the reboot rule — entering rebooting
	// resets capB to capD=10, and work stood at 10+7=17, so 7 h go).
	if len(tl.Losses) != 2 {
		t.Fatalf("got %d losses, want 2: %+v", len(tl.Losses), tl.Losses)
	}
	if tl.Losses[0].Time != 20 || math.Abs(tl.Losses[0].Amount-8) > 1e-12 {
		t.Errorf("loss 0: %+v", tl.Losses[0])
	}
	if tl.Losses[1].Time != 30 || math.Abs(tl.Losses[1].Amount-7) > 1e-12 {
		t.Errorf("loss 1: %+v", tl.Losses[1])
	}
}

func TestBudgetAndUsefulFraction(t *testing.T) {
	tl, err := FromEvents(testEvents(), 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := tl.Budget()
	if got := b[Computation]; math.Abs(got-32) > 1e-12 {
		t.Errorf("computation = %v, want 32", got)
	}
	if got := b.Total(); math.Abs(got-40) > 1e-12 {
		t.Errorf("total = %v, want 40 (budget must tile the horizon)", got)
	}
	// Useful over (0,40]: 32 computed − 15 lost = 17 → 0.425.
	if got := tl.UsefulFraction(0, 40); math.Abs(got-17.0/40) > 1e-12 {
		t.Errorf("useful fraction = %v, want %v", got, 17.0/40)
	}
	// Windowed: over (12,30] computation is 8+7=15, losses 8+7=15 → 0.
	if got := tl.UsefulFraction(12, 30); got != 0 {
		t.Errorf("windowed fraction = %v, want 0", got)
	}
	// Boundary convention: a loss exactly at t0 is excluded, at t1 included.
	if got := tl.LostBetween(20, 30); math.Abs(got-7) > 1e-12 {
		t.Errorf("LostBetween(20,30) = %v, want 7 (loss at t0 excluded)", got)
	}
}

func TestSplitRework(t *testing.T) {
	tl, err := FromEvents(testEvents(), 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := tl.SplitRework()
	var rework, comp float64
	for _, sp := range split.Spans {
		switch sp.Phase {
		case Rework:
			rework += sp.Duration()
		case Computation:
			comp += sp.Duration()
		}
	}
	// After the t=20 failure the high-water mark is 20−10 span-hours of
	// accrued work vs 12−10 retained → 8 h of rework in 23–31, but the
	// span 23–30 is only 7 h, all rework. After the reboot (hwm 17 vs
	// retained 10) the 33–40 span starts with 7 h of rework → 0 new.
	// Pre-failure spans contribute 10+8 = 18 h of fresh computation.
	if math.Abs(rework-14) > 1e-12 {
		t.Errorf("rework = %v, want 14", rework)
	}
	if math.Abs(comp-18) > 1e-12 {
		t.Errorf("computation = %v, want 18", comp)
	}
	// Splitting preserves the total budget and the original never had it.
	if got := split.Budget().Total(); math.Abs(got-40) > 1e-12 {
		t.Errorf("split total = %v, want 40", got)
	}
	if b := tl.Budget(); b[Rework] != 0 {
		t.Errorf("raw timeline should carry no rework, got %v", b[Rework])
	}
	// UsefulFraction is invariant under the split (it sums both phases).
	if a, b := tl.UsefulFraction(0, 40), split.UsefulFraction(0, 40); math.Abs(a-b) > 1e-12 {
		t.Errorf("split changed useful fraction: %v vs %v", a, b)
	}
}

func TestNoBufferedRecoveryLoss(t *testing.T) {
	// With buffered recovery the rollback falls back to the buffered
	// level; under the ablation it must fall all the way to durable.
	events := []trace.Event{
		{Time: 10, Activity: "start_quiesce", Marking: mk("quiescing", "sys_up")},
		{Time: 10, Activity: "coordinate", Marking: mk("checkpointing", "sys_up")},
		{Time: 10, Activity: "dump_chkpt", Marking: mk("execution", "sys_up")}, // buffered@10
		{Time: 20, Activity: "compute_failure", Marking: mk("recovery_stage1")},
	}
	tl, err := FromEvents(events, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Losses[0].Amount; math.Abs(got-10) > 1e-12 {
		t.Errorf("buffered: lost %v, want 10", got)
	}
	tl, err = FromEvents(events, 20, Options{NoBufferedRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Losses[0].Amount; math.Abs(got-20) > 1e-12 {
		t.Errorf("no-buffered: lost %v, want 20 (durable level is 0)", got)
	}
}

func TestZeroDurationSpansDropped(t *testing.T) {
	events := []trace.Event{
		{Time: 10, Activity: "start_quiesce", Marking: mk("quiescing", "sys_up")},
		{Time: 10, Activity: "coordinate", Marking: mk("checkpointing", "sys_up")},
		{Time: 12, Activity: "dump_chkpt", Marking: mk("execution", "sys_up")},
	}
	tl, err := FromEvents(events, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range tl.Spans {
		if sp.Duration() <= 0 {
			t.Errorf("zero-duration span survived: %+v", sp)
		}
		if sp.Phase == Quiesce {
			t.Errorf("instantaneous quiesce should have been dropped: %+v", sp)
		}
	}
}

func TestFromEventsRequiresMarking(t *testing.T) {
	_, err := FromEvents([]trace.Event{{Time: 1, Activity: "x"}}, 2, Options{})
	if err == nil {
		t.Fatal("want error for marking-less event")
	}
	if !strings.Contains(err.Error(), "-marking") {
		t.Errorf("error should hint at cctrace -marking: %v", err)
	}
}

func TestPhaseJSONRoundTrip(t *testing.T) {
	for _, p := range Phases() {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Phase
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if back != p {
			t.Errorf("round trip %v -> %s -> %v", p, b, back)
		}
	}
	var bad Phase
	if err := json.Unmarshal([]byte(`"warp"`), &bad); err == nil {
		t.Error("want error for unknown phase name")
	}
}

// TestChromeExportSchema checks the exporter emits structurally valid
// trace-event JSON: the envelope keys, required per-event fields, and the
// hour→microsecond scaling.
func TestChromeExportSchema(t *testing.T) {
	tl, err := FromEvents(testEvents(), 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.SplitRework().WriteChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []map[string]any
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" && doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ms or ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var sawX, sawI, sawM bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			sawM = true
		case "X":
			sawX = true
			for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Errorf("X event missing %q: %v", k, ev)
				}
			}
			if d, _ := ev["dur"].(float64); d <= 0 {
				t.Errorf("X event with non-positive dur: %v", ev)
			}
		case "i":
			sawI = true
			if s, _ := ev["s"].(string); s == "" {
				t.Errorf("instant event missing scope: %v", ev)
			}
		default:
			t.Errorf("unexpected ph %q", ph)
		}
	}
	if !sawX || !sawI || !sawM {
		t.Errorf("want metadata, complete and instant events; got M=%v X=%v i=%v", sawM, sawX, sawI)
	}
	// First span: 0–10 h → ts 0, dur 1e7 µs.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			if d, _ := ev["dur"].(float64); d != 10*usPerHour {
				t.Errorf("first span dur = %v µs, want %v", d, 10*usPerHour)
			}
			break
		}
	}
}
