package phasetrace

import (
	"fmt"

	"repro/internal/trace"
)

// StateFromMarking digests a recorded marking (place name → token count,
// zero counts omitted) into the fields the phase classifier needs. The
// place names are the paper model's; any other SAN would need its own
// digest function.
func StateFromMarking(m map[string]int) State {
	return State{
		Execution:      m["execution"] > 0,
		Quiescing:      m["quiescing"] > 0,
		Checkpointing:  m["checkpointing"] > 0,
		FSWait:         m["fs_wait"] > 0,
		RecoveryStage1: m["recovery_stage1"] > 0,
		RecoveryStage2: m["recovery_stage2"] > 0,
		Rebooting:      m["rebooting"] > 0,
		Migrating:      m["migrating"] > 0,
		SysUp:          m["sys_up"] > 0,
	}
}

// FromEvents replays a recorded event stream (as written by
// `cctrace -marking`) through a Recorder and returns the timeline up to
// `end` (pass the trajectory horizon; if end is ≤ the last event time the
// last event time is used). Every event must carry a marking — streams
// recorded without `-marking` cannot be phase-classified.
func FromEvents(events []trace.Event, end float64, opts Options) (*Timeline, error) {
	rec := NewRecorder(opts)
	// The model starts executing with the system up at t = 0.
	rec.Begin(0, State{Execution: true, SysUp: true})
	last := 0.0
	for i, ev := range events {
		if ev.Marking == nil {
			return nil, fmt.Errorf("phasetrace: event %d (%s at t=%g) has no marking; record the trace with markings enabled (cctrace -marking)", i, ev.Activity, ev.Time)
		}
		rec.Observe(ev.Time, ev.Activity, StateFromMarking(ev.Marking))
		last = ev.Time
	}
	if end < last {
		end = last
	}
	return rec.Finish(end), nil
}
