package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/cluster"
	"repro/internal/runner"
)

// seriesSpec declares one curve of a figure before anything runs: the base
// configuration, the x values, and the per-cell mutation. Declaring every
// series up front lets a figure submit all its (series, x) cells to the
// worker pool as one flat job grid instead of sweeping series by series.
type seriesSpec struct {
	name   string
	base   cluster.Config
	xs     []float64
	mutate func(cfg *cluster.Config, x float64)
}

// runSpecs measures every cell of the given specs as one block-planned
// grid (runner.PlanGrid → runner.EstimateGrid): the figure's whole
// (series × x) space is declared as manifest cells up front and fans out
// on the bounded worker pool (opts.Workers; a cell is the unit of
// parallelism, so each cell's replications run sequentially), then the
// series are assembled in declaration order. A cell's seed depends only on
// (opts.Seed, series name, x index) — the same derivation the sequential
// sweeps used — so the whole grid is bit-identical for every worker count
// and scheduling, and a figure can equally be exported as a run directory
// and computed by detached workers.
func runSpecs(specs []seriesSpec, opts runner.Options) ([]Series, error) {
	type cellRef struct{ si, xi int }
	var refs []cellRef
	var cells []blocks.Cell
	for si, sp := range specs {
		for xi, x := range sp.xs {
			cfg := sp.base
			sp.mutate(&cfg, x)
			refs = append(refs, cellRef{si, xi})
			cells = append(cells, blocks.Cell{
				Label:  fmt.Sprintf("%s@%g", sp.name, x),
				X:      x,
				Seed:   opts.Seed*1000003 + uint64(xi)*7919 + hashName(sp.name),
				Config: cfg,
			})
		}
	}
	m, err := runner.PlanGrid("experiments", cells, 0, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	results, err := runner.EstimateGrid(context.Background(), m, opts, nil)
	if err != nil {
		var ce *runner.CellError
		if errors.As(err, &ce) {
			ref := refs[ce.Index]
			return nil, fmt.Errorf("experiments: series %s x=%v: %w", specs[ref.si].name, specs[ref.si].xs[ref.xi], ce.Err)
		}
		return nil, err
	}
	out := make([]Series, len(specs))
	for si, sp := range specs {
		out[si] = Series{Name: sp.name, Points: make([]Point, 0, len(sp.xs))}
	}
	for i, ref := range refs {
		out[ref.si].Points = append(out[ref.si].Points, Point{
			X:        cells[i].X,
			Fraction: results[i].UsefulWorkFraction,
			Total:    results[i].TotalUsefulWork,
		})
	}
	return out, nil
}

// sweep runs a single series — the one-spec convenience over runSpecs for
// experiments that mix measured and analytic series.
func sweep(base cluster.Config, name string, xs []float64,
	mutate func(cfg *cluster.Config, x float64), opts runner.Options) (Series, error) {
	series, err := runSpecs([]seriesSpec{{name: name, base: base, xs: xs, mutate: mutate}}, opts)
	if err != nil {
		return Series{}, err
	}
	return series[0], nil
}

// hashName derives a stable seed component from a series name.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
