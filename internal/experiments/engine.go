package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/runner"
)

// seriesSpec declares one curve of a figure before anything runs: the base
// configuration, the x values, and the per-cell mutation. Declaring every
// series up front lets a figure submit all its (series, x) cells to the
// worker pool as one flat job grid instead of sweeping series by series.
type seriesSpec struct {
	name   string
	base   cluster.Config
	xs     []float64
	mutate func(cfg *cluster.Config, x float64)
}

// runSpecs measures every cell of the given specs on the bounded worker
// pool (opts.Workers; a cell is the unit of parallelism, so each cell's
// replications run sequentially) and assembles the series in declaration
// order. A cell's seed depends only on (opts.Seed, series name, x index) —
// the same derivation the sequential sweeps used — so the whole grid is
// bit-identical for every worker count and scheduling.
func runSpecs(specs []seriesSpec, opts runner.Options) ([]Series, error) {
	type cellRef struct{ si, xi int }
	var cells []cellRef
	for si, sp := range specs {
		for xi := range sp.xs {
			cells = append(cells, cellRef{si, xi})
		}
	}
	pool := exec.Pool{Workers: exec.WorkerCount(opts.Workers), Metrics: opts.Metrics}
	points, err := exec.Map(context.Background(), pool, len(cells),
		func(_ context.Context, i int) (Point, error) {
			sp := specs[cells[i].si]
			x := sp.xs[cells[i].xi]
			cfg := sp.base
			sp.mutate(&cfg, x)
			o := opts
			o.Seed = opts.Seed*1000003 + uint64(cells[i].xi)*7919 + hashName(sp.name)
			o.Workers = 1 // the grid is already parallel; don't oversubscribe
			o.Progress = nil
			// Cells complete in scheduling order, so a shared journal would
			// interleave nondeterministically; cells keep metrics (order-free
			// atomics) but never journal. The cell label still tags them.
			o.Journal = nil
			o.Label = fmt.Sprintf("%s@%g", sp.name, x)
			p, err := cell(cfg, x, o)
			if err != nil {
				return Point{}, fmt.Errorf("experiments: series %s x=%v: %w", sp.name, x, err)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]Series, len(specs))
	for si, sp := range specs {
		out[si] = Series{Name: sp.name, Points: make([]Point, 0, len(sp.xs))}
	}
	for i, c := range cells {
		out[c.si].Points = append(out[c.si].Points, points[i])
	}
	return out, nil
}

// sweep runs a single series — the one-spec convenience over runSpecs for
// experiments that mix measured and analytic series.
func sweep(base cluster.Config, name string, xs []float64,
	mutate func(cfg *cluster.Config, x float64), opts runner.Options) (Series, error) {
	series, err := runSpecs([]seriesSpec{{name: name, base: base, xs: xs, mutate: mutate}}, opts)
	if err != nil {
		return Series{}, err
	}
	return series[0], nil
}

// cell estimates one configuration and converts it to a Point.
func cell(cfg cluster.Config, x float64, opts runner.Options) (Point, error) {
	res, err := runner.Estimate(cfg, opts)
	if err != nil {
		return Point{}, err
	}
	return Point{X: x, Fraction: res.UsefulWorkFraction, Total: res.TotalUsefulWork}, nil
}

// hashName derives a stable seed component from a series name.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
