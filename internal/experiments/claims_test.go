package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// mkSeries builds a fraction-valued series from (x, y) pairs with a fixed
// CI half-width.
func mkSeries(name string, half float64, pts ...[2]float64) Series {
	s := Series{Name: name}
	for _, p := range pts {
		s.Points = append(s.Points, Point{
			X:        p[0],
			Fraction: stats.Interval{Mean: p[1], HalfWide: half, Level: 0.95, N: 3},
			Total:    stats.Interval{Mean: p[1] * p[0], HalfWide: half * p[0], Level: 0.95, N: 3},
		})
	}
	return s
}

func allPass(results []ClaimResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}

func TestCheckClaimsUnknownFigure(t *testing.T) {
	res := CheckClaims(&Figure{ID: "something-else"})
	if len(res) != 1 || !res[0].Pass {
		t.Fatalf("unknown figure should be informational: %+v", res)
	}
}

func TestCheckMonotoneDecreasing(t *testing.T) {
	good := &Figure{ID: "fig5", YLabel: "useful work fraction", Series: []Series{
		mkSeries("MTTQ=10s", 0.001, [2]float64{1, 0.97}, [2]float64{4, 0.96}, [2]float64{16, 0.95}),
		mkSeries("MTTQ=0.5s", 0.001, [2]float64{1, 0.99}, [2]float64{4, 0.989}, [2]float64{16, 0.988}),
	}}
	if !allPass(CheckClaims(good)) {
		t.Fatalf("good fig5 failed: %+v", CheckClaims(good))
	}
	bad := &Figure{ID: "fig5", YLabel: "useful work fraction", Series: []Series{
		mkSeries("MTTQ=10s", 0.001, [2]float64{1, 0.90}, [2]float64{4, 0.96}),
		mkSeries("MTTQ=0.5s", 0.001, [2]float64{1, 0.99}, [2]float64{4, 0.989}),
	}}
	if allPass(CheckClaims(bad)) {
		t.Fatal("rising fig5 passed")
	}
}

func TestCheckSeriesOrdered(t *testing.T) {
	fig := &Figure{ID: "fig8", YLabel: "useful work fraction", Series: []Series{
		mkSeries("without correlated failure", 0.002, [2]float64{8192, 0.9}, [2]float64{16384, 0.8}),
		mkSeries("with correlated failure", 0.002, [2]float64{8192, 0.85}, [2]float64{16384, 0.6}),
	}}
	if !allPass(CheckClaims(fig)) {
		t.Fatalf("ordered fig8 failed: %+v", CheckClaims(fig))
	}
	// Flip the ordering beyond noise.
	fig.Series[1] = mkSeries("with correlated failure", 0.002, [2]float64{8192, 0.99})
	if allPass(CheckClaims(fig)) {
		t.Fatal("inverted fig8 passed")
	}
	// Missing series must fail loudly.
	missing := &Figure{ID: "fig8", YLabel: "useful work fraction"}
	res := CheckClaims(missing)
	if allPass(res) || !strings.Contains(res[0].Detail, "missing") {
		t.Fatalf("missing series not flagged: %+v", res)
	}
}

func TestCheckFlat(t *testing.T) {
	flat := &Figure{ID: "fig7", YLabel: "useful work fraction", Series: []Series{
		mkSeries("r=400", 0.01, [2]float64{0, 0.57}, [2]float64{0.2, 0.55}),
	}}
	if !allPass(CheckClaims(flat)) {
		t.Fatal("flat fig7 failed")
	}
	steep := &Figure{ID: "fig7", YLabel: "useful work fraction", Series: []Series{
		mkSeries("r=400", 0.01, [2]float64{0, 0.57}, [2]float64{0.2, 0.30}),
	}}
	if allPass(CheckClaims(steep)) {
		t.Fatal("steep fig7 passed")
	}
}

func TestCheckTimeoutCollapse(t *testing.T) {
	fig := &Figure{ID: "fig6", YLabel: "useful work fraction", Series: []Series{
		mkSeries("no timeout", 0.01, [2]float64{8192, 0.91}),
		mkSeries("timeout=120s", 0.01, [2]float64{8192, 0.90}),
		mkSeries("timeout=20s", 0.01, [2]float64{8192, 0.01}),
	}}
	if !allPass(CheckClaims(fig)) {
		t.Fatalf("good fig6 failed: %+v", CheckClaims(fig))
	}
	// A 120s timeout performing terribly must fail the closeness claim.
	fig.Series[1] = mkSeries("timeout=120s", 0.01, [2]float64{8192, 0.30})
	if allPass(CheckClaims(fig)) {
		t.Fatal("collapsed 120s passed")
	}
}

func TestCheckNoInteriorOptimum(t *testing.T) {
	// Totals are y·x in mkSeries, so pick fractions whose products
	// decrease with the interval: 150, 120, 60.
	fig := &Figure{ID: "fig4b", YLabel: "total useful work", Series: []Series{
		mkSeries("procs=65536", 0.001, [2]float64{15, 10}, [2]float64{30, 4}, [2]float64{60, 1}),
	}}
	if !allPass(CheckClaims(fig)) {
		t.Fatalf("good fig4b failed: %+v", CheckClaims(fig))
	}
	// Interior optimum: totals 150, 600, 60.
	interior := &Figure{ID: "fig4b", YLabel: "total useful work", Series: []Series{
		mkSeries("procs=65536", 0.0001, [2]float64{15, 10}, [2]float64{30, 20}, [2]float64{60, 1}),
	}}
	if allPass(CheckClaims(interior)) {
		t.Fatal("interior optimum passed fig4b")
	}
}

func TestCheckSharpDrop(t *testing.T) {
	// Totals (y·x): 100 → 95 → 60, a small drop then a sharp one.
	fig := &Figure{ID: "fig4f", YLabel: "total useful work", Series: []Series{
		mkSeries("MTTF=1yr", 0.001, [2]float64{15, 100.0 / 15}, [2]float64{30, 95.0 / 30}, [2]float64{60, 1}),
	}}
	if !allPass(CheckClaims(fig)) {
		t.Fatalf("good fig4f failed: %+v", CheckClaims(fig))
	}
	// Flat-then-flat must fail: 100 → 60 → 55.
	dull := &Figure{ID: "fig4f", YLabel: "total useful work", Series: []Series{
		mkSeries("MTTF=1yr", 0.001, [2]float64{15, 100.0 / 15}, [2]float64{30, 2}, [2]float64{60, 55.0 / 60}),
	}}
	if allPass(CheckClaims(dull)) {
		t.Fatal("dull fig4f passed")
	}
}

func TestCheckRecoveryGrows(t *testing.T) {
	fig := &Figure{ID: "xbreakdown", YLabel: "fraction of wall time", Series: []Series{
		mkSeries("recovery", 0.001, [2]float64{8192, 0.02}, [2]float64{262144, 0.2}),
	}}
	if !allPass(CheckClaims(fig)) {
		t.Fatal("growing recovery failed")
	}
	fig.Series[0] = mkSeries("recovery", 0.001, [2]float64{8192, 0.2}, [2]float64{262144, 0.02})
	if allPass(CheckClaims(fig)) {
		t.Fatal("shrinking recovery passed")
	}
}

// TestClaimsAgainstRealFigures runs the checker over real (tiny-budget)
// reproductions of the cheapest figures.
func TestClaimsAgainstRealFigures(t *testing.T) {
	for _, id := range []string{"fig5", "fig8"} {
		def, err := LookupAny(id)
		if err != nil {
			t.Fatal(err)
		}
		fig, err := def.Run(tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range CheckClaims(fig) {
			if !res.Pass {
				t.Errorf("%s: claim %q failed: %s", res.Figure, res.Claim, res.Detail)
			}
		}
	}
}
