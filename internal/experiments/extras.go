package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ExtraBreakdown measures where machine time goes as the system scales:
// execution (split into retained and repeated work), checkpointing
// (quiesce + dump), recovery and reboot shares versus processor count.
// This quantifies the paper's §7.1 remark that over half the machine is
// consumed by failure handling at the optimum scale.
func ExtraBreakdown(opts runner.Options) (*Figure, error) {
	opts = fillDefaults(opts)
	fig := &Figure{
		ID:     "xbreakdown",
		Title:  "Time breakdown vs processors (MTTF=1yr, MTTR=10min, interval=30min)",
		XLabel: "processors",
		YLabel: "fraction of wall time",
	}
	type row struct {
		useful, repeated, checkpoint, recovery, reboot stats.Accumulator
	}
	rows := make([]row, len(procSweep))
	// Seeds are drawn from the root stream in (cell, replication) order
	// before dispatch, and the trajectories then fan out as one flat job
	// grid; the accumulators are filled in the same order afterwards, so
	// the figure is bit-identical for every worker count.
	root := rng.New(opts.Seed)
	seeds := make([]uint64, len(procSweep)*opts.Replications)
	for j := range seeds {
		seeds[j] = root.Uint64()
	}
	pool := exec.Pool{Workers: exec.WorkerCount(opts.Workers)}
	metrics, err := exec.Map(context.Background(), pool, len(seeds),
		func(_ context.Context, j int) (model.Metrics, error) {
			cfg := baseConfig()
			cfg.Processors = procSweep[j/opts.Replications]
			in, err := model.New(cfg, seeds[j])
			if err != nil {
				return model.Metrics{}, err
			}
			return in.RunSteadyState(opts.Warmup, opts.Measure)
		})
	if err != nil {
		return nil, err
	}
	for j, m := range metrics {
		i := j / opts.Replications
		rows[i].useful.Add(m.UsefulWorkFraction)
		rows[i].repeated.Add(m.RepeatedWorkFraction)
		rows[i].checkpoint.Add(m.Breakdown.Quiesce + m.Breakdown.Dump + m.Breakdown.FSWait)
		rows[i].recovery.Add(m.Breakdown.Recovery)
		rows[i].reboot.Add(m.Breakdown.Reboot)
	}
	series := []struct {
		name string
		pick func(*row) *stats.Accumulator
	}{
		{"useful work", func(r *row) *stats.Accumulator { return &r.useful }},
		{"repeated work", func(r *row) *stats.Accumulator { return &r.repeated }},
		{"checkpointing", func(r *row) *stats.Accumulator { return &r.checkpoint }},
		{"recovery", func(r *row) *stats.Accumulator { return &r.recovery }},
		{"reboot", func(r *row) *stats.Accumulator { return &r.reboot }},
	}
	for _, s := range series {
		out := Series{Name: s.name, Points: make([]Point, 0, len(procSweep))}
		for i, procs := range procSweep {
			acc := s.pick(&rows[i])
			iv := acc.CI(opts.Confidence)
			out.Points = append(out.Points, Point{
				X:        float64(procs),
				Fraction: iv,
				Total:    stats.Interval{Mean: iv.Mean * float64(procs), HalfWide: iv.HalfWide * float64(procs), Level: iv.Level, N: iv.N},
			})
		}
		fig.Series = append(fig.Series, out)
	}
	return fig, nil
}

// ExtraAblations contrasts the modeled system against two crippled
// variants across machine sizes: checkpoint writes blocking computation
// (no two-step background I/O, paper footnote 1) and recovery without
// I/O-node buffers. The value of each design feature is the gap to the
// baseline curve.
func ExtraAblations(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "xablations",
		Title:  "Design ablations vs processors (MTTF=1yr, MTTR=10min, interval=30min)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	variants := []struct {
		name   string
		mutate func(*cluster.Config)
	}{
		{"full design", func(*cluster.Config) {}},
		{"blocking FS writes", func(c *cluster.Config) { c.BlockingCheckpointWrite = true }},
		{"no buffered recovery", func(c *cluster.Config) { c.NoBufferedRecovery = true }},
	}
	xs := floats(procSweep)
	var specs []seriesSpec
	for _, v := range variants {
		v := v
		specs = append(specs, seriesSpec{
			name: v.name,
			base: baseConfig(),
			xs:   xs,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = int(x)
				v.mutate(cfg)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// fillDefaults mirrors runner option defaulting for experiments that drive
// the model directly.
func fillDefaults(opts runner.Options) runner.Options {
	if opts.Replications == 0 {
		opts.Replications = 5
	}
	if opts.Warmup == 0 {
		opts.Warmup = 1000
	}
	if opts.Measure == 0 {
		opts.Measure = 4000
	}
	if opts.Confidence == 0 {
		opts.Confidence = 0.95
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return opts
}

// Extras returns the beyond-the-paper experiments.
func Extras() []Def {
	defs := []Def{
		{
			ID: "xablations", Title: "Design ablations vs processors",
			ShapeClaim: "background writes and buffered recovery each buy a visible fraction at every scale",
			Run:        ExtraAblations,
		},
		{
			ID: "xbreakdown", Title: "Time breakdown vs processors",
			ShapeClaim: "repeated work + recovery grow with scale and exceed 50% at the optimum",
			Run:        ExtraBreakdown,
		},
		{
			ID: "xphasecheck", Title: "Phase-accounting self-verification",
			ShapeClaim: "span-derived useful work matches the reward estimate within CI half-width on every variant",
			Run:        ExtraPhaseCheck,
		},
	}
	return append(defs, extras2Defs()...)
}

// LookupAny searches the paper figures first, then the extras.
func LookupAny(id string) (Def, error) {
	if d, err := Lookup(id); err == nil {
		return d, nil
	}
	for _, d := range Extras() {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
