package experiments

import (
	"math"
	"testing"
)

func TestExtrasRegistry(t *testing.T) {
	extras := Extras()
	if len(extras) != 5 {
		t.Fatalf("extras = %d, want 5", len(extras))
	}
	for _, d := range extras {
		if d.ID == "" || d.Title == "" || d.ShapeClaim == "" || d.Run == nil {
			t.Errorf("extra %q incomplete", d.ID)
		}
	}
}

func TestLookupAny(t *testing.T) {
	if d, err := LookupAny("fig5"); err != nil || d.ID != "fig5" {
		t.Fatalf("LookupAny(fig5) = %v, %v", d.ID, err)
	}
	if d, err := LookupAny("xablations"); err != nil || d.ID != "xablations" {
		t.Fatalf("LookupAny(xablations) = %v, %v", d.ID, err)
	}
	if _, err := LookupAny("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExtraBreakdownStructure(t *testing.T) {
	fig, err := ExtraBreakdown(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("breakdown series = %d, want 5", len(fig.Series))
	}
	// At each machine size the useful + repeated + checkpointing +
	// recovery + reboot shares must not exceed 1 (useful ≤ execution).
	for i := range procSweep {
		sum := 0.0
		for _, s := range fig.Series {
			sum += s.Points[i].Fraction.Mean
		}
		if sum > 1.0+1e-6 {
			t.Fatalf("breakdown shares sum to %v at x=%v", sum, fig.Series[0].Points[i].X)
		}
		if sum < 0.9 {
			t.Fatalf("breakdown shares sum to only %v at x=%v", sum, fig.Series[0].Points[i].X)
		}
	}
	// Recovery share must grow with machine size.
	rec := fig.SeriesByName("recovery")
	first := rec.Points[0].Fraction.Mean
	last := rec.Points[len(rec.Points)-1].Fraction.Mean
	if last <= first {
		t.Fatalf("recovery share did not grow with scale: %v → %v", first, last)
	}
}

func TestExtraAblationsOrdering(t *testing.T) {
	fig, err := ExtraAblations(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	full := fig.SeriesByName("full design")
	blocking := fig.SeriesByName("blocking FS writes")
	nobuf := fig.SeriesByName("no buffered recovery")
	if full == nil || blocking == nil || nobuf == nil {
		t.Fatal("ablation series missing")
	}
	// The full design dominates both ablations at the small/medium sizes
	// where noise is low (allow tiny slack).
	for i := 0; i < 3; i++ {
		f := full.Points[i].Fraction.Mean
		if blocking.Points[i].Fraction.Mean > f+0.01 {
			t.Fatalf("blocking writes beat full design at x=%v", full.Points[i].X)
		}
		if nobuf.Points[i].Fraction.Mean > f+0.01 {
			t.Fatalf("no-buffer beat full design at x=%v", full.Points[i].X)
		}
	}
	if math.IsNaN(full.Points[0].Fraction.Mean) {
		t.Fatal("NaN fraction")
	}
}

func TestExtrasIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range append(All(), Extras()...) {
		if seen[d.ID] {
			t.Fatalf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
	}
	if len(Extras()) != 5 {
		t.Fatalf("extras = %d, want 5", len(Extras()))
	}
}

func TestExtraStragglersShape(t *testing.T) {
	fig, err := ExtraStragglers(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	homog := fig.SeriesByName("homogeneous")
	heavy := fig.SeriesByName("1% stragglers 100x")
	if homog == nil || heavy == nil {
		t.Fatal("straggler series missing")
	}
	last := len(homog.Points) - 1
	if heavy.Points[last].Fraction.Mean >= homog.Points[last].Fraction.Mean {
		t.Fatalf("severe stragglers did not cost coordination time: %v vs %v",
			heavy.Points[last].Fraction.Mean, homog.Points[last].Fraction.Mean)
	}
}

func TestExtraModelErrorShape(t *testing.T) {
	fig, err := ExtraModelError(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	sim := fig.SeriesByName("simulated (SAN)")
	classic := fig.SeriesByName("classic (no coordination)")
	renewal := fig.SeriesByName("renewal (with coordination)")
	if sim == nil || classic == nil || renewal == nil {
		t.Fatal("model-error series missing")
	}
	last := len(sim.Points) - 1
	// The renewal model includes coordination cost, so it must sit at or
	// below the classic model everywhere.
	for i := range classic.Points {
		if renewal.Points[i].Fraction.Mean > classic.Points[i].Fraction.Mean+1e-9 {
			t.Fatalf("renewal above classic at x=%v", classic.Points[i].X)
		}
	}
	// The renewal prediction tracks the simulation within a few points at
	// the largest machine (both include coordination).
	gap := renewal.Points[last].Fraction.Mean - sim.Points[last].Fraction.Mean
	if gap < -0.1 || gap > 0.1 {
		t.Fatalf("renewal model far from simulation at 256K: gap = %v", gap)
	}
}
