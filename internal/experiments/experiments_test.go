package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/stats"
)

// tinyOpts keeps unit-test sweeps fast; shape fidelity at paper scale is
// exercised by the benchmarks and cmd/ccfigures.
func tinyOpts() runner.Options {
	return runner.Options{Replications: 2, Warmup: 50, Measure: 250, Seed: 5}
}

func TestRegistryComplete(t *testing.T) {
	defs := All()
	if len(defs) != 12 {
		t.Fatalf("registry has %d experiments, want 12 (fig4a-h, fig5-8)", len(defs))
	}
	want := []string{"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"fig4g", "fig4h", "fig5", "fig6", "fig7", "fig8"}
	for i, id := range want {
		if defs[i].ID != id {
			t.Errorf("defs[%d].ID = %s, want %s", i, defs[i].ID, id)
		}
		if defs[i].Title == "" || defs[i].ShapeClaim == "" || defs[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("fig5")
	if err != nil || d.ID != "fig5" {
		t.Fatalf("Lookup(fig5) = %v, %v", d.ID, err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig5ShapeMonotone(t *testing.T) {
	fig, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig5 has %d series, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) < 10 {
			t.Fatalf("series %s has only %d points", s.Name, len(s.Points))
		}
		// Failure-free coordination cost grows with n, so the fraction
		// is non-increasing (up to tiny simulation noise).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Fraction.Mean > s.Points[i-1].Fraction.Mean+0.005 {
				t.Errorf("series %s not monotone at x=%v: %v > %v", s.Name,
					s.Points[i].X, s.Points[i].Fraction.Mean, s.Points[i-1].Fraction.Mean)
			}
		}
	}
	// MTTQ ordering at the largest n: 10s costs more than 0.5s.
	s10 := fig.SeriesByName("MTTQ=10s")
	s05 := fig.SeriesByName("MTTQ=0.5s")
	if s10 == nil || s05 == nil {
		t.Fatal("expected MTTQ series missing")
	}
	last := len(s10.Points) - 1
	if s10.Points[last].Fraction.Mean >= s05.Points[last].Fraction.Mean {
		t.Fatalf("MTTQ=10s should cost more than MTTQ=0.5s at large n: %v vs %v",
			s10.Points[last].Fraction.Mean, s05.Points[last].Fraction.Mean)
	}
}

func TestFig7Structure(t *testing.T) {
	fig, err := Fig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig7 series = %d, want 3 (r=400,800,1600)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 5 {
			t.Fatalf("series %s points = %d, want 5", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Fraction.Mean < 0 || p.Fraction.Mean > 1 {
				t.Fatalf("fraction %v out of range", p.Fraction.Mean)
			}
		}
	}
}

func TestFig8Degradation(t *testing.T) {
	fig, err := Fig8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	without := fig.SeriesByName("without correlated failure")
	with := fig.SeriesByName("with correlated failure")
	if without == nil || with == nil {
		t.Fatal("fig8 series missing")
	}
	// At the largest scale the doubled failure rate must visibly hurt.
	last := len(without.Points) - 1
	if with.Points[last].Fraction.Mean >= without.Points[last].Fraction.Mean {
		t.Fatalf("generic correlated failures did not degrade the fraction: %v vs %v",
			with.Points[last].Fraction.Mean, without.Points[last].Fraction.Mean)
	}
}

func TestSweepSeedsDiffer(t *testing.T) {
	// Two series with different names must use decorrelated seeds.
	if hashName("a") == hashName("b") {
		t.Fatal("hashName collision on trivial inputs")
	}
}

func buildTestFigure() *Figure {
	mk := func(mean, half float64) stats.Interval {
		return stats.Interval{Mean: mean, HalfWide: half, Level: 0.95, N: 3}
	}
	return &Figure{
		ID: "figX", Title: "test figure", XLabel: "x", YLabel: "total useful work",
		Series: []Series{
			{Name: "s1", Points: []Point{
				{X: 1, Fraction: mk(0.5, 0.01), Total: mk(100, 5)},
				{X: 2, Fraction: mk(0.4, 0.01), Total: mk(200, 5)},
			}},
			{Name: "s2", Points: []Point{
				{X: 1, Fraction: mk(0.6, 0.02), Total: mk(150, 6)},
			}},
		},
	}
}

func TestWriteTable(t *testing.T) {
	fig := buildTestFigure()
	var sb strings.Builder
	if err := WriteTable(&sb, fig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "s1", "s2", "100", "200", "150", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTableEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable(&sb, &Figure{ID: "e", Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty figure not flagged")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := buildTestFigure()
	var sb strings.Builder
	if err := WriteCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "figure,series,x,y") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "figX") || !strings.Contains(lines[1], `"s1"`) {
		t.Fatalf("CSV row wrong: %s", lines[1])
	}
}

func TestYValueSelectsMeasure(t *testing.T) {
	fig := buildTestFigure()
	p := fig.Series[0].Points[0]
	if fig.YValue(p) != 100 {
		t.Fatalf("total figure YValue = %v, want 100", fig.YValue(p))
	}
	fig.YLabel = "useful work fraction"
	if fig.YValue(p) != 0.5 {
		t.Fatalf("fraction figure YValue = %v, want 0.5", fig.YValue(p))
	}
}

func TestArgMax(t *testing.T) {
	fig := buildTestFigure()
	x, y, ok := fig.ArgMax(fig.SeriesByName("s1"))
	if !ok || x != 2 || y != 200 {
		t.Fatalf("ArgMax = (%v, %v, %v), want (2, 200, true)", x, y, ok)
	}
	if _, _, ok := fig.ArgMax(nil); ok {
		t.Fatal("ArgMax of nil series should be !ok")
	}
	if fig.SeriesByName("nope") != nil {
		t.Fatal("SeriesByName should return nil for unknown series")
	}
}

// TestEveryExperimentRunsAtTinyScale smoke-tests every registered
// experiment (paper figures and extras): each must produce non-empty,
// finite series with the expected structure. Shape fidelity at real scale
// is covered by the benchmarks, cmd/ccreport and the stored results.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	opts := runner.Options{Replications: 1, Warmup: 20, Measure: 120, Seed: 77}
	for _, def := range append(All(), Extras()...) {
		def := def
		t.Run(def.ID, func(t *testing.T) {
			fig, err := def.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != def.ID {
				t.Fatalf("figure ID %q != experiment ID %q", fig.ID, def.ID)
			}
			if len(fig.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Fatalf("series %q empty", s.Name)
				}
				for _, p := range s.Points {
					if math.IsNaN(p.Fraction.Mean) || math.IsInf(p.Fraction.Mean, 0) {
						t.Fatalf("series %q: invalid fraction at x=%v", s.Name, p.X)
					}
					if p.Fraction.Mean < 0 || p.Fraction.Mean > 1.0+1e-9 {
						t.Fatalf("series %q: fraction %v out of range at x=%v",
							s.Name, p.Fraction.Mean, p.X)
					}
				}
			}
		})
	}
}
