package experiments

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// TestFigureWorkerInvariance checks the grid-level determinism contract:
// a figure built cell-by-cell in parallel is byte-identical to the
// sequential build, because cell seeds depend only on (seed, series, x
// index).
func TestFigureWorkerInvariance(t *testing.T) {
	opts := runner.Options{Replications: 2, Warmup: 20, Measure: 120, Seed: 42, Workers: 1}
	want, err := Fig4g(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, -1} {
		o := opts
		o.Workers = workers
		got, err := Fig4g(o)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d figure differs from sequential build", workers)
		}
	}
}

// TestRunSpecsSeedMatchesLegacySweep pins the per-cell seed derivation:
// the parallel engine must produce exactly the points a sequential
// series-by-series sweep with the historic seed formula yields, or every
// recorded figure (REPORT.md, results/) would silently shift.
func TestRunSpecsSeedMatchesLegacySweep(t *testing.T) {
	opts := runner.Options{Replications: 1, Warmup: 20, Measure: 100, Seed: 11, Workers: 4}
	name := "MTTR=10min"
	xs := []float64{8192, 16384}
	mutate := func(cfg *cluster.Config, x float64) { cfg.Processors = int(x) }

	got, err := sweep(baseConfig(), name, xs, mutate, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the pre-refactor sequential loop, inlined.
	want := Series{Name: name}
	for i, x := range xs {
		cfg := baseConfig()
		mutate(&cfg, x)
		o := opts
		o.Workers = 1
		o.Seed = opts.Seed*1000003 + uint64(i)*7919 + hashName(name)
		res, err := runner.Estimate(cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		want.Points = append(want.Points, Point{X: x, Fraction: res.UsefulWorkFraction, Total: res.TotalUsefulWork})
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("parallel sweep diverged from legacy seeding:\n got %+v\nwant %+v", got.Points, want.Points)
	}
}
