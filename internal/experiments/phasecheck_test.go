package experiments

import (
	"math"
	"testing"
)

func TestExtraPhaseCheckAgrees(t *testing.T) {
	fig, err := ExtraPhaseCheck(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want paired reward/span", len(fig.Series))
	}
	rw := fig.SeriesByName("reward accounting")
	sp := fig.SeriesByName("span accounting")
	if rw == nil || sp == nil {
		t.Fatal("paired series missing")
	}
	if len(rw.Points) != len(phaseCheckVariants()) || len(sp.Points) != len(rw.Points) {
		t.Fatalf("points: reward %d, span %d, want %d", len(rw.Points), len(sp.Points), len(phaseCheckVariants()))
	}
	for i := range rw.Points {
		// Same trajectories, two accountings: means agree to round-off,
		// far inside the CI half-width the claim checker allows.
		if d := math.Abs(rw.Points[i].Fraction.Mean - sp.Points[i].Fraction.Mean); d > 1e-9 {
			t.Errorf("variant %d: Δ = %g", i, d)
		}
	}
	for _, res := range CheckClaims(fig) {
		if !res.Pass {
			t.Errorf("claim failed: %s — %s", res.Claim, res.Detail)
		}
	}
}

func TestCheckSpanAgreementRejectsDrift(t *testing.T) {
	fig, err := ExtraPhaseCheck(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one span mean beyond the tolerance: the claim must fail.
	sp := fig.SeriesByName("span accounting")
	sp.Points[0].Fraction.Mean += 10 * (fig.SeriesByName("reward accounting").Points[0].Fraction.HalfWide + 1e-9)
	var failed bool
	for _, res := range CheckClaims(fig) {
		if !res.Pass {
			failed = true
		}
	}
	if !failed {
		t.Fatal("claim checker accepted a drifted span estimate")
	}
}
