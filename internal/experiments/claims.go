package experiments

import (
	"fmt"
	"math"
)

// ClaimResult is the outcome of programmatically checking one of the
// paper's qualitative claims against a reproduced figure.
type ClaimResult struct {
	Figure string
	Claim  string
	Pass   bool
	Detail string
}

// CheckClaims verifies the shape claims of a reproduced figure. Unknown
// figure IDs yield a single informational non-failure result so callers
// can run the checker over arbitrary figure sets.
func CheckClaims(fig *Figure) []ClaimResult {
	switch fig.ID {
	case "fig4a":
		return checkOptimumShift(fig, "MTTF", false)
	case "fig4b":
		return checkNoInteriorOptimum(fig)
	case "fig4c":
		return append(checkOptimumShift(fig, "MTTR", true), checkSeriesOrdered(fig, "MTTR=10min", "MTTR=80min")...)
	case "fig4d":
		return append(checkMonotoneDecreasing(fig), checkSeriesOrdered(fig, "MTTR=10min", "MTTR=80min")...)
	case "fig4e":
		return checkOptimumShift(fig, "interval", true)
	case "fig4f":
		return checkSharpDropAfter30(fig)
	case "fig4g", "fig4h":
		return checkSeriesOrdered(fig, "MTTF=2yr", "MTTF=1yr")
	case "fig5":
		return append(checkMonotoneDecreasing(fig), checkSeriesOrdered(fig, "MTTQ=0.5s", "MTTQ=10s")...)
	case "fig6":
		return checkTimeoutCollapse(fig)
	case "fig7":
		return checkFlat(fig, 0.08)
	case "fig8":
		return checkSeriesOrdered(fig, "without correlated failure", "with correlated failure")
	case "xablations":
		return append(checkSeriesOrdered(fig, "full design", "blocking FS writes"),
			checkSeriesOrdered(fig, "full design", "no buffered recovery")...)
	case "xstragglers":
		return checkSeriesOrdered(fig, "homogeneous", "1% stragglers 100x")
	case "xmodelerror":
		return checkSeriesOrdered(fig, "classic (no coordination)", "renewal (with coordination)")
	case "xbreakdown":
		return checkRecoveryGrows(fig)
	case "xphasecheck":
		return checkSpanAgreement(fig)
	default:
		return []ClaimResult{{Figure: fig.ID, Claim: "no automated claim", Pass: true, Detail: "informational"}}
	}
}

// slack returns the comparison tolerance for two points: their combined CI
// half-widths plus a small floor.
func slack(a, b Point, fig *Figure) float64 {
	return ciHalf(fig, a) + ciHalf(fig, b) + 1e-9
}

// checkOptimumShift verifies that every series has its optimum away from
// the largest x when the claim demands an interior knee, and that the
// optimum location moves monotonically across the series (which are
// ordered harshest-last when harsherLater is true, harshest-first
// otherwise).
func checkOptimumShift(fig *Figure, param string, harsherLater bool) []ClaimResult {
	var out []ClaimResult
	prevOpt := math.Inf(1)
	if !harsherLater {
		prevOpt = 0
	}
	for _, s := range fig.Series {
		s := s
		x, _, ok := fig.ArgMax(&s)
		if !ok {
			out = append(out, ClaimResult{fig.ID, "optimum exists", false, "empty series " + s.Name})
			continue
		}
		ok = true
		detail := fmt.Sprintf("%s: optimum at %g", s.Name, x)
		if harsherLater {
			// Series get harsher (larger MTTR / interval): optimum
			// must not increase.
			if x > prevOpt*2 { // allow one-grid-step noise (grid is ×2)
				ok = false
				detail += fmt.Sprintf(" (previous %g; expected non-increasing)", prevOpt)
			}
			if x < prevOpt || prevOpt == math.Inf(1) {
				prevOpt = x
			}
		} else {
			// Series get milder (larger MTTF): optimum must not
			// decrease.
			if x*2 < prevOpt {
				ok = false
				detail += fmt.Sprintf(" (previous %g; expected non-decreasing)", prevOpt)
			}
			if x > prevOpt {
				prevOpt = x
			}
		}
		out = append(out, ClaimResult{fig.ID, "optimum shifts with " + param, ok, detail})
	}
	return out
}

// checkNoInteriorOptimum verifies Figure 4b's claim: within the practical
// range, the smallest interval is (statistically) the best for every
// machine size.
func checkNoInteriorOptimum(fig *Figure) []ClaimResult {
	var out []ClaimResult
	for _, s := range fig.Series {
		if len(s.Points) < 2 {
			continue
		}
		first := s.Points[0]
		s := s
		x, y, _ := fig.ArgMax(&s)
		pass := x == first.X || y <= fig.YValue(first)+slack(first, s.Points[0], fig)
		out = append(out, ClaimResult{
			fig.ID, "no optimum beyond the smallest interval", pass,
			fmt.Sprintf("%s: best at %g (%.4g) vs smallest %g (%.4g)", s.Name, x, y, first.X, fig.YValue(first)),
		})
	}
	return out
}

// checkMonotoneDecreasing verifies each series never rises beyond combined
// CI noise.
func checkMonotoneDecreasing(fig *Figure) []ClaimResult {
	var out []ClaimResult
	for _, s := range fig.Series {
		pass := true
		detail := "monotone within CI noise"
		for i := 1; i < len(s.Points); i++ {
			prev, cur := s.Points[i-1], s.Points[i]
			if fig.YValue(cur) > fig.YValue(prev)+slack(prev, cur, fig) {
				pass = false
				detail = fmt.Sprintf("rises at x=%g: %.4g → %.4g", cur.X, fig.YValue(prev), fig.YValue(cur))
				break
			}
		}
		out = append(out, ClaimResult{fig.ID, "decreasing: " + s.Name, pass, detail})
	}
	return out
}

// checkSeriesOrdered verifies that series hi dominates series lo at every
// common x, within CI noise.
func checkSeriesOrdered(fig *Figure, hi, lo string) []ClaimResult {
	sh, sl := fig.SeriesByName(hi), fig.SeriesByName(lo)
	if sh == nil || sl == nil {
		return []ClaimResult{{fig.ID, fmt.Sprintf("%s ≥ %s", hi, lo), false, "series missing"}}
	}
	byX := map[float64]Point{}
	for _, p := range sl.Points {
		byX[p.X] = p
	}
	pass, detail := true, "dominates at every x"
	for _, p := range sh.Points {
		q, okX := byX[p.X]
		if !okX {
			continue
		}
		if fig.YValue(p)+slack(p, q, fig) < fig.YValue(q) {
			pass = false
			detail = fmt.Sprintf("violated at x=%g: %.4g < %.4g", p.X, fig.YValue(p), fig.YValue(q))
			break
		}
	}
	return []ClaimResult{{fig.ID, fmt.Sprintf("%s ≥ %s", hi, lo), pass, detail}}
}

// checkSharpDropAfter30 verifies Figure 4f's text claim on the harshest
// series: the 15→30 min drop is small relative to the 30→60 min drop.
func checkSharpDropAfter30(fig *Figure) []ClaimResult {
	s := fig.SeriesByName("MTTF=1yr")
	if s == nil || len(s.Points) < 3 {
		return []ClaimResult{{fig.ID, "sharp drop beyond 30min", false, "MTTF=1yr series missing"}}
	}
	y15, y30, y60 := s.Points[0].Total.Mean, s.Points[1].Total.Mean, s.Points[2].Total.Mean
	drop1530 := y15 - y30
	drop3060 := y30 - y60
	pass := drop3060 > drop1530
	return []ClaimResult{{
		fig.ID, "15→30min drop smaller than 30→60min drop", pass,
		fmt.Sprintf("drops: %.0f vs %.0f job units", drop1530, drop3060),
	}}
}

// checkTimeoutCollapse verifies Figure 6: at the smallest machine, a 120 s
// timeout performs close to no-timeout while 20 s collapses.
func checkTimeoutCollapse(fig *Figure) []ClaimResult {
	none := fig.SeriesByName("no timeout")
	t120 := fig.SeriesByName("timeout=120s")
	t20 := fig.SeriesByName("timeout=20s")
	if none == nil || t120 == nil || t20 == nil || len(none.Points) == 0 {
		return []ClaimResult{{fig.ID, "timeout collapse", false, "series missing"}}
	}
	i := 0 // smallest machine
	fNone := none.Points[i].Fraction.Mean
	f120 := t120.Points[i].Fraction.Mean
	f20 := t20.Points[i].Fraction.Mean
	passClose := f120 > 0.9*fNone
	passCollapse := f20 < 0.2*fNone
	return []ClaimResult{
		{fig.ID, "timeout=120s close to no timeout", passClose,
			fmt.Sprintf("%.3f vs %.3f at %g procs", f120, fNone, none.Points[i].X)},
		{fig.ID, "timeout=20s collapses", passCollapse,
			fmt.Sprintf("%.3f vs %.3f at %g procs", f20, fNone, none.Points[i].X)},
	}
}

// checkFlat verifies the whole figure varies by at most maxSpread
// (Figure 7's insensitivity claim).
func checkFlat(fig *Figure, maxSpread float64) []ClaimResult {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range fig.Series {
		for _, p := range s.Points {
			v := p.Fraction.Mean
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return []ClaimResult{{
		fig.ID, fmt.Sprintf("fraction spread ≤ %.2f", maxSpread), hi-lo <= maxSpread,
		fmt.Sprintf("range [%.3f, %.3f], spread %.3f", lo, hi, hi-lo),
	}}
}

// checkRecoveryGrows verifies the breakdown extra: the recovery share
// increases with machine size.
func checkRecoveryGrows(fig *Figure) []ClaimResult {
	s := fig.SeriesByName("recovery")
	if s == nil || len(s.Points) < 2 {
		return []ClaimResult{{fig.ID, "recovery share grows with scale", false, "recovery series missing"}}
	}
	first := s.Points[0].Fraction.Mean
	last := s.Points[len(s.Points)-1].Fraction.Mean
	return []ClaimResult{{
		fig.ID, "recovery share grows with scale", last > first,
		fmt.Sprintf("%.4f → %.4f", first, last),
	}}
}
