package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// procSweep is the x axis of Figures 4a/c/e: 8K–256K processors.
var procSweep = []int{8192, 16384, 32768, 65536, 131072, 262144}

// intervalSweepMinutes is the x axis of Figures 4b/d/f: 15 min–4 h.
var intervalSweepMinutes = []float64{15, 30, 60, 120, 240}

// baseConfig is the Section 7.1 base model: fixed quiesce time, no
// timeout, independent failures only — the "base" scenario of the
// catalog (which TestScenarioRegistryPinsVariants pins to the paper's
// Table 3 defaults).
func baseConfig() cluster.Config {
	return mustScenarioConfig("base")
}

func floats(ints []int) []float64 {
	out := make([]float64, len(ints))
	for i, v := range ints {
		out[i] = float64(v)
	}
	return out
}

// Fig4a: total useful work vs number of processors for MTTF ∈
// {0.125, 0.25, 0.5, 1, 2} years (MTTR 10 min, interval 30 min).
func Fig4a(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4a",
		Title:  "Useful work vs processors for different MTTFs (MTTR=10min, interval=30min)",
		XLabel: "processors",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, mttf := range []float64{0.125, 0.25, 0.5, 1, 2} {
		mttf := mttf
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTF=%gyr", mttf),
			base: baseConfig(),
			xs:   floats(procSweep),
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = int(x)
				cfg.MTTFPerNode = cluster.Years(mttf)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4b: total useful work vs checkpoint interval for each processor count
// (MTTF 1 yr, MTTR 10 min).
func Fig4b(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4b",
		Title:  "Useful work vs checkpoint interval for different processor counts (MTTF=1yr, MTTR=10min)",
		XLabel: "interval (min)",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, procs := range procSweep {
		procs := procs
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("procs=%d", procs),
			base: baseConfig(),
			xs:   intervalSweepMinutes,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = procs
				cfg.CheckpointInterval = cluster.Minutes(x)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4c: total useful work vs processors for MTTR ∈ {10,20,40,80} min
// (MTTF 1 yr, interval 30 min).
func Fig4c(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4c",
		Title:  "Useful work vs processors for different MTTRs (MTTF=1yr, interval=30min)",
		XLabel: "processors",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, mttr := range []float64{10, 20, 40, 80} {
		mttr := mttr
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTR=%gmin", mttr),
			base: baseConfig(),
			xs:   floats(procSweep),
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = int(x)
				cfg.MTTR = cluster.Minutes(mttr)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4d: total useful work vs interval for each MTTR (MTTF 1 yr, 64K
// processors).
func Fig4d(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4d",
		Title:  "Useful work vs checkpoint interval for different MTTRs (MTTF=1yr, procs=64K)",
		XLabel: "interval (min)",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, mttr := range []float64{10, 20, 40, 80} {
		mttr := mttr
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTR=%gmin", mttr),
			base: baseConfig(),
			xs:   intervalSweepMinutes,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.MTTR = cluster.Minutes(mttr)
				cfg.CheckpointInterval = cluster.Minutes(x)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4e: total useful work vs processors for interval ∈ {15,30,60,120,240}
// min (MTTF 1 yr, MTTR 10 min).
func Fig4e(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4e",
		Title:  "Useful work vs processors for different checkpoint intervals (MTTF=1yr, MTTR=10min)",
		XLabel: "processors",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, iv := range intervalSweepMinutes {
		iv := iv
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("interval=%gmin", iv),
			base: baseConfig(),
			xs:   floats(procSweep),
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = int(x)
				cfg.CheckpointInterval = cluster.Minutes(iv)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4f: total useful work vs interval for MTTF ∈ {1,2,4,8,16} yr (MTTR
// 10 min, 64K processors).
func Fig4f(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4f",
		Title:  "Useful work vs checkpoint interval for different MTTFs (MTTR=10min, procs=64K)",
		XLabel: "interval (min)",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, mttf := range []float64{1, 2, 4, 8, 16} {
		mttf := mttf
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTF=%gyr", mttf),
			base: baseConfig(),
			xs:   intervalSweepMinutes,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.MTTFPerNode = cluster.Years(mttf)
				cfg.CheckpointInterval = cluster.Minutes(x)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig4g: total useful work vs number of nodes at 32 processors/node for
// MTTF ∈ {1,2} yr (the 1000K-processor study of Section 7.1).
func Fig4g(opts runner.Options) (*Figure, error) {
	return figNodes("fig4g", 32, []float64{8192, 16384, 32768}, opts)
}

// Fig4h: same as Fig4g with 16 processors/node.
func Fig4h(opts runner.Options) (*Figure, error) {
	return figNodes("fig4h", 16, []float64{8192, 16384, 32768, 65536}, opts)
}

func figNodes(id string, procsPerNode int, nodeSweep []float64, opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Useful work vs number of nodes, %d processors/node", procsPerNode),
		XLabel: "nodes",
		YLabel: "total useful work",
	}
	var specs []seriesSpec
	for _, mttf := range []float64{1, 2} {
		mttf := mttf
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTF=%gyr", mttf),
			base: baseConfig(),
			xs:   nodeSweep,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.ProcsPerNode = procsPerNode
				cfg.Processors = int(x) * procsPerNode
				cfg.MTTFPerNode = cluster.Years(mttf)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
