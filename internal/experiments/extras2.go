package experiments

import (
	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ExtraStragglers quantifies quiesce-time heterogeneity, which the paper's
// i.i.d. assumption (§7.2) excludes: a small population of slow-quiescing
// processors stretches the coordination tail and, with a timeout, turns
// into checkpoint aborts. Series: useful-work fraction vs processors for
// increasing straggler severity (no failures, to isolate coordination,
// like Figure 5).
func ExtraStragglers(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "xstragglers",
		Title:  "Straggler quiesce heterogeneity (coordination only, interval=30min, MTTQ=10s)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	base := coordOnlyConfig()
	xs := floats(procSweep)
	variants := []struct {
		name     string
		fraction float64
		mult     float64
	}{
		{"homogeneous", 0, 0},
		{"1% stragglers 10x", 0.01, 10},
		{"1% stragglers 100x", 0.01, 100},
		{"10% stragglers 10x", 0.10, 10},
	}
	var specs []seriesSpec
	for _, v := range variants {
		v := v
		specs = append(specs, seriesSpec{
			name: v.name,
			base: base,
			xs:   xs,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.ProcsPerNode = 1
				cfg.Processors = int(x)
				cfg.StragglerFraction = v.fraction
				cfg.StragglerMTTQMultiplier = v.mult
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// ExtraModelError contrasts the full simulation against the classic
// analytic chain the paper argues is insufficient at scale: Young/Daly-
// style efficiency (no coordination) and the renewal coordination model.
// The growing gap of the classic model at large machine sizes is the
// paper's thesis in one figure.
func ExtraModelError(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "xmodelerror",
		Title:  "Simulated vs analytic useful-work fraction (MTTF=3yr, interval=30min, max-of-n coordination)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	base := cluster.Default()
	base.MTTFPerNode = cluster.Years(3)
	base.Coordination = cluster.CoordMaxOfN

	xs := floats(procSweep)
	simulated, err := sweep(base, "simulated (SAN)", xs,
		func(cfg *cluster.Config, x float64) { cfg.Processors = int(x) }, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, simulated)

	classic := Series{Name: "classic (no coordination)"}
	renewal := Series{Name: "renewal (with coordination)"}
	for _, x := range xs {
		cfg := base
		cfg.Processors = int(x)
		mtbf, err := analytic.SystemMTBF(cfg.Nodes(), cfg.MTTFPerNode)
		if err != nil {
			return nil, err
		}
		overhead := cfg.MTTQ + cfg.CheckpointDumpTime()
		eff, err := analytic.Efficiency(cfg.CheckpointInterval, overhead, cfg.MTTR, mtbf)
		if err != nil {
			return nil, err
		}
		classic.Points = append(classic.Points, analyticPoint(x, eff, cfg.Processors))

		reff, _, err := analytic.CoordinationEfficiency(cfg.Processors, cfg.MTTQ, cfg.Timeout,
			cfg.CheckpointInterval, cfg.CheckpointDumpTime(), cfg.MTTR, mtbf)
		if err != nil {
			return nil, err
		}
		renewal.Points = append(renewal.Points, analyticPoint(x, reff, cfg.Processors))
	}
	fig.Series = append(fig.Series, classic, renewal)
	return fig, nil
}

// analyticPoint wraps a closed-form value as a zero-width interval point.
func analyticPoint(x, fraction float64, procs int) Point {
	return Point{
		X:        x,
		Fraction: stats.Interval{Mean: fraction, Level: 1, N: 1},
		Total:    stats.Interval{Mean: fraction * float64(procs), Level: 1, N: 1},
	}
}

// extras2Defs returns the second batch of beyond-the-paper experiments;
// merged by Extras.
func extras2Defs() []Def {
	return []Def{
		{
			ID: "xstragglers", Title: "Straggler quiesce heterogeneity",
			ShapeClaim: "small slow populations dominate the coordination tail",
			Run:        ExtraStragglers,
		},
		{
			ID: "xmodelerror", Title: "Simulated vs analytic fraction",
			ShapeClaim: "classic no-coordination models overestimate at scale; the renewal model tracks",
			Run:        ExtraModelError,
		},
	}
}
