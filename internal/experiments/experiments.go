// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (Section 7) and renders their results as
// aligned text tables or CSV. Every experiment is a pure function of
// (runner.Options), so benchmark scale and full paper scale use the same
// code with different windows.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Point is one measured cell of a figure: an x value within a named series.
type Point struct {
	X        float64
	Fraction stats.Interval
	Total    stats.Interval
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the reproduction of one paper figure: a set of series over a
// common x axis.
type Figure struct {
	ID     string // e.g. "fig4a"
	Title  string
	XLabel string
	YLabel string // "total useful work" or "useful work fraction"
	Series []Series
}

// YValue extracts the figure's y measure from a point based on YLabel.
func (f *Figure) YValue(p Point) float64 {
	if strings.Contains(f.YLabel, "fraction") {
		return p.Fraction.Mean
	}
	return p.Total.Mean
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// ArgMax returns the x value at which the series' y measure (per the
// figure) peaks, and the peak value. It returns ok=false for an empty
// series.
func (f *Figure) ArgMax(s *Series) (x, y float64, ok bool) {
	if s == nil || len(s.Points) == 0 {
		return 0, 0, false
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if f.YValue(p) > f.YValue(best) {
			best = p
		}
	}
	return best.X, f.YValue(best), true
}

// WriteTable renders the figure as an aligned text table: one row per x
// value, one column per series, y = the figure's measure with its CI
// half-width in parentheses.
func WriteTable(w io.Writer, f *Figure) error {
	if len(f.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: %s (empty)\n", f.ID, f.Title)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n  y = %s\n", f.ID, f.Title, f.YLabel); err != nil {
		return err
	}
	xs := sortedXs(f)
	byXBySeries := index(f)

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, pad(f.XLabel, 14))
	for _, s := range f.Series {
		header = append(header, pad(s.Name, 22))
	}
	if _, err := fmt.Fprintln(w, "  "+strings.Join(header, " ")); err != nil {
		return err
	}
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, pad(formatX(x), 14))
		for _, s := range f.Series {
			cell := "-"
			if p, exists := byXBySeries[s.Name][x]; exists {
				cell = fmt.Sprintf("%.4g (±%.2g)", f.YValue(p), ciHalf(f, p))
			}
			row = append(row, pad(cell, 22))
		}
		if _, err := fmt.Fprintln(w, "  "+strings.Join(row, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV with columns
// figure,series,x,y,ci_half,fraction,total.
func WriteCSV(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintln(w, "figure,series,x,y,ci_half,fraction,total"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%q,%g,%g,%g,%g,%g\n",
				f.ID, s.Name, p.X, f.YValue(p), ciHalf(f, p),
				p.Fraction.Mean, p.Total.Mean); err != nil {
				return err
			}
		}
	}
	return nil
}

func ciHalf(f *Figure, p Point) float64 {
	if strings.Contains(f.YLabel, "fraction") {
		return p.Fraction.HalfWide
	}
	return p.Total.HalfWide
}

func sortedXs(f *Figure) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func index(f *Figure) map[string]map[float64]Point {
	out := make(map[string]map[float64]Point, len(f.Series))
	for _, s := range f.Series {
		m := make(map[float64]Point, len(s.Points))
		for _, p := range s.Points {
			m[p.X] = p
		}
		out[s.Name] = m
	}
	return out
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func formatX(x float64) string {
	if x == float64(int64(x)) && x < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
