package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/stats"
)

// phaseCheckVariants are the model variants the self-verification runs
// over: the issue's acceptance set (base, master timeout, correlated
// failures) plus max-of-n coordination for completeness.
func phaseCheckVariants() []struct {
	name   string
	mutate func(*cluster.Config)
} {
	return []struct {
		name   string
		mutate func(*cluster.Config)
	}{
		{"base", func(*cluster.Config) {}},
		{"timeout=120s", func(c *cluster.Config) { c.Timeout = cluster.Seconds(120) }},
		{"correlated", func(c *cluster.Config) {
			c.ProbCorrelated = 0.3
			c.CorrelatedFactor = 100
		}},
		{"max-of-n", func(c *cluster.Config) { c.Coordination = cluster.CoordMaxOfN }},
	}
}

// ExtraPhaseCheck is the phase-accounting self-verification as an
// experiment: for each model variant it estimates useful work twice from
// the same trajectories — the reward integral and the phase-span timeline —
// and reports both as paired series. The claim checker then asserts the
// pairs agree within CI half-width, which is the issue's acceptance
// criterion and what ccreport records in REPORT.md.
func ExtraPhaseCheck(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "xphasecheck",
		Title:  "Span-derived vs reward-based useful work (64Ki procs, MTTF=1yr)",
		XLabel: "variant",
		YLabel: "useful work fraction",
	}
	reward := Series{Name: "reward accounting"}
	spans := Series{Name: "span accounting"}
	opts.VerifySpans = true
	for i, v := range phaseCheckVariants() {
		cfg := baseConfig()
		cfg.Processors = 65536
		v.mutate(&cfg)
		res, err := runner.Estimate(cfg, opts)
		if err != nil {
			return nil, err
		}
		sc := res.SpanCheck
		x := float64(i)
		reward.Points = append(reward.Points, Point{
			X:        x,
			Fraction: res.UsefulWorkFraction,
			Total:    res.TotalUsefulWork,
		})
		// The span series reuses the reward CI metadata: both derivations
		// see the same trajectories, so the sampling uncertainty is
		// identical and only the mean can differ (by accounting error,
		// which is what the claim bounds).
		iv := res.UsefulWorkFraction
		spans.Points = append(spans.Points, Point{
			X:        x,
			Fraction: stats.Interval{Mean: sc.SpanMean, HalfWide: iv.HalfWide, Level: iv.Level, N: iv.N},
			Total:    stats.Interval{Mean: sc.SpanMean * float64(cfg.Processors), HalfWide: res.TotalUsefulWork.HalfWide, Level: iv.Level, N: iv.N},
		})
	}
	fig.Series = []Series{reward, spans}
	return fig, nil
}

// checkSpanAgreement verifies the xphasecheck figure: at every variant the
// span-derived mean must sit within the reward estimate's CI half-width
// (plus the usual floor) of the reward mean.
func checkSpanAgreement(fig *Figure) []ClaimResult {
	rw := fig.SeriesByName("reward accounting")
	sp := fig.SeriesByName("span accounting")
	if rw == nil || sp == nil || len(rw.Points) != len(sp.Points) {
		return []ClaimResult{{fig.ID, "span accounting matches reward accounting", false, "series missing or mismatched"}}
	}
	var out []ClaimResult
	variants := phaseCheckVariants()
	for i := range rw.Points {
		name := "variant"
		if i < len(variants) {
			name = variants[i].name
		}
		delta := sp.Points[i].Fraction.Mean - rw.Points[i].Fraction.Mean
		tol := rw.Points[i].Fraction.HalfWide + 1e-9
		pass := delta >= -tol && delta <= tol
		out = append(out, ClaimResult{
			fig.ID, "span accounting matches reward accounting: " + name, pass,
			fmt.Sprintf("Δ=%.3g within ±%.3g", delta, tol),
		})
	}
	return out
}
