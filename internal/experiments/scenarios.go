package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// mustScenarioConfig returns the named built-in scenario's model
// configuration. The figure experiments draw their base configurations
// from the scenario catalog so that "what figure N ran" is inspectable
// data (`ccsim -list-scenarios`), not code. The embedded catalog is
// validated by its package tests and pinned bit-identically by the model
// differential suite, so a failure here is a build defect; panicking keeps
// the figure constructors free of impossible error plumbing.
func mustScenarioConfig(name string) cluster.Config {
	s, err := scenario.Builtin().Get(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	cfg, err := s.ClusterConfig()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return cfg
}

// ScenarioFigure sweeps processor count for one catalog scenario — the
// generic figure behind `ccfigures -scenario <name>`, giving any scenario
// (built-in or user-supplied) the same scaling view the paper's figures
// give the base model.
func ScenarioFigure(s scenario.Scenario, opts runner.Options) (*Figure, error) {
	cfg, err := s.ClusterConfig()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "scenario-" + s.Name,
		Title:  s.Title,
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	series, err := runSpecs([]seriesSpec{{
		name: s.Name,
		base: cfg,
		xs:   floats(procSweep),
		mutate: func(cfg *cluster.Config, x float64) {
			cfg.Processors = int(x)
		},
	}}, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// ScenarioDef wraps a scenario sweep as a runnable experiment definition.
func ScenarioDef(s scenario.Scenario) Def {
	return Def{
		ID:         "scenario-" + s.Name,
		Title:      s.Title,
		ShapeClaim: "scenario sweep (no paper shape claim)",
		Run: func(opts runner.Options) (*Figure, error) {
			return ScenarioFigure(s, opts)
		},
	}
}
