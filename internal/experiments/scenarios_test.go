package experiments

import (
	"testing"

	"repro/internal/cluster"
)

// TestFigureBasesMatchScenarios pins the figure base configurations to
// their pre-registry constructions: routing them through the scenario
// catalog must not change a single field.
func TestFigureBasesMatchScenarios(t *testing.T) {
	if got, want := baseConfig(), cluster.Default(); got != want {
		t.Errorf("baseConfig:\ngot  %+v\nwant %+v", got, want)
	}

	coord := cluster.Default()
	coord.Coordination = cluster.CoordMaxOfN
	coord.MTTFPerNode = cluster.Years(1e12)
	if got := coordOnlyConfig(); got != coord {
		t.Errorf("coordOnlyConfig:\ngot  %+v\nwant %+v", got, coord)
	}

	with := cluster.Default()
	with.MTTFPerNode = cluster.Years(3)
	with.CorrelatedFactor = 400
	with.GenericCorrelatedCoefficient = 0.0025
	if got := mustScenarioConfig("generic-correlated"); got != with {
		t.Errorf("generic-correlated:\ngot  %+v\nwant %+v", got, with)
	}
}

func TestMustScenarioConfigPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown scenario")
		}
	}()
	mustScenarioConfig("does-not-exist")
}
