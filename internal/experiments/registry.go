package experiments

import (
	"fmt"
	"sort"

	"repro/internal/runner"
)

// Def describes one runnable experiment.
type Def struct {
	ID    string
	Title string
	// ShapeClaim is the paper's qualitative claim the reproduction must
	// preserve (DESIGN.md §4).
	ShapeClaim string
	Run        func(runner.Options) (*Figure, error)
}

// All returns every figure experiment, sorted by ID.
func All() []Def {
	defs := []Def{
		{
			ID: "fig4a", Title: "Useful work vs processors for different MTTFs",
			ShapeClaim: "interior optimum processor count; optimum shrinks with MTTF",
			Run:        Fig4a,
		},
		{
			ID: "fig4b", Title: "Useful work vs interval for different processor counts",
			ShapeClaim: "no optimum interval in 15min-4h; monotone decrease, flat 15-30min",
			Run:        Fig4b,
		},
		{
			ID: "fig4c", Title: "Useful work vs processors for different MTTRs",
			ShapeClaim: "optimum processor count decreases with MTTR",
			Run:        Fig4c,
		},
		{
			ID: "fig4d", Title: "Useful work vs interval for different MTTRs",
			ShapeClaim: "monotone decrease in interval; smaller MTTR dominates",
			Run:        Fig4d,
		},
		{
			ID: "fig4e", Title: "Useful work vs processors for different intervals",
			ShapeClaim: "optimum processor count decreases with interval",
			Run:        Fig4e,
		},
		{
			ID: "fig4f", Title: "Useful work vs interval for different MTTFs",
			ShapeClaim: "small drop 15→30min, sharp drop beyond 30min",
			Run:        Fig4f,
		},
		{
			ID: "fig4g", Title: "Useful work vs nodes at 32 processors/node",
			ShapeClaim: "more processors per node at equal node count raises total useful work",
			Run:        Fig4g,
		},
		{
			ID: "fig4h", Title: "Useful work vs nodes at 16 processors/node",
			ShapeClaim: "optimum node count grows with MTTF",
			Run:        Fig4h,
		},
		{
			ID: "fig5", Title: "Coordination-only useful work fraction",
			ShapeClaim: "degradation logarithmic in processors, proportional to MTTQ",
			Run:        Fig5,
		},
		{
			ID: "fig6", Title: "Coordination and timeout with failures",
			ShapeClaim: "timeouts ≤80s collapse the fraction; ≥100s close to no-timeout",
			Run:        Fig6,
		},
		{
			ID: "fig7", Title: "Correlated failures due to error propagation",
			ShapeClaim: "fraction nearly flat in pe and r",
			Run:        Fig7,
		},
		{
			ID: "fig8", Title: "Generic correlated failures",
			ShapeClaim: "large degradation that grows with processor count",
			Run:        Fig8,
		},
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	return defs
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Def, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
