package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// Fig5: effect of pure coordination on the useful-work fraction — no
// failures, no timeout, max-of-n quiesce times, MTTQ ∈ {0.5, 2, 10} s,
// processors from 1 to ~10^9 (Section 7.2, Figure 5).
func Fig5(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig5",
		Title:  "Useful work fraction with coordination only (interval=30min, no timeouts or failures)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	// Power-of-4 ladder like the paper's x axis: 1 … 2^30.
	var procs []float64
	for p := 1; p <= 1<<30; p *= 4 {
		procs = append(procs, float64(p))
	}
	var specs []seriesSpec
	for _, mttqSec := range []float64{10, 2, 0.5} {
		mttqSec := mttqSec
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("MTTQ=%gs", mttqSec),
			base: coordOnlyConfig(),
			xs:   procs,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.ProcsPerNode = 1 // any count divides; x axis is processors
				cfg.Processors = int(x)
				cfg.MTTQ = cluster.Seconds(mttqSec)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// coordOnlyConfig disables failures to isolate coordination (Figure 5) —
// the "coordination-only" scenario of the catalog.
func coordOnlyConfig() cluster.Config {
	return mustScenarioConfig("coordination-only")
}

// Fig6: coordination and timeout with failures — useful-work fraction vs
// processors for timeout ∈ {20,40,60,80,100,120} s, no timeout, and the
// no-coordination baseline (MTTF 3 yr, interval 30 min, MTTQ 10 s).
func Fig6(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Useful work fraction with coordination and timeout (MTTF=3yr, interval=30min, MTTQ=10s)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	base := cluster.Default()
	base.MTTFPerNode = cluster.Years(3)
	base.MTTQ = cluster.Seconds(10)

	xs := floats(procSweep)

	noCoord := base
	noCoord.Coordination = cluster.CoordNone
	coord := base
	coord.Coordination = cluster.CoordMaxOfN

	setProcs := func(cfg *cluster.Config, x float64) { cfg.Processors = int(x) }
	specs := []seriesSpec{
		{name: "no coordination", base: noCoord, xs: xs, mutate: setProcs},
		{name: "no timeout", base: coord, xs: xs, mutate: setProcs},
	}
	for _, timeoutSec := range []float64{120, 100, 80, 60, 40, 20} {
		timeoutSec := timeoutSec
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("timeout=%gs", timeoutSec),
			base: coord,
			xs:   xs,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.Processors = int(x)
				cfg.Timeout = cluster.Seconds(timeoutSec)
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig7: correlated failures due to error propagation — useful-work
// fraction vs p_e for r ∈ {400, 800, 1600} (MTTF 3 yr, 256K processors,
// window 3 min).
func Fig7(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig7",
		Title:  "Useful work fraction vs probability of correlated failure (MTTF=3yr, procs=256K, window=3min)",
		XLabel: "prob of correlated failure",
		YLabel: "useful work fraction",
	}
	base := cluster.Default()
	base.Processors = 256 * 1024
	base.MTTFPerNode = cluster.Years(3)
	pes := []float64{0, 0.05, 0.10, 0.15, 0.20}
	var specs []seriesSpec
	for _, r := range []float64{400, 800, 1600} {
		r := r
		specs = append(specs, seriesSpec{
			name: fmt.Sprintf("r=%g", r),
			base: base,
			xs:   pes,
			mutate: func(cfg *cluster.Config, x float64) {
				cfg.ProbCorrelated = x
				if x > 0 {
					cfg.CorrelatedFactor = r
				}
			},
		})
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig8: generic correlated failures — useful-work fraction vs processors
// with and without the generic correlated stream (r=400, α=0.0025, MTTF
// 3 yr); the correlated case doubles the system failure rate.
func Fig8(opts runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig8",
		Title:  "Useful work fraction with generic correlated failures (MTTF=3yr, r=400, alpha=0.0025, interval=30min)",
		XLabel: "processors",
		YLabel: "useful work fraction",
	}
	base := cluster.Default()
	base.MTTFPerNode = cluster.Years(3)
	// The correlated case is the "generic-correlated" catalog scenario.
	with := mustScenarioConfig("generic-correlated")

	xs := floats(procSweep)
	setProcs := func(cfg *cluster.Config, x float64) { cfg.Processors = int(x) }
	specs := []seriesSpec{
		{name: "without correlated failure", base: base, xs: xs, mutate: setProcs},
		{name: "with correlated failure", base: with, xs: xs, mutate: setProcs},
	}
	series, err := runSpecs(specs, opts)
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
