package netsim

import (
	"testing"
	"testing/quick"
)

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 2, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewTree(10, 1, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := NewTree(10, 2, -1); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewTree(10, 2, 0.001); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestParentAndDepthBinary(t *testing.T) {
	tr, err := NewTree(15, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent(0) != -1 {
		t.Error("root parent should be -1")
	}
	// Complete binary tree: node 1,2 at depth 1; 3..6 at depth 2; 7..14 at 3.
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3}
	for node, depth := range cases {
		if d := tr.Depth(node); d != depth {
			t.Errorf("depth(%d) = %d, want %d", node, d, depth)
		}
	}
	if tr.MaxDepth() != 3 {
		t.Errorf("max depth = %d, want 3", tr.MaxDepth())
	}
}

func TestBroadcastLatencyScalesWithDepth(t *testing.T) {
	tr, _ := NewTree(1000, 4, 0.5)
	if tr.BroadcastLatency(0) != 0 {
		t.Error("root latency should be 0")
	}
	if got := tr.BroadcastLatency(5); got != 1.0 {
		t.Errorf("depth-2 node latency = %v, want 1.0", got)
	}
	if tr.FullBroadcastLatency() != float64(tr.MaxDepth())*0.5 {
		t.Error("full broadcast latency wrong")
	}
	if tr.ReduceLatency(5) != tr.BroadcastLatency(5) {
		t.Error("reduction should be symmetric to broadcast")
	}
}

func TestDepthHistogram(t *testing.T) {
	tr, _ := NewTree(15, 2, 1)
	h := tr.DepthHistogram()
	want := []int{1, 2, 4, 8}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
	// Truncated tree.
	tr2, _ := NewTree(10, 2, 1)
	h2 := tr2.DepthHistogram()
	total := 0
	for _, c := range h2 {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram sums to %d, want 10", total)
	}
}

// TestTreeProperties: parent is always shallower, histogram always sums to
// node count, for arbitrary trees.
func TestTreeProperties(t *testing.T) {
	f := func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		k := int(kRaw)%7 + 2
		tr, err := NewTree(n, k, 0.001)
		if err != nil {
			return false
		}
		for i := 1; i < n; i += 97 {
			p := tr.Parent(i)
			if p < 0 || p >= i || tr.Depth(p) != tr.Depth(i)-1 {
				return false
			}
		}
		sum := 0
		for _, c := range tr.DepthHistogram() {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
