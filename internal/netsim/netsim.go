// Package netsim models the interconnect needed by the checkpointing
// protocol: a hardware broadcast/reduction tree like BlueGene/L's (the
// source of Table 3's 1 ms broadcast overhead) with per-hop latencies, used
// by the message-level protocol simulator in internal/protocol.
package netsim

import (
	"fmt"
	"math"
)

// Tree is a complete k-ary broadcast/reduction tree over Nodes leaves-and-
// internal nodes (node 0 is the root/master).
type Tree struct {
	// Nodes is the number of tree participants (≥ 1).
	Nodes int
	// Fanout is the tree arity (≥ 2).
	Fanout int
	// HopLatency is the one-hop message latency in hours (hardware link
	// plus software overhead, Table 3: ~1 ms + 1 ms).
	HopLatency float64
}

// NewTree validates and returns a Tree.
func NewTree(nodes, fanout int, hopLatency float64) (Tree, error) {
	t := Tree{Nodes: nodes, Fanout: fanout, HopLatency: hopLatency}
	if err := t.Validate(); err != nil {
		return Tree{}, err
	}
	return t, nil
}

// Validate reports structural problems.
func (t Tree) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("netsim: Nodes %d < 1", t.Nodes)
	}
	if t.Fanout < 2 {
		return fmt.Errorf("netsim: Fanout %d < 2", t.Fanout)
	}
	if t.HopLatency < 0 {
		return fmt.Errorf("netsim: negative HopLatency %v", t.HopLatency)
	}
	return nil
}

// Parent returns the parent index of node i (node 0 has no parent and
// returns -1).
func (t Tree) Parent(i int) int {
	if i <= 0 {
		return -1
	}
	return (i - 1) / t.Fanout
}

// Depth returns the number of hops from the root to node i.
func (t Tree) Depth(i int) int {
	d := 0
	for i > 0 {
		i = t.Parent(i)
		d++
	}
	return d
}

// MaxDepth returns the depth of the deepest node, ⌈log_k((k-1)n+1)⌉-ish;
// computed directly from the last index.
func (t Tree) MaxDepth() int {
	return t.Depth(t.Nodes - 1)
}

// BroadcastLatency returns the time for a root broadcast to reach node i.
func (t Tree) BroadcastLatency(i int) float64 {
	return float64(t.Depth(i)) * t.HopLatency
}

// ReduceLatency returns the time for node i's acknowledgement to reach the
// root along the reduction tree (symmetric to broadcast in this model).
func (t Tree) ReduceLatency(i int) float64 { return t.BroadcastLatency(i) }

// FullBroadcastLatency is the time for a broadcast to reach every node —
// the paper's "broadcast overhead" for the whole machine.
func (t Tree) FullBroadcastLatency() float64 {
	return float64(t.MaxDepth()) * t.HopLatency
}

// DepthHistogram returns how many nodes sit at each depth (index = depth),
// useful for latency modeling and tests.
func (t Tree) DepthHistogram() []int {
	h := make([]int, t.MaxDepth()+1)
	// Level sizes are k^d, truncated at Nodes.
	remaining := t.Nodes
	level := 1
	for d := 0; d < len(h) && remaining > 0; d++ {
		n := level
		if n > remaining {
			n = remaining
		}
		h[d] = n
		remaining -= n
		if level > math.MaxInt32/t.Fanout {
			level = math.MaxInt32
		} else {
			level *= t.Fanout
		}
	}
	return h
}
