package failure

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/rng"
)

// TestPaperExampleR600 pins the worked example of Section 6: n=1024,
// p=0.3, MTTR=10 min, MTTF=25 yr ⇒ r ≈ 600.
func TestPaperExampleR600(t *testing.T) {
	perNodeRate := 1 / cluster.Years(25)
	recoveryRate := 1 / cluster.Minutes(10)
	r, err := FactorFromConditionalProb(0.3, 1024, perNodeRate, recoveryRate)
	if err != nil {
		t.Fatal(err)
	}
	if r < 540 || r > 660 {
		t.Fatalf("r = %v, paper says about 600", r)
	}
}

func TestFactorProbRoundTrip(t *testing.T) {
	f := func(pRaw uint16, nRaw uint16) bool {
		p := float64(pRaw%900)/1000 + 0.05 // 0.05..0.95
		n := int(nRaw)%8192 + 1
		perNodeRate := 1 / cluster.Years(3)
		recoveryRate := 1 / cluster.Minutes(10)
		r, err := FactorFromConditionalProb(p, n, perNodeRate, recoveryRate)
		if err != nil {
			return false
		}
		if r < -1 {
			return false
		}
		if r < 0 {
			// λc < λi: the paper requires λc > λi for a meaningful
			// correlated factor; skip such corner combinations.
			return true
		}
		back, err := ConditionalProbFromFactor(r, n, perNodeRate, recoveryRate)
		return err == nil && math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorInputValidation(t *testing.T) {
	if _, err := FactorFromConditionalProb(-0.1, 10, 1, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := FactorFromConditionalProb(1.0, 10, 1, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := FactorFromConditionalProb(0.5, 0, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := FactorFromConditionalProb(0.5, 10, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := ConditionalProbFromFactor(-1, 10, 1, 1); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := ConditionalProbFromFactor(5, -1, 1, 1); err == nil {
		t.Error("negative n accepted")
	}
}

// TestGenericRateDoubles pins the Figure 8 parameterisation: r=400,
// α=0.0025 ⇒ λs = 2nλ ("the entire system failure rate gets doubled").
func TestGenericRateDoubles(t *testing.T) {
	n := 32768
	perNode := 1 / cluster.Years(3)
	got := GenericSystemRate(n, perNode, 0.0025, 400)
	want := 2 * float64(n) * perNode
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("λs = %v, want doubled rate %v", got, want)
	}
}

func TestGenericRateNoCorrelation(t *testing.T) {
	got := GenericSystemRate(100, 0.01, 0, 400)
	if got != 1.0 {
		t.Fatalf("α=0 rate = %v, want nλ = 1.0", got)
	}
}

func TestProcessRates(t *testing.T) {
	p, err := NewProcess(2.0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 2.0 || p.Multiplier() != 1 {
		t.Fatal("initial rate wrong")
	}
	p.SetMultiplier(600)
	if p.Rate() != 1200 {
		t.Fatalf("rate after multiplier = %v", p.Rate())
	}
	p.SetMultiplier(-5)
	if p.Rate() != 0 {
		t.Fatal("negative multiplier should clamp to 0")
	}
	if !math.IsInf(p.NextArrival(), 1) {
		t.Fatal("zero-rate arrival should be +Inf")
	}
}

func TestProcessRejectsNegativeRate(t *testing.T) {
	if _, err := NewProcess(-1, rng.New(1)); err == nil {
		t.Fatal("negative base rate accepted")
	}
}

func TestProcessArrivalMean(t *testing.T) {
	p, err := NewProcess(4.0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.NextArrival()
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("arrival mean = %v, want 0.25", mean)
	}
	if got := p.ExpectedFailuresDuring(3); got != 12 {
		t.Fatalf("expected failures = %v, want 12", got)
	}
}
