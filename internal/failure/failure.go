// Package failure implements the failure-process mathematics of Sections
// 3.5 and 6 of the paper: independent Poisson failures, correlated failures
// due to error propagation (the birth–death analysis relating the
// conditional probability p of a follow-on failure to the rate multiplier
// r, "frate_correlated_factor"), and generic correlated failures
// (λs = nλ(1+αr)).
package failure

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// FactorFromConditionalProb computes the frate_correlated_factor r from the
// birth–death model of Section 6 / Figure 3:
//
//	p = λc/(λc+µ)          (conditional probability of a follow-on failure)
//	λc = λi + r·n·λ = n·λ·(1+r)
//	⇒ r = p·µ/((1-p)·n·λ) − 1
//
// where n is the node count, λ the per-node independent failure rate and µ
// the recovery rate. The paper's example: n=1024, p=0.3, MTTR=10 min,
// MTTF=25 yr gives r ≈ 600.
func FactorFromConditionalProb(p float64, n int, perNodeRate, recoveryRate float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("failure: conditional probability %v outside [0,1)", p)
	}
	if n <= 0 || perNodeRate <= 0 || recoveryRate <= 0 {
		return 0, fmt.Errorf("failure: n=%d, rate=%v, recovery=%v must all be positive", n, perNodeRate, recoveryRate)
	}
	return p*recoveryRate/((1-p)*float64(n)*perNodeRate) - 1, nil
}

// ConditionalProbFromFactor inverts FactorFromConditionalProb:
//
//	λc = n·λ·(1+r),  p = λc/(λc+µ).
func ConditionalProbFromFactor(r float64, n int, perNodeRate, recoveryRate float64) (float64, error) {
	if r < 0 {
		return 0, fmt.Errorf("failure: factor %v must be non-negative", r)
	}
	if n <= 0 || perNodeRate <= 0 || recoveryRate <= 0 {
		return 0, fmt.Errorf("failure: n=%d, rate=%v, recovery=%v must all be positive", n, perNodeRate, recoveryRate)
	}
	lambdaC := float64(n) * perNodeRate * (1 + r)
	return lambdaC / (lambdaC + recoveryRate), nil
}

// GenericSystemRate returns the total system failure rate under generic
// correlated failures, λs = λsi + λsc = nλ + αrnλ = nλ(1+αr) (Section 6,
// Table 2). With the paper's r=400 and α=0.0025 the rate doubles.
func GenericSystemRate(n int, perNodeRate, alpha, r float64) float64 {
	return float64(n) * perNodeRate * (1 + alpha*r)
}

// Process is a (possibly rate-modulated) Poisson failure source used by the
// message-level protocol simulator. BaseRate is the unmodulated event rate;
// the current rate is BaseRate×multiplier, switchable at any time thanks to
// the memorylessness of the exponential.
type Process struct {
	BaseRate   float64
	multiplier float64
	src        rng.Source
}

// NewProcess returns a failure process with multiplier 1.
func NewProcess(baseRate float64, src rng.Source) (*Process, error) {
	if baseRate < 0 {
		return nil, fmt.Errorf("failure: negative base rate %v", baseRate)
	}
	return &Process{BaseRate: baseRate, multiplier: 1, src: src}, nil
}

// SetMultiplier changes the rate multiplier (e.g. entering/leaving a
// correlated-failure window). Because the exponential is memoryless the
// caller simply resamples the next arrival after switching.
func (p *Process) SetMultiplier(m float64) {
	if m < 0 {
		m = 0
	}
	p.multiplier = m
}

// Multiplier returns the current rate multiplier.
func (p *Process) Multiplier() float64 { return p.multiplier }

// Rate returns the current effective rate.
func (p *Process) Rate() float64 { return p.BaseRate * p.multiplier }

// NextArrival samples the time until the next failure at the current rate;
// +Inf when the effective rate is zero.
func (p *Process) NextArrival() float64 {
	rate := p.Rate()
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.Exponential{MeanValue: 1 / rate}.Sample(p.src)
}

// ExpectedFailuresDuring returns the expected number of failures in a
// window of the given length at the current rate — used by tests and by
// capacity-planning examples.
func (p *Process) ExpectedFailuresDuring(window float64) float64 {
	return p.Rate() * window
}
