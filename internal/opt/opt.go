// Package opt finds optimal operating points of the checkpointing model by
// simulation: the optimum machine size for a given reliability (the
// Figure 4a knee) and the best checkpoint interval (Figure 4b), with
// confidence-interval-aware reporting so a flat optimum is not
// over-claimed.
package opt

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Point is one evaluated candidate.
type Point struct {
	// X is the candidate value (processor count or interval hours).
	X float64
	// Fraction is the estimated useful-work fraction.
	Fraction stats.Interval
	// Total is the estimated total useful work.
	Total stats.Interval
}

// Search is the outcome of a candidate sweep.
type Search struct {
	// Points holds every evaluated candidate in input order.
	Points []Point
	// Best is the candidate with the highest objective mean.
	Best Point
	// Distinct reports whether the best candidate's confidence interval
	// is disjoint from the runner-up's — i.e. the optimum is
	// statistically resolved at the options' confidence level.
	Distinct bool
}

// objective selects what the search maximises.
type objective int

const (
	maxTotal objective = iota + 1
	maxFraction
)

// OptimalProcessors sweeps machine sizes and returns the one maximising
// total useful work — the paper's §7.1 capacity-planning question.
func OptimalProcessors(base cluster.Config, candidates []int, opts runner.Options) (Search, error) {
	if len(candidates) == 0 {
		return Search{}, fmt.Errorf("opt: no candidate processor counts")
	}
	mutate := func(cfg *cluster.Config, x float64) { cfg.Processors = int(x) }
	xs := make([]float64, len(candidates))
	for i, c := range candidates {
		xs[i] = float64(c)
	}
	return search(base, xs, mutate, maxTotal, opts)
}

// OptimalInterval sweeps checkpoint intervals (hours) and returns the one
// maximising total useful work — the Figure 4b question. The paper's
// finding is that within the practical range the smallest interval wins.
func OptimalInterval(base cluster.Config, candidates []float64, opts runner.Options) (Search, error) {
	if len(candidates) == 0 {
		return Search{}, fmt.Errorf("opt: no candidate intervals")
	}
	mutate := func(cfg *cluster.Config, x float64) { cfg.CheckpointInterval = x }
	return search(base, candidates, mutate, maxTotal, opts)
}

// OptimalTimeout sweeps master timeouts (hours; 0 = none) and returns the
// one maximising the useful-work fraction — the Figure 6 question.
func OptimalTimeout(base cluster.Config, candidates []float64, opts runner.Options) (Search, error) {
	if len(candidates) == 0 {
		return Search{}, fmt.Errorf("opt: no candidate timeouts")
	}
	mutate := func(cfg *cluster.Config, x float64) { cfg.Timeout = x }
	return search(base, candidates, mutate, maxFraction, opts)
}

// search evaluates every candidate as one job on the worker pool
// (opts.Workers wide; candidate seeds are derived from the candidate index
// alone, so the sweep is deterministic for any worker count) and ranks by
// the objective mean.
func search(base cluster.Config, xs []float64,
	mutate func(*cluster.Config, float64), obj objective, opts runner.Options) (Search, error) {
	seedBase := opts.Seed
	if seedBase == 0 {
		seedBase = 1
	}
	pool := exec.Pool{Workers: exec.WorkerCount(opts.Workers)}
	points, err := exec.Map(context.Background(), pool, len(xs),
		func(_ context.Context, i int) (Point, error) {
			cfg := base
			mutate(&cfg, xs[i])
			o := opts
			o.Seed = seedBase*1000003 + uint64(i)*7919
			o.Workers = 1 // the candidate sweep is already parallel
			o.Progress = nil
			res, err := runner.Estimate(cfg, o)
			if err != nil {
				return Point{}, fmt.Errorf("opt: candidate %v: %w", xs[i], err)
			}
			return Point{X: xs[i], Fraction: res.UsefulWorkFraction, Total: res.TotalUsefulWork}, nil
		})
	if err != nil {
		return Search{}, err
	}
	out := Search{Points: points}
	bestIdx, runnerUp := -1, -1
	for i, p := range points {
		switch {
		case bestIdx < 0 || value(p, obj) > value(out.Points[bestIdx], obj):
			runnerUp = bestIdx
			bestIdx = i
		case runnerUp < 0 || value(p, obj) > value(out.Points[runnerUp], obj):
			runnerUp = i
		}
	}
	out.Best = out.Points[bestIdx]
	if runnerUp >= 0 {
		b := interval(out.Points[bestIdx], obj)
		r := interval(out.Points[runnerUp], obj)
		out.Distinct = b.Low() > r.High()
	} else {
		out.Distinct = true // single candidate
	}
	return out, nil
}

func value(p Point, obj objective) float64 { return interval(p, obj).Mean }

func interval(p Point, obj objective) stats.Interval {
	if obj == maxFraction {
		return p.Fraction
	}
	return p.Total
}
