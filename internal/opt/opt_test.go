package opt

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/runner"
)

func quickOpts() runner.Options {
	return runner.Options{Replications: 3, Warmup: 150, Measure: 1200, Seed: 9}
}

func TestOptimalProcessorsFindsKnee(t *testing.T) {
	base := cluster.Default() // MTTF 1yr, MTTR 10min, interval 30min
	res, err := OptimalProcessors(base, []int{32768, 131072, 1 << 21}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// 2M processors is far past the knee; the optimum must be interior.
	if res.Best.X == float64(1<<21) {
		t.Fatalf("optimum at the absurd end: %+v", res.Best)
	}
	if res.Best.X != 131072 {
		t.Fatalf("optimum = %v, expected 131072 (the paper's knee)", res.Best.X)
	}
	if !res.Distinct {
		t.Fatal("widely separated candidates should be statistically distinct")
	}
}

func TestOptimalIntervalPrefersSmallest(t *testing.T) {
	base := cluster.Default()
	base.Processors = 128 * 1024
	res, err := OptimalInterval(base, []float64{
		cluster.Minutes(15), cluster.Minutes(60), cluster.Minutes(240),
	}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X != cluster.Minutes(15) {
		t.Fatalf("optimum interval = %v h, paper says the smallest practical wins", res.Best.X)
	}
}

func TestOptimalTimeoutAvoidsSuicidal(t *testing.T) {
	base := cluster.Default()
	base.Processors = 32768
	base.MTTFPerNode = cluster.Years(3)
	base.Coordination = cluster.CoordMaxOfN
	res, err := OptimalTimeout(base, []float64{
		cluster.Seconds(20), cluster.Seconds(120), 0,
	}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X == cluster.Seconds(20) {
		t.Fatalf("a 20s timeout cannot be optimal at 32K processors: %+v", res.Best)
	}
}

func TestSingleCandidate(t *testing.T) {
	res, err := OptimalProcessors(cluster.Default(), []int{8192},
		runner.Options{Replications: 2, Warmup: 20, Measure: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X != 8192 || !res.Distinct {
		t.Fatalf("single candidate result wrong: %+v", res)
	}
}

func TestEmptyCandidates(t *testing.T) {
	if _, err := OptimalProcessors(cluster.Default(), nil, quickOpts()); err == nil {
		t.Error("empty processor candidates accepted")
	}
	if _, err := OptimalInterval(cluster.Default(), nil, quickOpts()); err == nil {
		t.Error("empty interval candidates accepted")
	}
	if _, err := OptimalTimeout(cluster.Default(), nil, quickOpts()); err == nil {
		t.Error("empty timeout candidates accepted")
	}
}

func TestInvalidCandidatePropagates(t *testing.T) {
	if _, err := OptimalProcessors(cluster.Default(), []int{-8}, quickOpts()); err == nil {
		t.Fatal("invalid candidate accepted")
	}
}

func TestFlatOptimumNotDistinct(t *testing.T) {
	// Two nearly identical candidates: the search must not claim a
	// statistically distinct winner.
	base := cluster.Default()
	res, err := OptimalProcessors(base, []int{65536, 65536 + 8}, // same size ±1 node
		runner.Options{Replications: 3, Warmup: 100, Measure: 600, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct {
		t.Fatalf("near-identical candidates claimed distinct: %+v vs %+v",
			res.Points[0].Total, res.Points[1].Total)
	}
}
