package san

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// buildCellArray makes n independent two-place token cycles in one model
// with fully declared read-sets and one rate reward per cell. The sparsity
// mirrors the paper's net: each firing touches two places out of 2n, so an
// incremental scheduler reconciles O(1) activities per event while the full
// scan pays O(n).
func buildCellArray(n int) (*Model, []*Place) {
	m := NewModel("cells")
	var firsts []*Place
	for i := 0; i < n; i++ {
		a := m.Place(fmt.Sprintf("a%d", i), 1)
		b := m.Place(fmt.Sprintf("b%d", i), 0)
		m.AddTimed(Activity{
			Name:  fmt.Sprintf("ab%d", i),
			Input: AllOf(a),
			Delay: func(mk *Marking, src rng.Source) float64 {
				return rng.Exponential{MeanValue: 1}.Sample(src)
			},
			Output: Out(func(mk *Marking) { mk.Move(a, b) }),
		})
		m.AddTimed(Activity{
			Name:  fmt.Sprintf("ba%d", i),
			Input: AllOf(b),
			Delay: func(mk *Marking, src rng.Source) float64 {
				return rng.Exponential{MeanValue: 2}.Sample(src)
			},
			Output: Out(func(mk *Marking) { mk.Move(b, a) }),
		})
		firsts = append(firsts, a)
	}
	return m, firsts
}

// BenchmarkSettle measures the per-event cost of the post-firing settle on
// a sparse 128-cell net, incremental vs full scan.
func BenchmarkSettle(b *testing.B) {
	const cells = 128
	for _, mode := range []struct {
		name     string
		fullScan bool
	}{{"incremental", false}, {"fullscan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m, firsts := buildCellArray(cells)
			sim, err := NewSimulator(m, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			for i, p := range firsts {
				p := p
				sim.AddRateReward(fmt.Sprintf("occ%d", i), func(mk *Marking) float64 {
					return float64(mk.Get(p))
				}, p)
			}
			sim.FullScan = mode.fullScan
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sim.Step() {
					b.Fatal("event queue drained")
				}
			}
		})
	}
}
