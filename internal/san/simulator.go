package san

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/rng"
)

// RateReward integrates a marking-dependent rate over simulated time, the
// SAN analogue of accumulated reward (the paper's useful-work measure is
// built from one rate reward plus impulse rewards).
type RateReward struct {
	Name string
	Rate func(m *Marking) float64

	integral float64
	lastRate float64
	lastTime float64
}

// Integral returns the accumulated ∫rate dt so far.
func (r *RateReward) Integral() float64 { return r.integral }

// ImpulseHook runs when a specific activity fires, after its Effect. The
// returned value is added to the hook's accumulator; hooks may also mutate
// external reward state (closures).
type ImpulseHook struct {
	Name     string
	Activity *Activity
	Impulse  func(m *Marking) float64

	total float64
	count uint64
}

// Total returns the accumulated impulse reward.
func (h *ImpulseHook) Total() float64 { return h.total }

// Count returns the number of times the hook fired.
func (h *ImpulseHook) Count() uint64 { return h.count }

// TraceFunc observes every firing: time, activity, marking after firing.
type TraceFunc func(t float64, a *Activity, m *Marking)

// Invariant is a marking predicate checked after every firing when
// invariant checking is enabled; returning an error panics with context,
// because a violated invariant means the net itself is broken and no
// result derived from the trajectory can be trusted.
type Invariant struct {
	Name  string
	Check func(m *Marking) error
}

// Simulator executes a Model as a discrete-event simulation. Create with
// NewSimulator; a Simulator is single-use for one trajectory (call Reset to
// reuse, which restores the initial marking and clears rewards).
type Simulator struct {
	model *Model
	src   rng.Source
	eng   *des.Engine

	marking   *Marking
	scheduled []*des.Event // per-activity pending event (nil when disabled)
	enabled   []bool

	rates      []*RateReward
	impulses   map[int][]*ImpulseHook
	trace      TraceFunc
	invariants []Invariant

	// MaxInstantChain guards against livelock among instantaneous
	// activities; exceeded chains panic. Default 10000.
	MaxInstantChain int
}

// NewSimulator validates the model and prepares an executor with the given
// random source.
func NewSimulator(model *Model, src rng.Source) (*Simulator, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("san: %w", err)
	}
	s := &Simulator{
		model:           model,
		src:             src,
		impulses:        make(map[int][]*ImpulseHook),
		MaxInstantChain: 10000,
	}
	s.Reset()
	return s, nil
}

// Reset restores the initial marking, clears the event queue and rewards,
// and rewinds the clock to zero. The random source is NOT reset, so
// consecutive trajectories are independent.
func (s *Simulator) Reset() {
	tokens := make([]int, len(s.model.places))
	for _, p := range s.model.places {
		tokens[p.index] = p.Initial
	}
	s.marking = &Marking{tokens: tokens, changed: make(map[int]bool), model: s.model}
	s.eng = des.New()
	s.scheduled = make([]*des.Event, len(s.model.activities))
	s.enabled = make([]bool, len(s.model.activities))
	for _, hooks := range s.impulses {
		for _, h := range hooks {
			h.total, h.count = 0, 0
		}
	}
	s.settle()
	for _, r := range s.rates {
		r.integral = 0
		r.lastRate = r.Rate(s.marking)
		r.lastTime = 0
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.eng.Now() }

// Fired returns the number of activity firings so far.
func (s *Simulator) Fired() uint64 { return s.eng.Fired() }

// Marking exposes the current marking (read it, don't mutate it outside
// activity effects).
func (s *Simulator) Marking() *Marking { return s.marking }

// SetTrace installs a firing observer (nil disables tracing).
func (s *Simulator) SetTrace(f TraceFunc) { s.trace = f }

// AddInvariant registers a marking predicate evaluated after every firing.
// A violation panics with the firing context — invariants exist to catch
// modeling bugs in tests, not to report runtime errors.
func (s *Simulator) AddInvariant(name string, check func(m *Marking) error) {
	s.invariants = append(s.invariants, Invariant{Name: name, Check: check})
}

// AddRateReward registers a rate reward evaluated over the marking process.
func (s *Simulator) AddRateReward(name string, rate func(m *Marking) float64) *RateReward {
	r := &RateReward{Name: name, Rate: rate}
	r.lastRate = rate(s.marking)
	r.lastTime = s.eng.Now()
	s.rates = append(s.rates, r)
	return r
}

// AddImpulse registers an impulse reward accrued each time act fires.
func (s *Simulator) AddImpulse(name string, act *Activity, impulse func(m *Marking) float64) *ImpulseHook {
	h := &ImpulseHook{Name: name, Activity: act, Impulse: impulse}
	s.impulses[act.index] = append(s.impulses[act.index], h)
	return h
}

// RunUntil advances the simulation to the given time horizon. Rate rewards
// are closed out exactly at the horizon.
func (s *Simulator) RunUntil(horizon float64) {
	s.eng.RunUntil(horizon)
	s.closeRates(horizon)
}

// Step fires the next scheduled activity (if any) and reports whether one
// fired.
func (s *Simulator) Step() bool { return s.eng.Step() }

// settle performs the post-firing fixed point: fire enabled instantaneous
// activities (highest priority first) until none are enabled, then
// reconcile timed activity schedules with the new marking.
func (s *Simulator) settle() {
	for chain := 0; ; chain++ {
		if chain > s.MaxInstantChain {
			panic(fmt.Sprintf("san: instantaneous livelock in model %s", s.model.Name))
		}
		a := s.nextInstant()
		if a == nil {
			break
		}
		s.fire(a)
	}
	s.reconcileTimed()
	for k := range s.marking.changed {
		delete(s.marking.changed, k)
	}
}

// nextInstant returns the highest-priority enabled instantaneous activity,
// or nil. Ties break by creation order for determinism.
func (s *Simulator) nextInstant() *Activity {
	var best *Activity
	for _, a := range s.model.activities {
		if a.Kind != Instantaneous || !a.Enabled(s.marking) {
			continue
		}
		if best == nil || a.Priority > best.Priority {
			best = a
		}
	}
	return best
}

// reconcileTimed cancels newly-disabled timed activities, schedules
// newly-enabled ones, and resamples activities whose reactivation places
// changed.
func (s *Simulator) reconcileTimed() {
	for _, a := range s.model.activities {
		if a.Kind != Timed {
			continue
		}
		on := a.Enabled(s.marking)
		was := s.enabled[a.index]
		switch {
		case on && !was:
			s.schedule(a)
		case !on && was:
			s.eng.Cancel(s.scheduled[a.index])
			s.scheduled[a.index] = nil
			s.enabled[a.index] = false
		case on && was && s.touched(a):
			s.eng.Cancel(s.scheduled[a.index])
			s.schedule(a)
		}
	}
}

// touched reports whether any of the activity's reactivation places changed
// during the last firing.
func (s *Simulator) touched(a *Activity) bool {
	if len(a.reactivate) == 0 {
		return false
	}
	for idx := range s.marking.changed {
		if a.reactivate[idx] {
			return true
		}
	}
	return false
}

// schedule samples a delay for a and enqueues its firing.
func (s *Simulator) schedule(a *Activity) {
	d := a.Delay(s.marking, s.src)
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("san: activity %q sampled invalid delay %v", a.Name, d))
	}
	s.enabled[a.index] = true
	s.scheduled[a.index] = s.eng.ScheduleAfter(d, a.Name, func(*des.Engine) {
		s.scheduled[a.index] = nil
		s.enabled[a.index] = false
		s.fire(a)
		s.settle()
	})
}

// fire applies a's effect, accrues rewards and notifies the trace.
func (s *Simulator) fire(a *Activity) {
	now := s.eng.Now()
	s.accrueRates(now)
	a.Fire(s.marking)
	for _, h := range s.impulses[a.index] {
		h.total += h.Impulse(s.marking)
		h.count++
	}
	s.refreshRates(now)
	for _, inv := range s.invariants {
		if err := inv.Check(s.marking); err != nil {
			panic(fmt.Sprintf("san: invariant %q violated after %s at t=%v: %v (marking: %s)",
				inv.Name, a.Name, now, err, s.DescribeMarking()))
		}
	}
	if s.trace != nil {
		s.trace(now, a, s.marking)
	}
}

// accrueRates integrates each rate reward up to time t with the
// pre-firing rate.
func (s *Simulator) accrueRates(t float64) {
	for _, r := range s.rates {
		r.integral += r.lastRate * (t - r.lastTime)
		r.lastTime = t
	}
}

// refreshRates re-evaluates rates against the post-firing marking.
func (s *Simulator) refreshRates(t float64) {
	for _, r := range s.rates {
		r.lastRate = r.Rate(s.marking)
		r.lastTime = t
	}
}

// closeRates integrates rates up to the horizon.
func (s *Simulator) closeRates(t float64) {
	for _, r := range s.rates {
		if t > r.lastTime {
			r.integral += r.lastRate * (t - r.lastTime)
			r.lastTime = t
		}
	}
}

// Snapshot returns a copy of the token counts keyed by place name, for
// tests and debugging.
func (s *Simulator) Snapshot() map[string]int {
	out := make(map[string]int, len(s.model.places))
	for _, p := range s.model.places {
		out[p.Name] = s.marking.Get(p)
	}
	return out
}

// DescribeMarking renders the non-empty places sorted by name — handy in
// panic messages and traces.
func (s *Simulator) DescribeMarking() string {
	type pv struct {
		name string
		n    int
	}
	var list []pv
	for _, p := range s.model.places {
		if n := s.marking.Get(p); n > 0 {
			list = append(list, pv{p.Name, n})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	out := ""
	for i, e := range list {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", e.name, e.n)
	}
	return out
}
