package san

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Marking is the read/write view of the net's state passed to predicates
// and effects. Besides the token counts it keeps two change records that
// drive the incremental scheduler:
//
//   - log: every value change since the last settle, in change order and
//     without dedup — consumed per-firing (instantaneous enabling, rate
//     reward refresh);
//   - dirty + stamp/gen: the deduped set of places changed since the last
//     settle — consumed once per settle (timed reconciliation,
//     reactivation). A generation counter replaces the old per-firing
//     map[int]bool, so clearing is O(1) with no map churn.
type Marking struct {
	tokens []int
	stamp  []uint64 // generation when the place last changed
	gen    uint64   // current generation; stamp[i] == gen ⇔ i is dirty
	dirty  []int32  // places changed this generation, deduped
	log    []int32  // every change this generation, in order, with repeats
	model  *Model
}

// Get returns the number of tokens in p.
func (m *Marking) Get(p *Place) int { return m.tokens[p.index] }

// Has reports whether p holds at least one token.
func (m *Marking) Has(p *Place) bool { return m.tokens[p.index] > 0 }

// Set assigns the token count of p. Negative counts panic: they always
// indicate a broken gate function.
func (m *Marking) Set(p *Place, n int) {
	if n < 0 {
		panic(fmt.Sprintf("san: place %q set to negative count %d", p.Name, n))
	}
	if m.tokens[p.index] == n {
		return
	}
	m.tokens[p.index] = n
	idx := int32(p.index)
	if m.stamp[p.index] != m.gen {
		m.stamp[p.index] = m.gen
		m.dirty = append(m.dirty, idx)
	}
	m.log = append(m.log, idx)
}

// Add adds delta tokens to p (delta may be negative).
func (m *Marking) Add(p *Place, delta int) { m.Set(p, m.Get(p)+delta) }

// Move transfers one token from src to dst; it panics when src is empty,
// because moving a non-existent token is a structural modeling error.
func (m *Marking) Move(src, dst *Place) {
	if m.Get(src) < 1 {
		panic(fmt.Sprintf("san: move from empty place %q", src.Name))
	}
	m.Add(src, -1)
	m.Add(dst, 1)
}

// Clear removes all tokens from p.
func (m *Marking) Clear(p *Place) { m.Set(p, 0) }

// clearDirty closes the current change generation: O(1), no allocation.
func (m *Marking) clearDirty() {
	m.gen++
	m.dirty = m.dirty[:0]
	m.log = m.log[:0]
}

// dirtyNow reports whether place index pi changed in the open generation.
func (m *Marking) dirtyNow(pi int32) bool { return m.stamp[pi] == m.gen }

// RateReward integrates a marking-dependent rate over simulated time, the
// SAN analogue of accumulated reward (the paper's useful-work measure is
// built from one rate reward plus impulse rewards).
type RateReward struct {
	Name string
	Rate func(m *Marking) float64

	integral float64
	lastRate float64
	lastTime float64
}

// Integral returns the accumulated ∫rate dt so far.
func (r *RateReward) Integral() float64 { return r.integral }

// ImpulseHook runs when a specific activity fires, after its Effect. The
// returned value is added to the hook's accumulator; hooks may also mutate
// external reward state (closures).
type ImpulseHook struct {
	Name     string
	Activity *Activity
	Impulse  func(m *Marking) float64

	total float64
	count uint64
}

// Total returns the accumulated impulse reward.
func (h *ImpulseHook) Total() float64 { return h.total }

// Count returns the number of times the hook fired.
func (h *ImpulseHook) Count() uint64 { return h.count }

// TraceFunc observes every firing: time, activity, marking after firing.
type TraceFunc func(t float64, a *Activity, m *Marking)

// Invariant is a marking predicate checked after every firing when
// invariant checking is enabled; returning an error panics with context,
// because a violated invariant means the net itself is broken and no
// result derived from the trajectory can be trusted.
type Invariant struct {
	Name  string
	Check func(m *Marking) error
}

// Simulator executes a Model as a discrete-event simulation. Create with
// NewSimulator; a Simulator is single-use for one trajectory (call Reset to
// reuse, which restores the initial marking and clears rewards).
//
// By default the simulator schedules incrementally: after each firing only
// the activities and rate rewards whose declared read places changed are
// reconciled, found through the model's dependency index. The FullScan
// option restores the historic O(places + activities) rescan of the whole
// net after every firing; both schedulers produce bit-identical
// trajectories when all read-sets are declared correctly, which the
// differential tests assert.
type Simulator struct {
	model *Model
	src   rng.Source
	eng   *des.Engine

	marking   *Marking
	scheduled []des.Handle        // per-activity pending event (zero when disabled)
	enabled   []bool              // timed activities: scheduled at last reconcile
	instOn    []bool              // instantaneous activities: cached input-gate truth
	handlers  []func(*des.Engine) // per-activity firing handlers, built once

	rates     []*RateReward
	rateWatch [][]int32 // place index → rate rewards whose declared reads include it
	rateScan  []int32   // rate rewards with undeclared read-sets
	rateMark  []uint64  // per-reward dedup stamps for one refresh pass
	rateGen   uint64

	impulses [][]*ImpulseHook // per-activity impulse hooks

	// Scratch state for the affected-activity closure of one settle.
	actMark  []uint64 // per-activity dedup stamps
	actGen   uint64
	affected []int32

	instCursor int // prefix of marking.log already absorbed into instOn
	firedAct   int // timed activity whose event fired this settle (-1: none)

	trace      TraceFunc
	hooks      []TraceFunc
	invariants []Invariant
	stats      *simStats // nil when uninstrumented (the default)

	// FullScan disables incremental reconciliation: every settle rescans
	// all activities and every firing re-evaluates all rate rewards, as
	// the pre-index executor did. Kept for differential testing and as a
	// debugging aid when a gate's declared read-set is suspect. The flag
	// may be toggled between runs of the same simulator; both modes keep
	// the incremental caches coherent.
	FullScan bool

	// MaxInstantChain guards against livelock among instantaneous
	// activities; exceeded chains panic. Default 10000.
	MaxInstantChain int
}

// simStats holds the simulator's shard-local observability handles. The
// hot loop pays one nil check per instrumented site when detached and a
// plain integer increment when attached; every handle lives on an
// obs.Shard, so parallel replications never share a cache line.
type simStats struct {
	settles       *obs.LocalCounter   // settle passes (one per firing chain)
	timedFirings  *obs.LocalCounter   // timed activity firings
	instFirings   *obs.LocalCounter   // instantaneous activity firings
	reactivations *obs.LocalCounter   // in-place delay resamples (ReactivateOn)
	closureInc    *obs.LocalHistogram // dirty-closure sizes (incremental mode)
	closureFull   *obs.LocalHistogram // reconcile set sizes (full-scan mode)
	queueDepth    *obs.LocalHistogram // pending events, sampled per settle
	engFired      *obs.LocalCounter   // filled from the engine by FlushEngineStats
	engScheduled  *obs.LocalCounter
	engCancelled  *obs.LocalCounter
	sampleTick    uint64 // settles seen; drives the histogram sampling below
}

// statsSampleMask thins the per-settle histogram observations (queue depth,
// closure sizes) to 1 in 16: histogram updates cost several times a plain
// counter increment, and the sampled distribution is statistically
// indistinguishable over the millions of settles of a real trajectory.
// Counters are never sampled. The tick is derived from the settle count, a
// pure function of the trajectory, so sampled telemetry — and the run
// journal built from it — stays deterministic.
const statsSampleMask = 15

// closureBuckets covers reconcile-set sizes from single-activity settles
// up to nets far larger than the paper model's 23 activities.
var closureBuckets = obs.ExpBuckets(1, 2, 9) // 1..256

// Instrument attaches the simulator's telemetry to sh (nil detaches):
// firing/settle/reactivation counters, dirty-closure and queue-depth
// histograms, and — via FlushEngineStats — the event engine's counters.
// Call after NewSimulator (or Reset) and FlushEngineStats once when the
// trajectory ends; then merge the shard into its registry.
func (s *Simulator) Instrument(sh *obs.Shard) {
	if sh == nil {
		s.stats = nil
		return
	}
	s.stats = &simStats{
		settles:       sh.Counter("san.settles"),
		timedFirings:  sh.Counter("san.timed_firings"),
		instFirings:   sh.Counter("san.instant_firings"),
		reactivations: sh.Counter("san.reactivations"),
		closureInc:    sh.Histogram("san.dirty_closure", closureBuckets),
		closureFull:   sh.Histogram("san.fullscan_closure", closureBuckets),
		queueDepth:    sh.Histogram("des.queue_depth", closureBuckets),
		engFired:      sh.Counter("des.events_fired"),
		engScheduled:  sh.Counter("des.events_scheduled"),
		engCancelled:  sh.Counter("des.events_cancelled"),
	}
}

// FlushEngineStats folds the event engine's counters into the attached
// shard. Call exactly once, after the trajectory's last RunUntil — the
// engine counts are cumulative, so flushing twice without a Reset in
// between would double-count.
func (s *Simulator) FlushEngineStats() {
	st := s.stats
	if st == nil {
		return
	}
	st.engFired.Add(s.eng.Fired())
	st.engScheduled.Add(s.eng.Scheduled())
	st.engCancelled.Add(s.eng.Cancelled())
}

// PoolStats exposes the engine's event-pool telemetry: Schedule calls
// served from the free list, Schedule calls that allocated a fresh event,
// and the number of events currently pooled. Hits and misses rewind on
// Reset, so after a reset they describe the current trajectory only.
func (s *Simulator) PoolStats() (hits, misses uint64, size int) {
	return s.eng.PoolHits(), s.eng.PoolMisses(), s.eng.PoolSize()
}

// NewSimulator validates the model (building its dependency index) and
// prepares an executor with the given random source.
func NewSimulator(model *Model, src rng.Source) (*Simulator, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("san: %w", err)
	}
	s := &Simulator{
		model:           model,
		src:             src,
		rateWatch:       make([][]int32, len(model.places)),
		impulses:        make([][]*ImpulseHook, len(model.activities)),
		actMark:         make([]uint64, len(model.activities)),
		firedAct:        -1,
		MaxInstantChain: 10000,
	}
	s.handlers = make([]func(*des.Engine), len(model.activities))
	for _, a := range model.activities {
		if a.Kind != Timed {
			continue
		}
		a := a
		s.handlers[a.index] = func(*des.Engine) {
			s.scheduled[a.index] = des.Handle{}
			s.enabled[a.index] = false
			s.firedAct = a.index
			s.fire(a)
			s.settle()
		}
	}
	s.Reset()
	return s, nil
}

// Reset restores the initial marking, clears the event queue and rewards,
// and rewinds the clock to zero. The random source is NOT reset, so
// consecutive trajectories are independent. The model's dependency index
// and the rewards' declared read-sets are retained — only trajectory state
// is rewound, in place: the marking, the engine (whose event pool and queue
// storage survive via des.Engine.Reset), and the per-activity caches are
// reused, so a reset trajectory reaches steady state without allocating.
// Trajectories on a reset simulator are bit-identical to ones on a freshly
// built simulator fed the same random stream: the engine restarts its FIFO
// sequence numbers, every place starts dirty so the initial settle
// reconciles in creation order, and the dedup generations (marking.gen,
// actGen, rateGen) only ever need to be distinct, not equal.
func (s *Simulator) Reset() {
	n := len(s.model.places)
	nActs := len(s.model.activities)
	if s.marking == nil { // first construction
		s.marking = &Marking{tokens: make([]int, n), stamp: make([]uint64, n), model: s.model}
		s.eng = des.New()
		s.scheduled = make([]des.Handle, nActs)
		s.enabled = make([]bool, nActs)
		s.instOn = make([]bool, nActs)
	} else {
		s.eng.Reset()
		for i := range s.scheduled {
			s.scheduled[i] = des.Handle{}
		}
		for i := range s.enabled {
			s.enabled[i] = false
		}
		for i := range s.instOn {
			s.instOn[i] = false
		}
	}
	m := s.marking
	m.gen++
	m.dirty = m.dirty[:0]
	m.log = m.log[:0]
	// Every place starts dirty so the first settle performs the initial
	// reconciliation through the same incremental path as any other.
	for _, p := range s.model.places {
		m.tokens[p.index] = p.Initial
		m.stamp[p.index] = m.gen
		m.dirty = append(m.dirty, int32(p.index))
		m.log = append(m.log, int32(p.index))
	}
	s.instCursor = 0
	s.firedAct = -1
	for _, hooks := range s.impulses {
		for _, h := range hooks {
			h.total, h.count = 0, 0
		}
	}
	s.settle()
	for _, r := range s.rates {
		r.integral = 0
		r.lastRate = r.Rate(s.marking)
		r.lastTime = 0
	}
}

// SetSource swaps the random source future delay samples are drawn from.
// Pending events keep the delays they were scheduled with — only draws made
// after the call see the new source. The variance-reduction layer uses this
// to run a reflected (antithetic) trajectory on a recycled simulator by
// wrapping the original stream, and the importance-splitting driver uses it
// to branch a trajectory's future randomness mid-run; call it before Reset
// when the whole trajectory must use the new source (Reset's initial settle
// already samples delays).
func (s *Simulator) SetSource(src rng.Source) { s.src = src }

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.eng.Now() }

// Fired returns the number of activity firings so far.
func (s *Simulator) Fired() uint64 { return s.eng.Fired() }

// Marking exposes the current marking (read it, don't mutate it outside
// activity effects).
func (s *Simulator) Marking() *Marking { return s.marking }

// SetTrace installs a firing observer (nil disables tracing).
func (s *Simulator) SetTrace(f TraceFunc) { s.trace = f }

// AddFiringHook registers an additional firing observer, called after the
// SetTrace observer with the same (time, activity, post-firing marking)
// arguments. Hooks are independent of SetTrace so a tool can stream raw
// events while a phase-span recorder watches the same trajectory; they are
// strictly observational — a hook must not mutate the marking or draw from
// the random source, which is what keeps traced and untraced trajectories
// bit-identical. Hooks survive Reset and cannot be removed; a Simulator
// that needs different observers is rebuilt.
func (s *Simulator) AddFiringHook(f TraceFunc) {
	if f == nil {
		panic("san: nil firing hook")
	}
	s.hooks = append(s.hooks, f)
}

// AddInvariant registers a marking predicate evaluated after every firing.
// A violation panics with the firing context — invariants exist to catch
// modeling bugs in tests, not to report runtime errors.
func (s *Simulator) AddInvariant(name string, check func(m *Marking) error) {
	s.invariants = append(s.invariants, Invariant{Name: name, Check: check})
}

// AddRateReward registers a rate reward evaluated over the marking process.
// The variadic reads declare the places the rate function depends on; with
// them the incremental scheduler re-evaluates the rate only when one of
// those places changes. Omitting reads is always correct but re-evaluates
// the rate after every firing.
func (s *Simulator) AddRateReward(name string, rate func(m *Marking) float64, reads ...*Place) *RateReward {
	r := &RateReward{Name: name, Rate: rate}
	r.lastRate = rate(s.marking)
	r.lastTime = s.eng.Now()
	ri := int32(len(s.rates))
	s.rates = append(s.rates, r)
	s.rateMark = append(s.rateMark, 0)
	if len(reads) == 0 {
		s.rateScan = append(s.rateScan, ri)
		return r
	}
	for _, p := range reads {
		if !s.model.owns(p) {
			panic(fmt.Sprintf("san: rate reward %q reads foreign place %q", name, p.Name))
		}
		s.rateWatch[p.index] = append(s.rateWatch[p.index], ri)
	}
	return r
}

// AddImpulse registers an impulse reward accrued each time act fires.
func (s *Simulator) AddImpulse(name string, act *Activity, impulse func(m *Marking) float64) *ImpulseHook {
	h := &ImpulseHook{Name: name, Activity: act, Impulse: impulse}
	s.impulses[act.index] = append(s.impulses[act.index], h)
	return h
}

// RunUntil advances the simulation to the given time horizon. Rate rewards
// are closed out exactly at the horizon.
func (s *Simulator) RunUntil(horizon float64) {
	s.eng.RunUntil(horizon)
	s.closeRates(horizon)
}

// Step fires the next scheduled activity (if any) and reports whether one
// fired.
func (s *Simulator) Step() bool { return s.eng.Step() }

// settle performs the post-firing fixed point: fire enabled instantaneous
// activities (highest priority first) until none are enabled, then
// reconcile timed activity schedules with the new marking. Incremental
// mode touches only the activities in the dirty closure — the set reached
// from the changed places through the dependency index, plus the activity
// that just fired (whose schedule changed without any place needing to).
func (s *Simulator) settle() {
	for chain := 0; ; chain++ {
		if chain > s.MaxInstantChain {
			panic(fmt.Sprintf("san: instantaneous livelock in model %s", s.model.Name))
		}
		var a *Activity
		if s.FullScan {
			a = s.nextInstantFull()
		} else {
			s.absorbInstantDirt()
			a = s.nextInstantCached()
		}
		if a == nil {
			break
		}
		s.fire(a)
	}
	if s.FullScan {
		s.reconcileTimedFull()
	} else {
		s.reconcileTimedDirty()
	}
	s.firedAct = -1
	s.instCursor = 0
	s.marking.clearDirty()
	if st := s.stats; st != nil {
		st.settles.Inc()
		if st.sampleTick&statsSampleMask == 0 {
			st.queueDepth.Observe(float64(s.eng.Pending()))
		}
		st.sampleTick++
	}
}

// nextInstantFull scans every instantaneous activity, refreshing the
// enabling cache as it goes, and returns the highest-priority enabled one
// (ties break by creation order for determinism), or nil.
func (s *Simulator) nextInstantFull() *Activity {
	var best *Activity
	for _, ai := range s.model.deps.instants {
		a := s.model.activities[ai]
		on := a.Input.Cond(s.marking)
		s.instOn[ai] = on
		if !on {
			continue
		}
		if best == nil || a.Priority > best.Priority {
			best = a
		}
	}
	return best
}

// absorbInstantDirt re-evaluates the instantaneous activities whose
// declared reads include a place changed since the last absorption, plus
// the undeclared ones, updating the enabling cache.
func (s *Simulator) absorbInstantDirt() {
	m := s.marking
	if s.instCursor == len(m.log) {
		return
	}
	deps := s.model.deps
	s.actGen++
	for _, pi := range m.log[s.instCursor:] {
		for _, ai := range deps.enableInst[pi] {
			if s.actMark[ai] == s.actGen {
				continue
			}
			s.actMark[ai] = s.actGen
			s.instOn[ai] = s.model.activities[ai].Input.Cond(m)
		}
	}
	for _, ai := range deps.scanInst {
		s.instOn[ai] = s.model.activities[ai].Input.Cond(m)
	}
	s.instCursor = len(m.log)
}

// nextInstantCached picks the highest-priority enabled instantaneous
// activity from the cache maintained by absorbInstantDirt. Creation-order
// iteration preserves the full scan's tie-breaking exactly.
func (s *Simulator) nextInstantCached() *Activity {
	var best *Activity
	for _, ai := range s.model.deps.instants {
		if !s.instOn[ai] {
			continue
		}
		a := s.model.activities[ai]
		if best == nil || a.Priority > best.Priority {
			best = a
		}
	}
	return best
}

// reconcileTimedFull cancels newly-disabled timed activities, schedules
// newly-enabled ones, and resamples activities whose reactivation places
// changed — scanning every timed activity (the historic scheduler).
func (s *Simulator) reconcileTimedFull() {
	if st := s.stats; st != nil && st.sampleTick&statsSampleMask == 0 {
		st.closureFull.Observe(float64(len(s.model.deps.timed)))
	}
	for _, ai := range s.model.deps.timed {
		s.reconcileOne(s.model.activities[ai])
	}
}

// reconcileTimedDirty reconciles only the timed activities in the dirty
// closure: watchers of changed places (enabling or reactivation),
// undeclared activities, and the activity that fired. Processing in
// creation order keeps delay-sampling order — and therefore the random
// stream — identical to the full scan.
func (s *Simulator) reconcileTimedDirty() {
	m := s.marking
	deps := s.model.deps
	s.actGen++
	s.affected = s.affected[:0]
	if fa := s.firedAct; fa >= 0 {
		s.actMark[fa] = s.actGen
		s.affected = append(s.affected, int32(fa))
	}
	for _, pi := range m.dirty {
		for _, ai := range deps.enableTimed[pi] {
			if s.actMark[ai] != s.actGen {
				s.actMark[ai] = s.actGen
				s.affected = append(s.affected, ai)
			}
		}
		for _, ai := range deps.react[pi] {
			if s.actMark[ai] != s.actGen {
				s.actMark[ai] = s.actGen
				s.affected = append(s.affected, ai)
			}
		}
	}
	if len(m.dirty) > 0 {
		for _, ai := range deps.scanTimed {
			if s.actMark[ai] != s.actGen {
				s.actMark[ai] = s.actGen
				s.affected = append(s.affected, ai)
			}
		}
	}
	slices.Sort(s.affected)
	if st := s.stats; st != nil && st.sampleTick&statsSampleMask == 0 {
		st.closureInc.Observe(float64(len(s.affected)))
	}
	for _, ai := range s.affected {
		s.reconcileOne(s.model.activities[ai])
	}
}

// reconcileOne applies the schedule/cancel/resample decision for one timed
// activity against the current marking.
func (s *Simulator) reconcileOne(a *Activity) {
	on := a.Input.Cond(s.marking)
	was := s.enabled[a.index]
	switch {
	case on && !was:
		s.schedule(a)
	case !on && was:
		s.eng.Cancel(s.scheduled[a.index])
		s.scheduled[a.index] = des.Handle{}
		s.enabled[a.index] = false
	case on && was && s.touched(a):
		s.eng.Cancel(s.scheduled[a.index])
		s.schedule(a)
		if st := s.stats; st != nil {
			st.reactivations.Inc()
		}
	}
}

// touched reports whether any of the activity's reactivation places changed
// during the current settle.
func (s *Simulator) touched(a *Activity) bool {
	for _, pi := range a.reactivate {
		if s.marking.dirtyNow(pi) {
			return true
		}
	}
	return false
}

// schedule samples a delay for a and enqueues its firing.
func (s *Simulator) schedule(a *Activity) {
	d := a.Delay(s.marking, s.src)
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("san: activity %q sampled invalid delay %v", a.Name, d))
	}
	s.enabled[a.index] = true
	s.scheduled[a.index] = s.eng.ScheduleAfter(d, a.Name, s.handlers[a.index])
}

// fire applies a's effect, accrues rewards and notifies the trace.
func (s *Simulator) fire(a *Activity) {
	now := s.eng.Now()
	if st := s.stats; st != nil {
		if a.Kind == Timed {
			st.timedFirings.Inc()
		} else {
			st.instFirings.Inc()
		}
	}
	s.accrueRates(now)
	preLog := len(s.marking.log)
	a.Output.Apply(s.marking)
	for _, h := range s.impulses[a.index] {
		h.total += h.Impulse(s.marking)
		h.count++
	}
	if s.FullScan {
		s.refreshRatesFull(now)
	} else {
		s.refreshRatesDirty(now, preLog)
	}
	for _, inv := range s.invariants {
		if err := inv.Check(s.marking); err != nil {
			panic(fmt.Sprintf("san: invariant %q violated after %s at t=%v: %v (marking: %s)",
				inv.Name, a.Name, now, err, s.DescribeMarking()))
		}
	}
	if s.trace != nil {
		s.trace(now, a, s.marking)
	}
	for _, h := range s.hooks {
		h(now, a, s.marking)
	}
}

// accrueRates integrates each rate reward up to time t with the
// pre-firing rate. This stays a full pass in both modes — two float
// operations per reward, and skipping some would change the order of
// floating-point accumulation and break bit-identity with the full scan.
func (s *Simulator) accrueRates(t float64) {
	for _, r := range s.rates {
		r.integral += r.lastRate * (t - r.lastTime)
		r.lastTime = t
	}
}

// refreshRatesFull re-evaluates every rate against the post-firing marking.
func (s *Simulator) refreshRatesFull(t float64) {
	for _, r := range s.rates {
		r.lastRate = r.Rate(s.marking)
		r.lastTime = t
	}
}

// refreshRatesDirty re-evaluates only the rates whose declared reads
// include a place changed by this firing (the marking log past from), plus
// the undeclared ones. A skipped rate would have re-evaluated to the same
// value, so the accrued integrals stay bit-identical to the full scan.
func (s *Simulator) refreshRatesDirty(t float64, from int) {
	m := s.marking
	if len(m.log) == from {
		return
	}
	s.rateGen++
	for _, pi := range m.log[from:] {
		for _, ri := range s.rateWatch[pi] {
			if s.rateMark[ri] == s.rateGen {
				continue
			}
			s.rateMark[ri] = s.rateGen
			r := s.rates[ri]
			r.lastRate = r.Rate(m)
			r.lastTime = t
		}
	}
	for _, ri := range s.rateScan {
		r := s.rates[ri]
		r.lastRate = r.Rate(m)
		r.lastTime = t
	}
}

// closeRates integrates rates up to the horizon.
func (s *Simulator) closeRates(t float64) {
	for _, r := range s.rates {
		if t > r.lastTime {
			r.integral += r.lastRate * (t - r.lastTime)
			r.lastTime = t
		}
	}
}

// CurrentMarking exposes the live marking for read-only observation —
// firing hooks and phase extractors read individual places from it without
// paying for a map snapshot. Mutating it corrupts the simulation.
func (s *Simulator) CurrentMarking() *Marking { return s.marking }

// Snapshot returns a copy of the token counts keyed by place name, for
// tests and debugging.
func (s *Simulator) Snapshot() map[string]int {
	out := make(map[string]int, len(s.model.places))
	for _, p := range s.model.places {
		out[p.Name] = s.marking.Get(p)
	}
	return out
}

// DescribeMarking renders the non-empty places sorted by name — handy in
// panic messages and traces.
func (s *Simulator) DescribeMarking() string {
	type pv struct {
		name string
		n    int
	}
	var list []pv
	for _, p := range s.model.places {
		if n := s.marking.Get(p); n > 0 {
			list = append(list, pv{p.Name, n})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	out := ""
	for i, e := range list {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", e.name, e.n)
	}
	return out
}
