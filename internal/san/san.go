// Package san implements Stochastic Activity Networks (SANs), the modeling
// formalism the paper uses (via the Möbius tool, reimplemented here from
// scratch): places holding tokens, timed and instantaneous activities with
// marking-dependent enabling predicates (input gates), firing effects
// (output gates), marking-dependent delay distributions with reactivation,
// and rate/impulse reward variables evaluated over the marking process.
//
// Gates are declarative: an input or output gate names the places its
// closure reads. Validate uses the declarations to build a place→activity
// dependency index, which lets the executor in simulator.go reconcile
// enabling incrementally — after a firing only the activities (and rate
// rewards) whose declared read places actually changed are re-evaluated,
// instead of rescanning the whole net. Gates with an empty read-set are
// treated conservatively as "reads everything" and rescanned after every
// firing, so undeclared nets remain correct, just slower.
//
// The executor in simulator.go turns a Model into a discrete-event
// simulation on top of internal/des.
package san

import (
	"fmt"

	"repro/internal/rng"
)

// Place is a token holder. Tokens are non-negative integers; most places in
// the paper's model hold zero or one token and act as state flags, matching
// the "all compute nodes modeled as a single unit" abstraction of Section 4.
type Place struct {
	Name    string
	Initial int
	index   int
}

// Kind distinguishes timed activities (fire after a sampled delay) from
// instantaneous ones (fire immediately when enabled).
type Kind int

const (
	// Timed activities fire after a delay drawn from Delay.
	Timed Kind = iota + 1
	// Instantaneous activities fire as soon as they are enabled, before
	// any timed activity and before simulated time advances.
	Instantaneous
)

// Predicate is an input-gate enabling condition over the marking.
type Predicate func(m *Marking) bool

// Effect is an output-gate firing function: it moves tokens.
type Effect func(m *Marking)

// DelayFunc samples a firing delay for a timed activity in the current
// marking. It is invoked when the activity becomes enabled and again on
// reactivation.
type DelayFunc func(m *Marking, src rng.Source) float64

// InputGate is a declarative enabling condition: the predicate plus the
// places it reads. The read-set must cover every place whose token count
// can change the predicate's value; the simulator relies on it to decide
// which activities need re-evaluation after a firing. A nil/empty Reads
// means "undeclared": the activity is conservatively re-evaluated after
// every firing that changed any place.
type InputGate struct {
	Reads []*Place
	Cond  Predicate
}

// OutputGate is a declarative firing function: the effect plus the places
// it reads to decide what to write (e.g. a branch on a counter place).
// Writes need no declaration — the marking records them dynamically. The
// read-set is validated for membership and exposed for introspection and
// tooling; it does not influence scheduling, because effects always run
// against the current marking.
type OutputGate struct {
	Reads []*Place
	Apply Effect
}

// When builds an input gate from a predicate and the places it reads.
func When(cond Predicate, reads ...*Place) InputGate {
	return InputGate{Reads: reads, Cond: cond}
}

// AllOf builds the most common input gate declaratively: enabled exactly
// when every listed place holds at least one token. The read-set is the
// listed places themselves.
func AllOf(places ...*Place) InputGate {
	ps := append([]*Place(nil), places...)
	return InputGate{Reads: ps, Cond: func(m *Marking) bool {
		for _, p := range ps {
			if !m.Has(p) {
				return false
			}
		}
		return true
	}}
}

// Out builds an output gate from an effect and the places it reads.
func Out(apply Effect, reads ...*Place) OutputGate {
	return OutputGate{Reads: reads, Apply: apply}
}

// Activity is a SAN activity. Use Model.AddTimed / Model.AddInstant to
// create activities; the zero value is not valid.
type Activity struct {
	Name   string
	Kind   Kind
	Input  InputGate
	Delay  DelayFunc // nil for instantaneous activities
	Output OutputGate
	// ReactivateOn lists places whose token-count changes force the
	// activity to resample its delay while it remains enabled. This is
	// how marking-dependent failure rates (correlated-failure windows)
	// are modeled; resampling an exponential is statistically sound by
	// memorylessness. Only timed activities may reactivate — an
	// instantaneous activity never holds a sampled delay to resample.
	ReactivateOn []*Place
	// Priority orders simultaneous instantaneous firings (higher first).
	Priority int

	index      int
	reactivate []int32 // deduped ReactivateOn place indices, built by Validate
}

// Enabled evaluates the input gate's condition.
func (a *Activity) Enabled(m *Marking) bool { return a.Input.Cond(m) }

// Fire applies the output gate's effect.
func (a *Activity) Fire(m *Marking) { a.Output.Apply(m) }

// Model is an immutable (after Validate) SAN structure: places plus
// activities. Build one with NewModel, then hand it to NewSimulator.
type Model struct {
	Name       string
	places     []*Place
	activities []*Activity
	byName     map[string]*Place
	deps       *depIndex // place→activity dependency index, built by Validate
}

// depIndex is the place→activity dependency index: for every place, which
// activities' enabling (and which rewards' rates, tracked separately by the
// simulator) can change when its token count changes. Built by Validate
// from the declared gate read-sets.
type depIndex struct {
	enableTimed [][]int32 // place index → timed activities whose input gate reads it
	enableInst  [][]int32 // place index → instantaneous activities whose input gate reads it
	react       [][]int32 // place index → activities that reactivate on it
	scanTimed   []int32   // timed activities with undeclared input read-sets
	scanInst    []int32   // instantaneous activities with undeclared input read-sets
	timed       []int32   // all timed activities, creation order
	instants    []int32   // all instantaneous activities, creation order
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name, byName: make(map[string]*Place)}
}

// Place adds a place with the given name and initial token count. Duplicate
// names panic: the paper's submodels share state by *name identity*, so a
// silent duplicate would split a shared place in two.
func (mod *Model) Place(name string, initial int) *Place {
	if _, dup := mod.byName[name]; dup {
		panic(fmt.Sprintf("san: duplicate place %q", name))
	}
	if initial < 0 {
		panic(fmt.Sprintf("san: place %q has negative initial marking", name))
	}
	p := &Place{Name: name, Initial: initial, index: len(mod.places)}
	mod.places = append(mod.places, p)
	mod.byName[name] = p
	return p
}

// LookupPlace returns the place with the given name, or nil.
func (mod *Model) LookupPlace(name string) *Place { return mod.byName[name] }

// Places returns the model's places in creation order.
func (mod *Model) Places() []*Place {
	out := make([]*Place, len(mod.places))
	copy(out, mod.places)
	return out
}

// Activities returns the model's activities in creation order.
func (mod *Model) Activities() []*Activity {
	out := make([]*Activity, len(mod.activities))
	copy(out, mod.activities)
	return out
}

// DependentsOf returns the activities whose declared input read-sets
// include p, in creation order — the activities whose enabling can change
// when p's token count does (undeclared activities excluded; see
// UndeclaredInputs). For structural tests and tooling.
func (mod *Model) DependentsOf(p *Place) []*Activity {
	var out []*Activity
	for _, a := range mod.activities {
		for _, r := range a.Input.Reads {
			if r == p {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// UndeclaredInputs returns the activities with no declared input read-set,
// which the simulator conservatively re-evaluates after every firing.
func (mod *Model) UndeclaredInputs() []*Activity {
	var out []*Activity
	for _, a := range mod.activities {
		if len(a.Input.Reads) == 0 {
			out = append(out, a)
		}
	}
	return out
}

// AddTimed registers a timed activity.
func (mod *Model) AddTimed(a Activity) *Activity {
	a.Kind = Timed
	return mod.add(a)
}

// AddInstant registers an instantaneous activity.
func (mod *Model) AddInstant(a Activity) *Activity {
	a.Kind = Instantaneous
	a.Delay = nil
	return mod.add(a)
}

func (mod *Model) add(a Activity) *Activity {
	act := a
	act.index = len(mod.activities)
	mod.activities = append(mod.activities, &act)
	mod.deps = nil // structure changed; Validate must rebuild the index
	return &act
}

// owns reports whether p belongs to this model.
func (mod *Model) owns(p *Place) bool {
	return p != nil && p.index < len(mod.places) && mod.places[p.index] == p
}

// Validate checks structural well-formedness — every activity has a name,
// an enabling predicate, a firing effect, and (if timed) a delay function;
// gate read-sets and reactivation places belong to this model; only timed
// activities reactivate — and builds the place→activity dependency index
// used by the incremental scheduler. Duplicate ReactivateOn entries are
// deduped. Validate is idempotent; NewSimulator calls it.
func (mod *Model) Validate() error {
	seen := make(map[string]bool, len(mod.activities))
	deps := &depIndex{
		enableTimed: make([][]int32, len(mod.places)),
		enableInst:  make([][]int32, len(mod.places)),
		react:       make([][]int32, len(mod.places)),
	}
	for _, a := range mod.activities {
		switch {
		case a.Name == "":
			return fmt.Errorf("model %s: unnamed activity", mod.Name)
		case seen[a.Name]:
			return fmt.Errorf("model %s: duplicate activity %q", mod.Name, a.Name)
		case a.Input.Cond == nil:
			return fmt.Errorf("model %s: activity %q has no enabling predicate", mod.Name, a.Name)
		case a.Output.Apply == nil:
			return fmt.Errorf("model %s: activity %q has no firing effect", mod.Name, a.Name)
		case a.Kind == Timed && a.Delay == nil:
			return fmt.Errorf("model %s: timed activity %q has no delay", mod.Name, a.Name)
		case a.Kind != Timed && a.Kind != Instantaneous:
			return fmt.Errorf("model %s: activity %q has invalid kind %d", mod.Name, a.Name, a.Kind)
		case a.Kind == Instantaneous && len(a.ReactivateOn) > 0:
			return fmt.Errorf("model %s: instantaneous activity %q has ReactivateOn (no sampled delay to resample)", mod.Name, a.Name)
		}
		seen[a.Name] = true
		ai := int32(a.index)
		for _, p := range a.Input.Reads {
			if !mod.owns(p) {
				return fmt.Errorf("model %s: activity %q input gate reads foreign place %q", mod.Name, a.Name, p.Name)
			}
			if a.Kind == Timed {
				deps.enableTimed[p.index] = append(deps.enableTimed[p.index], ai)
			} else {
				deps.enableInst[p.index] = append(deps.enableInst[p.index], ai)
			}
		}
		for _, p := range a.Output.Reads {
			if !mod.owns(p) {
				return fmt.Errorf("model %s: activity %q output gate reads foreign place %q", mod.Name, a.Name, p.Name)
			}
		}
		a.reactivate = a.reactivate[:0]
		for _, p := range a.ReactivateOn {
			if !mod.owns(p) {
				return fmt.Errorf("model %s: activity %q reactivates on foreign place %q", mod.Name, a.Name, p.Name)
			}
			dup := false
			for _, idx := range a.reactivate {
				if idx == int32(p.index) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			a.reactivate = append(a.reactivate, int32(p.index))
			deps.react[p.index] = append(deps.react[p.index], ai)
		}
		if a.Kind == Timed {
			deps.timed = append(deps.timed, ai)
			if len(a.Input.Reads) == 0 {
				deps.scanTimed = append(deps.scanTimed, ai)
			}
		} else {
			deps.instants = append(deps.instants, ai)
			if len(a.Input.Reads) == 0 {
				deps.scanInst = append(deps.scanInst, ai)
			}
		}
	}
	mod.deps = deps
	return nil
}
