// Package san implements Stochastic Activity Networks (SANs), the modeling
// formalism the paper uses (via the Möbius tool, reimplemented here from
// scratch): places holding tokens, timed and instantaneous activities with
// marking-dependent enabling predicates (input gates), firing effects
// (output gates), marking-dependent delay distributions with reactivation,
// and rate/impulse reward variables evaluated over the marking process.
//
// The executor in simulator.go turns a Model into a discrete-event
// simulation on top of internal/des.
package san

import (
	"fmt"

	"repro/internal/rng"
)

// Place is a token holder. Tokens are non-negative integers; most places in
// the paper's model hold zero or one token and act as state flags, matching
// the "all compute nodes modeled as a single unit" abstraction of Section 4.
type Place struct {
	Name    string
	Initial int
	index   int
}

// Kind distinguishes timed activities (fire after a sampled delay) from
// instantaneous ones (fire immediately when enabled).
type Kind int

const (
	// Timed activities fire after a delay drawn from Delay.
	Timed Kind = iota + 1
	// Instantaneous activities fire as soon as they are enabled, before
	// any timed activity and before simulated time advances.
	Instantaneous
)

// Marking is the read/write view of the net's state passed to predicates
// and effects.
type Marking struct {
	tokens  []int
	changed map[int]bool
	model   *Model
}

// Get returns the number of tokens in p.
func (m *Marking) Get(p *Place) int { return m.tokens[p.index] }

// Has reports whether p holds at least one token.
func (m *Marking) Has(p *Place) bool { return m.tokens[p.index] > 0 }

// Set assigns the token count of p. Negative counts panic: they always
// indicate a broken gate function.
func (m *Marking) Set(p *Place, n int) {
	if n < 0 {
		panic(fmt.Sprintf("san: place %q set to negative count %d", p.Name, n))
	}
	if m.tokens[p.index] != n {
		m.tokens[p.index] = n
		if m.changed != nil {
			m.changed[p.index] = true
		}
	}
}

// Add adds delta tokens to p (delta may be negative).
func (m *Marking) Add(p *Place, delta int) { m.Set(p, m.Get(p)+delta) }

// Move transfers one token from src to dst; it panics when src is empty,
// because moving a non-existent token is a structural modeling error.
func (m *Marking) Move(src, dst *Place) {
	if m.Get(src) < 1 {
		panic(fmt.Sprintf("san: move from empty place %q", src.Name))
	}
	m.Add(src, -1)
	m.Add(dst, 1)
}

// Clear removes all tokens from p.
func (m *Marking) Clear(p *Place) { m.Set(p, 0) }

// Predicate is an input-gate enabling condition over the marking.
type Predicate func(m *Marking) bool

// Effect is an output-gate firing function: it moves tokens.
type Effect func(m *Marking)

// DelayFunc samples a firing delay for a timed activity in the current
// marking. It is invoked when the activity becomes enabled and again on
// reactivation.
type DelayFunc func(m *Marking, src rng.Source) float64

// Activity is a SAN activity. Use Model.AddTimed / Model.AddInstant to
// create activities; the zero value is not valid.
type Activity struct {
	Name    string
	Kind    Kind
	Enabled Predicate
	Delay   DelayFunc // nil for instantaneous activities
	Fire    Effect
	// ReactivateOn lists places whose token-count changes force the
	// activity to resample its delay while it remains enabled. This is
	// how marking-dependent failure rates (correlated-failure windows)
	// are modeled; resampling an exponential is statistically sound by
	// memorylessness.
	ReactivateOn []*Place
	// Priority orders simultaneous instantaneous firings (higher first).
	Priority int

	index      int
	reactivate map[int]bool
}

// Model is an immutable (after Validate) SAN structure: places plus
// activities. Build one with NewModel, then hand it to NewSimulator.
type Model struct {
	Name       string
	places     []*Place
	activities []*Activity
	byName     map[string]*Place
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name, byName: make(map[string]*Place)}
}

// Place adds a place with the given name and initial token count. Duplicate
// names panic: the paper's submodels share state by *name identity*, so a
// silent duplicate would split a shared place in two.
func (mod *Model) Place(name string, initial int) *Place {
	if _, dup := mod.byName[name]; dup {
		panic(fmt.Sprintf("san: duplicate place %q", name))
	}
	if initial < 0 {
		panic(fmt.Sprintf("san: place %q has negative initial marking", name))
	}
	p := &Place{Name: name, Initial: initial, index: len(mod.places)}
	mod.places = append(mod.places, p)
	mod.byName[name] = p
	return p
}

// LookupPlace returns the place with the given name, or nil.
func (mod *Model) LookupPlace(name string) *Place { return mod.byName[name] }

// Places returns the model's places in creation order.
func (mod *Model) Places() []*Place {
	out := make([]*Place, len(mod.places))
	copy(out, mod.places)
	return out
}

// Activities returns the model's activities in creation order.
func (mod *Model) Activities() []*Activity {
	out := make([]*Activity, len(mod.activities))
	copy(out, mod.activities)
	return out
}

// AddTimed registers a timed activity.
func (mod *Model) AddTimed(a Activity) *Activity {
	a.Kind = Timed
	return mod.add(a)
}

// AddInstant registers an instantaneous activity.
func (mod *Model) AddInstant(a Activity) *Activity {
	a.Kind = Instantaneous
	a.Delay = nil
	return mod.add(a)
}

func (mod *Model) add(a Activity) *Activity {
	act := a
	act.index = len(mod.activities)
	act.reactivate = make(map[int]bool, len(a.ReactivateOn))
	for _, p := range a.ReactivateOn {
		act.reactivate[p.index] = true
	}
	mod.activities = append(mod.activities, &act)
	return &act
}

// Validate checks structural well-formedness: every activity has a name,
// an enabling predicate, a firing effect, and (if timed) a delay function,
// and all reactivation places belong to this model.
func (mod *Model) Validate() error {
	seen := make(map[string]bool, len(mod.activities))
	for _, a := range mod.activities {
		switch {
		case a.Name == "":
			return fmt.Errorf("model %s: unnamed activity", mod.Name)
		case seen[a.Name]:
			return fmt.Errorf("model %s: duplicate activity %q", mod.Name, a.Name)
		case a.Enabled == nil:
			return fmt.Errorf("model %s: activity %q has no enabling predicate", mod.Name, a.Name)
		case a.Fire == nil:
			return fmt.Errorf("model %s: activity %q has no firing effect", mod.Name, a.Name)
		case a.Kind == Timed && a.Delay == nil:
			return fmt.Errorf("model %s: timed activity %q has no delay", mod.Name, a.Name)
		case a.Kind != Timed && a.Kind != Instantaneous:
			return fmt.Errorf("model %s: activity %q has invalid kind %d", mod.Name, a.Name, a.Kind)
		}
		seen[a.Name] = true
		for _, p := range a.ReactivateOn {
			if p.index >= len(mod.places) || mod.places[p.index] != p {
				return fmt.Errorf("model %s: activity %q reactivates on foreign place %q", mod.Name, a.Name, p.Name)
			}
		}
	}
	return nil
}
