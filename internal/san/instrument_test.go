package san

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// tickTockModel builds a two-place net: a timed "tick" moves the token
// from a to b, an instantaneous "tock" moves it straight back, and a
// second timed activity reactivates whenever b changes. Every telemetry
// counter of the simulator is exercised by a few firings.
func tickTockModel() (*Model, *Place, *Place) {
	m := NewModel("ticktock")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	m.AddTimed(Activity{
		Name:  "tick",
		Input: AllOf(a),
		Delay: fixed(1),
		Output: Out(func(mk *Marking) {
			mk.Move(a, b)
		}, a, b),
	})
	m.AddInstant(Activity{
		Name:  "tock",
		Input: AllOf(b),
		Output: Out(func(mk *Marking) {
			mk.Move(b, a)
		}, a, b),
	})
	m.AddTimed(Activity{
		Name:         "watcher",
		Input:        AllOf(a),
		Delay:        fixed(100),
		Output:       Out(func(*Marking) {}),
		ReactivateOn: []*Place{b},
	})
	return m, a, b
}

func TestInstrumentCountsFiringsAndSettles(t *testing.T) {
	m, _, _ := tickTockModel()
	s, err := NewSimulator(m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sh := reg.NewShard()
	s.Instrument(sh)
	s.RunUntil(10.5)
	s.FlushEngineStats()
	snap := sh.Snapshot()
	sh.Merge()

	// 10 ticks fired (t=1..10), each followed immediately by a tock.
	if got := reg.Counter("san.timed_firings").Value(); got != 10 {
		t.Fatalf("timed firings = %d, want 10", got)
	}
	if got := reg.Counter("san.instant_firings").Value(); got != 10 {
		t.Fatalf("instant firings = %d, want 10", got)
	}
	// One settle per timed firing plus the initial settle in Reset — but
	// Reset ran before Instrument, so only the 10 post-firing settles count.
	if got := reg.Counter("san.settles").Value(); got != 10 {
		t.Fatalf("settles = %d, want 10", got)
	}
	// The watcher's ReactivateOn(b) resamples at every tick and tock.
	if got := reg.Counter("san.reactivations").Value(); got == 0 {
		t.Fatal("no reactivations recorded")
	}
	// Engine counters arrive via FlushEngineStats.
	if got := reg.Counter("des.events_fired").Value(); got != 10 {
		t.Fatalf("engine events fired = %d, want 10", got)
	}
	if got := reg.Counter("des.events_scheduled").Value(); got == 0 {
		t.Fatal("no engine schedules recorded")
	}
	if got := reg.Counter("des.events_cancelled").Value(); got == 0 {
		t.Fatal("no engine cancellations recorded (watcher reactivation cancels)")
	}
	// The closure and queue-depth histograms are sampled (1 in
	// statsSampleMask+1 settles), so counts are smaller than the settle
	// count but never zero; the full-scan histogram must stay empty in
	// incremental mode.
	h := reg.Histogram("san.dirty_closure", closureBuckets)
	if h.Count() == 0 {
		t.Fatal("dirty-closure histogram empty")
	}
	if got := reg.Histogram("san.fullscan_closure", closureBuckets).Count(); got != 0 {
		t.Fatalf("full-scan histogram populated (%d) in incremental mode", got)
	}
	if reg.Histogram("des.queue_depth", closureBuckets).Count() == 0 {
		t.Fatal("queue-depth histogram empty")
	}
	// The pre-merge shard snapshot carries the same values.
	if snap["san.timed_firings"].(uint64) != 10 {
		t.Fatalf("shard snapshot = %v", snap)
	}
}

func TestInstrumentFullScanPopulatesFullHistogram(t *testing.T) {
	m, _, _ := tickTockModel()
	s, err := NewSimulator(m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s.FullScan = true
	reg := obs.NewRegistry()
	sh := reg.NewShard()
	s.Instrument(sh)
	s.RunUntil(5.5)
	sh.Merge()
	full := reg.Histogram("san.fullscan_closure", closureBuckets).Snapshot()
	if full.Count == 0 {
		t.Fatal("full-scan histogram empty in full-scan mode")
	}
	// Every full-scan reconcile touches all timed activities (2 here).
	if full.Min != 2 || full.Max != 2 {
		t.Fatalf("full-scan closure min/max = %v/%v, want 2/2", full.Min, full.Max)
	}
	if got := reg.Histogram("san.dirty_closure", closureBuckets).Count(); got != 0 {
		t.Fatalf("incremental histogram populated (%d) in full-scan mode", got)
	}
}

// TestInstrumentedTrajectoryIdentical guards the zero-interference
// property: attaching telemetry must not change the trajectory.
func TestInstrumentedTrajectoryIdentical(t *testing.T) {
	run := func(instrument bool) []float64 {
		m, _, _ := tickTockModel()
		s, err := NewSimulator(m, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			s.Instrument(obs.NewRegistry().NewShard())
		}
		var times []float64
		s.SetTrace(func(tm float64, _ *Activity, _ *Marking) { times = append(times, tm) })
		s.RunUntil(50)
		return times
	}
	bare, inst := run(false), run(true)
	if len(bare) != len(inst) {
		t.Fatalf("firing counts differ: %d vs %d", len(bare), len(inst))
	}
	for i := range bare {
		if bare[i] != inst[i] {
			t.Fatalf("firing %d at %v vs %v", i, bare[i], inst[i])
		}
	}
}

func TestInstrumentNilDetaches(t *testing.T) {
	m, _, _ := tickTockModel()
	s, err := NewSimulator(m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sh := reg.NewShard()
	s.Instrument(sh)
	s.Instrument(nil)
	s.RunUntil(10)
	s.FlushEngineStats() // no-op when detached
	sh.Merge()
	if got := reg.Counter("san.timed_firings").Value(); got != 0 {
		t.Fatalf("detached simulator still recorded %d firings", got)
	}
}
