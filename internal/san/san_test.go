package san

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestPlaceBasics(t *testing.T) {
	m := NewModel("t")
	p := m.Place("a", 2)
	if p.Name != "a" || p.Initial != 2 {
		t.Fatal("place fields wrong")
	}
	if m.LookupPlace("a") != p {
		t.Fatal("lookup failed")
	}
	if m.LookupPlace("missing") != nil {
		t.Fatal("lookup of missing place should be nil")
	}
	if len(m.Places()) != 1 {
		t.Fatal("Places() wrong length")
	}
}

func TestDuplicatePlacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate place did not panic")
		}
	}()
	m := NewModel("t")
	m.Place("a", 0)
	m.Place("a", 0)
}

func TestNegativeInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative initial marking did not panic")
		}
	}()
	NewModel("t").Place("a", -1)
}

func TestValidateCatchesBrokenActivities(t *testing.T) {
	cases := []struct {
		name  string
		build func(m *Model, p *Place)
		want  string
	}{
		{"unnamed", func(m *Model, p *Place) {
			m.AddTimed(Activity{Input: AllOf(p), Output: Out(func(*Marking) {}), Delay: fixed(1)})
		}, "unnamed"},
		{"no predicate", func(m *Model, p *Place) {
			m.AddTimed(Activity{Name: "x", Output: Out(func(*Marking) {}), Delay: fixed(1)})
		}, "enabling predicate"},
		{"no effect", func(m *Model, p *Place) {
			m.AddTimed(Activity{Name: "x", Input: AllOf(p), Delay: fixed(1)})
		}, "firing effect"},
		{"no delay", func(m *Model, p *Place) {
			m.AddTimed(Activity{Name: "x", Input: AllOf(p), Output: Out(func(*Marking) {})})
		}, "no delay"},
		{"duplicate", func(m *Model, p *Place) {
			a := Activity{Name: "x", Input: AllOf(p), Output: Out(func(*Marking) {}), Delay: fixed(1)}
			m.AddTimed(a)
			m.AddTimed(a)
		}, "duplicate"},
		{"foreign reactivation", func(m *Model, p *Place) {
			other := NewModel("other").Place("foreign", 0)
			m.AddTimed(Activity{
				Name: "x", Input: AllOf(p),
				Output: Out(func(*Marking) {}), Delay: fixed(1),
				ReactivateOn: []*Place{other},
			})
		}, "foreign place"},
		{"foreign input read", func(m *Model, p *Place) {
			other := NewModel("other").Place("foreign", 0)
			m.AddTimed(Activity{
				Name: "x", Input: When(func(*Marking) bool { return true }, other),
				Output: Out(func(*Marking) {}), Delay: fixed(1),
			})
		}, "foreign place"},
		{"foreign output read", func(m *Model, p *Place) {
			other := NewModel("other").Place("foreign", 0)
			m.AddTimed(Activity{
				Name: "x", Input: AllOf(p),
				Output: Out(func(*Marking) {}, other), Delay: fixed(1),
			})
		}, "foreign place"},
		{"instantaneous reactivation", func(m *Model, p *Place) {
			m.AddInstant(Activity{
				Name: "x", Input: AllOf(p),
				Output:       Out(func(*Marking) {}),
				ReactivateOn: []*Place{p},
			})
		}, "ReactivateOn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewModel("bad")
			p := m.Place("p", 1)
			c.build(m, p)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// TestValidateDedupesReactivateOn: a place listed twice in ReactivateOn is
// indexed once (the duplicate is harmless, so it is deduped, not rejected).
func TestValidateDedupesReactivateOn(t *testing.T) {
	m := NewModel("dedupe")
	p := m.Place("p", 1)
	mode := m.Place("mode", 0)
	a := m.AddTimed(Activity{
		Name: "x", Input: AllOf(p),
		Output:       Out(func(*Marking) {}),
		Delay:        fixed(1),
		ReactivateOn: []*Place{mode, mode, mode},
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.reactivate) != 1 || a.reactivate[0] != int32(mode.index) {
		t.Fatalf("reactivate = %v, want single entry for %q", a.reactivate, mode.Name)
	}
	// Validate is idempotent: a second pass must not re-duplicate.
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.reactivate) != 1 {
		t.Fatalf("second Validate changed reactivate: %v", a.reactivate)
	}
}

// TestDependencyIndex checks the declarative read-sets feed the
// place→activity introspection helpers.
func TestDependencyIndex(t *testing.T) {
	m := NewModel("deps")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	ab := m.AddTimed(Activity{
		Name: "ab", Input: AllOf(a),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Move(a, b) }),
	})
	opaque := m.AddTimed(Activity{
		Name:   "opaque",
		Input:  When(func(mk *Marking) bool { return mk.Has(b) }), // no declared reads
		Delay:  fixed(2),
		Output: Out(func(mk *Marking) { mk.Move(b, a) }),
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if deps := m.DependentsOf(a); len(deps) != 1 || deps[0] != ab {
		t.Fatalf("DependentsOf(a) = %v", deps)
	}
	if deps := m.DependentsOf(b); len(deps) != 0 {
		t.Fatalf("DependentsOf(b) = %v, want none (opaque is undeclared)", deps)
	}
	if und := m.UndeclaredInputs(); len(und) != 1 || und[0] != opaque {
		t.Fatalf("UndeclaredInputs() = %v", und)
	}
}

func fixed(v float64) DelayFunc {
	return func(*Marking, rng.Source) float64 { return v }
}

// buildCycle makes a two-place token cycle a→b→a with deterministic delays
// and fully declared read-sets.
func buildCycle(da, db float64) (*Model, *Place, *Place) {
	m := NewModel("cycle")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	m.AddTimed(Activity{
		Name:   "a_to_b",
		Input:  AllOf(a),
		Delay:  fixed(da),
		Output: Out(func(mk *Marking) { mk.Move(a, b) }),
	})
	m.AddTimed(Activity{
		Name:   "b_to_a",
		Input:  AllOf(b),
		Delay:  fixed(db),
		Output: Out(func(mk *Marking) { mk.Move(b, a) }),
	})
	return m, a, b
}

func TestDeterministicCycle(t *testing.T) {
	m, a, b := buildCycle(2, 3)
	sim, err := NewSimulator(m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fracA := sim.AddRateReward("fracA", func(mk *Marking) float64 {
		if mk.Has(a) {
			return 1
		}
		return 0
	}, a)
	sim.RunUntil(50) // ten full 5h cycles
	wantA := 50.0 * 2 / 5
	if math.Abs(fracA.Integral()-wantA) > 1e-9 {
		t.Fatalf("time in a = %v, want %v", fracA.Integral(), wantA)
	}
	_ = b
}

func TestResetRestoresInitialState(t *testing.T) {
	m, a, _ := buildCycle(1, 1)
	sim, err := NewSimulator(m, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r := sim.AddRateReward("inA", func(mk *Marking) float64 { return float64(mk.Get(a)) }, a)
	sim.RunUntil(10)
	if sim.Now() != 10 {
		t.Fatal("clock did not advance")
	}
	sim.Reset()
	if sim.Now() != 0 {
		t.Fatal("Reset did not rewind clock")
	}
	if r.Integral() != 0 {
		t.Fatal("Reset did not clear rate reward")
	}
	if got := sim.Snapshot()["a"]; got != 1 {
		t.Fatalf("Reset marking a = %d, want 1", got)
	}
	sim.RunUntil(10)
	if math.Abs(r.Integral()-5) > 1e-9 {
		t.Fatalf("post-reset integral = %v, want 5", r.Integral())
	}
}

func TestInstantaneousFiresBeforeTime(t *testing.T) {
	m := NewModel("inst")
	trigger := m.Place("trigger", 0)
	done := m.Place("done", 0)
	src := m.Place("src", 1)
	m.AddTimed(Activity{
		Name:   "emit",
		Input:  AllOf(src),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Move(src, trigger) }),
	})
	m.AddInstant(Activity{
		Name:   "react",
		Input:  AllOf(trigger),
		Output: Out(func(mk *Marking) { mk.Move(trigger, done) }),
	})
	sim, err := NewSimulator(m, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var firedAt []float64
	sim.SetTrace(func(tm float64, a *Activity, mk *Marking) {
		if a.Name == "react" {
			firedAt = append(firedAt, tm)
		}
	})
	sim.RunUntil(5)
	if len(firedAt) != 1 || firedAt[0] != 1 {
		t.Fatalf("instantaneous fired at %v, want [1]", firedAt)
	}
	if sim.Snapshot()["done"] != 1 {
		t.Fatal("instantaneous did not move token")
	}
}

func TestInstantaneousPriority(t *testing.T) {
	m := NewModel("prio")
	tok := m.Place("tok", 1)
	hi := m.Place("hi", 0)
	lo := m.Place("lo", 0)
	m.AddInstant(Activity{
		Name: "low", Priority: 1,
		Input:  AllOf(tok),
		Output: Out(func(mk *Marking) { mk.Move(tok, lo) }),
	})
	m.AddInstant(Activity{
		Name: "high", Priority: 2,
		Input:  AllOf(tok),
		Output: Out(func(mk *Marking) { mk.Move(tok, hi) }),
	})
	sim, err := NewSimulator(m, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Snapshot()["hi"] != 1 || sim.Snapshot()["lo"] != 0 {
		t.Fatalf("priority not respected: %v", sim.Snapshot())
	}
}

func TestInstantLivelockPanics(t *testing.T) {
	m := NewModel("livelock")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	m.AddInstant(Activity{
		Name:   "ab",
		Input:  AllOf(a),
		Output: Out(func(mk *Marking) { mk.Move(a, b) }),
	})
	m.AddInstant(Activity{
		Name:   "ba",
		Input:  AllOf(b),
		Output: Out(func(mk *Marking) { mk.Move(b, a) }),
	})
	defer func() {
		if recover() == nil {
			t.Fatal("instantaneous livelock did not panic")
		}
	}()
	_, _ = NewSimulator(m, rng.New(5))
}

func TestDisablingCancelsTimedActivity(t *testing.T) {
	// A slow activity enabled by a token that a fast activity steals must
	// never fire (race semantics with cancellation).
	m := NewModel("race")
	shared := m.Place("shared", 1)
	slowDst := m.Place("slow_dst", 0)
	fastDst := m.Place("fast_dst", 0)
	m.AddTimed(Activity{
		Name:   "slow",
		Input:  AllOf(shared),
		Delay:  fixed(10),
		Output: Out(func(mk *Marking) { mk.Move(shared, slowDst) }),
	})
	m.AddTimed(Activity{
		Name:   "fast",
		Input:  AllOf(shared),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Move(shared, fastDst) }),
	})
	sim, err := NewSimulator(m, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(100)
	snap := sim.Snapshot()
	if snap["fast_dst"] != 1 || snap["slow_dst"] != 0 {
		t.Fatalf("race semantics broken: %v", snap)
	}
}

func TestReactivationResamples(t *testing.T) {
	// An activity whose delay depends on a mode place must resample when
	// the mode changes. Mode flips at t=1 making the delay short; without
	// reactivation the activity would fire at t=100, with it at ~t=1+2.
	m := NewModel("react")
	mode := m.Place("mode", 0)
	run := m.Place("run", 1)
	out := m.Place("out", 0)
	flip := m.Place("flip", 1)
	m.AddTimed(Activity{
		Name:   "flip_mode",
		Input:  AllOf(flip),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Clear(flip); mk.Set(mode, 1) }),
	})
	m.AddTimed(Activity{
		Name:  "job",
		Input: AllOf(run),
		Delay: func(mk *Marking, _ rng.Source) float64 {
			if mk.Has(mode) {
				return 2
			}
			return 100
		},
		Output:       Out(func(mk *Marking) { mk.Move(run, out) }),
		ReactivateOn: []*Place{mode},
	})
	sim, err := NewSimulator(m, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var jobAt float64 = -1
	sim.SetTrace(func(tm float64, a *Activity, mk *Marking) {
		if a.Name == "job" {
			jobAt = tm
		}
	})
	sim.RunUntil(50)
	if math.Abs(jobAt-3) > 1e-9 {
		t.Fatalf("job fired at %v, want 3 (reactivated)", jobAt)
	}
}

func TestNoReactivationKeepsSample(t *testing.T) {
	// Same net without ReactivateOn: the original 100h sample must stand.
	m := NewModel("noreact")
	mode := m.Place("mode", 0)
	run := m.Place("run", 1)
	out := m.Place("out", 0)
	flip := m.Place("flip", 1)
	m.AddTimed(Activity{
		Name:   "flip_mode",
		Input:  AllOf(flip),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Clear(flip); mk.Set(mode, 1) }),
	})
	m.AddTimed(Activity{
		Name:  "job",
		Input: AllOf(run),
		Delay: func(mk *Marking, _ rng.Source) float64 {
			if mk.Has(mode) {
				return 2
			}
			return 100
		},
		Output: Out(func(mk *Marking) { mk.Move(run, out) }),
	})
	sim, err := NewSimulator(m, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(200)
	var jobAt float64 = -1
	sim.Reset()
	sim.SetTrace(func(tm float64, a *Activity, mk *Marking) {
		if a.Name == "job" {
			jobAt = tm
		}
	})
	sim.RunUntil(200)
	if math.Abs(jobAt-100) > 1e-9 {
		t.Fatalf("job fired at %v, want 100 (no reactivation)", jobAt)
	}
}

func TestImpulseReward(t *testing.T) {
	m, _, _ := buildCycle(1, 1)
	sim, err := NewSimulator(m, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var ab *Activity
	for _, a := range m.Activities() {
		if a.Name == "a_to_b" {
			ab = a
		}
	}
	h := sim.AddImpulse("count_ab", ab, func(*Marking) float64 { return 2.5 })
	sim.RunUntil(10.5) // a→b at 1,3,5,7,9 → five firings
	if h.Count() != 5 {
		t.Fatalf("impulse count = %d, want 5", h.Count())
	}
	if math.Abs(h.Total()-12.5) > 1e-9 {
		t.Fatalf("impulse total = %v, want 12.5", h.Total())
	}
}

func TestMarkingOperations(t *testing.T) {
	m := NewModel("ops")
	a := m.Place("a", 3)
	b := m.Place("b", 0)
	sim, err := NewSimulator(m, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	mk := sim.Marking()
	if mk.Get(a) != 3 || mk.Has(b) {
		t.Fatal("initial marking wrong")
	}
	mk.Move(a, b)
	if mk.Get(a) != 2 || mk.Get(b) != 1 {
		t.Fatal("Move wrong")
	}
	mk.Add(b, 4)
	if mk.Get(b) != 5 {
		t.Fatal("Add wrong")
	}
	mk.Clear(b)
	if mk.Has(b) {
		t.Fatal("Clear wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Set did not panic")
			}
		}()
		mk.Set(a, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Move from empty did not panic")
			}
		}()
		mk.Move(b, a)
	}()
}

func TestExponentialRaceWinProbability(t *testing.T) {
	// Two competing exponentials with rates 1 and 3: the fast one should
	// win 75% of races.
	m := NewModel("exp-race")
	tok := m.Place("tok", 1)
	fast := m.Place("fast", 0)
	slow := m.Place("slow", 0)
	reload := m.Place("reload", 0)
	m.AddTimed(Activity{
		Name:  "fast_act",
		Input: AllOf(tok),
		Delay: func(_ *Marking, src rng.Source) float64 {
			return rng.Exponential{MeanValue: 1.0 / 3}.Sample(src)
		},
		Output: Out(func(mk *Marking) { mk.Move(tok, fast); mk.Add(reload, 1) }),
	})
	m.AddTimed(Activity{
		Name:  "slow_act",
		Input: AllOf(tok),
		Delay: func(_ *Marking, src rng.Source) float64 {
			return rng.Exponential{MeanValue: 1.0}.Sample(src)
		},
		Output: Out(func(mk *Marking) { mk.Move(tok, slow); mk.Add(reload, 1) }),
	})
	m.AddInstant(Activity{
		Name:  "restart",
		Input: AllOf(reload),
		Output: Out(func(mk *Marking) {
			mk.Clear(reload)
			mk.Set(tok, 1)
		}),
	})
	sim, err := NewSimulator(m, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(3000)
	snap := sim.Snapshot()
	total := snap["fast"] + snap["slow"]
	if total < 1000 {
		t.Fatalf("too few races: %d", total)
	}
	frac := float64(snap["fast"]) / float64(total)
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("fast win fraction = %v, want ~0.75", frac)
	}
}

func TestDescribeMarkingSorted(t *testing.T) {
	m := NewModel("desc")
	m.Place("zeta", 1)
	m.Place("alpha", 2)
	m.Place("mid", 0)
	sim, err := NewSimulator(m, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.DescribeMarking(); got != "alpha=2 zeta=1" {
		t.Fatalf("DescribeMarking = %q", got)
	}
}

func TestRateRewardAfterReset(t *testing.T) {
	// A rate reward added before a Reset must track the restored marking.
	m := NewModel("rr")
	on := m.Place("on", 1)
	off := m.Place("off", 0)
	m.AddTimed(Activity{
		Name:   "kill",
		Input:  AllOf(on),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Move(on, off) }),
	})
	sim, err := NewSimulator(m, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	r := sim.AddRateReward("up", func(mk *Marking) float64 { return float64(mk.Get(on)) }, on)
	sim.RunUntil(5)
	if math.Abs(r.Integral()-1) > 1e-9 {
		t.Fatalf("first run integral = %v, want 1", r.Integral())
	}
	sim.Reset()
	sim.RunUntil(5)
	if math.Abs(r.Integral()-1) > 1e-9 {
		t.Fatalf("post-reset integral = %v, want 1", r.Integral())
	}
}

func TestInvariantViolationPanics(t *testing.T) {
	m := NewModel("inv")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	m.AddTimed(Activity{
		Name:   "leak",
		Input:  AllOf(a),
		Delay:  fixed(1),
		Output: Out(func(mk *Marking) { mk.Add(b, 2) }), // breaks conservation
	})
	sim, err := NewSimulator(m, rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	sim.AddInvariant("token conservation", func(mk *Marking) error {
		if mk.Get(a)+mk.Get(b) > 1 {
			return fmt.Errorf("tokens multiplied")
		}
		return nil
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invariant violation did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "token conservation") || !strings.Contains(msg, "leak") {
			t.Fatalf("panic lacks context: %v", msg)
		}
	}()
	sim.RunUntil(10)
}

func TestInvariantHoldsQuietly(t *testing.T) {
	m, a, b := buildCycle(1, 1)
	sim, err := NewSimulator(m, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	sim.AddInvariant("one token", func(mk *Marking) error {
		if mk.Get(a)+mk.Get(b) != 1 {
			return fmt.Errorf("token count %d", mk.Get(a)+mk.Get(b))
		}
		return nil
	})
	sim.RunUntil(100) // must not panic
	if sim.Fired() < 90 {
		t.Fatalf("only %d firings", sim.Fired())
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	m, _, _ := buildCycle(1, 1)
	sim, err := NewSimulator(m, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	snap := sim.Snapshot()
	snap["a"] = 99
	if sim.Snapshot()["a"] != 1 {
		t.Fatal("Snapshot aliases internal state")
	}
}

func TestTimedActivityReenablesAfterFire(t *testing.T) {
	// A self-re-enabling timed activity must fire repeatedly with fresh
	// samples — its firing changes no place, so the incremental scheduler
	// must reconcile it through the fired-activity hook, not the dirty set.
	m := NewModel("self")
	tick := m.Place("tick", 1)
	count := 0
	m.AddTimed(Activity{
		Name:   "metronome",
		Input:  AllOf(tick),
		Delay:  fixed(2),
		Output: Out(func(mk *Marking) { count++ }),
	})
	sim, err := NewSimulator(m, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(11)
	if count != 5 {
		t.Fatalf("metronome fired %d times in 11h, want 5", count)
	}
}

// TestUndeclaredGateStaysCorrect: a net whose input gates declare no reads
// must still simulate correctly — the scheduler falls back to rescanning
// the undeclared activities after every firing.
func TestUndeclaredGateStaysCorrect(t *testing.T) {
	m := NewModel("opaque")
	a := m.Place("a", 1)
	b := m.Place("b", 0)
	m.AddTimed(Activity{
		Name:   "a_to_b",
		Input:  When(func(mk *Marking) bool { return mk.Has(a) }),
		Delay:  fixed(2),
		Output: Out(func(mk *Marking) { mk.Move(a, b) }),
	})
	m.AddInstant(Activity{
		Name:   "b_back",
		Input:  When(func(mk *Marking) bool { return mk.Has(b) }),
		Output: Out(func(mk *Marking) { mk.Move(b, a) }),
	})
	sim, err := NewSimulator(m, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	bounces := 0
	sim.SetTrace(func(_ float64, a *Activity, _ *Marking) {
		if a.Name == "b_back" {
			bounces++
		}
	})
	sim.RunUntil(10)
	if sim.Fired() != 5 { // timed firings at t=2,4,6,8,10
		t.Fatalf("fired %d, want 5", sim.Fired())
	}
	if bounces != 5 {
		t.Fatalf("instant bounced %d times, want 5", bounces)
	}
	if sim.Snapshot()["a"] != 1 {
		t.Fatalf("token not back in a: %v", sim.Snapshot())
	}
}
