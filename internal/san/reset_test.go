package san

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// TestResetWithHooksAndInstrumentation is the recycle-path contract at the
// san layer: a simulator carrying firing hooks, rate rewards, impulse
// rewards and shard instrumentation is Reset and re-run, and nothing
// double-registers or leaks across trajectories — the hook fires exactly
// once per firing, the reward totals of a reseeded rerun match the first
// run bit-for-bit, and the per-trajectory telemetry snapshots are
// identical (which also pins that Engine.Reset rewinds its counters).
func TestResetWithHooksAndInstrumentation(t *testing.T) {
	const seed, horizon = 11, 200.0
	m := buildHyperExpNet()
	src := rng.New(seed)
	sim, err := NewSimulator(m, src)
	if err != nil {
		t.Fatal(err)
	}
	work := m.LookupPlace("work")
	busy := sim.AddRateReward("busy", func(mk *Marking) float64 {
		return float64(mk.Get(work))
	}, work)
	var drain *Activity
	for _, a := range m.Activities() {
		if a.Name == "drain" {
			drain = a
		}
	}
	drains := sim.AddImpulse("drains", drain, func(*Marking) float64 { return 1 })
	hookCalls, firings := 0, 0
	sim.SetTrace(func(float64, *Activity, *Marking) { firings++ })
	sim.AddFiringHook(func(float64, *Activity, *Marking) { hookCalls++ })

	reg := obs.NewRegistry()
	type outcome struct {
		fired     uint64
		busy      float64
		drainTot  float64
		drainCnt  uint64
		hookCalls int
		firings   int
		telemetry map[string]any
	}
	run := func() outcome {
		sh := reg.NewShard()
		sim.Instrument(sh)
		beforeHooks, beforeFirings := hookCalls, firings
		sim.RunUntil(horizon)
		sim.FlushEngineStats()
		snap := sh.Snapshot()
		sh.Merge()
		return outcome{
			fired:     sim.Fired(),
			busy:      busy.Integral(),
			drainTot:  drains.Total(),
			drainCnt:  drains.Count(),
			hookCalls: hookCalls - beforeHooks,
			firings:   firings - beforeFirings,
			telemetry: snap,
		}
	}

	first := run()
	if first.fired == 0 || first.drainCnt == 0 {
		t.Fatalf("degenerate first trajectory: %+v", first)
	}
	if first.hookCalls != first.firings {
		t.Fatalf("hook fired %d times for %d firings", first.hookCalls, first.firings)
	}

	src.Reseed(seed)
	sim.Reset()
	if got := busy.Integral(); got != 0 {
		t.Fatalf("rate reward not rewound by Reset: %v", got)
	}
	if drains.Total() != 0 || drains.Count() != 0 {
		t.Fatalf("impulse reward not rewound by Reset: %v/%d", drains.Total(), drains.Count())
	}

	second := run()
	if !reflect.DeepEqual(first.telemetry, second.telemetry) {
		t.Fatalf("telemetry differs across Reset:\nfirst:  %v\nsecond: %v",
			first.telemetry, second.telemetry)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reseeded rerun diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if second.hookCalls != second.firings {
		t.Fatalf("hook double-registered after Reset: %d calls for %d firings",
			second.hookCalls, second.firings)
	}
}

// TestResetKeepsEnginePoolWarm pins the allocation contract of the reset
// path: the second trajectory of a reset simulator is served entirely from
// the engine's event pool.
func TestResetKeepsEnginePoolWarm(t *testing.T) {
	m := buildHyperExpNet()
	src := rng.New(7)
	sim, err := NewSimulator(m, src)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(200)
	src.Reseed(7)
	sim.Reset()
	sim.RunUntil(200)
	hits, misses, _ := sim.PoolStats()
	if misses != 0 {
		t.Fatalf("reset trajectory allocated %d events (hits %d); pool not reused", misses, hits)
	}
	if hits == 0 {
		t.Fatal("reset trajectory scheduled nothing; test degenerate")
	}
}
