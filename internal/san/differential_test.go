package san

import (
	"testing"

	"repro/internal/rng"
)

// buildHyperExpNet constructs a synthetic net with hyper-exponential
// delays, reactivation, instantaneous chains and a counter place — the
// distribution shapes the paper's model does not use, so the san-level
// differential test covers them here. The net: a token cycles
// work→buffer→work (timed hyper-exponential, instant return), a mode place
// toggles on a second timer, and a reactivating drain resamples whenever
// the mode flips.
func buildHyperExpNet() *Model {
	m := NewModel("hyperexp")
	work := m.Place("work", 1)
	buffer := m.Place("buffer", 0)
	mode := m.Place("mode", 0)
	modeClock := m.Place("mode_clock", 1)
	pool := m.Place("pool", 3)
	drained := m.Place("drained", 0)

	m.AddTimed(Activity{
		Name:  "serve",
		Input: AllOf(work),
		Delay: func(mk *Marking, src rng.Source) float64 {
			d := rng.HyperExponential{P: 0.2, MeanA: 5, MeanB: 0.5}
			return d.Sample(src)
		},
		Output: Out(func(mk *Marking) { mk.Move(work, buffer) }),
	})
	m.AddInstant(Activity{
		Name:   "recycle",
		Input:  AllOf(buffer),
		Output: Out(func(mk *Marking) { mk.Move(buffer, work) }),
	})
	m.AddTimed(Activity{
		Name:  "mode_flip",
		Input: AllOf(modeClock),
		Delay: func(mk *Marking, src rng.Source) float64 {
			return rng.Exponential{MeanValue: 3}.Sample(src)
		},
		Output: Out(func(mk *Marking) {
			if mk.Has(mode) {
				mk.Clear(mode)
			} else {
				mk.Set(mode, 1)
			}
		}, mode),
	})
	m.AddTimed(Activity{
		Name:  "drain",
		Input: AllOf(pool),
		Delay: func(mk *Marking, src rng.Source) float64 {
			d := rng.HyperExponential{P: 0.5, MeanA: 20, MeanB: 2}
			if mk.Has(mode) {
				d.MeanB = 0.2
			}
			return d.Sample(src)
		},
		Output:       Out(func(mk *Marking) { mk.Move(pool, drained) }),
		ReactivateOn: []*Place{mode},
	})
	// Refill keeps the trajectory alive past the pool's exhaustion; its
	// input gate is deliberately undeclared to mix conservative rescans
	// into the same differential trajectory.
	m.AddInstant(Activity{
		Name:  "refill",
		Input: When(func(mk *Marking) bool { return mk.Get(drained) >= 3 }),
		Output: Out(func(mk *Marking) {
			mk.Clear(drained)
			mk.Set(pool, 3)
		}),
	})
	return m
}

type firing struct {
	t    float64
	name string
}

// runHyperExp collects the trace and reward totals of one trajectory of the
// hyper-exponential net under the chosen scheduler.
func runHyperExp(t *testing.T, seed uint64, fullScan bool, horizon float64) ([]firing, float64, float64, uint64) {
	t.Helper()
	m := buildHyperExpNet()
	sim, err := NewSimulator(m, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sim.FullScan = fullScan
	work := m.LookupPlace("work")
	mode := m.LookupPlace("mode")
	busy := sim.AddRateReward("busy", func(mk *Marking) float64 {
		return float64(mk.Get(work))
	}, work)
	modal := sim.AddRateReward("modal", func(mk *Marking) float64 {
		if mk.Has(mode) {
			return 1
		}
		return 0
	}) // undeclared: refreshed after every firing
	var drain *Activity
	for _, a := range m.Activities() {
		if a.Name == "drain" {
			drain = a
		}
	}
	drains := sim.AddImpulse("drains", drain, func(*Marking) float64 { return 1 })
	var events []firing
	sim.SetTrace(func(tm float64, a *Activity, _ *Marking) {
		events = append(events, firing{tm, a.Name})
	})
	sim.RunUntil(horizon)
	return events, busy.Integral(), modal.Integral(), drains.Count()
}

// TestHyperExponentialDifferential asserts bit-identical traces and reward
// totals between the incremental and full-scan schedulers on a net with
// hyper-exponential delays, reactivation and undeclared gates.
func TestHyperExponentialDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 11, 99} {
		incr, ibusy, imodal, idrains := runHyperExp(t, seed, false, 500)
		full, fbusy, fmodal, fdrains := runHyperExp(t, seed, true, 500)
		if len(incr) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if len(incr) != len(full) {
			t.Fatalf("seed %d: event counts differ: %d vs %d", seed, len(incr), len(full))
		}
		for i := range incr {
			if incr[i] != full[i] {
				t.Fatalf("seed %d: event %d differs: %+v vs %+v", seed, i, incr[i], full[i])
			}
		}
		if ibusy != fbusy || imodal != fmodal {
			t.Fatalf("seed %d: reward integrals differ: (%v, %v) vs (%v, %v)",
				seed, ibusy, imodal, fbusy, fmodal)
		}
		if idrains != fdrains {
			t.Fatalf("seed %d: impulse counts differ: %d vs %d", seed, idrains, fdrains)
		}
	}
}

// TestFullScanToggleMidRun flips the scheduler mode between segments of a
// single trajectory: both paths maintain the same caches, so toggling must
// not perturb the trajectory relative to a pure run.
func TestFullScanToggleMidRun(t *testing.T) {
	collect := func(toggle bool) []firing {
		m := buildHyperExpNet()
		sim, err := NewSimulator(m, rng.New(17))
		if err != nil {
			t.Fatal(err)
		}
		var events []firing
		sim.SetTrace(func(tm float64, a *Activity, _ *Marking) {
			events = append(events, firing{tm, a.Name})
		})
		for seg := 1; seg <= 4; seg++ {
			if toggle {
				sim.FullScan = seg%2 == 1
			}
			sim.RunUntil(float64(seg) * 50)
		}
		return events
	}
	pure := collect(false)
	mixed := collect(true)
	if len(pure) != len(mixed) {
		t.Fatalf("event counts differ: %d vs %d", len(pure), len(mixed))
	}
	for i := range pure {
		if pure[i] != mixed[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, pure[i], mixed[i])
		}
	}
}

// TestResetReusesSchedulerState is the Reset regression guard for the
// incremental scheduler: after a completed trajectory, Reset must clear
// rewards, impulse counts and dirty-tracking state while retaining the
// dependency index, and a re-run with the same source state must behave
// like a fresh simulator.
func TestResetReusesSchedulerState(t *testing.T) {
	m := buildHyperExpNet()
	sim, err := NewSimulator(m, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	work := m.LookupPlace("work")
	busy := sim.AddRateReward("busy", func(mk *Marking) float64 {
		return float64(mk.Get(work))
	}, work)
	var drain *Activity
	for _, a := range m.Activities() {
		if a.Name == "drain" {
			drain = a
		}
	}
	drains := sim.AddImpulse("drains", drain, func(*Marking) float64 { return 1 })
	sim.RunUntil(200)
	if drains.Count() == 0 || busy.Integral() == 0 {
		t.Fatal("first trajectory accrued nothing; test is vacuous")
	}

	sim.Reset()
	if sim.Now() != 0 {
		t.Fatal("Reset did not rewind clock")
	}
	if busy.Integral() != 0 {
		t.Fatalf("Reset left rate integral %v", busy.Integral())
	}
	if drains.Count() != 0 || drains.Total() != 0 {
		t.Fatalf("Reset left impulse state count=%d total=%v", drains.Count(), drains.Total())
	}
	mk := sim.Marking()
	if len(mk.dirty) != 0 || len(mk.log) != 0 {
		t.Fatalf("Reset left open dirty state: dirty=%v log=%v", mk.dirty, mk.log)
	}
	if m.deps == nil {
		t.Fatal("Reset dropped the dependency index")
	}
	for _, p := range m.Places() {
		if mk.Get(p) != p.Initial {
			t.Fatalf("place %q = %d after Reset, want %d", p.Name, mk.Get(p), p.Initial)
		}
	}

	// The reused simulator must stay bit-identical to a fresh one driven
	// by a source in the same state. The reset simulator's source has
	// advanced through the first trajectory, so mirror that consumption
	// in the fresh simulator's source before comparing.
	var reused []firing
	sim.SetTrace(func(tm float64, a *Activity, _ *Marking) {
		reused = append(reused, firing{tm, a.Name})
	})
	sim.RunUntil(200)
	if drains.Count() == 0 {
		t.Fatal("reused simulator accrued no impulses")
	}
	if len(reused) == 0 {
		t.Fatal("reused simulator fired nothing")
	}

	// Cross-check reuse against the full-scan scheduler: Reset + re-run
	// under both modes from identically-seeded sources must agree.
	runTwice := func(fullScan bool) []firing {
		m2 := buildHyperExpNet()
		s2, err := NewSimulator(m2, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		s2.FullScan = fullScan
		s2.RunUntil(200)
		s2.Reset()
		var out []firing
		s2.SetTrace(func(tm float64, a *Activity, _ *Marking) {
			out = append(out, firing{tm, a.Name})
		})
		s2.RunUntil(200)
		return out
	}
	incr := runTwice(false)
	full := runTwice(true)
	if len(incr) != len(full) || len(incr) != len(reused) {
		t.Fatalf("post-reset event counts differ: reused=%d incr=%d full=%d",
			len(reused), len(incr), len(full))
	}
	for i := range incr {
		if incr[i] != full[i] || incr[i] != reused[i] {
			t.Fatalf("post-reset event %d differs: reused=%+v incr=%+v full=%+v",
				i, reused[i], incr[i], full[i])
		}
	}
}
