package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Sample variance of that classic data set is 32/7.
	if want := 32.0 / 7; math.Abs(a.Variance()-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator not zeroed")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Fatal("single-observation accumulator wrong")
	}
	iv := a.CI(0.95)
	if !math.IsInf(iv.HalfWide, 1) {
		t.Fatalf("CI of single observation should be infinite, got %v", iv.HalfWide)
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var a Accumulator
		var xs []float64
		n := src.Intn(50) + 2
		for i := 0; i < n; i++ {
			x := src.Float64()*100 - 50
			xs = append(xs, x)
			a.Add(x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classic t-table values.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 4, 2.776},
		{0.975, 9, 2.262},
		{0.975, 29, 2.045},
		{0.95, 9, 1.833},
		{0.995, 9, 3.250},
		{0.975, 1000, 1.962},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 0.005*c.want {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 3, 10, 50} {
		up := TQuantile(0.9, df)
		down := TQuantile(0.1, df)
		if math.Abs(up+down) > 1e-9 {
			t.Errorf("df=%d: quantiles not symmetric: %v vs %v", df, up, down)
		}
	}
	if TQuantile(0.5, 7) != 0 {
		t.Error("median of t distribution should be 0")
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []int{2, 5, 20} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.999} {
			q := TQuantile(p, df)
			if back := TCDF(q, df); math.Abs(back-p) > 1e-6 {
				t.Errorf("df=%d p=%v: round trip gave %v", df, p, back)
			}
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta edges wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.7} {
		lhs := RegIncBeta(2.5, 1.5, x)
		rhs := 1 - RegIncBeta(1.5, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestCICoverage(t *testing.T) {
	// Empirical check: 95% CIs over normal samples should contain the true
	// mean about 95% of the time.
	src := rng.New(77)
	covered := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var a Accumulator
		for j := 0; j < 10; j++ {
			a.Add(5 + src.NormFloat64())
		}
		if a.CI(0.95).Contains(5) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("95%% CI empirical coverage = %v", frac)
	}
}

func TestIntervalAccessors(t *testing.T) {
	iv := Interval{Mean: 10, HalfWide: 2, Level: 0.95, N: 5}
	if iv.Low() != 8 || iv.High() != 12 {
		t.Fatal("interval bounds wrong")
	}
	if !iv.Contains(8) || !iv.Contains(12) || iv.Contains(12.01) {
		t.Fatal("Contains wrong")
	}
	if iv.RelativeWidth() != 0.2 {
		t.Fatalf("relative width = %v", iv.RelativeWidth())
	}
	if iv.String() == "" {
		t.Fatal("empty String")
	}
	zero := Interval{Mean: 0, HalfWide: 1}
	if !math.IsInf(zero.RelativeWidth(), 1) {
		t.Fatal("zero-mean relative width should be +Inf")
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 1) // value 1 on [0, 2)
	w.Observe(2, 3) // value 3 on [2, 4)
	got := w.Finish(4)
	if want := (1*2 + 3*2) / 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("time-weighted mean = %v, want %v", got, want)
	}
	if math.Abs(w.Integral()-8) > 1e-12 {
		t.Fatalf("integral = %v, want 8", w.Integral())
	}
}

func TestTimeWeightedEmptyAndBackwards(t *testing.T) {
	var w TimeWeighted
	if w.Mean() != 0 {
		t.Fatal("empty time-weighted mean should be 0")
	}
	w.Observe(5, 2)
	w.Observe(4, 3) // non-monotone time: treated as zero-length interval
	if got := w.Finish(6); math.Abs(got-2.5) > 1.0 {
		// value 2 for 0 time, value 3 for 2h: mean = 3. Accept [2,3].
		if got < 2 || got > 3 {
			t.Fatalf("time-weighted mean after backwards observation = %v", got)
		}
	}
}

func TestBatchMeans(t *testing.T) {
	b := BatchMeans{Batches: 5}
	src := rng.New(123)
	for i := 0; i < 1000; i++ {
		b.Add(10 + src.NormFloat64())
	}
	iv, err := b.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(10) {
		t.Fatalf("batch-means CI %v does not contain true mean 10", iv)
	}
	if iv.N != 5 {
		t.Fatalf("CI over %d batches, want 5", iv.N)
	}
}

func TestBatchMeansTooFew(t *testing.T) {
	b := BatchMeans{Batches: 10}
	for i := 0; i < 5; i++ {
		b.Add(1)
	}
	if _, err := b.CI(0.95); err == nil {
		t.Fatal("expected error for too few observations")
	}
}

func TestBatchMeansQuantile(t *testing.T) {
	var b BatchMeans
	if b.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		b.Add(float64(i))
	}
	if q := b.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := b.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := b.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("median = %v", q)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	h.Add(10) // exactly High → overflow
	if h.Total() != 13 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d count = %d", i, h.Counts[i])
		}
		if math.Abs(h.Fraction(i)-1.0/13) > 1e-12 {
			t.Fatalf("bin %d fraction = %v", i, h.Fraction(i))
		}
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction should be 0")
	}
}

func TestConvergenceSnapshot(t *testing.T) {
	var a Accumulator
	a.Add(1)
	c := a.Convergence(0.95)
	if c.N != 1 || c.Mean != 1 || c.HalfWidth != 0 || c.RelWidth != 0 {
		t.Fatalf("n=1 snapshot = %+v", c)
	}
	a.Add(3)
	c = a.Convergence(0.95)
	if c.N != 2 || c.Mean != 2 {
		t.Fatalf("n=2 snapshot = %+v", c)
	}
	iv := a.CI(0.95)
	if c.HalfWidth != iv.HalfWide {
		t.Fatalf("half-width %v != CI %v", c.HalfWidth, iv.HalfWide)
	}
	if c.RelWidth != iv.HalfWide/2 {
		t.Fatalf("rel width = %v", c.RelWidth)
	}
}

func TestConvergenceZeroMeanIsFinite(t *testing.T) {
	var a Accumulator
	a.Add(-1)
	a.Add(1)
	c := a.Convergence(0.95)
	if c.RelWidth != 0 {
		t.Fatalf("zero-mean rel width = %v, want 0", c.RelWidth)
	}
	if math.IsInf(c.HalfWidth, 0) || math.IsNaN(c.HalfWidth) {
		t.Fatalf("half-width not finite: %v", c.HalfWidth)
	}
}

func TestConvergenceTrajectory(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	traj := ConvergenceTrajectory(vals, 0.95)
	if len(traj) != 4 {
		t.Fatalf("trajectory length = %d, want 4 (prefixes n>=2)", len(traj))
	}
	for i, c := range traj {
		if c.N != i+2 {
			t.Fatalf("entry %d has n=%d", i, c.N)
		}
	}
	// Half-widths shrink as evidence accumulates on this smooth sequence.
	if traj[len(traj)-1].HalfWidth >= traj[0].HalfWidth {
		t.Fatalf("half-width did not shrink: %v -> %v", traj[0].HalfWidth, traj[len(traj)-1].HalfWidth)
	}
	// The final entry must match folding everything into one accumulator.
	var a Accumulator
	for _, v := range vals {
		a.Add(v)
	}
	if want := a.Convergence(0.95); traj[len(traj)-1] != want {
		t.Fatalf("final entry %+v != accumulator %+v", traj[len(traj)-1], want)
	}
	if got := ConvergenceTrajectory([]float64{7}, 0.95); got != nil {
		t.Fatalf("single-value trajectory = %v, want nil", got)
	}
}

func TestMergeConvergenceMatchesSingleStream(t *testing.T) {
	vals := []float64{0.93, 0.91, 0.97, 0.88, 0.95, 0.9, 0.94, 0.92, 0.96, 0.89}
	want := ConvergenceTrajectory(vals, 0.95)
	// Any block partition of the same sequence must produce the identical
	// trajectory — this is what makes a sharded sweep's convergence record
	// indistinguishable from the monolithic run's.
	partitions := [][][]float64{
		{vals},
		{vals[:1], vals[1:4], vals[4:4], vals[4:]},
		{vals[:5], vals[5:]},
		{{vals[0]}, {vals[1]}, {vals[2]}, {vals[3]}, {vals[4]}, {vals[5]}, {vals[6]}, {vals[7]}, {vals[8]}, {vals[9]}},
	}
	for pi, blocks := range partitions {
		got := MergeConvergence(blocks, 0.95)
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d snapshots, want %d", pi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %d entry %d: %+v != %+v", pi, i, got[i], want[i])
			}
		}
	}
	if got := MergeConvergence(nil, 0.95); got != nil {
		t.Fatalf("empty merge = %v, want nil", got)
	}
}
