package stats

import "math"

// PairedAccumulator estimates a mean from (plain, reflected) antithetic
// replication pairs. Each pair contributes its average (a+b)/2 as one
// observation; because the two legs share a seed through a reflected stream,
// their errors are negatively correlated and the pair means carry less
// variance than the same number of independent replications. Confidence
// intervals are formed over the pair means (the pairs are i.i.d. even though
// the legs within a pair are not), and the accumulator also tracks the
// per-leg variance so the achieved variance-reduction factor can be
// reported, not just assumed.
//
// The zero value is ready to use.
type PairedAccumulator struct {
	pairs Accumulator // one observation per pair: (a+b)/2
	legs  Accumulator // one observation per leg: a, b
	cov   float64     // running Σ (a−ā)(b−b̄) over pairs, Welford-style
	meanA float64
	meanB float64
}

// AddPair incorporates one (plain, reflected) replication pair.
func (p *PairedAccumulator) AddPair(a, b float64) {
	n := float64(p.pairs.N() + 1)
	da := a - p.meanA
	db := b - p.meanB
	p.meanA += da / n
	p.meanB += db / n
	p.cov += da * (b - p.meanB)
	p.pairs.Add((a + b) / 2)
	p.legs.Add(a)
	p.legs.Add(b)
}

// Pairs returns the number of pairs incorporated.
func (p *PairedAccumulator) Pairs() int { return p.pairs.N() }

// Legs returns the number of individual replications (2 × Pairs).
func (p *PairedAccumulator) Legs() int { return p.legs.N() }

// Mean returns the estimate: the mean of the pair means, which equals the
// mean over all legs.
func (p *PairedAccumulator) Mean() float64 { return p.pairs.Mean() }

// PairVariance returns the unbiased sample variance of the pair means —
// the variance that actually drives the confidence interval.
func (p *PairedAccumulator) PairVariance() float64 { return p.pairs.Variance() }

// LegVariance returns the unbiased sample variance pooled over the
// individual legs — the variance plain Monte Carlo would have worked with.
func (p *PairedAccumulator) LegVariance() float64 { return p.legs.Variance() }

// LegCorrelation returns the sample correlation between the plain and
// reflected legs of a pair (0 with fewer than two pairs or degenerate
// variance). Effective antithetic pairing drives this negative.
func (p *PairedAccumulator) LegCorrelation() float64 {
	n := p.pairs.N()
	if n < 2 {
		return 0
	}
	// Per-leg variances are recovered from the exact identity
	// Var((a+b)/2) = (VarA + VarB + 2·Cov)/4 using the running covariance,
	// so the legs never need to be stored separately. The denominator uses
	// (VarA+VarB)/2 in place of √(VarA·VarB) (equal when the legs are
	// exchangeable, an upper bound otherwise by AM ≥ GM, so |ρ| is never
	// overstated).
	cov := p.cov / float64(n-1)
	sumVar := 4*p.pairs.Variance() - 2*cov
	if sumVar <= 0 {
		return 0
	}
	rho := 2 * cov / sumVar
	if math.IsNaN(rho) {
		return 0
	}
	return rho
}

// VarianceReductionFactor returns the measured efficiency gain of the
// antithetic design: the ratio of the variance a plain-MC estimate of the
// same budget (2n independent legs) would have to the variance of the
// paired estimate. Equivalently s²_leg / (2 · s²_pair): values above 1 mean
// the pairing helped; a perfectly uncorrelated pairing gives ≈ 1. Returns
// +Inf when the pair means are degenerate (zero variance) and 0 when there
// are fewer than two pairs.
func (p *PairedAccumulator) VarianceReductionFactor() float64 {
	if p.pairs.N() < 2 {
		return 0
	}
	pv := p.pairs.Variance()
	lv := p.legs.Variance()
	if pv == 0 {
		if lv == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return lv / (2 * pv)
}

// CI returns the confidence interval over the pair means at the given
// level, with Pairs−1 degrees of freedom.
func (p *PairedAccumulator) CI(level float64) Interval {
	return p.pairs.CI(level)
}

// Convergence returns the convergence snapshot of the pair-mean estimate.
func (p *PairedAccumulator) Convergence(level float64) Convergence {
	return p.pairs.Convergence(level)
}

// PairedConvergenceTrajectory folds consecutive (plain, reflected) values —
// leg order a0, b0, a1, b1, … — into one convergence snapshot per completed
// pair with at least two pairs. A trailing unpaired leg is ignored. The fold
// order is the caller's, so the trajectory is scheduling-independent, and
// MergePairedConvergence over per-block slices of the same flattened
// sequence produces the identical trajectory.
func PairedConvergenceTrajectory(legs []float64, level float64) []Convergence {
	return MergePairedConvergence([][]float64{legs}, level)
}

// MergePairedConvergence is the paired analogue of MergeConvergence: it
// folds per-block leg values (ordered by manifest position, pairs aligned
// to even global offsets) into the pair-mean convergence trajectory the
// monolithic run would have produced — bit-identical at any block layout
// that preserves the flattened order.
func MergePairedConvergence(blocks [][]float64, level float64) []Convergence {
	var acc PairedAccumulator
	var out []Convergence
	var pendingLeg float64
	havePending := false
	for _, vals := range blocks {
		for _, v := range vals {
			if !havePending {
				pendingLeg = v
				havePending = true
				continue
			}
			acc.AddPair(pendingLeg, v)
			havePending = false
			if acc.Pairs() >= 2 {
				out = append(out, acc.Convergence(level))
			}
		}
	}
	return out
}

// ReplicationsToHalfWidth folds values in order and returns the number of
// observations needed before the CI half-width at the given level first
// drops to target or below (the first crossing is reported; no check is
// made that the interval stays inside afterwards). Returns −1 when the
// trajectory never reaches the target.
func ReplicationsToHalfWidth(values []float64, level, target float64) int {
	var acc Accumulator
	for i, v := range values {
		acc.Add(v)
		if acc.N() >= 2 && acc.CI(level).HalfWide <= target {
			return i + 1
		}
	}
	return -1
}

// PairedReplicationsToHalfWidth is the paired analogue: legs are folded in
// (plain, reflected) order and the count returned is in legs (replications
// simulated), not pairs, so it is directly comparable to
// ReplicationsToHalfWidth on a plain sequence.
func PairedReplicationsToHalfWidth(legs []float64, level, target float64) int {
	var acc PairedAccumulator
	for i := 0; i+1 < len(legs); i += 2 {
		acc.AddPair(legs[i], legs[i+1])
		if acc.Pairs() >= 2 && acc.CI(level).HalfWide <= target {
			return i + 2
		}
	}
	return -1
}
