// Package stats provides the estimation machinery used to turn raw
// simulation output into point estimates with confidence intervals: Welford
// accumulators, Student-t intervals, time-weighted means for continuous-time
// statistics, batch means for steady-state output analysis, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 1 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean     float64
	HalfWide float64
	Level    float64
	N        int
}

// Low returns the interval's lower bound.
func (iv Interval) Low() float64 { return iv.Mean - iv.HalfWide }

// High returns the interval's upper bound.
func (iv Interval) High() float64 { return iv.Mean + iv.HalfWide }

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Low() && x <= iv.High()
}

// RelativeWidth returns HalfWide / |Mean| (infinite for a zero mean with a
// non-degenerate interval).
func (iv Interval) RelativeWidth() float64 {
	if iv.Mean == 0 {
		if iv.HalfWide == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWide / math.Abs(iv.Mean)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", iv.Mean, iv.HalfWide, iv.Level*100, iv.N)
}

// CI returns the confidence interval for the mean at the given level
// (e.g. 0.95 — the paper's confidence level) using the Student-t
// distribution with n-1 degrees of freedom. With fewer than two
// observations the half-width is infinite.
func (a *Accumulator) CI(level float64) Interval {
	iv := Interval{Mean: a.mean, Level: level, N: a.n}
	if a.n < 2 {
		iv.HalfWide = math.Inf(1)
		return iv
	}
	iv.HalfWide = TQuantile(1-(1-level)/2, a.n-1) * a.StdErr()
	return iv
}

// Convergence is a point-in-time view of an accumulating estimate — the
// snapshot the observability layer journals after each replication to
// expose how the confidence interval tightens as evidence accumulates.
type Convergence struct {
	// N is the number of observations folded in so far.
	N int `json:"n"`
	// Mean is the running sample mean.
	Mean float64 `json:"mean"`
	// HalfWidth is the CI half-width at the snapshot's level.
	HalfWidth float64 `json:"half_width"`
	// RelWidth is HalfWidth / |Mean| (0 when not finite, so snapshots are
	// always JSON-marshalable).
	RelWidth float64 `json:"rel_width"`
}

// Convergence returns the accumulator's current convergence snapshot at
// the given confidence level. With fewer than two observations the
// half-width is undefined; it is reported as 0 with N carrying the truth.
func (a *Accumulator) Convergence(level float64) Convergence {
	c := Convergence{N: a.n, Mean: a.mean}
	if a.n < 2 {
		return c
	}
	iv := a.CI(level)
	c.HalfWidth = iv.HalfWide
	if rw := iv.RelativeWidth(); !math.IsInf(rw, 0) && !math.IsNaN(rw) {
		c.RelWidth = rw
	}
	return c
}

// ConvergenceTrajectory folds the values in order and returns one
// convergence snapshot per prefix with at least two observations — the
// CI-half-width trajectory of a replication sequence. The fold order is
// the caller's value order, so the trajectory is scheduling-independent.
func ConvergenceTrajectory(values []float64, level float64) []Convergence {
	var acc Accumulator
	var out []Convergence
	for _, v := range values {
		acc.Add(v)
		if acc.N() >= 2 {
			out = append(out, acc.Convergence(level))
		}
	}
	return out
}

// MergeConvergence folds per-block replication values — already ordered
// by their position in a sweep manifest — into the single convergence
// trajectory the monolithic run would have produced. Because the fold is
// the plain concatenation order, the result is identical (bit for bit) to
// ConvergenceTrajectory over the flattened sequence no matter how many
// workers produced the blocks or in what order they finished.
func MergeConvergence(blocks [][]float64, level float64) []Convergence {
	var acc Accumulator
	var out []Convergence
	for _, vals := range blocks {
		for _, v := range vals {
			acc.Add(v)
			if acc.N() >= 2 {
				out = append(out, acc.Convergence(level))
			}
		}
	}
	return out
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom (p in (0,1)). It inverts the regularised incomplete
// beta function by bisection on the CDF, which is plenty fast for the
// handful of calls per experiment.
func TQuantile(p float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e8 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T ≤ t) for the Student-t distribution with df degrees of
// freedom, via the regularised incomplete beta function.
func TCDF(t float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := float64(df) / (float64(df) + t*t)
	ib := RegIncBeta(float64(df)/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// RegIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnFront := lnGamma(a+b) - lnGamma(a) - lnGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lnGamma wraps math.Lgamma, discarding the sign (arguments here are
// always positive).
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// TimeWeighted accumulates the time-average of a piecewise-constant signal,
// e.g. the number of tokens in a SAN place over simulated time.
type TimeWeighted struct {
	started   bool
	lastT     float64
	lastV     float64
	integral  float64
	totalTime float64
}

// Observe records that the signal has value v from time t onward. Calls
// must have non-decreasing t.
func (w *TimeWeighted) Observe(t, v float64) {
	if w.started {
		dt := t - w.lastT
		if dt < 0 {
			dt = 0
		}
		w.integral += w.lastV * dt
		w.totalTime += dt
	}
	w.started = true
	w.lastT = t
	w.lastV = v
}

// Finish closes the observation window at time t and returns the
// time-averaged value.
func (w *TimeWeighted) Finish(t float64) float64 {
	w.Observe(t, w.lastV)
	return w.Mean()
}

// Mean returns the time average observed so far (0 before any interval has
// elapsed).
func (w *TimeWeighted) Mean() float64 {
	if w.totalTime == 0 {
		return 0
	}
	return w.integral / w.totalTime
}

// Integral returns the accumulated ∫v dt.
func (w *TimeWeighted) Integral() float64 { return w.integral }

// BatchMeans performs the method of batch means on a single long run:
// the observations are grouped into Batches equal-size batches and batch
// averages are treated as (approximately) independent samples.
type BatchMeans struct {
	Batches int
	values  []float64
}

// Add appends one observation.
func (b *BatchMeans) Add(x float64) { b.values = append(b.values, x) }

// N returns the number of raw observations.
func (b *BatchMeans) N() int { return len(b.values) }

// CI returns the batch-means confidence interval at the given level.
// It returns an error when there are too few observations to form the
// requested batches.
func (b *BatchMeans) CI(level float64) (Interval, error) {
	k := b.Batches
	if k < 2 {
		k = 10
	}
	if len(b.values) < 2*k {
		return Interval{}, fmt.Errorf("batch means: %d observations is too few for %d batches", len(b.values), k)
	}
	size := len(b.values) / k
	var acc Accumulator
	for i := 0; i < k; i++ {
		sum := 0.0
		for _, v := range b.values[i*size : (i+1)*size] {
			sum += v
		}
		acc.Add(sum / float64(size))
	}
	return acc.CI(level), nil
}

// Quantile returns the q-th empirical quantile (0 ≤ q ≤ 1) of the values
// seen so far, or 0 when empty.
func (b *BatchMeans) Quantile(q float64) float64 {
	if len(b.values) == 0 {
		return 0
	}
	sorted := make([]float64, len(b.values))
	copy(sorted, b.values)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Histogram counts observations in equal-width bins over [Low, High); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Low, High float64
	Counts    []int
	Under     int
	Over      int
	total     int
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(low, high float64, bins int) *Histogram {
	return &Histogram{Low: low, High: high, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Low:
		h.Under++
	case x >= h.High:
		h.Over++
	default:
		i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
