package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPairedAccumulatorMeanMatchesLegs(t *testing.T) {
	var p PairedAccumulator
	var flat Accumulator
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		a, b := r.Float64(), r.Float64()
		p.AddPair(a, b)
		flat.Add(a)
		flat.Add(b)
	}
	if math.Abs(p.Mean()-flat.Mean()) > 1e-12 {
		t.Fatalf("paired mean %v != flat mean %v", p.Mean(), flat.Mean())
	}
	if p.Pairs() != 500 || p.Legs() != 1000 {
		t.Fatalf("counts pairs=%d legs=%d, want 500/1000", p.Pairs(), p.Legs())
	}
	if math.Abs(p.LegVariance()-flat.Variance()) > 1e-12 {
		t.Fatalf("leg variance %v != flat variance %v", p.LegVariance(), flat.Variance())
	}
}

// Perfectly anticorrelated pairs (b = 1−a) collapse the pair variance to
// zero and the variance-reduction factor to +Inf; independent pairs leave
// it near 1; positively correlated pairs push it below 1.
func TestVarianceReductionFactorRegimes(t *testing.T) {
	r := rng.New(9)
	var anti, indep, comono PairedAccumulator
	for i := 0; i < 4000; i++ {
		a := r.Float64()
		anti.AddPair(a, 1-a)
		indep.AddPair(a, r.Float64())
		comono.AddPair(a, a)
	}
	if f := anti.VarianceReductionFactor(); !math.IsInf(f, 1) {
		t.Errorf("antithetic factor = %v, want +Inf", f)
	}
	if f := indep.VarianceReductionFactor(); f < 0.8 || f > 1.25 {
		t.Errorf("independent factor = %v, want ≈ 1", f)
	}
	if f := comono.VarianceReductionFactor(); f > 0.6 {
		t.Errorf("comonotone factor = %v, want ≈ 0.5", f)
	}
	if rho := anti.LegCorrelation(); rho > -0.99 {
		t.Errorf("antithetic leg correlation = %v, want ≈ -1", rho)
	}
	if rho := comono.LegCorrelation(); rho < 0.99 {
		t.Errorf("comonotone leg correlation = %v, want ≈ 1", rho)
	}
}

func TestPairedCIUsesPairCount(t *testing.T) {
	var p PairedAccumulator
	r := rng.New(12)
	for i := 0; i < 30; i++ {
		p.AddPair(r.Float64(), r.Float64())
	}
	iv := p.CI(0.95)
	if iv.N != 30 {
		t.Fatalf("CI over pairs has N=%d, want 30", iv.N)
	}
	if iv.HalfWide <= 0 || math.IsInf(iv.HalfWide, 0) {
		t.Fatalf("CI half-width %v not finite positive", iv.HalfWide)
	}
}

// The merged per-block paired trajectory must be identical to the
// flattened-sequence one at any block layout — the reduce contract lifted
// to pairs.
func TestMergePairedConvergenceBlockInvariance(t *testing.T) {
	r := rng.New(21)
	legs := make([]float64, 48)
	for i := range legs {
		legs[i] = r.Float64()
	}
	want := PairedConvergenceTrajectory(legs, 0.95)
	for _, sizes := range [][]int{{48}, {2, 46}, {8, 8, 8, 8, 8, 8}, {4, 20, 24}} {
		var blocks [][]float64
		at := 0
		for _, s := range sizes {
			blocks = append(blocks, legs[at:at+s])
			at += s
		}
		got := MergePairedConvergence(blocks, 0.95)
		if len(got) != len(want) {
			t.Fatalf("layout %v: %d snapshots, want %d", sizes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("layout %v: snapshot %d = %+v, want %+v", sizes, i, got[i], want[i])
			}
		}
	}
}

func TestPairedConvergenceIgnoresTrailingLeg(t *testing.T) {
	legs := []float64{1, 2, 3, 4, 5}
	got := PairedConvergenceTrajectory(legs, 0.95)
	want := PairedConvergenceTrajectory(legs[:4], 0.95)
	if len(got) != len(want) {
		t.Fatalf("trailing unpaired leg changed the trajectory: %d vs %d snapshots", len(got), len(want))
	}
}

func TestReplicationsToHalfWidth(t *testing.T) {
	r := rng.New(33)
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = r.Float64()
	}
	traj := ConvergenceTrajectory(vals, 0.95)
	target := traj[len(traj)-1].HalfWidth * 2
	n := ReplicationsToHalfWidth(vals, 0.95, target)
	if n <= 0 || n > len(vals) {
		t.Fatalf("ReplicationsToHalfWidth = %d, want in (0, %d]", n, len(vals))
	}
	// Verify it is the first crossing.
	var acc Accumulator
	for i := 0; i < n-1; i++ {
		acc.Add(vals[i])
		if acc.N() >= 2 && acc.CI(0.95).HalfWide <= target {
			t.Fatalf("crossing already at %d < reported %d", i+1, n)
		}
	}
	if ReplicationsToHalfWidth(vals, 0.95, 0) != -1 {
		t.Fatalf("unreachable target did not return -1")
	}
}

// Antithetic pairing must reach a target half-width in far fewer legs than
// plain folding on a monotone output — the paired counter is denominated in
// legs so the two are directly comparable.
func TestPairedReplicationsToHalfWidthBeatsPlain(t *testing.T) {
	r := rng.New(55)
	const n = 4000
	plain := make([]float64, n)
	paired := make([]float64, n)
	for i := 0; i < n; i += 2 {
		u1, u2 := r.Float64Open(), r.Float64Open()
		plain[i] = -math.Log(u1)
		plain[i+1] = -math.Log(u2)
		paired[i] = -math.Log(u1)
		paired[i+1] = -math.Log(1 - u1)
	}
	traj := ConvergenceTrajectory(plain, 0.95)
	target := traj[len(traj)-1].HalfWidth
	pn := PairedReplicationsToHalfWidth(paired, 0.95, target)
	if pn <= 0 {
		t.Fatalf("paired trajectory never reached plain target %v", target)
	}
	if pn*2 > n {
		t.Fatalf("paired needed %d legs to match plain's %d-leg half-width; expected at least 2x fewer", pn, n)
	}
}
