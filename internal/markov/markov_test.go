package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/failure"
)

func TestTwoStateChain(t *testing.T) {
	// Classic up/down chain: π_up = µ/(λ+µ).
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 1, 2); err != nil { // fail at rate 2
		t.Fatal(err)
	}
	if err := c.SetRate(1, 0, 6); err != nil { // recover at rate 6
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.75) > 1e-12 || math.Abs(pi[1]-0.25) > 1e-12 {
		t.Fatalf("π = %v, want [0.75 0.25]", pi)
	}
}

func TestSingleState(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil || pi[0] != 1 {
		t.Fatalf("π = %v, err = %v", pi, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero states accepted")
	}
	c, _ := New(3)
	if err := c.SetRate(0, 0, 1); err == nil {
		t.Error("self transition accepted")
	}
	if err := c.SetRate(-1, 0, 1); err == nil {
		t.Error("out-of-range state accepted")
	}
	if err := c.SetRate(0, 1, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if c.Rate(0, 1) != 0 {
		t.Error("unset rate not zero")
	}
}

func TestDisconnectedChainFails(t *testing.T) {
	c, _ := New(3)
	// State 2 unreachable and absorbing-from-nowhere: singular system.
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(); err == nil {
		t.Fatal("disconnected chain solved")
	}
}

// TestBirthDeathClosedForm: the truncated Figure 3 chain has the known
// stationary form π_k = π₁·(λc/(λc+µ))^{k-1}·…; validate against direct
// balance equations instead: rates in must equal rates out for each state.
func TestBirthDeathBalance(t *testing.T) {
	lambdaI, lambdaC, mu := 0.9, 2.5, 6.0
	const k = 8
	c, err := BirthDeath(lambdaI, lambdaC, mu, k)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("π sums to %v", sum)
	}
	// Global balance at each state: inflow = outflow.
	for i := 0; i <= k; i++ {
		in, out := 0.0, 0.0
		for j := 0; j <= k; j++ {
			if j == i {
				continue
			}
			in += pi[j] * c.Rate(j, i)
			out += pi[i] * c.Rate(i, j)
		}
		if math.Abs(in-out) > 1e-10 {
			t.Fatalf("balance broken at state %d: in=%v out=%v", i, in, out)
		}
	}
}

// TestFigure3MatchesSection6: solving the paper's chain reproduces the
// conditional follow-on probability p = λc/(λc+µ), and the r↔p conversion
// of internal/failure agrees with the chain's parameters.
func TestFigure3MatchesSection6(t *testing.T) {
	// The paper's worked example: n=1024, MTTF=25yr, MTTR=10min, p=0.3.
	n := 1024
	perNodeRate := 1 / cluster.Years(25)
	mu := 1 / cluster.Minutes(10)
	p := 0.3
	r, err := failure.FactorFromConditionalProb(p, n, perNodeRate, mu)
	if err != nil {
		t.Fatal(err)
	}
	lambdaI := float64(n) * perNodeRate
	lambdaC := lambdaI * (1 + r)
	if got := ConditionalFollowOnProbability(lambdaC, mu); math.Abs(got-p) > 1e-9 {
		t.Fatalf("closed-form p = %v, want %v", got, p)
	}
	// In the solved chain, the fraction of F1 departures that go deeper
	// (to F2) rather than home equals p.
	c, err := BirthDeath(lambdaI, lambdaC, mu, 6)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	deeper := pi[1] * c.Rate(1, 2)
	home := pi[1] * c.Rate(1, 0)
	if got := deeper / (deeper + home); math.Abs(got-p) > 1e-9 {
		t.Fatalf("chain-implied p = %v, want %v", got, p)
	}
	// Up fraction sanity: failures are rare at 25-year MTTF, so π₀ ≈ 1.
	if up := UpFraction(pi); up < 0.99 {
		t.Fatalf("up fraction = %v", up)
	}
}

func TestBirthDeathValidation(t *testing.T) {
	if _, err := BirthDeath(0, 1, 1, 3); err == nil {
		t.Error("zero λi accepted")
	}
	if _, err := BirthDeath(1, 1, 1, 0); err == nil {
		t.Error("zero states accepted")
	}
}

func TestUpFractionEmpty(t *testing.T) {
	if UpFraction(nil) != 0 {
		t.Fatal("empty π up fraction should be 0")
	}
}

// TestSteadyStateProperty: for random irreducible 3-state chains the
// solution is a distribution satisfying global balance.
func TestSteadyStateProperty(t *testing.T) {
	f := func(r01, r02, r10, r12, r20, r21 uint16) bool {
		rate := func(v uint16) float64 { return float64(v%1000)/100 + 0.01 }
		c, err := New(3)
		if err != nil {
			return false
		}
		pairs := []struct {
			i, j int
			v    uint16
		}{{0, 1, r01}, {0, 2, r02}, {1, 0, r10}, {1, 2, r12}, {2, 0, r20}, {2, 1, r21}}
		for _, p := range pairs {
			if err := c.SetRate(p.i, p.j, rate(p.v)); err != nil {
				return false
			}
		}
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := 0; i < 3; i++ {
			in, out := 0.0, 0.0
			for j := 0; j < 3; j++ {
				if i == j {
					continue
				}
				in += pi[j] * c.Rate(j, i)
				out += pi[i] * c.Rate(i, j)
			}
			if math.Abs(in-out) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
