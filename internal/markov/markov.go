// Package markov provides a small continuous-time Markov chain (CTMC)
// solver — steady-state distribution by direct Gaussian elimination — and
// a builder for the paper's Figure 3 birth–death process of correlated
// failures. Solving that chain numerically validates the closed-form
// relations of Section 6 (p = λc/(λc+µ), r = pµ/((1−p)nλ) − 1) and yields
// availability-style measures the simulation can be checked against.
package markov

import (
	"fmt"
	"math"
)

// Chain is a CTMC given by its generator: Rate[i][j] is the transition
// rate from state i to state j (i ≠ j); diagonal entries are ignored and
// derived as the negative row sum.
type Chain struct {
	rates [][]float64
}

// New creates a chain with n states and no transitions.
func New(n int) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: need at least one state, got %d", n)
	}
	rates := make([][]float64, n)
	for i := range rates {
		rates[i] = make([]float64, n)
	}
	return &Chain{rates: rates}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return len(c.rates) }

// SetRate sets the transition rate from state i to state j.
func (c *Chain) SetRate(i, j int, rate float64) error {
	n := c.N()
	switch {
	case i < 0 || i >= n || j < 0 || j >= n:
		return fmt.Errorf("markov: state out of range: %d -> %d (n=%d)", i, j, n)
	case i == j:
		return fmt.Errorf("markov: self transition %d -> %d", i, j)
	case rate < 0:
		return fmt.Errorf("markov: negative rate %v", rate)
	}
	c.rates[i][j] = rate
	return nil
}

// Rate returns the transition rate from i to j (0 when unset).
func (c *Chain) Rate(i, j int) float64 { return c.rates[i][j] }

// SteadyState solves πQ = 0, Σπ = 1 by Gaussian elimination with partial
// pivoting, where Q is the generator. The chain must be irreducible for
// the solution to be the unique stationary distribution.
func (c *Chain) SteadyState() ([]float64, error) {
	n := c.N()
	if n == 1 {
		return []float64{1}, nil
	}
	// Build Qᵀ with the normalisation row replacing the last equation:
	// A x = b where A = Qᵀ except row n-1 = ones, b = e_{n-1}.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for i := 0; i < n; i++ {
		diag := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				diag += c.rates[i][j]
			}
		}
		for j := 0; j < n; j++ {
			var q float64
			switch {
			case i == j:
				q = -diag
			default:
				q = c.rates[i][j]
			}
			// Transpose: equation row j gets Q[i][j]·π_i.
			a[j][i] = q
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1

	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("markov: singular generator (chain not irreducible?)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	pi := make([]float64, n)
	for i := 0; i < n; i++ {
		pi[i] = a[i][n] / a[i][i]
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0
		}
		if pi[i] < 0 {
			return nil, fmt.Errorf("markov: negative stationary probability π[%d]=%v", i, pi[i])
		}
	}
	return pi, nil
}

// BirthDeath builds the paper's Figure 3 chain truncated at maxFailures
// consecutive failures: state i means i failures have occurred since the
// last successful recovery. F0 →(λi)→ F1 →(λc)→ F2 → … and every Fi (i>0)
// returns to F0 at the recovery rate µ.
func BirthDeath(lambdaI, lambdaC, mu float64, maxFailures int) (*Chain, error) {
	if lambdaI <= 0 || lambdaC <= 0 || mu <= 0 {
		return nil, fmt.Errorf("markov: rates must be positive (λi=%v λc=%v µ=%v)", lambdaI, lambdaC, mu)
	}
	if maxFailures < 1 {
		return nil, fmt.Errorf("markov: maxFailures %d < 1", maxFailures)
	}
	c, err := New(maxFailures + 1)
	if err != nil {
		return nil, err
	}
	if err := c.SetRate(0, 1, lambdaI); err != nil {
		return nil, err
	}
	for i := 1; i < maxFailures; i++ {
		if err := c.SetRate(i, i+1, lambdaC); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= maxFailures; i++ {
		if err := c.SetRate(i, 0, mu); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ConditionalFollowOnProbability returns, for a solved Figure 3 chain, the
// probability that a failure state experiences another failure before
// recovering: λc/(λc+µ) — exposed for cross-checking against the paper's
// closed form and the solver.
func ConditionalFollowOnProbability(lambdaC, mu float64) float64 {
	if lambdaC <= 0 || mu <= 0 {
		return 0
	}
	return lambdaC / (lambdaC + mu)
}

// UpFraction returns π₀ of a solved birth–death chain: the long-run
// fraction of time with no outstanding failure.
func UpFraction(pi []float64) float64 {
	if len(pi) == 0 {
		return 0
	}
	return pi[0]
}
