package blocks

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// BlockState classifies one block during a Scan.
type BlockState string

const (
	// StateComplete: a committed journal exists.
	StateComplete BlockState = "complete"
	// StateTorn: a journal file exists but did not commit (crashed writer).
	StateTorn BlockState = "torn"
	// StateLeased: an unexpired lease holds the block.
	StateLeased BlockState = "leased"
	// StateExpired: the only claim is a lapsed lease — reclaimable.
	StateExpired BlockState = "expired"
	// StateUnclaimed: no journal, no lease.
	StateUnclaimed BlockState = "unclaimed"
)

// BlockInfo is one block's scan line. State is single-valued: every block
// is in exactly one state, so the Status counters partition the plan.
type BlockInfo struct {
	Block int        `json:"block"`
	Cell  int        `json:"cell"`
	Reps  int        `json:"reps"`
	State BlockState `json:"state"`
	// Worker names the journal's committer (complete) or the lease holder
	// (leased/expired).
	Worker string `json:"worker,omitempty"`
	// WallMS is the committed block's wall time.
	WallMS float64 `json:"wall_ms,omitempty"`
	// ExpiresIn is the lease's remaining validity (negative once lapsed).
	ExpiresIn time.Duration `json:"-"`
	// TornJournal annotates a torn journal file regardless of State: a
	// torn block that a live lease is re-running classifies as leased, and
	// this flag is how the scan still reports the torn file underneath.
	TornJournal bool `json:"torn_journal,omitempty"`
}

// WorkerStats aggregates one worker's committed blocks.
type WorkerStats struct {
	Worker    string  `json:"worker"`
	Completed int     `json:"completed"`
	Events    uint64  `json:"events"`
	WallMS    float64 `json:"wall_ms"`
}

// Status summarises a run directory at one instant. The five state
// counters are a partition: Complete+Torn+Leased+Expired+Unclaimed ==
// Planned always (a block with both a torn journal and a lease counts
// once, under the state Scan resolves for it).
type Status struct {
	Planned, Complete, Torn, Leased, Expired, Unclaimed int
	// Events sums the committed blocks' event counts.
	Events uint64
	// WallMS sums the committed blocks' wall times (total compute spent).
	WallMS float64
	// Blocks lists every block in manifest order.
	Blocks []BlockInfo
	// Workers aggregates committed blocks per worker, sorted by name.
	Workers []WorkerStats
}

// Done reports whether every planned block has a committed journal.
func (s Status) Done() bool { return s.Complete == s.Planned }

// Scan inspects a run directory without modifying it: which blocks are
// committed, torn, leased, expired, or untouched, plus per-worker totals.
// It backs the -status verb and is safe to run beside active workers.
func Scan(dir string, now time.Time) (*Manifest, Status, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, Status{}, err
	}
	st := Status{Planned: len(m.Blocks)}
	byWorker := map[string]*WorkerStats{}
	for _, b := range m.Blocks {
		info := BlockInfo{Block: b.ID, Cell: b.CellIndex, Reps: b.Reps()}
		_, tr, jerr := ReadBlockJournal(dir, m, b)
		switch {
		case jerr == nil:
			info.State = StateComplete
			info.Worker = tr.Worker
			info.WallMS = tr.WallMS
			st.Complete++
			st.Events += tr.Events
			st.WallMS += tr.WallMS
			ws := byWorker[tr.Worker]
			if ws == nil {
				ws = &WorkerStats{Worker: tr.Worker}
				byWorker[tr.Worker] = ws
			}
			ws.Completed++
			ws.Events += tr.Events
			ws.WallMS += tr.WallMS
		case errors.Is(jerr, ErrIncomplete):
			// Resolve ONE state per block. Precedence: a live lease means a
			// worker is (re-)running the block right now — even over a torn
			// journal, which the re-run's commit will replace; a torn
			// journal with no live claim needs -resume; an expired lease is
			// reclaimable; otherwise the block is untouched. The torn-file
			// fact is preserved in TornJournal either way.
			info.TornJournal = journalExists(dir, b.ID)
			l, lerr := readLease(LeasePath(dir, b.ID))
			if lerr == nil {
				info.Worker = l.Worker
				info.ExpiresIn = time.Duration(l.ExpiresUnixMS-now.UnixMilli()) * time.Millisecond
			}
			switch {
			case lerr == nil && !l.Expired(now):
				info.State = StateLeased
				st.Leased++
			case info.TornJournal:
				info.State = StateTorn
				st.Torn++
			case lerr == nil:
				info.State = StateExpired
				st.Expired++
			default:
				info.State = StateUnclaimed
				st.Unclaimed++
			}
		default:
			return nil, Status{}, jerr
		}
		st.Blocks = append(st.Blocks, info)
	}
	names := make([]string, 0, len(byWorker))
	for name := range byWorker {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Workers = append(st.Workers, *byWorker[name])
	}
	return m, st, nil
}

// journalExists reports a journal file under the committed name,
// regardless of validity.
func journalExists(dir string, block int) bool {
	_, err := os.Stat(JournalPath(dir, block))
	return err == nil
}

// WriteStatus renders a Scan for terminals — the -status verb's output.
func WriteStatus(w io.Writer, m *Manifest, st Status) error {
	if _, err := fmt.Fprintf(w, "sweep %s  (%s, %d cells, %d blocks, hash %s)\n",
		m.Name, m.Kind, len(m.Cells), len(m.Blocks), shortHash(m.Hash)); err != nil {
		return err
	}
	fmt.Fprintf(w, "blocks  %d complete / %d planned", st.Complete, st.Planned)
	if st.Leased > 0 {
		fmt.Fprintf(w, "  |  %d leased", st.Leased)
	}
	if st.Expired > 0 {
		fmt.Fprintf(w, "  |  %d expired-lease", st.Expired)
	}
	if st.Torn > 0 {
		fmt.Fprintf(w, "  |  %d torn (run -resume)", st.Torn)
	}
	if st.Unclaimed > 0 {
		fmt.Fprintf(w, "  |  %d unclaimed", st.Unclaimed)
	}
	fmt.Fprintln(w)
	if st.Complete > 0 {
		fmt.Fprintf(w, "work    %d events, %.1f s wall across workers\n", st.Events, st.WallMS/1000)
	}
	for _, ws := range st.Workers {
		fmt.Fprintf(w, "worker  %-24s %4d blocks  %12d events  %8.1f s\n",
			ws.Worker, ws.Completed, ws.Events, ws.WallMS/1000)
	}
	for _, bi := range st.Blocks {
		if bi.State == StateLeased {
			fmt.Fprintf(w, "lease   block %d held by %s (expires in %v)\n",
				bi.Block, bi.Worker, bi.ExpiresIn.Round(time.Second))
		}
	}
	if st.Done() {
		fmt.Fprintln(w, "status  complete — ready to -reduce")
	} else {
		fmt.Fprintf(w, "status  in progress — %d blocks remaining\n", st.Planned-st.Complete)
	}
	return nil
}

// statusJSON is the machine-readable shape of a Scan — the -status -json
// output. Durations are exported as milliseconds so consumers need no
// Go-duration parsing.
type statusJSON struct {
	Name      string        `json:"name"`
	Kind      string        `json:"kind"`
	Hash      string        `json:"hash"`
	Cells     int           `json:"cells"`
	Planned   int           `json:"planned"`
	Complete  int           `json:"complete"`
	Torn      int           `json:"torn"`
	Leased    int           `json:"leased"`
	Expired   int           `json:"expired"`
	Unclaimed int           `json:"unclaimed"`
	Done      bool          `json:"done"`
	Events    uint64        `json:"events"`
	WallMS    float64       `json:"wall_ms"`
	Workers   []WorkerStats `json:"workers,omitempty"`
	Blocks    []blockJSON   `json:"blocks"`
}

type blockJSON struct {
	BlockInfo
	// ExpiresInMS flattens BlockInfo.ExpiresIn (negative once lapsed);
	// omitted for states without a lease.
	ExpiresInMS *int64 `json:"expires_in_ms,omitempty"`
}

// WriteStatusJSON renders a Scan as one indented JSON document — the
// machine-readable twin of WriteStatus, for scripts and dashboards.
func WriteStatusJSON(w io.Writer, m *Manifest, st Status) error {
	out := statusJSON{
		Name: m.Name, Kind: m.Kind, Hash: m.Hash, Cells: len(m.Cells),
		Planned: st.Planned, Complete: st.Complete, Torn: st.Torn,
		Leased: st.Leased, Expired: st.Expired, Unclaimed: st.Unclaimed,
		Done: st.Done(), Events: st.Events, WallMS: st.WallMS,
		Workers: st.Workers,
	}
	for _, bi := range st.Blocks {
		bj := blockJSON{BlockInfo: bi}
		if bi.State == StateLeased || bi.State == StateExpired || (bi.Worker != "" && bi.State != StateComplete) {
			ms := bi.ExpiresIn.Milliseconds()
			bj.ExpiresInMS = &ms
		}
		out.Blocks = append(out.Blocks, bj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// shortHash abbreviates a manifest hash for display.
func shortHash(h string) string {
	const prefix = "sha256:"
	if len(h) >= len(prefix)+12 {
		return h[:len(prefix)+12]
	}
	return h
}
