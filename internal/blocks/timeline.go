package blocks

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Run-level span timeline: every block's claim → execute → commit life,
// reconstructed from the run directory's own artifacts (journal trailers,
// leases, heartbeats) and exported as Chrome trace-event JSON for Perfetto
// (ui.perfetto.dev) or chrome://tracing. One track (tid) per worker.
//
// Span timing comes from the data already on disk, not a new log: a
// trailer's "ts" stamp is the block's commit time and wall_ms its
// duration, so the executed span is [ts−wall_ms, ts]; a live lease is an
// open span from its acquisition to now; heartbeat flight-recorder events
// land as instants on the worker's track. Timestamps are exported relative
// to the earliest span so traces open at t≈0.

// timelineEvent mirrors the trace-event JSON shape (phasetrace.WriteChrome
// uses the same format for simulated-time traces; this one is wall-clock).
type timelineEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type timelineTrace struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []timelineEvent `json:"traceEvents"`
}

const usPerMS = 1e3

// WriteTimeline reconstructs the run's span timeline and writes it as one
// Chrome trace-event JSON document — the `ccsweep -timeline` verb.
func WriteTimeline(w io.Writer, dir string, now time.Time) error {
	m, st, err := Scan(dir, now)
	if err != nil {
		return err
	}
	hbs, err := ReadHeartbeats(dir)
	if err != nil {
		return err
	}

	// Assign one track per worker, in sorted-name order, discovering
	// workers from trailers, leases, and heartbeats alike.
	workerSet := map[string]bool{}
	trailers := make(map[int]*Trailer)
	for _, b := range m.Blocks {
		if tr, ok, _ := trailerOf(dir, m, b); ok && tr != nil {
			trailers[b.ID] = tr
			workerSet[tr.Worker] = true
		}
	}
	leases := make(map[int]Lease)
	for _, bi := range st.Blocks {
		if bi.State != StateLeased && bi.State != StateExpired {
			continue
		}
		if l, lerr := readLease(LeasePath(dir, bi.Block)); lerr == nil {
			leases[bi.Block] = l
			workerSet[l.Worker] = true
		}
	}
	for _, hb := range hbs {
		workerSet[hb.Worker] = true
	}
	workers := make([]string, 0, len(workerSet))
	for wname := range workerSet {
		workers = append(workers, wname)
	}
	sort.Strings(workers)
	tid := make(map[string]int, len(workers))
	for i, wname := range workers {
		tid[wname] = i + 1
	}

	const pid = 1
	ct := timelineTrace{
		DisplayTimeUnit: "ms",
		TraceEvents: []timelineEvent{{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("sweep %s (%s)", m.Name, shortHash(m.Hash))},
		}},
	}
	for _, wname := range workers {
		ct.TraceEvents = append(ct.TraceEvents, timelineEvent{
			Name: "thread_name", Phase: "M", Pid: pid, Tid: tid[wname],
			Args: map[string]any{"name": wname},
		})
	}

	// t0: earliest moment referenced anywhere, so the trace starts at ~0.
	t0 := now.UnixMilli()
	consider := func(ms int64) {
		if ms > 0 && ms < t0 {
			t0 = ms
		}
	}
	for id, tr := range trailers {
		end := tr.CommittedUnixMS
		if end == 0 {
			// Pre-ts journals: the commit rename's mtime is the next best
			// commit-time estimate.
			if fi, statErr := os.Stat(JournalPath(dir, id)); statErr == nil {
				end = fi.ModTime().UnixMilli()
			}
		}
		consider(end - int64(tr.WallMS))
	}
	for _, l := range leases {
		consider(l.AcquiredUnixMS)
	}
	for _, hb := range hbs {
		consider(hb.StartUnixMS)
	}

	rel := func(unixMS int64) float64 { return float64(unixMS-t0) * usPerMS }

	// Committed blocks: one complete ("X") span per block, ending at the
	// trailer's commit stamp and spanning its wall time.
	ids := make([]int, 0, len(trailers))
	for id := range trailers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr := trailers[id]
		end := tr.CommittedUnixMS
		if end == 0 {
			if fi, statErr := os.Stat(JournalPath(dir, id)); statErr == nil {
				end = fi.ModTime().UnixMilli()
			} else {
				continue
			}
		}
		ct.TraceEvents = append(ct.TraceEvents, timelineEvent{
			Name:  fmt.Sprintf("block %d (cell %d)", id, tr.Cell),
			Phase: "X",
			Ts:    rel(end) - tr.WallMS*usPerMS,
			Dur:   tr.WallMS * usPerMS,
			Pid:   pid,
			Tid:   tid[tr.Worker],
			Args: map[string]any{
				"block": id, "cell": tr.Cell, "replications": tr.Replications,
				"events": tr.Events, "wall_ms": tr.WallMS, "worker": tr.Worker,
			},
		})
	}

	// Uncommitted claims: a live lease is an open span (claim → now); an
	// expired lease is the abandoned claim's full window.
	for _, bi := range st.Blocks {
		l, ok := leases[bi.Block]
		if !ok {
			continue
		}
		name, end := "", now.UnixMilli()
		switch bi.State {
		case StateLeased:
			name = fmt.Sprintf("lease block %d (running)", bi.Block)
		case StateExpired:
			name = fmt.Sprintf("lease block %d (expired)", bi.Block)
			end = l.ExpiresUnixMS
		}
		ct.TraceEvents = append(ct.TraceEvents, timelineEvent{
			Name:  name,
			Phase: "X",
			Ts:    rel(l.AcquiredUnixMS),
			Dur:   float64(end-l.AcquiredUnixMS) * usPerMS,
			Pid:   pid,
			Tid:   tid[l.Worker],
			Args:  map[string]any{"block": bi.Block, "state": string(bi.State), "worker": l.Worker},
		})
	}

	// Torn journals: an instant marking the crashed write.
	for _, bi := range st.Blocks {
		if !bi.TornJournal {
			continue
		}
		ts := now.UnixMilli()
		if fi, statErr := os.Stat(JournalPath(dir, bi.Block)); statErr == nil {
			ts = fi.ModTime().UnixMilli()
		}
		ev := timelineEvent{
			Name:  fmt.Sprintf("torn block %d", bi.Block),
			Phase: "i",
			Ts:    rel(ts),
			Pid:   pid,
			Scope: "t",
			Args:  map[string]any{"block": bi.Block},
		}
		if bi.Worker != "" {
			ev.Tid = tid[bi.Worker]
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
	}

	// Heartbeat flight recorders: recent worker events as instants, plus
	// the final snapshot's exit reason.
	for _, hb := range hbs {
		for _, fe := range hb.Flight {
			ct.TraceEvents = append(ct.TraceEvents, timelineEvent{
				Name:  fe.Kind,
				Phase: "i",
				Ts:    rel(fe.UnixMS),
				Pid:   pid,
				Tid:   tid[hb.Worker],
				Scope: "t",
				Args:  map[string]any{"block": fe.Block, "msg": fe.Msg},
			})
		}
		if hb.Final {
			ct.TraceEvents = append(ct.TraceEvents, timelineEvent{
				Name:  "exit: " + hb.Reason,
				Phase: "i",
				Ts:    rel(hb.UnixMS),
				Pid:   pid,
				Tid:   tid[hb.Worker],
				Scope: "t",
				Args:  map[string]any{"reason": hb.Reason},
			})
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(ct); err != nil {
		return fmt.Errorf("blocks: timeline export: %w", err)
	}
	return nil
}
