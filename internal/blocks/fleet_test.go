package blocks

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/provenance"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hb := Heartbeat{
		Worker: "w/evil\\name", PID: 42, Host: "h",
		StartUnixMS: 1000, UnixMS: 2000, IntervalMS: 250,
		CurrentBlock: 3, Completed: 2, Events: 99, EventsPerSec: 12.5,
	}
	if err := WriteHeartbeat(dir, hb); err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(HeartbeatPath(dir, hb.Worker)[len(dir)+1:], "\\") {
		t.Fatalf("unsanitised heartbeat path %q", HeartbeatPath(dir, hb.Worker))
	}
	got, err := ReadHeartbeats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Worker != hb.Worker || got[0].UnixMS != hb.UnixMS ||
		got[0].CurrentBlock != hb.CurrentBlock || got[0].EventsPerSec != hb.EventsPerSec {
		t.Fatalf("round trip = %+v, want %+v", got, hb)
	}
	if age := hb.Age(time.UnixMilli(2600)); age != 600*time.Millisecond {
		t.Fatalf("age = %v", age)
	}
	// A run directory without heartbeats is an empty fleet, not an error.
	if hbs, err := ReadHeartbeats(t.TempDir()); err != nil || hbs != nil {
		t.Fatalf("missing dir = %v, %v", hbs, err)
	}
}

// TestWorkWritesHeartbeats runs a real Work loop and checks the telemetry
// side effects: an initial and a final heartbeat exist, the final one
// carries reason "done", the flight ring records the claims and commits,
// and the registry snapshot rode along.
func TestWorkWritesHeartbeats(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "hb-w"}); err != nil {
		t.Fatal(err)
	}
	hbs, err := ReadHeartbeats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hbs) != 1 {
		t.Fatalf("heartbeats = %+v", hbs)
	}
	hb := hbs[0]
	if !hb.Final || hb.Reason != "done" {
		t.Fatalf("final heartbeat = %+v", hb)
	}
	if hb.Completed != len(m.Blocks) || hb.CurrentBlock != -1 {
		t.Fatalf("progress = %+v", hb)
	}
	if hb.IntervalMS != 1000 {
		t.Fatalf("interval = %d, want default 1000", hb.IntervalMS)
	}
	kinds := map[string]int{}
	for _, fe := range hb.Flight {
		kinds[fe.Kind]++
	}
	if kinds["start"] != 1 || kinds["claim"] != len(m.Blocks) || kinds["commit"] != len(m.Blocks) || kinds["exit"] != 1 {
		t.Fatalf("flight kinds = %v", kinds)
	}
	if hb.FlightTotal != uint64(len(hb.Flight)) {
		t.Fatalf("flight total %d vs ring %d", hb.FlightTotal, len(hb.Flight))
	}

	// Heartbeat < 0 disables the writer entirely.
	dir2 := t.TempDir()
	if err := CreateRun(dir2, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir2, synthRun, WorkerOptions{Name: "quiet", Heartbeat: -1}); err != nil {
		t.Fatal(err)
	}
	if hbs, _ := ReadHeartbeats(dir2); hbs != nil {
		t.Fatalf("disabled heartbeat still wrote %+v", hbs)
	}
}

// TestCollectFleet builds a three-worker fleet by hand — one fresh, one
// long-silent, one cleanly exited — and checks the health classification,
// rate summing, straggler flag, merged metrics, and ETA.
func TestCollectFleet(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	// Commit every block so ETA is 0 and Scan is happy.
	if _, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "real", Heartbeat: -1}); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	write := func(hb Heartbeat) {
		t.Helper()
		if err := WriteHeartbeat(dir, hb); err != nil {
			t.Fatal(err)
		}
	}
	write(Heartbeat{Worker: "a-fast", IntervalMS: 1000, UnixMS: now.UnixMilli(), EventsPerSec: 100})
	write(Heartbeat{Worker: "b-slow", IntervalMS: 1000, UnixMS: now.UnixMilli(), EventsPerSec: 10})
	write(Heartbeat{Worker: "c-dead", IntervalMS: 1000, UnixMS: now.Add(-time.Minute).UnixMilli(), EventsPerSec: 50})
	write(Heartbeat{Worker: "d-exit", IntervalMS: 1000, UnixMS: now.Add(-time.Hour).UnixMilli(), Final: true, Reason: "done"})
	write(Heartbeat{Worker: "e-stale", IntervalMS: 1000, UnixMS: now.Add(-4 * time.Second).UnixMilli(), EventsPerSec: 40})

	_, st, fl, err := CollectFleet(dir, now, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("status = %+v", st)
	}
	if got := [4]int{fl.Alive, fl.Stale, fl.Dead, fl.Exited}; got != [4]int{2, 1, 1, 1} {
		t.Fatalf("alive/stale/dead/exited = %v, want [2 1 1 1]", got)
	}
	health := map[string]WorkerHealth{}
	straggler := map[string]bool{}
	for _, fw := range fl.Workers {
		health[fw.Worker] = fw.Health
		straggler[fw.Worker] = fw.Straggler
	}
	want := map[string]WorkerHealth{
		"a-fast": WorkerAlive, "b-slow": WorkerAlive, "c-dead": WorkerDead,
		"d-exit": WorkerExited, "e-stale": WorkerStale,
	}
	for w, h := range want {
		if health[w] != h {
			t.Fatalf("worker %s health %q, want %q (all: %v)", w, health[w], h, health)
		}
	}
	if fl.EventsPerSec != 110 {
		t.Fatalf("fleet events/s = %g, want 110", fl.EventsPerSec)
	}
	// b-slow runs at 10 ev/s against an alive median of 100 — a straggler.
	if !straggler["b-slow"] || straggler["a-fast"] {
		t.Fatalf("stragglers = %v", straggler)
	}
	if fl.ETAMS != 0 {
		t.Fatalf("eta = %d, want 0 for a complete sweep", fl.ETAMS)
	}
}

func TestCollectFleetMergesMetrics(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 4)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	s1 := snapWithCounter("runner.events", 10)
	s2 := snapWithCounter("runner.events", 32)
	if err := WriteHeartbeat(dir, Heartbeat{Worker: "w1", IntervalMS: 1000, UnixMS: now.UnixMilli(), Metrics: &s1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeartbeat(dir, Heartbeat{Worker: "w2", IntervalMS: 1000, UnixMS: now.UnixMilli(), Metrics: &s2}); err != nil {
		t.Fatal(err)
	}
	_, st, fl, err := CollectFleet(dir, now, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Metrics == nil || fl.Metrics.Counters["runner.events"] != 42 {
		t.Fatalf("merged metrics = %+v (err %q)", fl.Metrics, fl.MetricsErr)
	}
	// Nothing committed and nothing alive to judge: ETA unknown.
	_ = st
	if st.Complete != 0 {
		t.Fatalf("status = %+v", st)
	}
}

// TestCollectFleetProvenanceMismatch hand-writes heartbeats from two
// different binaries plus one stampless (pre-provenance) worker and checks
// the tally: both binaries counted, the mismatch flagged, and only the
// minority worker marked an outlier. Stampless workers abstain from the
// vote rather than counting as a third binary.
func TestCollectFleetProvenanceMismatch(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	mk := func(sha string) *provenance.Stamp {
		return &provenance.Stamp{GitSHA: sha, GoVersion: "go1.22", Goos: "linux", Goarch: "amd64"}
	}
	shaA := strings.Repeat("a", 40)
	shaB := strings.Repeat("b", 40)
	for _, hb := range []Heartbeat{
		{Worker: "w1", IntervalMS: 1000, UnixMS: now.UnixMilli(), Provenance: mk(shaA)},
		{Worker: "w2", IntervalMS: 1000, UnixMS: now.UnixMilli(), Provenance: mk(shaA)},
		{Worker: "w3", IntervalMS: 1000, UnixMS: now.UnixMilli(), Provenance: mk(shaB)},
		{Worker: "w4", IntervalMS: 1000, UnixMS: now.UnixMilli()},
	} {
		if err := WriteHeartbeat(dir, hb); err != nil {
			t.Fatal(err)
		}
	}
	_, _, fl, err := CollectFleet(dir, now, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fl.ProvenanceMismatch {
		t.Fatalf("mismatch not flagged: binaries = %v", fl.Binaries)
	}
	if len(fl.Binaries) != 2 || fl.Binaries[mk(shaA).BinaryID()] != 2 || fl.Binaries[mk(shaB).BinaryID()] != 1 {
		t.Fatalf("binaries = %v", fl.Binaries)
	}
	outlier := map[string]bool{}
	for _, fw := range fl.Workers {
		outlier[fw.Worker] = fw.ProvenanceOutlier
	}
	if !outlier["w3"] || outlier["w1"] || outlier["w2"] || outlier["w4"] {
		t.Fatalf("outliers = %v, want only w3", outlier)
	}

	// A uniform fleet reports its one binary and no mismatch.
	dir2 := t.TempDir()
	if err := CreateRun(dir2, m); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"u1", "u2"} {
		if err := WriteHeartbeat(dir2, Heartbeat{Worker: w, IntervalMS: 1000, UnixMS: now.UnixMilli(), Provenance: mk(shaA)}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, fl2, err := CollectFleet(dir2, now, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fl2.ProvenanceMismatch || len(fl2.Binaries) != 1 {
		t.Fatalf("uniform fleet = mismatch %v binaries %v", fl2.ProvenanceMismatch, fl2.Binaries)
	}
}

// TestWorkStampsProvenance checks that a real Work loop's heartbeat carries
// a provenance stamp whose ConfigHash is the manifest hash it joined.
func TestWorkStampsProvenance(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "pv-w"}); err != nil {
		t.Fatal(err)
	}
	hbs, err := ReadHeartbeats(dir)
	if err != nil || len(hbs) != 1 {
		t.Fatalf("heartbeats = %+v, err %v", hbs, err)
	}
	p := hbs[0].Provenance
	if p == nil {
		t.Fatal("heartbeat has no provenance stamp")
	}
	if p.ConfigHash != m.Hash {
		t.Fatalf("stamp config hash %q, want manifest hash %q", p.ConfigHash, m.Hash)
	}
	if p.GoVersion == "" || p.Goos == "" {
		t.Fatalf("stamp incomplete: %+v", p)
	}
	// The stamped manifest on disk also identifies its creator, and the
	// stamp stays outside the content hash: re-deriving the hash from the
	// loaded manifest still matches.
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Provenance == nil || loaded.Provenance.GoVersion == "" {
		t.Fatalf("manifest provenance = %+v", loaded.Provenance)
	}
	if loaded.Hash != m.Hash {
		t.Fatalf("manifest hash changed by stamping: %q vs %q", loaded.Hash, m.Hash)
	}
}

// snapWithCounter builds a registry snapshot holding one counter value.
func snapWithCounter(name string, v uint64) obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter(name).Add(v)
	return r.Snapshot()
}

// TestWriteTimeline commits a sweep with two workers, leaves one live
// lease, and checks the trace-event document: valid JSON, one named track
// per worker, and a complete span for every committed block.
func TestWriteTimeline(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	// Worker A commits every block but the last; worker B holds a live
	// lease on it.
	for _, b := range m.Blocks[:len(m.Blocks)-1] {
		out, err := synthRun(context.Background(), m, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeBlockJournal(dir, m, b, out, "worker-a", 5); err != nil {
			t.Fatal(err)
		}
	}
	last := m.Blocks[len(m.Blocks)-1]
	if res, err := claim(dir, m, last.ID, "worker-b", time.Hour, time.Now()); err != nil || res != claimWon {
		t.Fatalf("claim: %v %v", err, res)
	}

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, dir, time.Now()); err != nil {
		t.Fatal(err)
	}
	var tr timelineTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("timeline not JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	tracks := map[string]bool{}
	spansByTid := map[int]int{}
	tidByName := map[string]int{}
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				tracks[name] = true
				tidByName[name] = ev.Tid
			}
		case "X":
			spansByTid[ev.Tid]++
			if ev.Ts < 0 {
				t.Fatalf("span %q starts before t0: %+v", ev.Name, ev)
			}
		}
	}
	if !tracks["worker-a"] || !tracks["worker-b"] {
		t.Fatalf("tracks = %v, want worker-a and worker-b", tracks)
	}
	if got := spansByTid[tidByName["worker-a"]]; got != len(m.Blocks)-1 {
		t.Fatalf("worker-a spans = %d, want %d committed blocks", got, len(m.Blocks)-1)
	}
	if got := spansByTid[tidByName["worker-b"]]; got != 1 {
		t.Fatalf("worker-b spans = %d, want 1 live lease", got)
	}
	// The trailer timestamp survived the read path.
	_, st, err := Scan(dir, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if st.Complete != len(m.Blocks)-1 {
		t.Fatalf("status = %+v", st)
	}
	tr0, ok, err := trailerOf(dir, m, m.Blocks[0])
	if err != nil || !ok || tr0.CommittedUnixMS == 0 {
		t.Fatalf("trailer commit stamp missing: %+v ok=%v err=%v", tr0, ok, err)
	}
}
