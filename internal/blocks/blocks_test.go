package blocks

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// testPlan builds a small two-cell plan with a synthetic configuration.
func testPlan(t *testing.T, blockSize int) *Manifest {
	t.Helper()
	cfg := cluster.Default()
	m, err := Plan([]Cell{
		{Label: "a=1", X: 1, Seed: 11, Replications: 3, Config: cfg},
		{Label: "a=2", X: 2, Seed: 12, Replications: 4, Config: cfg},
	}, PlanOptions{Name: "a", BlockSize: blockSize, Warmup: 10, Measure: 50})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// synthRun is a deterministic, simulation-free RunFunc: every record is a
// pure function of the pre-assigned seed, which is all the engine itself
// guarantees about real runs.
func synthRun(ctx context.Context, m *Manifest, b Block) (BlockOutput, error) {
	out := BlockOutput{}
	for i, seed := range b.Seeds {
		out.Events += seed % 97
		out.Records = append(out.Records, Record{Kind: "replication", Fields: map[string]any{
			"rep":             b.RepStart + i,
			"seed":            seed,
			"useful_fraction": float64(seed%1000) / 1000,
			"total_useful":    float64(seed % 5000),
			"label":           m.Cells[b.CellIndex].Label,
		}})
	}
	return out, nil
}

func TestPlanPartitionsAndSeeds(t *testing.T) {
	m := testPlan(t, 2)
	// 3 reps @ size 2 → blocks of 2+1; 4 reps → 2+2.
	if len(m.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(m.Blocks))
	}
	// The flattened block seeds must be exactly the monolithic derivation.
	for ci, c := range m.Cells {
		var got []uint64
		for _, b := range m.CellBlocks(ci) {
			got = append(got, b.Seeds...)
		}
		want := ReplicationSeeds(c.Seed, c.Replications)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("cell %d seeds %v, want %v", ci, got, want)
		}
	}
	if !strings.HasPrefix(m.Hash, "sha256:") {
		t.Fatalf("hash %q not content-addressed", m.Hash)
	}
}

func TestManifestRoundTripAndTamper(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	// Idempotent for the identical plan.
	if err := CreateRun(dir, m); err != nil {
		t.Fatalf("re-creating identical run: %v", err)
	}
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash != m.Hash {
		t.Fatalf("round-trip hash %s != %s", loaded.Hash, m.Hash)
	}
	// A different plan must be refused.
	other := testPlan(t, 1)
	if err := CreateRun(dir, other); err == nil {
		t.Fatal("creating a different plan over an existing run succeeded")
	}
	// A tampered manifest must fail validation on load.
	data, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"a=1"`), []byte(`"a=9"`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(ManifestPath(dir), tampered, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("tampered manifest loaded: %v", err)
	}
}

func TestLeaseClaimHeldReclaim(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	res, err := claim(dir, m, 0, "w1", time.Minute, now)
	if err != nil || res != claimWon {
		t.Fatalf("first claim: %v, %v", res, err)
	}
	// A live lease blocks other workers.
	res, err = claim(dir, m, 0, "w2", time.Minute, now)
	if err != nil || res != claimHeld {
		t.Fatalf("second claim: %v, %v", res, err)
	}
	// Once expired, another worker reclaims it.
	res, err = claim(dir, m, 0, "w2", time.Minute, now.Add(2*time.Minute))
	if err != nil || res != claimReclaimed {
		t.Fatalf("reclaim: %v, %v", res, err)
	}
	l, err := readLease(LeasePath(dir, 0))
	if err != nil || l.Worker != "w2" {
		t.Fatalf("lease after reclaim: %+v, %v", l, err)
	}
	// Release drops it; a fresh claim wins again.
	if err := release(dir, 0); err != nil {
		t.Fatal(err)
	}
	if res, err = claim(dir, m, 0, "w3", time.Minute, now); err != nil || res != claimWon {
		t.Fatalf("claim after release: %v, %v", res, err)
	}
}

func TestTornJournalIsIncompleteNotFatal(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	b := m.Blocks[0]
	out, err := synthRun(context.Background(), m, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBlockJournal(dir, m, b, out, "w1", 1.5); err != nil {
		t.Fatal(err)
	}
	if !BlockComplete(dir, m, b) {
		t.Fatal("committed journal not complete")
	}
	// Tear the final line mid-bytes, as a killed writer (or power loss
	// under the rename) leaves it.
	data, err := os.ReadFile(JournalPath(dir, b.ID))
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	if err := os.WriteFile(JournalPath(dir, b.ID), torn, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadBlockJournal(dir, m, b)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("torn journal error = %v, want ErrIncomplete", err)
	}
	// Reduce reports it as incomplete work, not a parse failure.
	if _, err := ReduceManifest(dir, m); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("reduce over torn journal = %v, want ErrIncomplete", err)
	}
	// Resume drops the torn file so the block re-runs.
	rep, _, err := Resume(dir, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TornJournals) != 1 || rep.TornJournals[0] != b.ID {
		t.Fatalf("resume torn = %v, want [%d]", rep.TornJournals, b.ID)
	}
	if _, statErr := os.Stat(JournalPath(dir, b.ID)); !os.IsNotExist(statErr) {
		t.Fatal("torn journal not removed by Resume")
	}
}

func TestWrongManifestJournalIsFatal(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	mA := testPlan(t, 2)
	other, err := Plan([]Cell{{Label: "b=1", X: 1, Seed: 99, Replications: 3, Config: cluster.Default()}},
		PlanOptions{Name: "b", BlockSize: 2, Warmup: 10, Measure: 50})
	if err != nil {
		t.Fatal(err)
	}
	for dir, m := range map[string]*Manifest{dirA: mA, dirB: other} {
		if err := CreateRun(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	out, err := synthRun(context.Background(), other, other.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBlockJournal(dirB, other, other.Blocks[0], out, "w1", 1); err != nil {
		t.Fatal(err)
	}
	// Copy the foreign journal into run A under block 0's name.
	data, err := os.ReadFile(JournalPath(dirB, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalPath(dirA, 0), data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadBlockJournal(dirA, mA, mA.Blocks[0])
	if err == nil || errors.Is(err, ErrIncomplete) {
		t.Fatalf("foreign journal error = %v, want hard error", err)
	}
}

// TestWorkersBitIdentical is the in-process half of the determinism
// contract: one worker, three racing workers, and a crash-interrupted
// directory repaired by Resume must all reduce to byte-identical merged
// journals (timestamp fields aside).
func TestWorkersBitIdentical(t *testing.T) {
	reduced := func(t *testing.T, dir string) string {
		t.Helper()
		m, cells, err := Reduce(dir)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteReduced(obs.NewJournal(&buf), m, cells); err != nil {
			t.Fatal(err)
		}
		return stripWallClock(buf.String())
	}

	// Reference: a single worker.
	dir1 := t.TempDir()
	if err := CreateRun(dir1, testPlan(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir1, synthRun, WorkerOptions{Name: "solo"}); err != nil {
		t.Fatal(err)
	}
	want := reduced(t, dir1)

	// Three concurrent workers racing over the same directory.
	dir3 := t.TempDir()
	if err := CreateRun(dir3, testPlan(t, 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = Work(context.Background(), dir3, synthRun, WorkerOptions{Name: fmt.Sprintf("w%d", w)})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := reduced(t, dir3); got != want {
		t.Fatalf("3-worker reduced journal differs from solo run:\n got:\n%s\nwant:\n%s", got, want)
	}

	// A "crashed" run: one block's journal torn, one block never run, an
	// expired lease left behind — Resume then a fresh worker must converge
	// to the same bytes.
	dirC := t.TempDir()
	mC := testPlan(t, 2)
	if err := CreateRun(dirC, mC); err != nil {
		t.Fatal(err)
	}
	for _, b := range mC.Blocks[:2] {
		out, err := synthRun(context.Background(), mC, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeBlockJournal(dirC, mC, b, out, "victim", 1); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(JournalPath(dirC, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalPath(dirC, 1), data[:len(data)-11], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := claim(dirC, mC, 2, "victim", time.Nanosecond, time.Now().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(dirC, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dirC, synthRun, WorkerOptions{Name: "rescuer"}); err != nil {
		t.Fatal(err)
	}
	if got := reduced(t, dirC); got != want {
		t.Fatalf("crash-resumed reduced journal differs from solo run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestReduceReportsMissingBlocks(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "w"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(JournalPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	_, err := ReduceManifest(dir, m)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("reduce = %v, want ErrIncomplete", err)
	}
	if !strings.Contains(err.Error(), "[2]") {
		t.Fatalf("error %q does not name the missing block", err)
	}
}

func TestWorkTelemetryAndStatus(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 1) // 7 blocks of one rep each
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sum, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "w", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != len(m.Blocks) {
		t.Fatalf("completed %d, want %d", sum.Completed, len(m.Blocks))
	}
	s := reg.Snapshot()
	if got := s.Counters["blocks.planned"]; got != uint64(len(m.Blocks)) {
		t.Fatalf("blocks.planned = %d, want %d", got, len(m.Blocks))
	}
	if got := s.Counters["blocks.completed"]; got != uint64(len(m.Blocks)) {
		t.Fatalf("blocks.completed = %d, want %d", got, len(m.Blocks))
	}
	if got := s.Counters["blocks.claimed"]; got != uint64(len(m.Blocks)) {
		t.Fatalf("blocks.claimed = %d, want %d", got, len(m.Blocks))
	}
	if hist, ok := s.Timers["blocks.block_wall_s"]; !ok || hist.Count != uint64(len(m.Blocks)) {
		t.Fatalf("blocks.block_wall_s count = %+v, want %d observations", hist, len(m.Blocks))
	}
	mLoaded, st, err := Scan(dir, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() || st.Complete != len(m.Blocks) {
		t.Fatalf("status %+v not complete", st)
	}
	var buf bytes.Buffer
	if err := WriteStatus(&buf, mLoaded, st); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"complete — ready to -reduce", "worker  w"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("status output missing %q:\n%s", want, buf.String())
		}
	}
}

// stripWallClock blanks the values of obs.TimestampFields so journal
// comparisons pin everything except wall-clock noise.
func stripWallClock(s string) string {
	for _, f := range obs.TimestampFields {
		re := regexp.MustCompile(`"` + f + `":("[^"]*"|[0-9.e+-]+)`)
		s = re.ReplaceAllString(s, `"`+f+`":X`)
	}
	return s
}
