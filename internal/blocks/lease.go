package blocks

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Lease is a worker's claim on one block, persisted as a JSON file whose
// *existence* is the claim: the file is linked into place fully written
// (write temp, then link(2), which fails if the path exists), so claiming
// is atomic and no reader ever observes a half-written lease. At most one
// worker holds an unexpired lease per block. The contents exist for
// observability (-status) and for expiry.
//
// Leases are time-bounded rather than pid-bounded because workers may run
// on different machines sharing the directory: a crashed worker simply
// stops renewing, its lease expires, and any worker may then reclaim the
// block. Expiry compares wall clocks across machines, so the TTL should
// comfortably exceed both the block wall time and plausible clock skew.
type Lease struct {
	// Block is the claimed block's manifest ID.
	Block int `json:"block"`
	// Worker names the claiming process (WorkerOptions.Name).
	Worker string `json:"worker"`
	// PID and Host identify the process for operators; expiry, not
	// liveness probing, is the reclaim criterion.
	PID  int    `json:"pid"`
	Host string `json:"host"`
	// AcquiredUnixMS and ExpiresUnixMS bound the claim in wall-clock
	// milliseconds; renewal rewrites the file with a pushed-out expiry.
	AcquiredUnixMS int64 `json:"acquired_unix_ms"`
	ExpiresUnixMS  int64 `json:"expires_unix_ms"`
	// ManifestHash pins the lease to its run.
	ManifestHash string `json:"manifest_hash"`
}

// Expired reports whether the lease has lapsed at the given time.
func (l Lease) Expired(now time.Time) bool {
	return now.UnixMilli() > l.ExpiresUnixMS
}

// readLease parses a lease file. A missing file returns os.IsNotExist.
func readLease(path string) (Lease, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, fmt.Errorf("blocks: lease %s: %w", path, err)
	}
	return l, nil
}

// claimResult says how a claim attempt ended.
type claimResult int

const (
	claimWon       claimResult = iota // we hold the lease
	claimHeld                         // someone else holds an unexpired lease
	claimReclaimed                    // we hold it after breaking an expired lease
)

// claim attempts to acquire the block's lease. The fresh-claim path is a
// single atomic create (tryCreateLease). The reclaim path first renames
// the expired lease to a unique stale name — rename is atomic, so exactly
// one of several contending workers wins the break — and then competes on
// the normal create.
func claim(dir string, m *Manifest, block int, worker string, ttl time.Duration, now time.Time) (claimResult, error) {
	path := LeasePath(dir, block)
	reclaimed := false
	for attempt := 0; attempt < 2; attempt++ {
		res, err := tryCreateLease(path, m, block, worker, ttl, now)
		if err == nil {
			if res && reclaimed {
				return claimReclaimed, nil
			}
			if res {
				return claimWon, nil
			}
		} else {
			return claimHeld, err
		}
		// Creation lost: inspect the holder.
		held, err := readLease(path)
		if os.IsNotExist(err) {
			continue // holder finished or was broken between our calls; retry
		}
		if err != nil {
			return claimHeld, err
		}
		if held.ManifestHash != m.Hash {
			return claimHeld, fmt.Errorf("blocks: lease %s belongs to manifest %s, this run is %s", path, held.ManifestHash, m.Hash)
		}
		if !held.Expired(now) {
			return claimHeld, nil
		}
		// Expired: break it. Only one contender's rename succeeds.
		stale := fmt.Sprintf("%s.stale-%d-%d", path, now.UnixNano(), os.Getpid())
		if err := os.Rename(path, stale); err != nil {
			if os.IsNotExist(err) {
				continue // another worker broke it first; compete on create
			}
			return claimHeld, fmt.Errorf("blocks: breaking lease %s: %w", path, err)
		}
		os.Remove(stale)
		reclaimed = true
	}
	return claimHeld, nil
}

// tryCreateLease attempts the atomic create: the lease is written to a
// temp file first and then hard-linked to its final name, so the claim is
// exclusive (link fails when the path exists, like O_EXCL) *and* the file
// only ever appears fully written — a concurrent reader can never observe
// a lease created but not yet filled in. It returns (false, nil) when the
// path already exists.
func tryCreateLease(path string, m *Manifest, block int, worker string, ttl time.Duration, now time.Time) (bool, error) {
	l := leaseFor(m, block, worker, ttl, now)
	data, err := json.Marshal(l)
	if err != nil {
		return false, fmt.Errorf("blocks: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return false, fmt.Errorf("blocks: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return false, fmt.Errorf("blocks: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("blocks: %w", err)
	}
	if err := os.Link(tmp.Name(), path); err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("blocks: %w", err)
	}
	return true, nil
}

// leaseFor builds the lease record a claim or renewal writes.
func leaseFor(m *Manifest, block int, worker string, ttl time.Duration, now time.Time) Lease {
	host, _ := os.Hostname()
	return Lease{
		Block:          block,
		Worker:         worker,
		PID:            os.Getpid(),
		Host:           host,
		AcquiredUnixMS: now.UnixMilli(),
		ExpiresUnixMS:  now.Add(ttl).UnixMilli(),
		ManifestHash:   m.Hash,
	}
}

// renew pushes the lease's expiry out by ttl from now, via atomic rewrite.
// Renewal is best-effort: a renew that races a reclaim (possible only
// after the lease already expired, i.e. after renewal was late by a full
// TTL) recreates the lease, and the journal commit protocol keeps even
// that pathological double-execution harmless — both workers compute
// byte-identical journals and the last rename wins (see Work).
func renew(dir string, m *Manifest, block int, worker string, ttl time.Duration, now time.Time) error {
	l := leaseFor(m, block, worker, ttl, now)
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("blocks: %w", err)
	}
	return atomicWrite(LeasePath(dir, block), append(data, '\n'))
}

// release drops the worker's lease after the block's journal is committed.
func release(dir string, block int) error {
	if err := os.Remove(LeasePath(dir, block)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blocks: %w", err)
	}
	return nil
}
