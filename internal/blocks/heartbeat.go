package blocks

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/provenance"
)

// heartbeatDir holds one JSON snapshot per worker inside a run directory.
// Like journals and leases, heartbeats are plain files on the shared
// directory — no network listener — committed via temp + rename so a
// reader never sees a torn document.
const heartbeatDir = "heartbeats"

// profileDirName holds in-run profile captures (obs.ProfileCapture files)
// inside a run directory, beside heartbeats/.
const profileDirName = "profiles"

// ProfileDir returns the run directory's profile-capture location — where
// workers' straggler/periodic captures land and `cctop -run` looks.
func ProfileDir(dir string) string { return filepath.Join(dir, profileDirName) }

// HeartbeatPath returns the worker's heartbeat location. Worker names come
// from hostnames, so path separators are flattened defensively.
func HeartbeatPath(dir, worker string) string {
	safe := strings.Map(func(r rune) rune {
		if r == '/' || r == '\\' || r == 0 {
			return '_'
		}
		return r
	}, worker)
	return filepath.Join(dir, heartbeatDir, safe+".json")
}

// Heartbeat is one worker's periodic self-report: where it is in the sweep,
// its full metrics registry, and a flight-recorder ring of its recent
// events. Because every periodic write carries the ring, the last periodic
// heartbeat doubles as the postmortem for a worker killed with SIGKILL —
// no handler gets to run, but the record is already on disk. Orderly exits
// (return, error, panic, SIGTERM) additionally flush a Final snapshot with
// a Reason.
type Heartbeat struct {
	Worker string `json:"worker"`
	PID    int    `json:"pid"`
	Host   string `json:"host"`
	// StartUnixMS is when the Work loop began; UnixMS is this snapshot's
	// write time.
	StartUnixMS int64 `json:"start_unix_ms"`
	UnixMS      int64 `json:"unix_ms"`
	// IntervalMS is the writer's own cadence, so readers judge staleness
	// in units of the writer's interval instead of assuming one.
	IntervalMS int64 `json:"interval_ms"`
	// Final marks the snapshot flushed on the way out; Reason says why
	// ("done", "error: ...", "panic: ...", "signal: terminated").
	Final  bool   `json:"final,omitempty"`
	Reason string `json:"reason,omitempty"`
	// CurrentBlock is the block being executed, or -1 when idle/polling.
	CurrentBlock int `json:"current_block"`
	// Progress counters mirror Summary.
	Completed       int    `json:"completed"`
	Reclaimed       int    `json:"reclaimed,omitempty"`
	SkippedComplete int    `json:"skipped_complete,omitempty"`
	Events          uint64 `json:"events"`
	// EventsPerSec is the simulation event rate over the last interval,
	// from runner.events deltas when a metrics registry is attached, else
	// from committed-block event deltas.
	EventsPerSec float64 `json:"events_per_sec"`
	// Provenance identifies the worker's binary (commit, dirty flag, go
	// version), platform and host, with ConfigHash carrying the manifest
	// hash it joined. CollectFleet compares these across the fleet: two
	// workers on different commits sharing a run directory are producing
	// observations that must not be merged silently.
	Provenance *provenance.Stamp `json:"provenance,omitempty"`
	// Metrics is the worker's full registry snapshot.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Flight is the recent-event ring, oldest first; FlightTotal counts
	// every event ever recorded (ring evictions included).
	Flight      []obs.FlightEvent `json:"flight,omitempty"`
	FlightTotal uint64            `json:"flight_total,omitempty"`
}

// Age is how long ago the snapshot was written.
func (h Heartbeat) Age(now time.Time) time.Duration {
	return now.Sub(time.UnixMilli(h.UnixMS))
}

// WriteHeartbeat commits one snapshot atomically, creating heartbeats/ on
// first use so pre-telemetry run directories keep working.
func WriteHeartbeat(dir string, hb Heartbeat) error {
	if err := os.MkdirAll(filepath.Join(dir, heartbeatDir), 0o777); err != nil {
		return fmt.Errorf("blocks: %w", err)
	}
	data, err := json.MarshalIndent(hb, "", "  ")
	if err != nil {
		return fmt.Errorf("blocks: %w", err)
	}
	return atomicWrite(HeartbeatPath(dir, hb.Worker), append(data, '\n'))
}

// ReadHeartbeats loads every worker heartbeat in the run directory, sorted
// by worker name. A missing heartbeats/ directory is an empty fleet, not
// an error; abandoned temp files are skipped.
func ReadHeartbeats(dir string) ([]Heartbeat, error) {
	entries, err := os.ReadDir(filepath.Join(dir, heartbeatDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("blocks: %w", err)
	}
	var out []Heartbeat
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, heartbeatDir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("blocks: %w", err)
		}
		var hb Heartbeat
		if err := json.Unmarshal(data, &hb); err != nil {
			return nil, fmt.Errorf("blocks: heartbeat %s: %w", e.Name(), err)
		}
		out = append(out, hb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out, nil
}
