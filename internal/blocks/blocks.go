// Package blocks is the distributed sweep engine: it partitions the
// (cell × replication) space of a sweep into fixed-size blocks with
// pre-assigned rng sub-stream seeds, persists the plan as a content-hashed
// JSON manifest in a shared run directory, lets any number of independent
// worker processes claim blocks through atomic lease files, journals each
// completed block as a self-contained JSONL file, and reduces the block
// journals in manifest order into merged estimates that are bit-identical
// to a single-process run.
//
// The design is the rollback-recovery discipline the simulator itself
// models, applied to the simulator: work is partitioned into journaled
// units committed to stable storage (write-temp + atomic rename), a crash
// loses at most the in-flight block, and a restarted or additional worker
// resumes from the journals alone. Determinism is structural, exactly as
// in internal/exec: every replication's seed is fixed in the manifest
// before any worker starts, blocks are self-contained, and the reducer
// folds results in manifest order — so which process ran a block, how many
// processes participated, and how often they crashed are all invisible in
// the reduced output.
package blocks

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/provenance"
	"repro/internal/rng"
)

// Manifest kinds: what a block's replications compute.
const (
	// KindEstimate blocks run steady-state replications (runner.Estimate):
	// warmup + measurement window, per-replication useful-work metrics.
	KindEstimate = "estimate"
	// KindCompletion blocks run job completion-time replications
	// (cyclesim.JobCompletion): simulate until the job's work is done.
	KindCompletion = "completion"
)

// Manifest VR modes: how a block's replications pair up. The strings match
// vr.Mode spellings; blocks keeps its own constants so the manifest schema
// does not depend on the vr package.
const (
	// VRNone is plain Monte Carlo — one independent replication per seed.
	// It is spelled as the empty string so plain manifests omit the field
	// and their content hashes are unchanged from earlier schema versions.
	VRNone = ""
	// VRAntithetic schedules replications as (plain, reflected) pairs:
	// replications 2k and 2k+1 share seed k and differ only in stream
	// reflection. Pair assignment happens here, in planning, which is what
	// keeps block-sharded antithetic sweeps bit-identical to monolithic
	// runs at any worker count.
	VRAntithetic = "antithetic"
)

// Cell is one estimate of a sweep: a configuration plus the replication
// spec that would feed a single runner.Estimate call.
type Cell struct {
	// Label tags the cell's journal records, e.g. "procs=65536".
	Label string `json:"label"`
	// X is the cell's sweep-axis value, carried for table rendering.
	X float64 `json:"x,omitempty"`
	// Seed is the cell's root seed; replication r uses sub-stream
	// ReplicationSeeds(Seed, Replications)[r], the same derivation
	// runner.Estimate uses, which is what makes block-sharded results
	// bit-identical to monolithic ones.
	Seed uint64 `json:"seed"`
	// Replications is the cell's total replication count across blocks.
	Replications int `json:"replications"`
	// Config is the model configuration (plain exported scalars, so the
	// JSON round-trip through the manifest is exact).
	Config cluster.Config `json:"config"`
}

// Block is the unit of claiming: a contiguous run of one cell's
// replications with their pre-assigned seeds.
type Block struct {
	// ID is the block's index in Manifest.Blocks (and its file names).
	ID int `json:"id"`
	// CellIndex says which manifest cell the block belongs to.
	CellIndex int `json:"cell"`
	// RepStart is the cell-local index of the block's first replication.
	RepStart int `json:"rep_start"`
	// Seeds holds one sub-stream seed per replication in the block.
	Seeds []uint64 `json:"seeds"`
}

// Reps returns the number of replications in the block.
func (b Block) Reps() int { return len(b.Seeds) }

// Manifest is the complete, self-contained plan of a sweep. It is a pure
// function of the plan inputs — no timestamps, no host names — so the same
// sweep always hashes to the same manifest and a worker can verify it is
// joining the run it was pointed at.
type Manifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Kind selects the replication semantics (KindEstimate, KindCompletion).
	Kind string `json:"kind"`
	// Name names the sweep; ccsweep stores the swept parameter here.
	Name string `json:"name"`
	// Warmup and Measure are the per-replication windows in hours
	// (KindEstimate).
	Warmup  float64 `json:"warmup,omitempty"`
	Measure float64 `json:"measure,omitempty"`
	// Work is the job's useful-work requirement in hours (KindCompletion).
	Work float64 `json:"work,omitempty"`
	// Confidence is the CI level of the reduced intervals.
	Confidence float64 `json:"confidence"`
	// ValueKey names the per-replication journal field the block journals
	// track convergence of ("useful_fraction", "wall_hours").
	ValueKey string `json:"value_key"`
	// VR is the variance-reduction mode of the plan (VRNone, VRAntithetic).
	// Omitted when plain, so pre-VR manifests keep their content hashes.
	VR string `json:"vr,omitempty"`
	// BlockSize is the maximum replications per block.
	BlockSize int `json:"block_size"`
	// Cells and Blocks are the planned space, in reduction order.
	Cells  []Cell  `json:"cells"`
	Blocks []Block `json:"blocks"`
	// Hash is "sha256:<hex>" over the manifest with Hash itself blank —
	// the run's content address, stamped into every lease and block
	// journal so mixed-up run directories fail loudly.
	Hash string `json:"hash"`
	// Provenance records who planned the run (binary commit, platform,
	// host), stamped by CreateRun at write time. Like Hash it is excluded
	// from the content hash: the same sweep planned from any commit still
	// hashes identically, so re-planning after a rebuild stays a no-op —
	// the stamp is an observation about the plan, not part of it.
	Provenance *provenance.Stamp `json:"provenance,omitempty"`
}

// PlanOptions parameterises Plan.
type PlanOptions struct {
	Name       string
	Kind       string  // default KindEstimate
	Warmup     float64 // hours (KindEstimate)
	Measure    float64 // hours (KindEstimate)
	Work       float64 // hours (KindCompletion)
	Confidence float64 // default 0.95
	ValueKey   string  // default by kind
	BlockSize  int     // replications per block; default 1
	VR         string  // variance-reduction mode; default VRNone
}

// ReplicationSeeds derives one independent sub-stream seed per replication
// from a root seed: the first n outputs of the root stream. This is the
// derivation runner.Estimate and cyclesim.JobCompletion use, lifted here so
// the planner pre-assigns exactly the seeds a monolithic run would draw.
func ReplicationSeeds(seed uint64, n int) []uint64 {
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for r := range seeds {
		seeds[r] = root.Uint64()
	}
	return seeds
}

// PairedReplicationSeeds derives the seed schedule of n replications run as
// antithetic pairs: n/2 root draws, each assigned to two consecutive
// replications — the plain leg at even global index 2k, the reflected leg
// at 2k+1. n must be even (Plan enforces this per cell).
func PairedReplicationSeeds(seed uint64, n int) []uint64 {
	half := ReplicationSeeds(seed, n/2)
	seeds := make([]uint64, 0, n)
	for _, s := range half {
		seeds = append(seeds, s, s)
	}
	return seeds
}

// Plan partitions the cells' replication space into blocks of at most
// o.BlockSize replications and returns the content-hashed manifest.
func Plan(cells []Cell, o PlanOptions) (*Manifest, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("blocks: plan has no cells")
	}
	if o.Kind == "" {
		o.Kind = KindEstimate
	}
	if o.Kind != KindEstimate && o.Kind != KindCompletion {
		return nil, fmt.Errorf("blocks: unknown manifest kind %q", o.Kind)
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.ValueKey == "" {
		if o.Kind == KindCompletion {
			o.ValueKey = "wall_hours"
		} else {
			o.ValueKey = "useful_fraction"
		}
	}
	if o.BlockSize == 0 {
		o.BlockSize = 1
	}
	if o.BlockSize < 1 {
		return nil, fmt.Errorf("blocks: block size %d < 1", o.BlockSize)
	}
	if o.VR != VRNone && o.VR != VRAntithetic {
		return nil, fmt.Errorf("blocks: unknown VR mode %q (want %q or %q)", o.VR, VRNone, VRAntithetic)
	}
	if o.VR == VRAntithetic && o.BlockSize%2 == 1 {
		// A block boundary must never split a (plain, reflected) pair: the
		// pair is the statistical unit, and keeping both legs in one block
		// keeps every block journal self-contained. Round an odd block size
		// up rather than erroring so the default of 1 keeps working.
		o.BlockSize++
	}
	m := &Manifest{
		Version:    1,
		Kind:       o.Kind,
		Name:       o.Name,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		Work:       o.Work,
		Confidence: o.Confidence,
		ValueKey:   o.ValueKey,
		BlockSize:  o.BlockSize,
		VR:         o.VR,
		Cells:      cells,
	}
	for ci, c := range cells {
		if c.Replications < 1 {
			return nil, fmt.Errorf("blocks: cell %d (%s) has %d replications", ci, c.Label, c.Replications)
		}
		if err := c.Config.Validate(); err != nil {
			return nil, fmt.Errorf("blocks: cell %d (%s): %w", ci, c.Label, err)
		}
		var seeds []uint64
		if o.VR == VRAntithetic {
			if c.Replications%2 != 0 {
				return nil, fmt.Errorf("blocks: cell %d (%s): %d replications cannot form (plain, reflected) pairs", ci, c.Label, c.Replications)
			}
			seeds = PairedReplicationSeeds(c.Seed, c.Replications)
		} else {
			seeds = ReplicationSeeds(c.Seed, c.Replications)
		}
		for start := 0; start < c.Replications; start += o.BlockSize {
			end := start + o.BlockSize
			if end > c.Replications {
				end = c.Replications
			}
			m.Blocks = append(m.Blocks, Block{
				ID:        len(m.Blocks),
				CellIndex: ci,
				RepStart:  start,
				Seeds:     seeds[start:end:end],
			})
		}
	}
	m.Hash = m.computeHash()
	return m, nil
}

// computeHash content-addresses the manifest: sha256 over its canonical
// JSON encoding with the Hash and Provenance fields blanked (both are
// about the plan, not of it).
func (m *Manifest) computeHash() string {
	clean := *m
	clean.Hash = ""
	clean.Provenance = nil
	data, err := json.Marshal(&clean)
	if err != nil {
		// Manifest fields are plain scalars and slices; marshal cannot
		// fail except through memory corruption.
		panic(fmt.Sprintf("blocks: manifest not marshalable: %v", err))
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// validate checks structural invariants a loaded manifest must satisfy:
// the hash matches the content, and each cell's blocks partition its
// replication space contiguously and in order.
func (m *Manifest) validate() error {
	if m.Version != 1 {
		return fmt.Errorf("blocks: manifest version %d not supported", m.Version)
	}
	if m.Kind != KindEstimate && m.Kind != KindCompletion {
		return fmt.Errorf("blocks: unknown manifest kind %q", m.Kind)
	}
	if got := m.computeHash(); got != m.Hash {
		return fmt.Errorf("blocks: manifest hash mismatch: recorded %s, content %s (file edited or corrupt?)", m.Hash, got)
	}
	if m.VR != VRNone && m.VR != VRAntithetic {
		return fmt.Errorf("blocks: unknown manifest VR mode %q", m.VR)
	}
	next := make([]int, len(m.Cells))
	lastCell := 0
	for i, b := range m.Blocks {
		if b.ID != i {
			return fmt.Errorf("blocks: block %d carries id %d", i, b.ID)
		}
		if b.CellIndex < 0 || b.CellIndex >= len(m.Cells) {
			return fmt.Errorf("blocks: block %d references cell %d of %d", i, b.CellIndex, len(m.Cells))
		}
		if b.CellIndex < lastCell {
			return fmt.Errorf("blocks: block %d breaks cell ordering", i)
		}
		lastCell = b.CellIndex
		if b.RepStart != next[b.CellIndex] {
			return fmt.Errorf("blocks: block %d starts at replication %d, want %d", i, b.RepStart, next[b.CellIndex])
		}
		if len(b.Seeds) == 0 {
			return fmt.Errorf("blocks: block %d has no replications", i)
		}
		if m.VR == VRAntithetic {
			// Pairs are aligned to even global offsets and never split
			// across blocks, and both legs of a pair carry the same seed —
			// the invariants the leg assignment (global index mod 2) and the
			// paired reducer rely on.
			if b.RepStart%2 != 0 || len(b.Seeds)%2 != 0 {
				return fmt.Errorf("blocks: block %d splits an antithetic pair (start %d, %d seeds)", i, b.RepStart, len(b.Seeds))
			}
			for k := 0; k+1 < len(b.Seeds); k += 2 {
				if b.Seeds[k] != b.Seeds[k+1] {
					return fmt.Errorf("blocks: block %d pair at replication %d has mismatched seeds", i, b.RepStart+k)
				}
			}
		}
		next[b.CellIndex] += len(b.Seeds)
	}
	for ci, c := range m.Cells {
		if next[ci] != c.Replications {
			return fmt.Errorf("blocks: cell %d (%s) plans %d of %d replications", ci, c.Label, next[ci], c.Replications)
		}
	}
	return nil
}

// CellBlocks returns the cell's blocks in replication order.
func (m *Manifest) CellBlocks(ci int) []Block {
	var out []Block
	for _, b := range m.Blocks {
		if b.CellIndex == ci {
			out = append(out, b)
		}
	}
	return out
}

// Run-directory layout. Everything lives under one directory so a sweep is
// a single artifact that can sit on shared storage:
//
//	<dir>/manifest.json             the plan (written once, read-only after)
//	<dir>/leases/block-00042.json   a worker's claim on block 42
//	<dir>/journals/block-00042.jsonl  completed block 42 (temp + rename)
const (
	manifestFile = "manifest.json"
	leaseDir     = "leases"
	journalDir   = "journals"
)

// ManifestPath returns the manifest location inside a run directory.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestFile) }

// JournalPath returns the block's journal location.
func JournalPath(dir string, block int) string {
	return filepath.Join(dir, journalDir, fmt.Sprintf("block-%05d.jsonl", block))
}

// LeasePath returns the block's lease location.
func LeasePath(dir string, block int) string {
	return filepath.Join(dir, leaseDir, fmt.Sprintf("block-%05d.json", block))
}

// CreateRun initialises a run directory: creates it (and the leases/ and
// journals/ subdirectories) and writes the manifest via temp + rename. It
// refuses to overwrite a different manifest — re-planning the identical
// sweep into an existing directory is a no-op, anything else is an error,
// so two operators cannot silently mix runs.
func CreateRun(dir string, m *Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	for _, d := range []string{dir, filepath.Join(dir, leaseDir), filepath.Join(dir, journalDir)} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return fmt.Errorf("blocks: %w", err)
		}
	}
	path := ManifestPath(dir)
	if prev, err := LoadManifest(dir); err == nil {
		if prev.Hash == m.Hash {
			return nil // identical plan already present
		}
		return fmt.Errorf("blocks: %s already holds manifest %s (this plan is %s); use a fresh run directory", path, prev.Hash, m.Hash)
	} else if !os.IsNotExist(err) {
		return err
	}
	// Stamp the planner's provenance at write time (hash-excluded): the
	// run directory then records which commit, on which machine, planned
	// the sweep its journals realise.
	stamped := *m
	stamp := provenance.Collect().WithConfig(m.Hash)
	stamped.Provenance = &stamp
	data, err := json.MarshalIndent(&stamped, "", "  ")
	if err != nil {
		return fmt.Errorf("blocks: %w", err)
	}
	return atomicWrite(path, append(data, '\n'))
}

// LoadManifest reads and validates the run directory's manifest. A missing
// manifest is reported with os.IsNotExist semantics.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("blocks: %s: %w", ManifestPath(dir), err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("blocks: %s: %w", ManifestPath(dir), err)
	}
	return &m, nil
}

// atomicWrite commits data to path via a unique temp file and rename, the
// journal/lease commit primitive: readers see either nothing or the whole
// file, never a prefix — short of the torn-tail case after power loss,
// which the journal reader detects (see ReadBlockJournal).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("blocks: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("blocks: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("blocks: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("blocks: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("blocks: %w", err)
	}
	return nil
}
