package blocks

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// tearJournal leaves a torn (uncommitted) journal file for the block, as a
// crashed writer would.
func tearJournal(t *testing.T, dir string, m *Manifest, b Block) {
	t.Helper()
	out, err := synthRun(context.Background(), m, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBlockJournal(dir, m, b, out, "victim", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(JournalPath(dir, b.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalPath(dir, b.ID), data[:len(data)-11], 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestScanStateSingleValued pins the fix for the state double-count: a
// block is in exactly one state, the five counters partition the plan
// (they sum to Planned), and a torn journal being re-run under a live
// lease classifies as leased with the torn file reported as annotation —
// previously it incremented both Torn and Leased and the info.State
// depended on evaluation order.
func TestScanStateSingleValued(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 1) // 7 blocks of one rep each
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	now := time.Now()

	// Block 0: committed.
	out, err := synthRun(context.Background(), m, m.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBlockJournal(dir, m, m.Blocks[0], out, "w0", 1); err != nil {
		t.Fatal(err)
	}
	// Block 1: torn journal AND a live lease (a reclaimer re-running it).
	tearJournal(t, dir, m, m.Blocks[1])
	if res, err := claim(dir, m, 1, "rescuer", time.Hour, now); err != nil || res != claimWon {
		t.Fatalf("claim block 1: %v res=%v", err, res)
	}
	// Block 2: torn journal, no claim.
	tearJournal(t, dir, m, m.Blocks[2])
	// Block 3: expired lease only.
	if _, err := claim(dir, m, 3, "ghost", time.Nanosecond, now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Block 4: torn journal AND an expired lease — torn wins (needs -resume).
	tearJournal(t, dir, m, m.Blocks[4])
	if _, err := claim(dir, m, 4, "ghost", time.Nanosecond, now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Blocks 5, 6: untouched.

	_, st, err := Scan(dir, now)
	if err != nil {
		t.Fatal(err)
	}
	if got := [5]int{st.Complete, st.Leased, st.Torn, st.Expired, st.Unclaimed}; got != [5]int{1, 1, 2, 1, 2} {
		t.Fatalf("counters complete/leased/torn/expired/unclaimed = %v, want [1 1 2 1 2]", got)
	}
	if sum := st.Complete + st.Leased + st.Torn + st.Expired + st.Unclaimed; sum != st.Planned {
		t.Fatalf("counters sum to %d, want Planned=%d", sum, st.Planned)
	}
	wantStates := []BlockState{StateComplete, StateLeased, StateTorn, StateExpired, StateTorn, StateUnclaimed, StateUnclaimed}
	for i, bi := range st.Blocks {
		if bi.State != wantStates[i] {
			t.Errorf("block %d state %q, want %q", i, bi.State, wantStates[i])
		}
	}
	if !st.Blocks[1].TornJournal || st.Blocks[1].Worker != "rescuer" {
		t.Fatalf("block 1 = %+v, want leased-by-rescuer with TornJournal", st.Blocks[1])
	}
	if !st.Blocks[4].TornJournal || st.Blocks[2].TornJournal != true {
		t.Fatalf("torn annotations wrong: %+v / %+v", st.Blocks[2], st.Blocks[4])
	}
	if st.Blocks[5].TornJournal {
		t.Fatalf("block 5 spuriously marked torn: %+v", st.Blocks[5])
	}
}

func TestWriteStatusJSON(t *testing.T) {
	dir := t.TempDir()
	m := testPlan(t, 2)
	if err := CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Work(context.Background(), dir, synthRun, WorkerOptions{Name: "w"}); err != nil {
		t.Fatal(err)
	}
	mLoaded, st, err := Scan(dir, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStatusJSON(&buf, mLoaded, st); err != nil {
		t.Fatal(err)
	}
	var got statusJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, buf.String())
	}
	if !got.Done || got.Complete != len(m.Blocks) || got.Hash != m.Hash {
		t.Fatalf("status JSON = %+v", got)
	}
	if len(got.Blocks) != len(m.Blocks) || got.Blocks[0].State != StateComplete {
		t.Fatalf("blocks JSON = %+v", got.Blocks)
	}
	if len(got.Workers) != 1 || got.Workers[0].Worker != "w" {
		t.Fatalf("workers JSON = %+v", got.Workers)
	}
}
