package blocks

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/provenance"
)

// WorkerHealth classifies one worker from its heartbeat age.
type WorkerHealth string

const (
	// WorkerAlive: heartbeat fresher than the stale threshold.
	WorkerAlive WorkerHealth = "alive"
	// WorkerStale: heartbeat late — the worker may be wedged, swapping,
	// or mid-GC; its lease renewals tell the real story.
	WorkerStale WorkerHealth = "stale"
	// WorkerDead: heartbeat far past its cadence with no final snapshot —
	// a SIGKILL, OOM, or machine loss. Its last periodic heartbeat (with
	// the flight ring) is the postmortem.
	WorkerDead WorkerHealth = "dead"
	// WorkerExited: a final snapshot was flushed; Reason says why.
	WorkerExited WorkerHealth = "exited"
)

// FleetWorker is one worker's heartbeat judged against the clock.
type FleetWorker struct {
	Heartbeat
	Health WorkerHealth `json:"health"`
	// AgeMS is how old the snapshot is.
	AgeMS int64 `json:"age_ms"`
	// Straggler marks an alive worker whose event rate has fallen below
	// half the alive-fleet median.
	Straggler bool `json:"straggler,omitempty"`
	// ProvenanceOutlier marks a worker whose binary (commit+dirty+go
	// version) differs from the fleet's most common one. Its observations
	// are still on disk, but merging them with the majority's is comparing
	// two different programs.
	ProvenanceOutlier bool `json:"provenance_outlier,omitempty"`
}

// FleetOptions tunes staleness judgement. Zero values derive thresholds
// from each writer's own recorded cadence (Heartbeat.IntervalMS), so a
// fleet of mixed-interval workers is judged fairly: stale past 3
// intervals, dead past 6.
type FleetOptions struct {
	StaleAfter time.Duration
	DeadAfter  time.Duration
}

const (
	staleIntervals = 3
	deadIntervals  = 6
)

// Fleet is the run-level view CollectFleet assembles: every worker's
// health, the combined event rate, the merged metrics registry, and an
// ETA from the blocks completed so far.
type Fleet struct {
	Workers []FleetWorker `json:"workers"`
	Alive   int           `json:"alive"`
	Stale   int           `json:"stale"`
	Dead    int           `json:"dead"`
	Exited  int           `json:"exited"`
	// EventsPerSec sums the alive workers' rates.
	EventsPerSec float64 `json:"events_per_sec"`
	// ETAMS estimates time to sweep completion from the mean committed
	// block wall time and the count of alive workers; -1 when unknowable
	// (nothing committed yet, or no one alive).
	ETAMS int64 `json:"eta_ms"`
	// Metrics is every worker's registry merged (obs.MergeSnapshots);
	// nil when no worker shipped one or the merge failed (MetricsErr).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// MetricsErr records a merge refusal (e.g. mixed binaries with
	// different bucket layouts) without poisoning the rest of the view.
	MetricsErr string `json:"metrics_err,omitempty"`
	// Binaries tallies distinct worker binaries by provenance.BinaryID
	// ("<sha12>[+dirty]@<goversion>"); ProvenanceMismatch is set when more
	// than one appears — two workers on different commits are sharing a
	// run directory, and their results must not be compared as if they
	// came from the same program. Host and CPU deliberately don't factor
	// in: heterogeneous machines are a normal fleet.
	Binaries           map[string]int `json:"binaries,omitempty"`
	ProvenanceMismatch bool           `json:"provenance_mismatch,omitempty"`
}

// CollectFleet fuses the run directory's heartbeats with a Scan into one
// fleet view. Like Scan it only reads, so it is safe beside live workers;
// it is the engine behind `cctop -run` and `ccsweep -fleet`.
func CollectFleet(dir string, now time.Time, o FleetOptions) (*Manifest, Status, Fleet, error) {
	m, st, err := Scan(dir, now)
	if err != nil {
		return nil, Status{}, Fleet{}, err
	}
	hbs, err := ReadHeartbeats(dir)
	if err != nil {
		return nil, Status{}, Fleet{}, err
	}
	var fl Fleet
	var snaps []obs.Snapshot
	var aliveRates []float64
	for _, hb := range hbs {
		fw := FleetWorker{Heartbeat: hb, AgeMS: hb.Age(now).Milliseconds()}
		stale, dead := o.StaleAfter, o.DeadAfter
		if stale <= 0 {
			stale = time.Duration(max64(hb.IntervalMS, 1)*staleIntervals) * time.Millisecond
		}
		if dead <= 0 {
			dead = time.Duration(max64(hb.IntervalMS, 1)*deadIntervals) * time.Millisecond
		}
		age := hb.Age(now)
		switch {
		case hb.Final:
			fw.Health = WorkerExited
			fl.Exited++
		case age > dead:
			fw.Health = WorkerDead
			fl.Dead++
		case age > stale:
			fw.Health = WorkerStale
			fl.Stale++
		default:
			fw.Health = WorkerAlive
			fl.Alive++
			fl.EventsPerSec += hb.EventsPerSec
			aliveRates = append(aliveRates, hb.EventsPerSec)
		}
		if hb.Metrics != nil {
			snaps = append(snaps, *hb.Metrics)
		}
		fl.Workers = append(fl.Workers, fw)
	}
	// Stragglers: alive workers under half the alive-fleet median rate.
	if len(aliveRates) >= 2 {
		sorted := append([]float64(nil), aliveRates...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		if median > 0 {
			for i := range fl.Workers {
				if fl.Workers[i].Health == WorkerAlive && fl.Workers[i].EventsPerSec < median/2 {
					fl.Workers[i].Straggler = true
				}
			}
		}
	}
	// Provenance: tally distinct binaries and flag the minority. Workers
	// without a stamp (pre-provenance binaries) are left out of the vote
	// rather than counted as yet another binary.
	var stamps []*provenance.Stamp
	for _, fw := range fl.Workers {
		if fw.Provenance != nil {
			stamps = append(stamps, fw.Provenance)
		}
	}
	if bins := provenance.Binaries(stamps); len(bins) > 0 {
		fl.Binaries = bins
		if len(bins) > 1 {
			fl.ProvenanceMismatch = true
			majority, best := "", 0
			for id, n := range bins {
				if n > best || (n == best && id < majority) {
					majority, best = id, n
				}
			}
			for i := range fl.Workers {
				if p := fl.Workers[i].Provenance; p != nil && p.BinaryID() != majority {
					fl.Workers[i].ProvenanceOutlier = true
				}
			}
		}
	}
	fl.ETAMS = -1
	if remaining := st.Planned - st.Complete; remaining == 0 {
		fl.ETAMS = 0
	} else if st.Complete > 0 && fl.Alive > 0 {
		meanWallMS := st.WallMS / float64(st.Complete)
		fl.ETAMS = int64(meanWallMS * float64(remaining) / float64(fl.Alive))
	}
	if len(snaps) > 0 {
		if merged, merr := obs.MergeSnapshots(snaps...); merr == nil {
			fl.Metrics = &merged
		} else {
			fl.MetricsErr = merr.Error()
		}
	}
	return m, st, fl, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
