package blocks

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vr"
)

// isFinite reports a representable JSON number.
func isFinite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }

// CellResult is the merged view of one cell after every block journal has
// been folded in manifest order.
type CellResult struct {
	// Index is the cell's position in Manifest.Cells.
	Index int
	// Cell is the planned cell.
	Cell Cell
	// Records are the replication records, concatenated in manifest order
	// with ci_half_width rewritten from the block-local prefix to the
	// cell-global prefix — exactly the value a monolithic run journals.
	Records []Record
	// Values holds the manifest-ValueKey series per block, in block order;
	// stats.MergeConvergence folds them into the cell trajectory.
	Values [][]float64
	// Totals holds total_useful per replication when present (estimate
	// kind), flattened across blocks in order.
	Totals []float64
	// Events is the cell's total simulation event count.
	Events uint64
}

// FlatValues concatenates the per-block value series.
func (c CellResult) FlatValues() []float64 {
	var out []float64
	for _, blk := range c.Values {
		out = append(out, blk...)
	}
	return out
}

// Replications counts the merged replication records.
func (c CellResult) Replications() int { return len(c.Records) }

// Reduce loads every block journal of the run directory and folds them, in
// manifest order, into per-cell results. If any block is incomplete —
// never run, torn by a crashed writer, or missing its trailer — Reduce
// reports them all in one error wrapping ErrIncomplete so the caller can
// print "resume first" guidance rather than a parse failure. Corrupt
// journals from a different manifest are hard errors.
//
// Because blocks partition each cell's replication range contiguously and
// Reduce visits them in manifest order, the merged record sequence — and
// every statistic folded from it — is independent of which workers ran
// which blocks and when. That is the other half of the determinism
// contract started by Plan's pre-assigned seeds.
func Reduce(dir string) (*Manifest, []CellResult, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	cells, err := ReduceManifest(dir, m)
	return m, cells, err
}

// ReduceManifest is Reduce against an already-loaded manifest.
func ReduceManifest(dir string, m *Manifest) ([]CellResult, error) {
	var incomplete []int
	cells := make([]CellResult, len(m.Cells))
	for ci := range m.Cells {
		cells[ci] = CellResult{Index: ci, Cell: m.Cells[ci]}
	}
	for _, b := range m.Blocks {
		recs, tr, err := ReadBlockJournal(dir, m, b)
		if err != nil {
			if errors.Is(err, ErrIncomplete) {
				incomplete = append(incomplete, b.ID)
				continue
			}
			return nil, err
		}
		c := &cells[b.CellIndex]
		vals := make([]float64, 0, len(recs))
		for _, rec := range recs {
			if v, ok := rec.Float(m.ValueKey); ok {
				vals = append(vals, v)
			}
			if t, ok := rec.Float("total_useful"); ok {
				c.Totals = append(c.Totals, t)
			}
			c.Records = append(c.Records, rec)
		}
		c.Values = append(c.Values, vals)
		c.Events += tr.Events
	}
	if len(incomplete) > 0 {
		return nil, fmt.Errorf("blocks: reduce: %d of %d blocks incomplete %v: %w",
			len(incomplete), len(m.Blocks), incomplete, ErrIncomplete)
	}
	// Rewrite each record's ci_half_width to the cell-global prefix value.
	// The block writers journaled a block-local prefix (all they could
	// know); the merged journal must carry the same trajectory a monolithic
	// run writes. The fold consumes exactly-round-tripped floats in the
	// monolithic order, so the recomputed widths are bit-identical to the
	// single-process run's.
	for ci := range cells {
		w := NewWidthTracker(m.Confidence, m.VR)
		for _, rec := range cells[ci].Records {
			if v, ok := rec.Float(m.ValueKey); ok {
				rec.Fields["ci_half_width"] = w.Add(v)
			}
		}
	}
	return cells, nil
}

// WidthTracker computes the running ci_half_width journaled beside each
// replication record: the plain prefix half-width or, under antithetic VR,
// the half-width of the pair-mean estimate over the pairs completed so far
// (0 while fewer than two pairs are in, with the record count carrying the
// truth — the same convention stats.Convergence uses). One implementation
// serves the monolithic journal writer, the block-local writer and the
// reducer, which is what pins the three to identical bytes.
type WidthTracker struct {
	level      float64
	paired     bool
	acc        stats.Accumulator
	pacc       stats.PairedAccumulator
	pending    float64
	hasPending bool
}

// NewWidthTracker builds a tracker for the given confidence level and
// manifest VR mode.
func NewWidthTracker(level float64, vrMode string) *WidthTracker {
	return &WidthTracker{level: level, paired: vrMode == VRAntithetic}
}

// Add folds one replication value (one leg, under VR) and returns the
// half-width to journal with its record.
func (w *WidthTracker) Add(v float64) float64 {
	if !w.paired {
		w.acc.Add(v)
		return w.acc.Convergence(w.level).HalfWidth
	}
	if !w.hasPending {
		w.pending = v
		w.hasPending = true
	} else {
		w.pacc.AddPair(w.pending, v)
		w.hasPending = false
	}
	return w.pacc.Convergence(w.level).HalfWidth
}

// EstimateFields builds the closing "estimate" record for a cell from its
// per-block value series. runner.writeJournal and the reducer both call
// it, which is what pins the two journal paths to one schema: replication
// count, total events, useful-work interval, total-useful interval, and
// the merged convergence trajectory. Under antithetic VR (vrMode ==
// VRAntithetic) the intervals and convergence come from the pair means and
// the record gains a "vr" block reporting the measured variance-reduction
// factor; plain mode emits exactly the pre-VR schema, byte for byte.
func EstimateFields(level float64, valueBlocks [][]float64, totals []float64, events uint64, label, vrMode string) map[string]any {
	var fields map[string]any
	n := 0
	for _, blk := range valueBlocks {
		n += len(blk)
	}
	if vrMode == VRAntithetic {
		var frac, tot stats.PairedAccumulator
		addPairs := func(p *stats.PairedAccumulator, legs []float64) {
			for i := 0; i+1 < len(legs); i += 2 {
				p.AddPair(legs[i], legs[i+1])
			}
		}
		var flat []float64
		for _, blk := range valueBlocks {
			flat = append(flat, blk...)
		}
		addPairs(&frac, flat)
		addPairs(&tot, totals)
		fields = map[string]any{
			"replications":    n,
			"events":          events,
			"useful_fraction": IntervalFields(frac.CI(level)),
			"total_useful":    IntervalFields(tot.CI(level)),
			"convergence":     stats.MergePairedConvergence(valueBlocks, level),
			"vr": vr.NewReport(vr.ModeAntithetic, frac.Pairs(), frac.VarianceReductionFactor(),
				frac.LegCorrelation(), frac.PairVariance(), frac.LegVariance()),
		}
	} else {
		var frac, tot stats.Accumulator
		for _, blk := range valueBlocks {
			for _, v := range blk {
				frac.Add(v)
			}
		}
		for _, v := range totals {
			tot.Add(v)
		}
		fields = map[string]any{
			"replications":    n,
			"events":          events,
			"useful_fraction": IntervalFields(frac.CI(level)),
			"total_useful":    IntervalFields(tot.CI(level)),
			"convergence":     stats.MergeConvergence(valueBlocks, level),
		}
	}
	if label != "" {
		fields["label"] = label
	}
	return fields
}

// completionFields builds the closing record for a completion-kind cell.
func completionFields(m *Manifest, c CellResult) map[string]any {
	var acc stats.Accumulator
	for _, blk := range c.Values {
		for _, v := range blk {
			acc.Add(v)
		}
	}
	fields := map[string]any{
		"replications": c.Replications(),
		"events":       c.Events,
		"work":         m.Work,
		"wall_hours":   IntervalFields(acc.CI(m.Confidence)),
		"convergence":  stats.MergeConvergence(c.Values, m.Confidence),
	}
	if c.Cell.Label != "" {
		fields["label"] = c.Cell.Label
	}
	return fields
}

// IntervalFields flattens a stats.Interval for the journal, nulling a
// non-finite half-width (n < 2) the same way obs.Journal treats top-level
// floats so nested maps marshal cleanly.
func IntervalFields(iv stats.Interval) map[string]any {
	var hw any = iv.HalfWide
	if !isFinite(iv.HalfWide) {
		hw = nil
	}
	return map[string]any{
		"mean":       iv.Mean,
		"half_width": hw,
		"level":      iv.Level,
		"n":          iv.N,
	}
}

// WriteReduced emits the merged journal: for each cell in manifest order,
// every replication record followed by the closing estimate (or
// completion) record — the same line sequence a monolithic run with the
// same plan writes, byte-identical apart from obs.TimestampFields.
func WriteReduced(j *obs.Journal, m *Manifest, cells []CellResult) error {
	for _, c := range cells {
		for _, rec := range c.Records {
			if err := j.Record(rec.Kind, rec.Fields); err != nil {
				return err
			}
		}
		var fields map[string]any
		kind := "estimate"
		if m.Kind == KindCompletion {
			kind = "completion"
			fields = completionFields(m, c)
		} else {
			fields = EstimateFields(m.Confidence, c.Values, c.Totals, c.Events, c.Cell.Label, m.VR)
		}
		if err := j.Record(kind, fields); err != nil {
			return err
		}
	}
	return nil
}
