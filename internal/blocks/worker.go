package blocks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/provenance"
)

// RunFunc executes one claimed block and returns its replication records.
// Implementations must be pure functions of (manifest, block) — every seed
// the block needs is in b.Seeds — so that any worker, on any machine, at
// any time produces identical records. internal/runner provides the
// estimate-kind implementation; cmd/ccjob provides the completion kind.
type RunFunc func(ctx context.Context, m *Manifest, b Block) (BlockOutput, error)

// WorkerOptions configures a Work loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and trailers; default
	// "<host>-<pid>".
	Name string
	// LeaseTTL bounds how long a crashed worker's claim pins a block.
	// Default 10 minutes; it must comfortably exceed one block's wall
	// time plus clock skew between machines sharing the directory.
	LeaseTTL time.Duration
	// Poll is the wait between scans when every remaining block is leased
	// by someone else. Default 2 s.
	Poll time.Duration
	// Renew is the heartbeat interval for the held lease. Default
	// LeaseTTL / 3.
	Renew time.Duration
	// ExitWhenIdle makes Work return as soon as a scan claims nothing,
	// instead of polling until every block is complete. Default false:
	// a worker normally outlives its peers' leases so a crashed peer's
	// blocks are reclaimed and the sweep always finishes.
	ExitWhenIdle bool
	// Metrics, when non-nil, receives the block telemetry counters
	// (blocks.planned/claimed/completed/reclaimed/skipped) and the
	// per-block wall-time histogram blocks.block_wall_s.
	Metrics *obs.Registry
	// Heartbeat is the cadence of this worker's telemetry snapshot in
	// heartbeats/<worker>.json (progress, registry snapshot, flight
	// recorder). Default 1 s; negative disables. The writer runs on its
	// own goroutine, never on the simulation path.
	Heartbeat time.Duration
	// Profiler, when non-nil, is armed automatically when the worker's
	// event rate falls below half its own trailing median while a block
	// is executing — a straggler's postmortem then arrives with the
	// profile that explains it. The capture runs beside the heartbeat
	// writer, never on the simulation path.
	Profiler *obs.ProfileCapture
	// HandleSignals, when set, flushes a final heartbeat and cancels the
	// Work context on SIGTERM/SIGINT, so an orderly kill leaves a
	// postmortem snapshot with its reason.
	HandleSignals bool
	// Log, when non-nil, receives one human line per worker event.
	Log func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Minute
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Second
	}
	if o.Renew <= 0 {
		o.Renew = o.LeaseTTL / 3
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = time.Second
	}
	return o
}

// Summary reports what one Work invocation did.
type Summary struct {
	// Worker is the resolved worker name.
	Worker string
	// Completed counts blocks this worker ran and committed.
	Completed int
	// Reclaimed counts completed blocks whose expired lease this worker
	// broke first.
	Reclaimed int
	// SkippedComplete counts blocks that were already journaled when this
	// worker first scanned them.
	SkippedComplete int
	// Events is the total simulation events across completed blocks.
	Events uint64
}

// NewWorkerProfiler arms the in-run profile capturer CLI workers hand to
// WorkerOptions.Profiler. It is on by default — the straggler auto-trigger
// inside the heartbeat writer costs nothing until it fires, and a profile
// that explains a slow worker is exactly the artifact you cannot capture
// after the fact — and disabled by profileDir "off". Captures land in
// ProfileDir(runDir) unless profileDir overrides, named after the worker
// (same default identity as WorkerOptions.Name) and stamped with the
// process's provenance. A positive `every` adds periodic captures on top
// of the auto-trigger. The returned stop func halts the ticker and waits
// out any in-flight capture; call it before process exit so the last
// capture is not torn.
func NewWorkerProfiler(runDir, name, profileDir string, every time.Duration, log func(string, ...any)) (*obs.ProfileCapture, func()) {
	if profileDir == "off" {
		return nil, func() {}
	}
	if profileDir == "" {
		profileDir = ProfileDir(runDir)
	}
	if name == "" {
		name = WorkerOptions{}.withDefaults().Name
	}
	stamp := provenance.Collect()
	profiler := obs.NewProfileCapture(obs.ProfileCaptureOptions{
		Dir:    profileDir,
		Prefix: name,
		Meta:   stamp,
		Log:    log,
	})
	done := make(chan struct{})
	var tick *time.Ticker
	if every > 0 {
		tick = time.NewTicker(every)
		go func() {
			for {
				select {
				case <-tick.C:
					profiler.Trigger("periodic")
				case <-done:
					return
				}
			}
		}()
	}
	return profiler, func() {
		if tick != nil {
			tick.Stop()
		}
		close(done)
		profiler.Wait()
	}
}

// Work claims and executes blocks from the run directory until every block
// has a committed journal (or, with ExitWhenIdle, until a scan finds
// nothing claimable). It is safe to run any number of Work loops — in one
// process or across machines — against the same directory; the lease files
// arbitrate, and the temp+rename journal commit makes even a double-run of
// the same block (possible only after a lease expires under a live worker)
// converge, because both executions produce byte-identical records.
func Work(ctx context.Context, dir string, run RunFunc, o WorkerOptions) (s Summary, err error) {
	o = o.withDefaults()
	m, err := LoadManifest(dir)
	if err != nil {
		return Summary{}, err
	}
	s = Summary{Worker: o.Name}
	hb := newHeartbeater(dir, o, m.Hash)
	defer func() {
		if r := recover(); r != nil {
			hb.close(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
		reason := "done"
		if err != nil {
			reason = "error: " + err.Error()
		}
		hb.close(reason)
	}()
	if o.HandleSignals {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			select {
			case sig := <-sigc:
				hb.note("signal", -1, sig.String())
				hb.flushFinal("signal: " + sig.String())
				cancel()
			case <-ctx.Done():
			}
		}()
	}
	var mPlanned, mClaimed, mCompleted, mReclaimed, mSkipped *obs.Counter
	var mWall *obs.Timer
	if reg := o.Metrics; reg != nil {
		mPlanned = reg.Counter("blocks.planned")
		mClaimed = reg.Counter("blocks.claimed")
		mCompleted = reg.Counter("blocks.completed")
		mReclaimed = reg.Counter("blocks.reclaimed")
		mSkipped = reg.Counter("blocks.skipped")
		mWall = reg.Timer("blocks.block_wall_s")
		mPlanned.Add(uint64(len(m.Blocks)))
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seenComplete := make([]bool, len(m.Blocks))
	for {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		claimedAny := false
		remaining := 0
		for _, b := range m.Blocks {
			if err := ctx.Err(); err != nil {
				return s, err
			}
			if seenComplete[b.ID] {
				continue
			}
			if BlockComplete(dir, m, b) {
				if !claimedOnce(&seenComplete[b.ID]) {
					continue
				}
				s.SkippedComplete++
				if mSkipped != nil {
					mSkipped.Inc()
				}
				hb.sync(s)
				continue
			}
			res, err := claim(dir, m, b.ID, o.Name, o.LeaseTTL, time.Now())
			if err != nil {
				return s, err
			}
			if res == claimHeld {
				remaining++
				continue
			}
			if res == claimReclaimed {
				s.Reclaimed++
				if mReclaimed != nil {
					mReclaimed.Inc()
				}
				hb.note("reclaim", b.ID, "expired lease broken")
				logf("block %d: reclaimed expired lease", b.ID)
			}
			if mClaimed != nil {
				mClaimed.Inc()
			}
			claimedAny = true
			hb.note("claim", b.ID, "")
			hb.setCurrent(b.ID)
			hb.sync(s)
			if err := executeBlock(ctx, dir, m, b, run, o); err != nil {
				// Leave no lease behind: the failed block returns to the
				// claimable pool immediately rather than after a TTL.
				release(dir, b.ID)
				hb.note("error", b.ID, err.Error())
				hb.setCurrent(-1)
				return s, err
			}
			hb.setCurrent(-1)
			seenComplete[b.ID] = true
			s.Completed++
			tr, _, _ := trailerOf(dir, m, b)
			if tr != nil {
				s.Events += tr.Events
				if mWall != nil {
					mWall.Observe(time.Duration(tr.WallMS * float64(time.Millisecond)))
				}
			}
			if mCompleted != nil {
				mCompleted.Inc()
			}
			hb.note("commit", b.ID, "")
			hb.sync(s)
			logf("block %d: completed (%d reps, cell %d)", b.ID, b.Reps(), b.CellIndex)
		}
		if remaining == 0 && !claimedAny {
			return s, nil // every block has a committed journal
		}
		if !claimedAny {
			if o.ExitWhenIdle {
				logf("%d blocks still leased by other workers; exiting (idle)", remaining)
				return s, nil
			}
			// Everything left is leased elsewhere: wait for completion or
			// for a lease to expire so it can be reclaimed.
			select {
			case <-ctx.Done():
				return s, ctx.Err()
			case <-time.After(o.Poll):
			}
		}
	}
}

// claimedOnce flips a bool and reports whether it was already set — a tiny
// helper so already-complete blocks are counted as skipped exactly once.
func claimedOnce(b *bool) bool {
	was := *b
	*b = true
	return was
}

// executeBlock runs one claimed block under a renewal heartbeat and
// commits its journal.
func executeBlock(ctx context.Context, dir string, m *Manifest, b Block, run RunFunc, o WorkerOptions) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(o.Renew)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				renew(dir, m, b.ID, o.Name, o.LeaseTTL, time.Now())
			}
		}
	}()
	defer func() {
		stopHB()
		<-hbDone
	}()
	start := time.Now()
	out, err := run(ctx, m, b)
	if err != nil {
		return fmt.Errorf("blocks: block %d: %w", b.ID, err)
	}
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err := writeBlockJournal(dir, m, b, out, o.Name, wallMS); err != nil {
		return err
	}
	return release(dir, b.ID)
}

// trailerOf fetches a block's trailer, reporting incompleteness distinctly.
func trailerOf(dir string, m *Manifest, b Block) (*Trailer, bool, error) {
	_, tr, err := ReadBlockJournal(dir, m, b)
	if err != nil {
		if errors.Is(err, ErrIncomplete) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return tr, true, nil
}

// heartbeater writes the worker's Heartbeat snapshot on its own goroutine
// so telemetry never touches the simulation path. All methods are nil-safe:
// a disabled heartbeat (WorkerOptions.Heartbeat < 0) is a nil heartbeater
// and every call is a no-op.
type heartbeater struct {
	dir   string
	o     WorkerOptions
	fl    *obs.FlightRecorder
	start time.Time
	host  string
	stamp provenance.Stamp

	current   atomic.Int64 // block being executed, -1 when idle
	completed atomic.Int64
	reclaimed atomic.Int64
	skipped   atomic.Int64
	events    atomic.Uint64

	mu         sync.Mutex // serialises writes; guards rate state + final flag
	lastEvents uint64
	lastWrite  time.Time
	finalDone  bool
	rates      []float64 // trailing events/s samples for the straggler trigger

	stop chan struct{}
	done chan struct{}
}

// Straggler self-detection: after rateWarmup measured intervals, an
// interval whose event rate falls below stragglerFraction of the trailing
// median (the same half-the-median rule CollectFleet applies across a
// fleet) arms the profiler. rateWindow bounds the trailing memory so a
// long-running worker tracks its recent self, not its startup.
const (
	rateWindow        = 32
	rateWarmup        = 6
	stragglerFraction = 0.5
)

func newHeartbeater(dir string, o WorkerOptions, manifestHash string) *heartbeater {
	if o.Heartbeat < 0 {
		return nil
	}
	host, _ := os.Hostname()
	h := &heartbeater{
		dir: dir, o: o, fl: obs.NewFlightRecorder(obs.DefaultFlightEvents),
		start: time.Now(), host: host,
		stamp: provenance.Collect().WithConfig(manifestHash),
		stop:  make(chan struct{}), done: make(chan struct{}),
	}
	h.current.Store(-1)
	h.fl.Record("start", -1, "worker "+o.Name)
	h.write(false, "")
	go h.loop()
	return h
}

func (h *heartbeater) loop() {
	defer close(h.done)
	t := time.NewTicker(h.o.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.write(false, "")
		}
	}
}

// note records a flight-recorder event. The ring rides along in every
// periodic heartbeat, which is what makes a SIGKILLed worker's last
// heartbeat its postmortem.
func (h *heartbeater) note(kind string, block int, msg string) {
	if h == nil {
		return
	}
	h.fl.Record(kind, block, msg)
}

func (h *heartbeater) setCurrent(block int) {
	if h == nil {
		return
	}
	h.current.Store(int64(block))
}

// sync mirrors the Work loop's running Summary into the heartbeat fields.
func (h *heartbeater) sync(s Summary) {
	if h == nil {
		return
	}
	h.completed.Store(int64(s.Completed))
	h.reclaimed.Store(int64(s.Reclaimed))
	h.skipped.Store(int64(s.SkippedComplete))
	h.events.Store(s.Events)
}

// write flushes one snapshot. Once a final snapshot lands, later writes are
// dropped so the first exit reason (e.g. "signal: terminated") survives the
// unwinding Work loop's own "error: context canceled" flush.
func (h *heartbeater) write(final bool, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.finalDone {
		return
	}
	now := time.Now()
	hb := Heartbeat{
		Worker: h.o.Name, PID: os.Getpid(), Host: h.host,
		StartUnixMS: h.start.UnixMilli(), UnixMS: now.UnixMilli(),
		IntervalMS:      h.o.Heartbeat.Milliseconds(),
		Final:           final,
		Reason:          reason,
		CurrentBlock:    int(h.current.Load()),
		Completed:       int(h.completed.Load()),
		Reclaimed:       int(h.reclaimed.Load()),
		SkippedComplete: int(h.skipped.Load()),
		Provenance:      &h.stamp,
		Flight:          h.fl.Events(),
		FlightTotal:     h.fl.Total(),
	}
	// Event rate: prefer the live runner.events counter (updated every
	// replication) over Summary events (updated only at block commits).
	cur := h.events.Load()
	if h.o.Metrics != nil {
		snap := h.o.Metrics.Snapshot()
		hb.Metrics = &snap
		if v, ok := snap.Counters["runner.events"]; ok {
			cur = v
		}
	}
	hb.Events = cur
	measured := false
	if dt := now.Sub(h.lastWrite).Seconds(); !h.lastWrite.IsZero() && dt > 0 && cur >= h.lastEvents {
		hb.EventsPerSec = float64(cur-h.lastEvents) / dt
		measured = true
	}
	h.lastEvents = cur
	h.lastWrite = now
	if measured && !final {
		h.checkStraggler(hb.EventsPerSec, hb.CurrentBlock)
	}
	if err := WriteHeartbeat(h.dir, hb); err != nil && h.o.Log != nil {
		h.o.Log("heartbeat write failed: %v", err)
	}
	if final {
		h.finalDone = true
	}
}

// checkStraggler compares this interval's event rate against the trailing
// median and arms the profiler on a collapse. Called under h.mu. Only
// intervals spent executing a block count — an idle worker polling for
// leases legitimately runs at zero events/s — and the comparison needs
// rateWarmup prior samples so startup transients cannot trigger it. The
// profiler itself debounces (one capture in flight, bounded budget), so a
// sustained stall costs at most MaxCaptures captures.
func (h *heartbeater) checkStraggler(rate float64, currentBlock int) {
	if currentBlock < 0 {
		h.rates = h.rates[:0] // idle gap: a stale band would misjudge the next block
		return
	}
	defer func() {
		h.rates = append(h.rates, rate)
		if len(h.rates) > rateWindow {
			h.rates = h.rates[len(h.rates)-rateWindow:]
		}
	}()
	if h.o.Profiler == nil || len(h.rates) < rateWarmup {
		return
	}
	sorted := append([]float64(nil), h.rates...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if median <= 0 || rate >= stragglerFraction*median {
		return
	}
	reason := fmt.Sprintf("events_per_sec %.0f below trailing band (median %.0f over %d intervals)",
		rate, median, len(h.rates))
	if h.o.Profiler.Trigger(reason) {
		h.fl.Record("profile", currentBlock, reason)
		if h.o.Log != nil {
			h.o.Log("straggler self-detected, profile armed: %s", reason)
		}
	}
}

// flushFinal writes the terminal snapshot immediately (e.g. from a signal
// handler) without waiting for the Work loop to unwind.
func (h *heartbeater) flushFinal(reason string) {
	if h == nil {
		return
	}
	h.write(true, reason)
}

// close stops the ticker goroutine and flushes the final snapshot.
func (h *heartbeater) close(reason string) {
	if h == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.note("exit", -1, reason)
	h.write(true, reason)
}

// ResumeReport says what a Resume sweep found and repaired.
type ResumeReport struct {
	// TornJournals lists blocks whose journal existed but did not commit
	// (torn final line, missing trailer); the files were removed so the
	// blocks return to the claimable pool.
	TornJournals []int
	// ExpiredLeases lists blocks whose lease had lapsed; the leases were
	// removed.
	ExpiredLeases []int
	// OrphanTemps counts abandoned temp files removed from the journal
	// and lease directories.
	OrphanTemps int
	// Complete and Remaining count the blocks after the sweep.
	Complete, Remaining int
}

// Resume validates a crashed run directory and returns it to a cleanly
// resumable state: incomplete journals (the torn output of killed writers)
// are deleted so their blocks re-run, expired leases are cleared so the
// blocks are immediately claimable, and abandoned temp files are removed.
// It never touches a committed journal or a live lease, so running it
// beside active workers is safe.
func Resume(dir string, now time.Time) (ResumeReport, *Manifest, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return ResumeReport{}, nil, err
	}
	var rep ResumeReport
	for _, b := range m.Blocks {
		_, _, jerr := ReadBlockJournal(dir, m, b)
		switch {
		case jerr == nil:
			rep.Complete++
			continue
		case errors.Is(jerr, ErrIncomplete):
			rep.Remaining++
			if _, statErr := os.Stat(JournalPath(dir, b.ID)); statErr == nil {
				if err := os.Remove(JournalPath(dir, b.ID)); err != nil {
					return rep, m, fmt.Errorf("blocks: %w", err)
				}
				rep.TornJournals = append(rep.TornJournals, b.ID)
			}
		default:
			return rep, m, jerr
		}
		l, lerr := readLease(LeasePath(dir, b.ID))
		if lerr == nil && l.Expired(now) {
			if err := os.Remove(LeasePath(dir, b.ID)); err != nil && !os.IsNotExist(err) {
				return rep, m, fmt.Errorf("blocks: %w", err)
			}
			rep.ExpiredLeases = append(rep.ExpiredLeases, b.ID)
		}
	}
	for _, sub := range []string{journalDir, leaseDir} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") || strings.Contains(e.Name(), ".stale-") {
				if os.Remove(filepath.Join(dir, sub, e.Name())) == nil {
					rep.OrphanTemps++
				}
			}
		}
	}
	return rep, m, nil
}
