package blocks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

// RunFunc executes one claimed block and returns its replication records.
// Implementations must be pure functions of (manifest, block) — every seed
// the block needs is in b.Seeds — so that any worker, on any machine, at
// any time produces identical records. internal/runner provides the
// estimate-kind implementation; cmd/ccjob provides the completion kind.
type RunFunc func(ctx context.Context, m *Manifest, b Block) (BlockOutput, error)

// WorkerOptions configures a Work loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and trailers; default
	// "<host>-<pid>".
	Name string
	// LeaseTTL bounds how long a crashed worker's claim pins a block.
	// Default 10 minutes; it must comfortably exceed one block's wall
	// time plus clock skew between machines sharing the directory.
	LeaseTTL time.Duration
	// Poll is the wait between scans when every remaining block is leased
	// by someone else. Default 2 s.
	Poll time.Duration
	// Renew is the heartbeat interval for the held lease. Default
	// LeaseTTL / 3.
	Renew time.Duration
	// ExitWhenIdle makes Work return as soon as a scan claims nothing,
	// instead of polling until every block is complete. Default false:
	// a worker normally outlives its peers' leases so a crashed peer's
	// blocks are reclaimed and the sweep always finishes.
	ExitWhenIdle bool
	// Metrics, when non-nil, receives the block telemetry counters
	// (blocks.planned/claimed/completed/reclaimed/skipped) and the
	// per-block wall-time histogram blocks.block_wall_s.
	Metrics *obs.Registry
	// Log, when non-nil, receives one human line per worker event.
	Log func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Minute
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Second
	}
	if o.Renew <= 0 {
		o.Renew = o.LeaseTTL / 3
	}
	return o
}

// Summary reports what one Work invocation did.
type Summary struct {
	// Worker is the resolved worker name.
	Worker string
	// Completed counts blocks this worker ran and committed.
	Completed int
	// Reclaimed counts completed blocks whose expired lease this worker
	// broke first.
	Reclaimed int
	// SkippedComplete counts blocks that were already journaled when this
	// worker first scanned them.
	SkippedComplete int
	// Events is the total simulation events across completed blocks.
	Events uint64
}

// Work claims and executes blocks from the run directory until every block
// has a committed journal (or, with ExitWhenIdle, until a scan finds
// nothing claimable). It is safe to run any number of Work loops — in one
// process or across machines — against the same directory; the lease files
// arbitrate, and the temp+rename journal commit makes even a double-run of
// the same block (possible only after a lease expires under a live worker)
// converge, because both executions produce byte-identical records.
func Work(ctx context.Context, dir string, run RunFunc, o WorkerOptions) (Summary, error) {
	o = o.withDefaults()
	m, err := LoadManifest(dir)
	if err != nil {
		return Summary{}, err
	}
	s := Summary{Worker: o.Name}
	var mPlanned, mClaimed, mCompleted, mReclaimed, mSkipped *obs.Counter
	var mWall *obs.Timer
	if reg := o.Metrics; reg != nil {
		mPlanned = reg.Counter("blocks.planned")
		mClaimed = reg.Counter("blocks.claimed")
		mCompleted = reg.Counter("blocks.completed")
		mReclaimed = reg.Counter("blocks.reclaimed")
		mSkipped = reg.Counter("blocks.skipped")
		mWall = reg.Timer("blocks.block_wall_s")
		mPlanned.Add(uint64(len(m.Blocks)))
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seenComplete := make([]bool, len(m.Blocks))
	for {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		claimedAny := false
		remaining := 0
		for _, b := range m.Blocks {
			if err := ctx.Err(); err != nil {
				return s, err
			}
			if seenComplete[b.ID] {
				continue
			}
			if BlockComplete(dir, m, b) {
				if !claimedOnce(&seenComplete[b.ID]) {
					continue
				}
				s.SkippedComplete++
				if mSkipped != nil {
					mSkipped.Inc()
				}
				continue
			}
			res, err := claim(dir, m, b.ID, o.Name, o.LeaseTTL, time.Now())
			if err != nil {
				return s, err
			}
			if res == claimHeld {
				remaining++
				continue
			}
			if res == claimReclaimed {
				s.Reclaimed++
				if mReclaimed != nil {
					mReclaimed.Inc()
				}
				logf("block %d: reclaimed expired lease", b.ID)
			}
			if mClaimed != nil {
				mClaimed.Inc()
			}
			claimedAny = true
			if err := executeBlock(ctx, dir, m, b, run, o); err != nil {
				// Leave no lease behind: the failed block returns to the
				// claimable pool immediately rather than after a TTL.
				release(dir, b.ID)
				return s, err
			}
			seenComplete[b.ID] = true
			s.Completed++
			tr, _, _ := trailerOf(dir, m, b)
			if tr != nil {
				s.Events += tr.Events
				if mWall != nil {
					mWall.Observe(time.Duration(tr.WallMS * float64(time.Millisecond)))
				}
			}
			if mCompleted != nil {
				mCompleted.Inc()
			}
			logf("block %d: completed (%d reps, cell %d)", b.ID, b.Reps(), b.CellIndex)
		}
		if remaining == 0 && !claimedAny {
			return s, nil // every block has a committed journal
		}
		if !claimedAny {
			if o.ExitWhenIdle {
				logf("%d blocks still leased by other workers; exiting (idle)", remaining)
				return s, nil
			}
			// Everything left is leased elsewhere: wait for completion or
			// for a lease to expire so it can be reclaimed.
			select {
			case <-ctx.Done():
				return s, ctx.Err()
			case <-time.After(o.Poll):
			}
		}
	}
}

// claimedOnce flips a bool and reports whether it was already set — a tiny
// helper so already-complete blocks are counted as skipped exactly once.
func claimedOnce(b *bool) bool {
	was := *b
	*b = true
	return was
}

// executeBlock runs one claimed block under a renewal heartbeat and
// commits its journal.
func executeBlock(ctx context.Context, dir string, m *Manifest, b Block, run RunFunc, o WorkerOptions) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(o.Renew)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				renew(dir, m, b.ID, o.Name, o.LeaseTTL, time.Now())
			}
		}
	}()
	defer func() {
		stopHB()
		<-hbDone
	}()
	start := time.Now()
	out, err := run(ctx, m, b)
	if err != nil {
		return fmt.Errorf("blocks: block %d: %w", b.ID, err)
	}
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err := writeBlockJournal(dir, m, b, out, o.Name, wallMS); err != nil {
		return err
	}
	return release(dir, b.ID)
}

// trailerOf fetches a block's trailer, reporting incompleteness distinctly.
func trailerOf(dir string, m *Manifest, b Block) (*Trailer, bool, error) {
	_, tr, err := ReadBlockJournal(dir, m, b)
	if err != nil {
		if errors.Is(err, ErrIncomplete) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return tr, true, nil
}

// ResumeReport says what a Resume sweep found and repaired.
type ResumeReport struct {
	// TornJournals lists blocks whose journal existed but did not commit
	// (torn final line, missing trailer); the files were removed so the
	// blocks return to the claimable pool.
	TornJournals []int
	// ExpiredLeases lists blocks whose lease had lapsed; the leases were
	// removed.
	ExpiredLeases []int
	// OrphanTemps counts abandoned temp files removed from the journal
	// and lease directories.
	OrphanTemps int
	// Complete and Remaining count the blocks after the sweep.
	Complete, Remaining int
}

// Resume validates a crashed run directory and returns it to a cleanly
// resumable state: incomplete journals (the torn output of killed writers)
// are deleted so their blocks re-run, expired leases are cleared so the
// blocks are immediately claimable, and abandoned temp files are removed.
// It never touches a committed journal or a live lease, so running it
// beside active workers is safe.
func Resume(dir string, now time.Time) (ResumeReport, *Manifest, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return ResumeReport{}, nil, err
	}
	var rep ResumeReport
	for _, b := range m.Blocks {
		_, _, jerr := ReadBlockJournal(dir, m, b)
		switch {
		case jerr == nil:
			rep.Complete++
			continue
		case errors.Is(jerr, ErrIncomplete):
			rep.Remaining++
			if _, statErr := os.Stat(JournalPath(dir, b.ID)); statErr == nil {
				if err := os.Remove(JournalPath(dir, b.ID)); err != nil {
					return rep, m, fmt.Errorf("blocks: %w", err)
				}
				rep.TornJournals = append(rep.TornJournals, b.ID)
			}
		default:
			return rep, m, jerr
		}
		l, lerr := readLease(LeasePath(dir, b.ID))
		if lerr == nil && l.Expired(now) {
			if err := os.Remove(LeasePath(dir, b.ID)); err != nil && !os.IsNotExist(err) {
				return rep, m, fmt.Errorf("blocks: %w", err)
			}
			rep.ExpiredLeases = append(rep.ExpiredLeases, b.ID)
		}
	}
	for _, sub := range []string{journalDir, leaseDir} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") || strings.Contains(e.Name(), ".stale-") {
				if os.Remove(filepath.Join(dir, sub, e.Name())) == nil {
					rep.OrphanTemps++
				}
			}
		}
	}
	return rep, m, nil
}
