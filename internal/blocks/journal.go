package blocks

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/obs"
)

// Record is one journal line: the kind discriminator plus the fields.
// Writer-side (a RunFunc's output) the field values are live Go values.
// Reader-side (decodeRecords) each value is a json.RawMessage holding the
// original bytes — so re-emitting a record through obs.Journal reproduces
// nested objects (counters, sim snapshots) verbatim, key order and float
// formatting included. Only top-level fields are ever rewritten (the
// reducer replaces ci_half_width; obs.Journal refreshes kind and ts),
// which is exactly the byte-identity contract: a reduced journal differs
// from a monolithic one only in obs.TimestampFields.
type Record struct {
	Kind   string
	Fields map[string]any
}

// Float returns the named field parsed as float64. Parsing raw bytes is a
// read-only operation — the stored literal is untouched — and Go's float
// parsing is exact for floats Go printed, so the value equals the writer's
// original bit for bit.
func (r Record) Float(key string) (float64, bool) {
	switch v := r.Fields[key].(type) {
	case json.RawMessage:
		var f float64
		if err := json.Unmarshal(v, &f); err != nil {
			return 0, false
		}
		return f, true
	case float64:
		return v, true
	}
	return 0, false
}

// Uint returns the named field parsed as uint64.
func (r Record) Uint(key string) (uint64, bool) {
	switch v := r.Fields[key].(type) {
	case json.RawMessage:
		var u uint64
		if err := json.Unmarshal(v, &u); err != nil {
			return 0, false
		}
		return u, true
	case uint64:
		return v, true
	case int:
		if v >= 0 {
			return uint64(v), true
		}
	}
	return 0, false
}

// Str returns the named field parsed as a string.
func (r Record) Str(key string) (string, bool) {
	switch v := r.Fields[key].(type) {
	case json.RawMessage:
		var s string
		if err := json.Unmarshal(v, &s); err != nil {
			return "", false
		}
		return s, true
	case string:
		return v, true
	}
	return "", false
}

// Trailer is the commit record closing a complete block journal. A journal
// without a valid trailer — including one whose final line was torn by a
// crashed writer — is incomplete: the block is simply not done, and a
// resuming worker re-runs it.
type Trailer struct {
	Block        int     `json:"block"`
	Cell         int     `json:"cell"`
	RepStart     int     `json:"rep_start"`
	Replications int     `json:"replications"`
	Events       uint64  `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	Worker       string  `json:"worker"`
	ManifestHash string  `json:"manifest_hash"`
	// CommittedUnixMS is the trailer's obs.Journal "ts" stamp — journal
	// lines are buffered and stamped together at commit, so this is the
	// block's commit time. Derived on read, never serialised (json:"-"),
	// so it cannot perturb the journal's byte-identity contract. Zero when
	// the ts field is absent or unparseable.
	CommittedUnixMS int64 `json:"-"`
}

// trailerKind discriminates the commit record.
const trailerKind = "block_done"

// ErrIncomplete marks a block journal that does not commit: missing,
// torn mid-line by a crashed writer, or lacking its trailer. Callers
// distinguish it from hard corruption (wrong manifest, wrong block) with
// errors.Is; an incomplete journal means "re-run the block", never "abort
// the sweep".
var ErrIncomplete = errors.New("block journal incomplete")

// BlockOutput is what running a block produces: one "replication" record
// per replication, in replication order, plus the total simulation event
// count for telemetry.
type BlockOutput struct {
	Records []Record
	Events  uint64
}

// writeBlockJournal serialises a completed block: every replication record
// (with a block-local ci_half_width convergence field appended, mirroring
// the monolithic journal's per-record prefix CI) followed by the commit
// trailer. The bytes are committed with temp + rename, so a reader never
// sees a partially written journal under the final name unless the
// filesystem itself tore the rename's data (power loss) — which the
// trailer check and torn-line tolerance then absorb.
func writeBlockJournal(dir string, m *Manifest, b Block, out BlockOutput, worker string, wallMS float64) error {
	if len(out.Records) != b.Reps() {
		return fmt.Errorf("blocks: block %d produced %d records, want %d", b.ID, len(out.Records), b.Reps())
	}
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	// Block-local prefix widths (paired under VR — a block always holds
	// whole pairs); the reducer rewrites them to the cell-global prefix.
	w := NewWidthTracker(m.Confidence, m.VR)
	for i, rec := range out.Records {
		if v, ok := rec.Float(m.ValueKey); ok {
			rec.Fields["ci_half_width"] = w.Add(v)
		}
		if err := j.Record(rec.Kind, rec.Fields); err != nil {
			return fmt.Errorf("blocks: block %d record %d: %w", b.ID, i, err)
		}
	}
	err := j.Record(trailerKind, map[string]any{
		"block":         b.ID,
		"cell":          b.CellIndex,
		"rep_start":     b.RepStart,
		"replications":  b.Reps(),
		"events":        out.Events,
		"wall_ms":       wallMS,
		"worker":        worker,
		"manifest_hash": m.Hash,
	})
	if err != nil {
		return fmt.Errorf("blocks: block %d trailer: %w", b.ID, err)
	}
	return atomicWrite(JournalPath(dir, b.ID), buf.Bytes())
}

// ReadBlockJournal loads and verifies one block's journal. On success it
// returns the replication records in order plus the trailer. An absent,
// torn, or uncommitted journal returns an error wrapping ErrIncomplete; a
// journal that parses but belongs to a different manifest or block returns
// a hard error, because that means run directories were mixed up, which
// re-running cannot fix.
func ReadBlockJournal(dir string, m *Manifest, b Block) ([]Record, *Trailer, error) {
	f, err := os.Open(JournalPath(dir, b.ID))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("blocks: block %d: journal missing: %w", b.ID, ErrIncomplete)
		}
		return nil, nil, fmt.Errorf("blocks: %w", err)
	}
	defer f.Close()
	recs, torn, err := decodeRecords(f)
	if err != nil {
		return nil, nil, fmt.Errorf("blocks: block %d journal: %w", b.ID, err)
	}
	if torn {
		return nil, nil, fmt.Errorf("blocks: block %d: journal has a torn final line (crashed writer): %w", b.ID, ErrIncomplete)
	}
	if len(recs) == 0 || recs[len(recs)-1].Kind != trailerKind {
		return nil, nil, fmt.Errorf("blocks: block %d: journal lacks its commit trailer: %w", b.ID, ErrIncomplete)
	}
	tr, err := parseTrailer(recs[len(recs)-1])
	if err != nil {
		return nil, nil, fmt.Errorf("blocks: block %d: %w: %v", b.ID, ErrIncomplete, err)
	}
	if tr.ManifestHash != m.Hash {
		return nil, nil, fmt.Errorf("blocks: block %d journal belongs to manifest %s, this run is %s", b.ID, tr.ManifestHash, m.Hash)
	}
	if tr.Block != b.ID || tr.Cell != b.CellIndex || tr.RepStart != b.RepStart || tr.Replications != b.Reps() {
		return nil, nil, fmt.Errorf("blocks: block %d journal trailer names block %d cell %d reps %d@%d, manifest plans cell %d reps %d@%d",
			b.ID, tr.Block, tr.Cell, tr.Replications, tr.RepStart, b.CellIndex, b.Reps(), b.RepStart)
	}
	reps := recs[:len(recs)-1]
	if len(reps) != b.Reps() {
		return nil, nil, fmt.Errorf("blocks: block %d: journal carries %d replication records, trailer promises %d: %w",
			b.ID, len(reps), b.Reps(), ErrIncomplete)
	}
	return reps, tr, nil
}

// BlockComplete reports whether the block's journal commits cleanly.
func BlockComplete(dir string, m *Manifest, b Block) bool {
	_, _, err := ReadBlockJournal(dir, m, b)
	return err == nil
}

// maxLineBytes bounds one journal line (same cap as internal/trace).
const maxLineBytes = 4 << 20

// decodeRecords scans JSONL records, tolerating a crashed writer: a final
// line that is truncated mid-object (or an unterminated last line) sets
// torn instead of failing, so callers treat the journal as incomplete
// work rather than a fatal input error. Malformed content that is not in
// tail position is also reported as torn — with concurrent crash-prone
// writers the only safe interpretation of any malformed journal is
// "re-run this block". Field values are kept as raw JSON (see Record).
func decodeRecords(r io.Reader) ([]Record, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	var out []Record
	for sc.Scan() {
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(data, &raw); err != nil {
			return out, true, nil
		}
		fields := make(map[string]any, len(raw))
		for k, v := range raw {
			fields[k] = v
		}
		rec := Record{Fields: fields}
		rec.Kind, _ = rec.Str("kind")
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return out, true, nil
		}
		return nil, false, err
	}
	return out, false, nil
}

// parseTrailer converts the commit record into its typed form.
func parseTrailer(rec Record) (*Trailer, error) {
	var tr Trailer
	get := func(key string) (int, error) {
		f, ok := rec.Float(key)
		if !ok || f != math.Trunc(f) {
			return 0, fmt.Errorf("trailer field %q malformed", key)
		}
		return int(f), nil
	}
	var err error
	if tr.Block, err = get("block"); err != nil {
		return nil, err
	}
	if tr.Cell, err = get("cell"); err != nil {
		return nil, err
	}
	if tr.RepStart, err = get("rep_start"); err != nil {
		return nil, err
	}
	if tr.Replications, err = get("replications"); err != nil {
		return nil, err
	}
	tr.Events, _ = rec.Uint("events")
	tr.WallMS, _ = rec.Float("wall_ms")
	tr.Worker, _ = rec.Str("worker")
	tr.ManifestHash, _ = rec.Str("manifest_hash")
	if ts, ok := rec.Str("ts"); ok {
		if t, terr := time.Parse(time.RFC3339Nano, ts); terr == nil {
			tr.CommittedUnixMS = t.UnixMilli()
		}
	}
	return &tr, nil
}
