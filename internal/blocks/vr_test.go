package blocks

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func vrCells(reps int) []Cell {
	return []Cell{{Label: "c0", Seed: 11, Replications: reps, Config: cluster.Default()}}
}

// Antithetic planning: every pair shares one seed, pairs sit at even
// offsets, and consecutive pairs draw distinct seeds from the cell root.
func TestPlanAntitheticSeedPairing(t *testing.T) {
	m, err := Plan(vrCells(8), PlanOptions{Name: "vr", BlockSize: 8, VR: VRAntithetic})
	if err != nil {
		t.Fatal(err)
	}
	seeds := m.Blocks[0].Seeds
	if len(seeds) != 8 {
		t.Fatalf("planned %d seeds", len(seeds))
	}
	half := ReplicationSeeds(11, 4)
	for k := 0; k < 4; k++ {
		if seeds[2*k] != half[k] || seeds[2*k+1] != half[k] {
			t.Fatalf("pair %d seeds (%d, %d), want both %d", k, seeds[2*k], seeds[2*k+1], half[k])
		}
	}
	if err := m.validate(); err != nil {
		t.Fatalf("planned manifest fails validation: %v", err)
	}
}

// An odd block size would split pairs across blocks; the planner rounds it
// up, and the resulting blocks all start on even replication offsets.
func TestPlanAntitheticEvenizesBlockSize(t *testing.T) {
	m, err := Plan(vrCells(10), PlanOptions{Name: "vr", BlockSize: 3, VR: VRAntithetic})
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockSize != 4 {
		t.Fatalf("block size = %d, want 4", m.BlockSize)
	}
	for _, b := range m.Blocks {
		if b.RepStart%2 != 0 || len(b.Seeds)%2 != 0 {
			t.Fatalf("block %d splits a pair: start %d, %d seeds", b.ID, b.RepStart, len(b.Seeds))
		}
	}
}

func TestPlanAntitheticRejectsOddReplications(t *testing.T) {
	if _, err := Plan(vrCells(7), PlanOptions{Name: "vr", VR: VRAntithetic}); err == nil {
		t.Fatal("odd replication count accepted under antithetic VR")
	}
	if _, err := Plan(vrCells(4), PlanOptions{Name: "vr", VR: "bogus"}); err == nil {
		t.Fatal("unknown VR mode accepted")
	}
}

// Plain manifests must keep their pre-VR bytes: the vr field is omitted
// entirely, so content hashes of existing plans are unchanged.
func TestPlainManifestOmitsVRField(t *testing.T) {
	plain, err := Plan(vrCells(4), PlanOptions{Name: "sweep", BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"vr":`) {
		t.Fatalf("plain manifest serialises a vr field: %s", data)
	}
	anti, err := Plan(vrCells(4), PlanOptions{Name: "sweep", BlockSize: 2, VR: VRAntithetic})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hash == anti.Hash {
		t.Fatal("antithetic plan hashes identically to the plain plan")
	}
}

// A corrupted antithetic manifest — a pair split across blocks or with
// mismatched seeds — must fail validation loudly.
func TestValidateRejectsSplitPairs(t *testing.T) {
	m, err := Plan(vrCells(4), PlanOptions{Name: "vr", BlockSize: 4, VR: VRAntithetic})
	if err != nil {
		t.Fatal(err)
	}
	broken := *m
	broken.Blocks = append([]Block(nil), m.Blocks...)
	seeds := append([]uint64(nil), m.Blocks[0].Seeds...)
	seeds[1] = seeds[1] + 1
	broken.Blocks[0] = Block{ID: 0, CellIndex: 0, RepStart: 0, Seeds: seeds}
	broken.Hash = broken.computeHash()
	if err := broken.validate(); err == nil {
		t.Fatal("mismatched pair seeds passed validation")
	}
}
