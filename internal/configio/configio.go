// Package configio reads and writes model configurations as JSON with
// human-friendly units (years, minutes, seconds, MB), so experiment setups
// can be versioned and shared instead of encoded in command lines. Absent
// or zero-valued required fields fall back to the Table 3 defaults.
package configio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
)

// FileConfig is the JSON schema. Zero values mean "use the default" for
// the required physical parameters; switches and probabilities are taken
// literally.
type FileConfig struct {
	Processors       int `json:"processors,omitempty"`
	ProcsPerNode     int `json:"procsPerNode,omitempty"`
	ComputePerIONode int `json:"computePerIONode,omitempty"`

	MTTFYears              float64 `json:"mttfYears,omitempty"`
	MTTRMinutes            float64 `json:"mttrMinutes,omitempty"`
	IOMTTRMinutes          float64 `json:"ioMttrMinutes,omitempty"`
	RebootHours            float64 `json:"rebootHours,omitempty"`
	SevereFailureThreshold int     `json:"severeFailureThreshold,omitempty"`

	IntervalMinutes    float64 `json:"intervalMinutes,omitempty"`
	MTTQSeconds        float64 `json:"mttqSeconds,omitempty"`
	TimeoutSeconds     float64 `json:"timeoutSeconds,omitempty"`
	BroadcastMillis    float64 `json:"broadcastMillis,omitempty"`
	CyclePeriodMinutes float64 `json:"cyclePeriodMinutes,omitempty"`
	ComputeFraction    float64 `json:"computeFraction,omitempty"`

	BandwidthToIONodeMBps float64 `json:"bandwidthToIONodeMBps,omitempty"`
	BandwidthIOToFSMBps   float64 `json:"bandwidthIOToFSMBps,omitempty"`
	CheckpointSizeMB      float64 `json:"checkpointSizeMB,omitempty"`
	IODataMB              float64 `json:"ioDataMB,omitempty"`

	ProbCorrelated               float64 `json:"probCorrelated,omitempty"`
	CorrelatedFactor             float64 `json:"correlatedFactor,omitempty"`
	CorrelatedWindowMinutes      float64 `json:"correlatedWindowMinutes,omitempty"`
	GenericCorrelatedCoefficient float64 `json:"genericCorrelatedCoefficient,omitempty"`

	// Coordination is "fixed", "none" or "max-of-n" (default "fixed").
	Coordination string `json:"coordination,omitempty"`

	BlockingCheckpointWrite bool    `json:"blockingCheckpointWrite,omitempty"`
	NoBufferedRecovery      bool    `json:"noBufferedRecovery,omitempty"`
	NoIOFailures            bool    `json:"noIOFailures,omitempty"`
	StragglerFraction       float64 `json:"stragglerFraction,omitempty"`
	StragglerMTTQMultiplier float64 `json:"stragglerMttqMultiplier,omitempty"`

	ProbPermanentFailure   float64 `json:"probPermanentFailure,omitempty"`
	ReconfigurationMinutes float64 `json:"reconfigurationMinutes,omitempty"`
	IncrementalFraction    float64 `json:"incrementalFraction,omitempty"`
	FullCheckpointEvery    int     `json:"fullCheckpointEvery,omitempty"`

	// FailureModel selects the failure inter-arrival distribution; absent
	// means the paper's exponential model.
	FailureModel *FailureModel `json:"failureModel,omitempty"`

	// FailurePredictionAccuracy enables the proactive-migration extension:
	// each compute failure is predicted (and absorbed by a migration of
	// MigrationMinutes) with this probability.
	FailurePredictionAccuracy float64 `json:"failurePredictionAccuracy,omitempty"`
	MigrationMinutes          float64 `json:"migrationMinutes,omitempty"`

	// AdaptiveInterval enables the adaptive checkpoint-interval controller
	// retuning from the observed failure rate, clamped to [min, max].
	AdaptiveInterval           bool    `json:"adaptiveInterval,omitempty"`
	AdaptiveIntervalMinMinutes float64 `json:"adaptiveIntervalMinMinutes,omitempty"`
	AdaptiveIntervalMaxMinutes float64 `json:"adaptiveIntervalMaxMinutes,omitempty"`
}

// FailureModel is the failure-distribution block of the file schema.
type FailureModel struct {
	// Dist is "exponential" (the default) or "weibull".
	Dist string `json:"dist,omitempty"`
	// Shape is the Weibull shape parameter k (required for "weibull";
	// field data typically fits k < 1, i.e. burstier than exponential).
	Shape float64 `json:"shape,omitempty"`
}

// ToCluster converts the file schema to a validated model configuration,
// defaulting absent required fields to Table 3.
func (f FileConfig) ToCluster() (cluster.Config, error) {
	c := cluster.Default()
	setInt(&c.Processors, f.Processors)
	setInt(&c.ProcsPerNode, f.ProcsPerNode)
	setInt(&c.ComputePerIONode, f.ComputePerIONode)
	setDur(&c.MTTFPerNode, f.MTTFYears, cluster.Years)
	setDur(&c.MTTR, f.MTTRMinutes, cluster.Minutes)
	setDur(&c.MTTRIONodes, f.IOMTTRMinutes, cluster.Minutes)
	if f.RebootHours > 0 {
		c.RebootTime = f.RebootHours
	}
	setInt(&c.SevereFailureThreshold, f.SevereFailureThreshold)
	setDur(&c.CheckpointInterval, f.IntervalMinutes, cluster.Minutes)
	setDur(&c.MTTQ, f.MTTQSeconds, cluster.Seconds)
	c.Timeout = cluster.Seconds(f.TimeoutSeconds)
	if f.BroadcastMillis > 0 {
		c.BroadcastOverhead = cluster.Seconds(f.BroadcastMillis / 1000)
	}
	setDur(&c.IOComputeCyclePeriod, f.CyclePeriodMinutes, cluster.Minutes)
	if f.ComputeFraction > 0 {
		c.ComputeFraction = f.ComputeFraction
	}
	if f.BandwidthToIONodeMBps > 0 {
		c.BandwidthToIONode = f.BandwidthToIONodeMBps * cluster.MB * cluster.SecondsPerHour
	}
	if f.BandwidthIOToFSMBps > 0 {
		c.BandwidthIOToFS = f.BandwidthIOToFSMBps * cluster.MB * cluster.SecondsPerHour
	}
	if f.CheckpointSizeMB > 0 {
		c.CheckpointSizePerNode = f.CheckpointSizeMB * cluster.MB
	}
	if f.IODataMB > 0 {
		c.IODataPerNode = f.IODataMB * cluster.MB
	}
	c.ProbCorrelated = f.ProbCorrelated
	if f.CorrelatedFactor > 0 {
		c.CorrelatedFactor = f.CorrelatedFactor
	}
	setDur(&c.CorrelatedWindow, f.CorrelatedWindowMinutes, cluster.Minutes)
	c.GenericCorrelatedCoefficient = f.GenericCorrelatedCoefficient
	switch f.Coordination {
	case "", "fixed":
		c.Coordination = cluster.CoordFixed
	case "none":
		c.Coordination = cluster.CoordNone
	case "max-of-n":
		c.Coordination = cluster.CoordMaxOfN
	default:
		return cluster.Config{}, fmt.Errorf("configio: unknown coordination %q", f.Coordination)
	}
	c.BlockingCheckpointWrite = f.BlockingCheckpointWrite
	c.NoBufferedRecovery = f.NoBufferedRecovery
	c.NoIOFailures = f.NoIOFailures
	c.StragglerFraction = f.StragglerFraction
	c.StragglerMTTQMultiplier = f.StragglerMTTQMultiplier
	c.ProbPermanentFailure = f.ProbPermanentFailure
	c.ReconfigurationTime = cluster.Minutes(f.ReconfigurationMinutes)
	c.IncrementalFraction = f.IncrementalFraction
	c.FullCheckpointEvery = f.FullCheckpointEvery
	if fm := f.FailureModel; fm != nil {
		switch fm.Dist {
		case "", "exponential":
			c.FailureDist = cluster.FailureExponential
		case "weibull":
			c.FailureDist = cluster.FailureWeibull
		default:
			return cluster.Config{}, fmt.Errorf("configio: unknown failure distribution %q", fm.Dist)
		}
		c.FailureShape = fm.Shape
	}
	c.FailurePredictionAccuracy = f.FailurePredictionAccuracy
	c.MigrationTime = cluster.Minutes(f.MigrationMinutes)
	c.AdaptiveInterval = f.AdaptiveInterval
	c.AdaptiveIntervalMin = cluster.Minutes(f.AdaptiveIntervalMinMinutes)
	c.AdaptiveIntervalMax = cluster.Minutes(f.AdaptiveIntervalMaxMinutes)
	if err := c.Validate(); err != nil {
		return cluster.Config{}, fmt.Errorf("configio: %w", err)
	}
	return c, nil
}

// FromCluster converts a model configuration to the file schema.
func FromCluster(c cluster.Config) FileConfig {
	f := FileConfig{
		Processors:                   c.Processors,
		ProcsPerNode:                 c.ProcsPerNode,
		ComputePerIONode:             c.ComputePerIONode,
		MTTFYears:                    c.MTTFPerNode / cluster.HoursPerYear,
		MTTRMinutes:                  c.MTTR * 60,
		IOMTTRMinutes:                c.MTTRIONodes * 60,
		RebootHours:                  c.RebootTime,
		SevereFailureThreshold:       c.SevereFailureThreshold,
		IntervalMinutes:              c.CheckpointInterval * 60,
		MTTQSeconds:                  c.MTTQ * cluster.SecondsPerHour,
		TimeoutSeconds:               c.Timeout * cluster.SecondsPerHour,
		BroadcastMillis:              c.BroadcastOverhead * cluster.SecondsPerHour * 1000,
		CyclePeriodMinutes:           c.IOComputeCyclePeriod * 60,
		ComputeFraction:              c.ComputeFraction,
		BandwidthToIONodeMBps:        c.BandwidthToIONode / cluster.MB / cluster.SecondsPerHour,
		BandwidthIOToFSMBps:          c.BandwidthIOToFS / cluster.MB / cluster.SecondsPerHour,
		CheckpointSizeMB:             c.CheckpointSizePerNode / cluster.MB,
		IODataMB:                     c.IODataPerNode / cluster.MB,
		ProbCorrelated:               c.ProbCorrelated,
		CorrelatedFactor:             c.CorrelatedFactor,
		CorrelatedWindowMinutes:      c.CorrelatedWindow * 60,
		GenericCorrelatedCoefficient: c.GenericCorrelatedCoefficient,
		Coordination:                 c.Coordination.String(),
		BlockingCheckpointWrite:      c.BlockingCheckpointWrite,
		NoBufferedRecovery:           c.NoBufferedRecovery,
		NoIOFailures:                 c.NoIOFailures,
		StragglerFraction:            c.StragglerFraction,
		StragglerMTTQMultiplier:      c.StragglerMTTQMultiplier,
		ProbPermanentFailure:         c.ProbPermanentFailure,
		ReconfigurationMinutes:       c.ReconfigurationTime * 60,
		IncrementalFraction:          c.IncrementalFraction,
		FullCheckpointEvery:          c.FullCheckpointEvery,
		FailurePredictionAccuracy:    c.FailurePredictionAccuracy,
		MigrationMinutes:             c.MigrationTime * 60,
		AdaptiveInterval:             c.AdaptiveInterval,
		AdaptiveIntervalMinMinutes:   c.AdaptiveIntervalMin * 60,
		AdaptiveIntervalMaxMinutes:   c.AdaptiveIntervalMax * 60,
	}
	if c.FailureDist != cluster.FailureExponential {
		f.FailureModel = &FailureModel{Dist: c.FailureDist.String(), Shape: c.FailureShape}
	}
	return f
}

// Load parses a JSON configuration, applying defaults for absent fields.
// Unknown fields are rejected to catch typos.
func Load(r io.Reader) (cluster.Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f FileConfig
	if err := dec.Decode(&f); err != nil {
		return cluster.Config{}, fmt.Errorf("configio: %w", err)
	}
	return f.ToCluster()
}

// Save writes the configuration as indented JSON.
func Save(w io.Writer, c cluster.Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(FromCluster(c)); err != nil {
		return fmt.Errorf("configio: %w", err)
	}
	return nil
}

// setInt overrides dst with v when v is positive.
func setInt(dst *int, v int) {
	if v > 0 {
		*dst = v
	}
}

// setDur overrides dst with conv(v) when v is positive.
func setDur(dst *float64, v float64, conv func(float64) float64) {
	if v > 0 {
		*dst = conv(v)
	}
}
