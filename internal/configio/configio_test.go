package configio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestEmptyJSONGivesDefaults(t *testing.T) {
	cfg, err := Load(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	def := cluster.Default()
	if cfg.Processors != def.Processors || cfg.MTTFPerNode != def.MTTFPerNode ||
		cfg.Coordination != def.Coordination {
		t.Fatalf("empty JSON did not give defaults: %+v", cfg)
	}
}

func TestLoadOverrides(t *testing.T) {
	src := `{
		"processors": 131072,
		"mttfYears": 3,
		"intervalMinutes": 15,
		"timeoutSeconds": 100,
		"coordination": "max-of-n",
		"probCorrelated": 0.1,
		"correlatedFactor": 800,
		"noIOFailures": true,
		"computeFraction": 1.0
	}`
	cfg, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Processors != 131072 {
		t.Errorf("processors = %d", cfg.Processors)
	}
	if math.Abs(cfg.MTTFPerNode-cluster.Years(3)) > 1e-9 {
		t.Errorf("mttf = %v", cfg.MTTFPerNode)
	}
	if math.Abs(cfg.CheckpointInterval-cluster.Minutes(15)) > 1e-12 {
		t.Errorf("interval = %v", cfg.CheckpointInterval)
	}
	if math.Abs(cfg.Timeout-cluster.Seconds(100)) > 1e-12 {
		t.Errorf("timeout = %v", cfg.Timeout)
	}
	if cfg.Coordination != cluster.CoordMaxOfN {
		t.Errorf("coordination = %v", cfg.Coordination)
	}
	if cfg.ProbCorrelated != 0.1 || cfg.CorrelatedFactor != 800 {
		t.Errorf("correlated params wrong: %v %v", cfg.ProbCorrelated, cfg.CorrelatedFactor)
	}
	if !cfg.NoIOFailures || cfg.ComputeFraction != 1.0 {
		t.Errorf("switches wrong: %+v", cfg)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := cluster.Default()
	orig.Processors = 262144
	orig.MTTFPerNode = cluster.Years(2)
	orig.Coordination = cluster.CoordMaxOfN
	orig.Timeout = cluster.Seconds(90)
	orig.StragglerFraction = 0.02
	orig.StragglerMTTQMultiplier = 5
	orig.ProbPermanentFailure = 0.25
	orig.ReconfigurationTime = cluster.Minutes(45)
	orig.IncrementalFraction = 0.2
	orig.FullCheckpointEvery = 4
	orig.BlockingCheckpointWrite = true

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors != orig.Processors ||
		math.Abs(back.MTTFPerNode-orig.MTTFPerNode) > 1e-6 ||
		back.Coordination != orig.Coordination ||
		math.Abs(back.Timeout-orig.Timeout) > 1e-9 ||
		back.StragglerFraction != orig.StragglerFraction ||
		back.StragglerMTTQMultiplier != orig.StragglerMTTQMultiplier ||
		back.ProbPermanentFailure != orig.ProbPermanentFailure ||
		math.Abs(back.ReconfigurationTime-orig.ReconfigurationTime) > 1e-9 ||
		back.IncrementalFraction != orig.IncrementalFraction ||
		back.FullCheckpointEvery != orig.FullCheckpointEvery ||
		back.BlockingCheckpointWrite != orig.BlockingCheckpointWrite {
		t.Fatalf("round trip mismatch:\norig %+v\nback %+v", orig, back)
	}
	if math.Abs(back.BandwidthToIONode-orig.BandwidthToIONode)/orig.BandwidthToIONode > 1e-9 {
		t.Fatalf("bandwidth round trip: %v vs %v", back.BandwidthToIONode, orig.BandwidthToIONode)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"processros": 5}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestBadJSON(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestUnknownCoordination(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"coordination": "psychic"}`)); err == nil {
		t.Fatal("unknown coordination accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	// probCorrelated without a factor fails cluster validation.
	if _, err := Load(strings.NewReader(`{"probCorrelated": 0.1}`)); err == nil {
		t.Fatal("invalid combination accepted")
	}
}

func TestSaveDefaultsLoadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, cluster.Default()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"processors\"") {
		t.Fatalf("serialized form unexpected:\n%s", buf.String())
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}
}
