package configio

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestEmptyJSONGivesDefaults(t *testing.T) {
	cfg, err := Load(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	def := cluster.Default()
	if cfg.Processors != def.Processors || cfg.MTTFPerNode != def.MTTFPerNode ||
		cfg.Coordination != def.Coordination {
		t.Fatalf("empty JSON did not give defaults: %+v", cfg)
	}
}

func TestLoadOverrides(t *testing.T) {
	src := `{
		"processors": 131072,
		"mttfYears": 3,
		"intervalMinutes": 15,
		"timeoutSeconds": 100,
		"coordination": "max-of-n",
		"probCorrelated": 0.1,
		"correlatedFactor": 800,
		"noIOFailures": true,
		"computeFraction": 1.0
	}`
	cfg, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Processors != 131072 {
		t.Errorf("processors = %d", cfg.Processors)
	}
	if math.Abs(cfg.MTTFPerNode-cluster.Years(3)) > 1e-9 {
		t.Errorf("mttf = %v", cfg.MTTFPerNode)
	}
	if math.Abs(cfg.CheckpointInterval-cluster.Minutes(15)) > 1e-12 {
		t.Errorf("interval = %v", cfg.CheckpointInterval)
	}
	if math.Abs(cfg.Timeout-cluster.Seconds(100)) > 1e-12 {
		t.Errorf("timeout = %v", cfg.Timeout)
	}
	if cfg.Coordination != cluster.CoordMaxOfN {
		t.Errorf("coordination = %v", cfg.Coordination)
	}
	if cfg.ProbCorrelated != 0.1 || cfg.CorrelatedFactor != 800 {
		t.Errorf("correlated params wrong: %v %v", cfg.ProbCorrelated, cfg.CorrelatedFactor)
	}
	if !cfg.NoIOFailures || cfg.ComputeFraction != 1.0 {
		t.Errorf("switches wrong: %+v", cfg)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := cluster.Default()
	orig.Processors = 262144
	orig.MTTFPerNode = cluster.Years(2)
	orig.Coordination = cluster.CoordMaxOfN
	orig.Timeout = cluster.Seconds(90)
	orig.StragglerFraction = 0.02
	orig.StragglerMTTQMultiplier = 5
	orig.ProbPermanentFailure = 0.25
	orig.ReconfigurationTime = cluster.Minutes(45)
	orig.IncrementalFraction = 0.2
	orig.FullCheckpointEvery = 4
	orig.BlockingCheckpointWrite = true

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors != orig.Processors ||
		math.Abs(back.MTTFPerNode-orig.MTTFPerNode) > 1e-6 ||
		back.Coordination != orig.Coordination ||
		math.Abs(back.Timeout-orig.Timeout) > 1e-9 ||
		back.StragglerFraction != orig.StragglerFraction ||
		back.StragglerMTTQMultiplier != orig.StragglerMTTQMultiplier ||
		back.ProbPermanentFailure != orig.ProbPermanentFailure ||
		math.Abs(back.ReconfigurationTime-orig.ReconfigurationTime) > 1e-9 ||
		back.IncrementalFraction != orig.IncrementalFraction ||
		back.FullCheckpointEvery != orig.FullCheckpointEvery ||
		back.BlockingCheckpointWrite != orig.BlockingCheckpointWrite {
		t.Fatalf("round trip mismatch:\norig %+v\nback %+v", orig, back)
	}
	if math.Abs(back.BandwidthToIONode-orig.BandwidthToIONode)/orig.BandwidthToIONode > 1e-9 {
		t.Fatalf("bandwidth round trip: %v vs %v", back.BandwidthToIONode, orig.BandwidthToIONode)
	}
}

// fullFixture is a valid cluster.Config in which every field differs from
// its zero value, so the exhaustive round trip below exercises every JSON
// field of the schema at once.
func fullFixture() cluster.Config {
	c := cluster.Default()
	c.Processors = 262144
	c.ProcsPerNode = 4
	c.ComputePerIONode = 64
	c.MTTFPerNode = cluster.Years(3)
	c.MTTR = cluster.Minutes(12)
	c.MTTRIONodes = cluster.Minutes(7)
	c.RebootTime = 1.5
	c.SevereFailureThreshold = 5
	c.CheckpointInterval = cluster.Minutes(45)
	c.MTTQ = cluster.Seconds(12)
	c.Timeout = cluster.Seconds(90)
	c.BroadcastOverhead = cluster.Seconds(0.25)
	c.IOComputeCyclePeriod = cluster.Minutes(90)
	c.ComputeFraction = 0.95
	c.BandwidthToIONode = 150 * cluster.MB * cluster.SecondsPerHour
	c.BandwidthIOToFS = 30 * cluster.MB * cluster.SecondsPerHour
	c.CheckpointSizePerNode = 768 * cluster.MB
	c.IODataPerNode = 384 * cluster.MB
	c.ProbCorrelated = 0.1
	c.CorrelatedFactor = 800
	c.CorrelatedWindow = cluster.Minutes(20)
	c.GenericCorrelatedCoefficient = 0.0025
	c.Coordination = cluster.CoordMaxOfN
	c.FailureDist = cluster.FailureWeibull
	c.FailureShape = 0.7
	c.BlockingCheckpointWrite = true
	c.NoBufferedRecovery = true
	c.NoIOFailures = true
	c.StragglerFraction = 0.02
	c.StragglerMTTQMultiplier = 5
	c.ProbPermanentFailure = 0.25
	c.ReconfigurationTime = cluster.Minutes(45)
	c.IncrementalFraction = 0.2
	c.FullCheckpointEvery = 4
	c.FailurePredictionAccuracy = 0.7
	c.MigrationTime = cluster.Minutes(2)
	c.AdaptiveInterval = true
	c.AdaptiveIntervalMin = cluster.Minutes(5)
	c.AdaptiveIntervalMax = cluster.Minutes(240)
	return c
}

// TestExhaustiveRoundTrip serializes a configuration with every field set
// and checks — by reflection, so a Config field added without configio
// support fails here — that the Save→Load round trip preserves each one.
func TestExhaustiveRoundTrip(t *testing.T) {
	orig := fullFixture()
	if err := orig.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}

	// Guard: the fixture must move every field off its zero value, or the
	// comparison below would vacuously pass for a forgotten field.
	ov := reflect.ValueOf(orig)
	for i := 0; i < ov.NumField(); i++ {
		if ov.Field(i).IsZero() {
			t.Errorf("fixture leaves Config.%s at its zero value; set it so the round trip covers it",
				ov.Type().Field(i).Name)
		}
	}

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	bv := reflect.ValueOf(back)
	for i := 0; i < ov.NumField(); i++ {
		name := ov.Type().Field(i).Name
		of, bf := ov.Field(i), bv.Field(i)
		switch of.Kind() {
		case reflect.Float64:
			o, b := of.Float(), bf.Float()
			if math.Abs(b-o) > 1e-9*math.Max(1, math.Abs(o)) {
				t.Errorf("Config.%s: %v -> %v", name, o, b)
			}
		default:
			if !of.Equal(bf) {
				t.Errorf("Config.%s: %v -> %v", name, of, bf)
			}
		}
	}
}

// TestFailureModelBlock covers the nested failureModel block and its error
// paths.
func TestFailureModelBlock(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{"failureModel": {"dist": "weibull", "shape": 0.7}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FailureDist != cluster.FailureWeibull || cfg.FailureShape != 0.7 {
		t.Fatalf("weibull block not applied: %v shape %v", cfg.FailureDist, cfg.FailureShape)
	}

	// An explicit exponential block is the default spelled out.
	cfg, err = Load(strings.NewReader(`{"failureModel": {"dist": "exponential"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FailureDist != cluster.FailureExponential {
		t.Fatalf("explicit exponential not applied: %v", cfg.FailureDist)
	}

	if _, err := Load(strings.NewReader(`{"failureModel": {"dist": "lognormal"}}`)); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := Load(strings.NewReader(`{"failureModel": {"dist": "weibull"}}`)); err == nil {
		t.Fatal("weibull without shape accepted")
	}
	// Unknown keys inside the nested block must be rejected too.
	if _, err := Load(strings.NewReader(`{"failureModel": {"dist": "weibull", "shpae": 0.7}}`)); err == nil {
		t.Fatal("typo inside failureModel block accepted")
	}
}

func TestVariantFieldsValidated(t *testing.T) {
	cases := map[string]string{
		"accuracy without migration time": `{"failurePredictionAccuracy": 0.5}`,
		"migration time without accuracy": `{"migrationMinutes": 2}`,
		"adaptive without bounds":         `{"adaptiveInterval": true}`,
		"adaptive max below min":          `{"adaptiveInterval": true, "adaptiveIntervalMinMinutes": 60, "adaptiveIntervalMaxMinutes": 5}`,
		"bounds without adaptive":         `{"adaptiveIntervalMinMinutes": 5}`,
	}
	for name, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"processros": 5}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestBadJSON(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestUnknownCoordination(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"coordination": "psychic"}`)); err == nil {
		t.Fatal("unknown coordination accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	// probCorrelated without a factor fails cluster validation.
	if _, err := Load(strings.NewReader(`{"probCorrelated": 0.1}`)); err == nil {
		t.Fatal("invalid combination accepted")
	}
}

func TestSaveDefaultsLoadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, cluster.Default()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"processors\"") {
		t.Fatalf("serialized form unexpected:\n%s", buf.String())
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}
}
