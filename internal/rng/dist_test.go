package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(t *testing.T, d Dist, src Source, n int) float64 {
	t.Helper()
	sum := 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(src)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%v produced invalid sample %v", d, v)
		}
		sum += v
	}
	return sum / float64(n)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.5}
	src := New(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(src); v != 3.5 {
			t.Fatalf("deterministic sample = %v", v)
		}
	}
	if d.Mean() != 3.5 {
		t.Fatalf("deterministic mean = %v", d.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanValue: 2.0}
	m := sampleMean(t, d, New(2), 200000)
	if math.Abs(m-2.0) > 0.05 {
		t.Fatalf("exponential sample mean = %v, want ~2.0", m)
	}
}

func TestExponentialMemoryless(t *testing.T) {
	// P(X > 2m) should be about e^{-2} and P(X > m) about e^{-1}.
	d := Exponential{MeanValue: 1.0}
	src := New(3)
	const n = 200000
	over1, over2 := 0, 0
	for i := 0; i < n; i++ {
		v := d.Sample(src)
		if v > 1 {
			over1++
		}
		if v > 2 {
			over2++
		}
	}
	p1 := float64(over1) / n
	p2 := float64(over2) / n
	if math.Abs(p1-math.Exp(-1)) > 0.01 {
		t.Errorf("P(X>1) = %v, want %v", p1, math.Exp(-1))
	}
	if math.Abs(p2-math.Exp(-2)) > 0.01 {
		t.Errorf("P(X>2) = %v, want %v", p2, math.Exp(-2))
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Low: 2, High: 6}
	src := New(4)
	for i := 0; i < 10000; i++ {
		v := d.Sample(src)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample %v out of [2,6)", v)
		}
	}
	if d.Mean() != 4 {
		t.Fatalf("uniform mean = %v", d.Mean())
	}
}

func TestMaxOfNExponentialsMean(t *testing.T) {
	// E[max of n exp(mean m)] = m * H_n.
	for _, n := range []int{1, 2, 10, 100, 1024} {
		d := MaxOfNExponentials{N: n, PerNodeMean: 1.5}
		want := 1.5 * HarmonicNumber(n)
		got := sampleMean(t, d, New(uint64(n)), 100000)
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("n=%d: sample mean %v, want %v", n, got, want)
		}
		if math.Abs(d.Mean()-want) > 1e-12 {
			t.Errorf("n=%d: Mean() = %v, want %v", n, d.Mean(), want)
		}
	}
}

func TestMaxOfNExponentialsDominatesSingle(t *testing.T) {
	// The max over n>1 nodes must stochastically dominate a single node:
	// its sample mean must exceed the per-node mean.
	d := MaxOfNExponentials{N: 4096, PerNodeMean: 1.0}
	m := sampleMean(t, d, New(9), 20000)
	if m <= 1.0 {
		t.Fatalf("max-of-4096 mean %v not above per-node mean 1.0", m)
	}
}

func TestMaxOfNExponentialsHugeN(t *testing.T) {
	// Precision check: n = 2^30 (Figure 5 x-axis extends to ~1e9).
	d := MaxOfNExponentials{N: 1 << 30, PerNodeMean: 10.0 / 3600.0}
	src := New(10)
	m := sampleMean(t, d, src, 20000)
	want := d.Mean()
	if math.Abs(m-want)/want > 0.03 {
		t.Fatalf("n=2^30: sample mean %v, want %v", m, want)
	}
}

func TestHarmonicNumber(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.0 + 0.5 + 1.0/3},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := HarmonicNumber(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("H(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// Continuity across the exact/asymptotic switch at n=64.
	exact := 0.0
	for i := 1; i <= 64; i++ {
		exact += 1 / float64(i)
	}
	if got := HarmonicNumber(64); math.Abs(got-exact) > 1e-9 {
		t.Errorf("H(64) asymptotic = %v, exact = %v", got, exact)
	}
}

func TestErlangMeanAndVariance(t *testing.T) {
	d := Erlang{K: 4, MeanValue: 2.0}
	src := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(src)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2.0) > 0.03 {
		t.Errorf("erlang mean = %v, want 2.0", mean)
	}
	// Var = mean² / k = 4/4 = 1.
	if math.Abs(variance-1.0) > 0.05 {
		t.Errorf("erlang variance = %v, want 1.0", variance)
	}
}

func TestHyperExponentialMean(t *testing.T) {
	d := HyperExponential{P: 0.3, MeanA: 5, MeanB: 1}
	want := 0.3*5 + 0.7*1
	got := sampleMean(t, d, New(6), 200000)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("hyperexp sample mean = %v, want %v", got, want)
	}
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Fatalf("hyperexp Mean() = %v, want %v", d.Mean(), want)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	d := Weibull{Shape: 1, Scale: 3}
	got := sampleMean(t, d, New(8), 100000)
	if math.Abs(got-3)/3 > 0.03 {
		t.Fatalf("weibull(1,3) sample mean = %v, want ~3", got)
	}
	if math.Abs(d.Mean()-3) > 1e-9 {
		t.Fatalf("weibull(1,3) Mean() = %v, want 3", d.Mean())
	}
}

func TestDistStringsNonEmpty(t *testing.T) {
	dists := []Dist{
		Deterministic{1}, Exponential{1}, Uniform{0, 1},
		MaxOfNExponentials{8, 1}, Erlang{2, 1},
		HyperExponential{0.5, 1, 2}, Weibull{2, 1},
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

// TestMaxOfNExponentialsQuantileProperty: via testing/quick, every sample of
// the max must be finite and positive for arbitrary n and means.
func TestMaxOfNExponentialsQuantileProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint32, meanRaw uint16) bool {
		n := int(nRaw)%(1<<20) + 1
		mean := float64(meanRaw)/1000 + 1e-6
		d := MaxOfNExponentials{N: n, PerNodeMean: mean}
		src := New(seed)
		for i := 0; i < 20; i++ {
			v := d.Sample(src)
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOfGroupsReducesToSingle(t *testing.T) {
	single := MaxOfNExponentials{N: 1024, PerNodeMean: 2}
	grouped := MaxOfGroups{Groups: []MaxOfNExponentials{single}}
	if math.Abs(grouped.Mean()-single.Mean())/single.Mean() > 0.01 {
		t.Fatalf("single-group mean %v vs direct %v", grouped.Mean(), single.Mean())
	}
	got := sampleMean(t, grouped, New(21), 50000)
	if math.Abs(got-single.Mean())/single.Mean() > 0.03 {
		t.Fatalf("single-group sample mean %v vs %v", got, single.Mean())
	}
}

func TestMaxOfGroupsStragglersDominate(t *testing.T) {
	// 1% stragglers 10x slower: the max is driven by the slow group.
	fast := MaxOfNExponentials{N: 63488, PerNodeMean: 1}
	slow := MaxOfNExponentials{N: 1024, PerNodeMean: 10}
	d := MaxOfGroups{Groups: []MaxOfNExponentials{fast, slow}}
	m := d.Mean()
	if m < slow.Mean()*(1-1e-9) {
		t.Fatalf("group max mean %v below slow group's own mean %v", m, slow.Mean())
	}
	if m > fast.Mean()+slow.Mean() {
		t.Fatalf("group max mean %v above sum bound %v", m, fast.Mean()+slow.Mean())
	}
	got := sampleMean(t, d, New(22), 50000)
	if math.Abs(got-m)/m > 0.03 {
		t.Fatalf("sampled %v vs integrated %v", got, m)
	}
}

func TestMaxOfGroupsEmptyAndDegenerate(t *testing.T) {
	var d MaxOfGroups
	if d.Mean() != 0 || d.Sample(New(1)) != 0 {
		t.Fatal("empty groups should be 0")
	}
	d = MaxOfGroups{Groups: []MaxOfNExponentials{{N: 0, PerNodeMean: 5}}}
	if d.Sample(New(2)) != 0 {
		t.Fatal("zero-membership group should contribute nothing")
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}
