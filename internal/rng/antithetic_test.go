package rng

import (
	"math"
	"sort"
	"testing"
)

// fixedSource replays a fixed sequence of uniforms (cycling), for driving
// samplers through degenerate corners a real stream never reaches.
type fixedSource struct {
	seq []float64
	i   int
}

func (f *fixedSource) Float64() float64 {
	u := f.seq[f.i%len(f.seq)]
	f.i++
	return u
}
func (f *fixedSource) Uint64() uint64 {
	return uint64(f.Float64() * (1 << 53))
}
func (f *fixedSource) Split(uint64) Source { return &fixedSource{seq: f.seq} }

// A constant-zero Source used to spin rng.Float64Open forever before the
// retry loop was bounded.
func TestFloat64OpenBoundedOnDegenerateSource(t *testing.T) {
	zero := &fixedSource{seq: []float64{0}}
	got := Float64Open(zero)
	if got != math.SmallestNonzeroFloat64 {
		t.Fatalf("Float64Open on constant-zero source = %g, want smallest subnormal %g",
			got, math.SmallestNonzeroFloat64)
	}
	if zero.i != openRetries {
		t.Fatalf("consumed %d draws before falling back, want %d", zero.i, openRetries)
	}
	// The fallback must keep inversion sampling finite.
	if v := (Exponential{MeanValue: 2}).Sample(&fixedSource{seq: []float64{0}}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("Exponential sample on degenerate source not finite: %v", v)
	}
}

// A zero prefix shorter than the bound must still be skipped, preserving the
// historical rejection behavior.
func TestFloat64OpenSkipsZeroPrefix(t *testing.T) {
	src := &fixedSource{seq: []float64{0, 0, 0, 0.25}}
	if got := Float64Open(src); got != 0.25 {
		t.Fatalf("Float64Open = %g, want first nonzero 0.25", got)
	}
	if src.i != 4 {
		t.Fatalf("consumed %d draws, want 4", src.i)
	}
}

func TestStreamFloat64OpenBounded(t *testing.T) {
	// A real stream never hits the bound; this only pins that the method
	// still produces (0,1) values after the refactor.
	r := New(11)
	for i := 0; i < 100000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", u)
		}
	}
}

func TestAntitheticReflectsUniforms(t *testing.T) {
	plain, mirror := New(42), Antithetic{Inner: New(42)}
	for i := 0; i < 10000; i++ {
		u, v := plain.Float64(), mirror.Float64()
		want := 1 - u
		if u == 0 {
			want = 1 - 0x1p-53
		}
		if v != want {
			t.Fatalf("draw %d: reflected %v of %v, want %v", i, v, u, want)
		}
		if v <= 0 || v >= 1 {
			t.Fatalf("draw %d: reflected value %v outside (0,1)", i, v)
		}
	}
}

func TestReflectIsExactInvolution(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u == 0 {
			continue // the clamped point is deliberately not an involution
		}
		if back := Reflect(Reflect(u)); back != u {
			t.Fatalf("Reflect(Reflect(%v)) = %v", u, back)
		}
	}
	if got := Reflect(0); got != 1-0x1p-53 {
		t.Fatalf("Reflect(0) = %v, want clamp below 1", got)
	}
}

// Split must derive paired children: the reflected stream's child reflects
// the plain stream's child, draw for draw — reflection survives sub-stream
// splitting.
func TestAntitheticSplitPairsChildren(t *testing.T) {
	plain, mirror := New(9), Antithetic{Inner: New(9)}
	pc := plain.Split(0xfa17)
	mc := mirror.Split(0xfa17)
	for i := 0; i < 1000; i++ {
		u, v := pc.Float64(), mc.Float64()
		if v != Reflect(u) {
			t.Fatalf("child draw %d: %v is not the reflection of %v", i, v, u)
		}
	}
	// And the parents stay paired after the split consumed one draw each.
	if u, v := plain.Float64(), mirror.Float64(); v != Reflect(u) {
		t.Fatalf("parents desynced after split: %v vs %v", u, v)
	}
	// Nested splits inherit the pairing too.
	pg := pc.Split(7)
	mg := mc.Split(7)
	for i := 0; i < 100; i++ {
		if u, v := pg.Float64(), mg.Float64(); v != Reflect(u) {
			t.Fatalf("grandchild draw %d: %v is not the reflection of %v", i, v, u)
		}
	}
}

// (plain, reflected) Exponential samples must be strongly negatively
// correlated — the property the antithetic estimator's variance reduction
// rests on. The pairing is antitone (y is a strictly decreasing function of
// x), so the rank (Spearman) correlation is −1; we require ≤ −0.9 with
// sampling noise. Pearson correlation on the raw samples is theoretically
// 1 − π²/6 ≈ −0.645 for exponentials — also pinned, at its own level.
func TestAntitheticExponentialCorrelation(t *testing.T) {
	const n = 20000
	d := Exponential{MeanValue: 3}
	plain, mirror := New(123), Antithetic{Inner: New(123)}
	xs := make([]float64, n)
	ys := make([]float64, n)
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x := d.Sample(plain)
		y := d.Sample(mirror)
		xs[i], ys[i] = x, y
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	vx, vy := sxx/n-mx*mx, syy/n-my*my
	pearson := cov / math.Sqrt(vx*vy)
	if !(pearson <= -0.6) {
		t.Fatalf("antithetic Exponential Pearson correlation = %.4f, want <= -0.6 (theory ≈ -0.645)", pearson)
	}
	if rho := spearman(xs, ys); !(rho <= -0.9) {
		t.Fatalf("antithetic Exponential rank correlation = %.4f, want <= -0.9", rho)
	}
}

// spearman computes the rank correlation of two equal-length samples.
func spearman(xs, ys []float64) float64 {
	rx, ry := ranks(xs), ranks(ys)
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range rx {
		sx += rx[i]
		sy += ry[i]
		sxx += rx[i] * rx[i]
		syy += ry[i] * ry[i]
		sxy += rx[i] * ry[i]
	}
	mx, my := sx/n, sy/n
	return (sxy/n - mx*my) / math.Sqrt((sxx/n-mx*mx)*(syy/n-my*my))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

func TestAntitheticUint64Complements(t *testing.T) {
	plain, mirror := New(5), Antithetic{Inner: New(5)}
	for i := 0; i < 1000; i++ {
		if u, v := plain.Uint64(), mirror.Uint64(); v != ^u {
			t.Fatalf("draw %d: %x is not the complement of %x", i, v, u)
		}
	}
}

func TestCounterCounts(t *testing.T) {
	c := &Counter{Src: New(1)}
	c.Uint64()
	c.Float64()
	c.Float64()
	c.Split(3)
	if c.N != 4 {
		t.Fatalf("counter N = %d, want 4", c.N)
	}
	// Counting must not perturb the values.
	raw := New(1)
	c2 := &Counter{Src: New(1)}
	for i := 0; i < 100; i++ {
		if a, b := raw.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("draw %d: counter changed value %d != %d", i, a, b)
		}
	}
}
