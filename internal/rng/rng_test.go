package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream produced repeats: %d distinct of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", u)
		}
	}
}

func TestUniformityOfFloat64(t *testing.T) {
	r := New(99)
	const n = 200000
	const bins = 20
	var counts [bins]int
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*bins)]++
	}
	// Chi-squared with 19 dof: 99.9th percentile ≈ 43.8.
	expect := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	if chi2 > 43.8 {
		t.Fatalf("uniformity chi2 = %.2f > 43.8", chi2)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from split children", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split(7)
	b := New(5).Split(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split streams with identical lineage diverged")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		seen[r.Intn(10)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values", len(seen))
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// TestIntnDistributionProperty checks, via testing/quick, that bounded
// sampling stays in range for arbitrary bounds.
func TestIntnDistributionProperty(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
