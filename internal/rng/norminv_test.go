package rng

import (
	"math"
	"testing"
)

// Paired normal draws under an Antithetic source must be exact negatives —
// the property inversion sampling buys that polar Box–Muller cannot.
func TestNormFloat64InvExactNegation(t *testing.T) {
	plain, mirror := New(77), Antithetic{Inner: New(77)}
	for i := 0; i < 100000; i++ {
		x := NormFloat64Inv(plain)
		y := NormFloat64Inv(mirror)
		if y != -x {
			t.Fatalf("draw %d: paired normals %v and %v are not exact negatives", i, x, y)
		}
	}
}

// The quantile must invert the normal CDF to near machine precision across
// the full range, including deep tails.
func TestNormFloat64InvAccuracy(t *testing.T) {
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for _, p := range []float64{
		1e-300, 1e-100, 1e-16, 1e-9, 0.02425, 0.0243, 0.1, 0.25, 0.5, 0.75,
		0.9, 0.97575, 1 - 1e-9, 1 - 1e-12,
	} {
		src := &fixedSource{seq: []float64{p}}
		x := NormFloat64Inv(src)
		got := cdf(x)
		// Compare in probability space, relative to min(p, 1−p) so the
		// tails are held to the same standard as the center.
		scale := math.Min(p, 1-p)
		if diff := math.Abs(got - p); diff/scale > 1e-11 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g, relative |Δ| = %g", p, got, diff/scale)
		}
	}
	// Spot-check known quantiles.
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1},
	} {
		src := &fixedSource{seq: []float64{tc.p}}
		if got := NormFloat64Inv(src); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Φ⁻¹(%g) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNormFloat64InvSymmetric(t *testing.T) {
	// Φ⁻¹(1−p) must equal −Φ⁻¹(p) exactly for representable reflections.
	r := New(31)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u == 0 {
			continue
		}
		a := NormFloat64Inv(&fixedSource{seq: []float64{u}})
		b := NormFloat64Inv(&fixedSource{seq: []float64{1 - u}})
		if b != -a {
			t.Fatalf("Φ⁻¹(%v) = %v and Φ⁻¹(1−u) = %v are not exact negatives", u, a, b)
		}
	}
}

// Inversion and Box–Muller must agree in distribution (moments), so the
// inversion path is a drop-in replacement under antithetic mode.
func TestNormFloat64InvMoments(t *testing.T) {
	const n = 200000
	r := New(99)
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64Inv()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("sample mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("sample variance %v, want ~1", variance)
	}
}
