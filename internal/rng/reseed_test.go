package rng

import "testing"

// TestReseedMatchesNew pins the contract Recycle relies on: after any amount
// of use (including splitting), Reseed(s) rewinds a stream to exactly the
// sequence New(s) emits.
func TestReseedMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		st := New(99)
		for i := 0; i < 1000; i++ {
			st.Uint64()
		}
		st.Split(7) // consuming via Split must not matter either
		st.Reseed(seed)
		want := New(seed)
		for i := 0; i < 100; i++ {
			if got, w := st.Uint64(), want.Uint64(); got != w {
				t.Fatalf("seed %d: value %d is %#x after Reseed, %#x from New", seed, i, got, w)
			}
		}
	}
}

// TestReseedZeroAlloc: reseeding must not allocate — it runs once per
// recycled replication inside the runner's zero-allocation window.
func TestReseedZeroAlloc(t *testing.T) {
	st := New(1)
	if avg := testing.AllocsPerRun(100, func() { st.Reseed(5) }); avg != 0 {
		t.Errorf("Reseed allocates %.1f objects, want 0", avg)
	}
}
