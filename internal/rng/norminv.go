package rng

import "math"

// NormFloat64Inv returns a standard normal variate sampled by inversion:
// Φ⁻¹(U) for one uniform U ∈ (0, 1). Unlike the polar Box–Muller in
// NormFloat64, inversion consumes exactly one draw and is monotone in it,
// which is what antithetic pairing needs — rejection sampling consumes a
// data-dependent number of uniforms and breaks the u → 1−u reflection
// symmetry. Under an Antithetic source the paired draws are exact negatives:
// the evaluation is routed through one half of the symmetric quantile
// (probitHalf), negated for u > ½, and the reflection 1−u is exact for every
// value Float64 can produce (see Reflect), so Φ⁻¹(1−u) == −Φ⁻¹(u) bit for
// bit.
func NormFloat64Inv(src Source) float64 {
	u := Float64Open(src)
	switch {
	case u == 0.5:
		return 0
	case u > 0.5:
		// 1−u is exact here (Sterbenz: both operands within a factor of
		// two), so this is the exact mirror of the u < ½ branch.
		return -probitHalf(1 - u)
	default:
		return probitHalf(u)
	}
}

// NormFloat64Inv is the inversion-based counterpart of NormFloat64 on a
// concrete stream.
func (r *Stream) NormFloat64Inv() float64 { return NormFloat64Inv(r) }

// Acklam's rational approximation to the normal quantile (relative error
// < 1.15e-9), refined below with one Halley step against math.Erfc to near
// machine precision.
var (
	probitA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	probitB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	probitC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	probitD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
)

// probitHalf returns Φ⁻¹(p) for p ∈ (0, ½), which is always negative. The
// symmetric upper half is obtained by negation in NormFloat64Inv so the two
// halves are exact mirrors by construction.
func probitHalf(p float64) float64 {
	const pLow = 0.02425
	var x float64
	if p < pLow {
		// Lower tail.
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((probitC[0]*q+probitC[1])*q+probitC[2])*q+probitC[3])*q+probitC[4])*q + probitC[5]) /
			((((probitD[0]*q+probitD[1])*q+probitD[2])*q+probitD[3])*q + 1)
	} else {
		// Central region.
		q := p - 0.5
		r := q * q
		x = (((((probitA[0]*r+probitA[1])*r+probitA[2])*r+probitA[3])*r+probitA[4])*r + probitA[5]) * q /
			(((((probitB[0]*r+probitB[1])*r+probitB[2])*r+probitB[3])*r+probitB[4])*r + 1)
	}
	// One Halley refinement: e = Φ(x) − p via the complementary error
	// function, then x ← x − u/(1 + x·u/2).
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
