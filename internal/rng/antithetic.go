package rng

// Antithetic wraps a Source and reflects every uniform draw u → 1−u. Since
// all the simulator's distributions sample by inversion (dist.go), reflection
// propagates to event times for free: a short inter-failure gap on the plain
// leg becomes a long one on the reflected leg, and outputs that depend
// monotonically on the draws come out negatively correlated. Averaging a
// (plain, reflected) pair that shares a seed then cancels a large part of the
// Monte-Carlo noise — the antithetic-variates estimator driven by
// runner.Estimate's VarianceReduction option.
//
// Reflection survives sub-stream splitting: Split consumes exactly one draw
// from the inner stream (the same draw the plain leg's Split consumes) and
// wraps the derived child, so every component of a reflected replication sees
// the mirror image of the draws its plain twin saw.
//
// The zero value is not usable; wrap a concrete Source.
type Antithetic struct {
	Inner Source
}

var _ Source = Antithetic{}

// Uint64 returns the bitwise complement of the inner stream's next value,
// the integer analogue of u → 1−u.
func (a Antithetic) Uint64() uint64 { return ^a.Inner.Uint64() }

// Float64 returns the reflection 1−u of the inner stream's next uniform.
// The result is always in the open interval (0, 1): Float64's grid values
// k/2⁵³ reflect exactly (see Reflect), and the single unreachable point
// u = 0 is clamped just below one.
func (a Antithetic) Float64() float64 { return Reflect(a.Inner.Float64()) }

// Split derives the reflected twin of the child the plain leg would derive:
// it splits the inner stream (consuming the same single draw) and wraps the
// result, so reflection is inherited by every sub-stream.
func (a Antithetic) Split(label uint64) Source {
	return Antithetic{Inner: a.Inner.Split(label)}
}

// Reflect maps a uniform u ∈ [0, 1) to its antithetic partner 1−u. Every
// value Float64 can produce has the form k/2⁵³ with k < 2⁵³, so 1−u =
// (2⁵³−k)/2⁵³ is exactly representable and Reflect(Reflect(u)) == u. The one
// exception is u = 0, whose exact reflection 1 lies outside [0, 1); it is
// clamped to the largest double below one so downstream inversion sampling
// (−ln u) stays finite.
func Reflect(u float64) float64 {
	r := 1 - u
	if r >= 1 {
		r = 1 - 0x1p-53
	}
	return r
}

// Counter wraps a Source and counts how many values are consumed from it
// (Uint64, Float64 and Split each consume one). The common-random-numbers
// audit in runner.Compare wraps each per-purpose sub-stream in a Counter so
// a SyncReport can quantify where two configurations' draw sequences
// diverge.
type Counter struct {
	Src Source
	// N is the number of draws consumed so far.
	N uint64
}

var _ Source = (*Counter)(nil)

// Uint64 counts one draw and forwards to the wrapped source.
func (c *Counter) Uint64() uint64 { c.N++; return c.Src.Uint64() }

// Float64 counts one draw and forwards to the wrapped source.
func (c *Counter) Float64() float64 { c.N++; return c.Src.Float64() }

// Split counts the one draw splitting consumes and forwards to the wrapped
// source. The derived child is returned unwrapped (it has its own purpose).
func (c *Counter) Split(label uint64) Source { c.N++; return c.Src.Split(label) }
