// Package rng provides the deterministic pseudo-random number generation
// used by every stochastic component of the simulator.
//
// The generator is xoshiro256++ seeded through SplitMix64, which gives
// high-quality 64-bit output, cheap stream splitting (every model component
// and every replication gets an independent sub-stream derived from a single
// root seed), and full reproducibility: identical (seed, call sequence)
// pairs yield identical simulations on every platform.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers. It is the only
// randomness interface the rest of the repository uses, so tests can
// substitute fixed sequences.
type Source interface {
	// Uint64 returns the next 64 random bits.
	Uint64() uint64
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Split returns a new independent Source derived from this one's
	// stream and the given label. Splitting does not perturb the parent
	// stream's future output beyond consuming one value.
	Split(label uint64) Source
}

// Stream is a xoshiro256++ generator. The zero value is not usable; obtain
// instances through New or Split.
type Stream struct {
	s [4]uint64
}

var _ Source = (*Stream)(nil)

// New returns a Stream seeded from a single 64-bit seed via SplitMix64.
// Any seed, including zero, produces a valid stream.
func New(seed uint64) *Stream {
	var st Stream
	st.Reseed(seed)
	return &st
}

// Reseed rewinds the stream in place to exactly the state New(seed) would
// return, so a recycled component (model.Instance.Recycle) can restart its
// random sequence for a new replication without allocating a generator.
func (r *Stream) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro's state must not be all zero; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway for defence in depth.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitMix64 advances a SplitMix64 state and returns (nextState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits of the stream.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// openRetries bounds the zero-rejection loop in Float64Open. A healthy
// stream emits zero with probability 2⁻⁵³ per draw, so 64 consecutive zeros
// is unreachable in practice (< 2⁻³³⁹²); the bound exists so a degenerate
// Source — a test stub returning constant zero, or a broken wrapper — makes
// sampling fall back to the smallest positive subnormal instead of spinning
// forever.
const openRetries = 64

// Float64Open returns a uniform value in the open interval (0, 1), useful
// for inverse-CDF sampling where log(0) must be avoided. The retry loop is
// bounded: after openRetries zero draws it returns the smallest positive
// subnormal double rather than hanging on a degenerate stream.
func (r *Stream) Float64Open() float64 {
	for i := 0; i < openRetries; i++ {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
	return math.SmallestNonzeroFloat64
}

// Float64Open returns a uniform value in (0, 1) from an arbitrary Source,
// with the same bounded retry-and-fall-back contract as Stream.Float64Open.
// It is the generic path behind every inversion sampler in dist.go.
func Float64Open(src Source) float64 {
	if s, ok := src.(*Stream); ok {
		return s.Float64Open()
	}
	for i := 0; i < openRetries; i++ {
		u := src.Float64()
		if u > 0 {
			return u
		}
	}
	return math.SmallestNonzeroFloat64
}

// Split derives an independent Stream from this stream and a label.
// Different labels produce different streams even when called on identical
// parent states.
func (r *Stream) Split(label uint64) Source {
	// Mix one value from the parent with the label through SplitMix64 so
	// that child streams are decorrelated from the parent and each other.
	seed := r.Uint64() ^ (label * 0xd1342543de82ef95)
	return New(seed)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand semantics (a non-positive bound is a programming error).
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn bound must be positive")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
// The simulator itself is exponential/deterministic, but normal variates
// are needed by the statistics tests and by Weibull/lognormal extensions.
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
