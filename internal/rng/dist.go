package rng

import (
	"fmt"
	"math"
)

// Dist is a sampleable probability distribution over non-negative delays
// (model time, in hours throughout this repository). Implementations are
// immutable; all randomness comes from the Source passed to Sample.
type Dist interface {
	// Sample draws one value from the distribution.
	Sample(src Source) float64
	// Mean returns the distribution's expectation.
	Mean() float64
	// String describes the distribution for traces and error messages.
	String() string
}

// Deterministic is a distribution with all mass at Value. The paper models
// non-random events (broadcast latency, checkpoint dump time, timer expiry)
// as deterministic activities.
type Deterministic struct {
	Value float64
}

var _ Dist = Deterministic{}

// Sample returns the fixed value.
func (d Deterministic) Sample(Source) float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Exponential is the exponential distribution with the given mean
// (rate = 1/Mean). The paper assumes exponential distributions for all
// random events (failures, recovery stage 2, per-node quiesce time).
type Exponential struct {
	MeanValue float64
}

var _ Dist = Exponential{}

// Sample draws by inversion: -mean * ln(U), U ∈ (0,1).
func (d Exponential) Sample(src Source) float64 {
	return -d.MeanValue * math.Log(open(src))
}

// Mean returns the distribution mean.
func (d Exponential) Mean() float64 { return d.MeanValue }

func (d Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", d.MeanValue) }

// Uniform is the continuous uniform distribution on [Low, High].
type Uniform struct {
	Low, High float64
}

var _ Dist = Uniform{}

// Sample draws uniformly from [Low, High).
func (d Uniform) Sample(src Source) float64 {
	return d.Low + (d.High-d.Low)*src.Float64()
}

// Mean returns (Low+High)/2.
func (d Uniform) Mean() float64 { return (d.Low + d.High) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("unif[%g,%g]", d.Low, d.High) }

// MaxOfNExponentials is the distribution of Y = max{X_1..X_n} where the X_i
// are i.i.d. exponential with mean PerNodeMean. This is exactly the
// coordination-time construction of Section 5 of the paper: each of the n
// compute nodes quiesces after an exponential time and checkpointing starts
// when the slowest one is done. Sampling uses the paper's inversion
//
//	Y = -1/λ · ln(1 - U^{1/n}),
//
// derived from the CDF F_Y(y) = (1 - e^{-λy})^n.
type MaxOfNExponentials struct {
	N           int
	PerNodeMean float64
}

var _ Dist = MaxOfNExponentials{}

// Sample draws the maximum quiesce time across N nodes.
func (d MaxOfNExponentials) Sample(src Source) float64 {
	if d.N <= 1 {
		return Exponential{MeanValue: d.PerNodeMean}.Sample(src)
	}
	u := open(src)
	// 1 - u^{1/n} loses precision for huge n; use expm1/log1p form:
	// u^{1/n} = exp(ln(u)/n), so 1-u^{1/n} = -expm1(ln(u)/n).
	inner := -math.Expm1(math.Log(u) / float64(d.N))
	return -d.PerNodeMean * math.Log(inner)
}

// Mean returns E[Y] = mean · H_n (the n-th harmonic number), the classic
// expectation of the maximum of n i.i.d. exponentials.
func (d MaxOfNExponentials) Mean() float64 {
	return d.PerNodeMean * HarmonicNumber(d.N)
}

func (d MaxOfNExponentials) String() string {
	return fmt.Sprintf("maxexp(n=%d,mean=%g)", d.N, d.PerNodeMean)
}

// HarmonicNumber returns H_n = sum_{i=1..n} 1/i. For large n it uses the
// asymptotic expansion H_n ≈ ln n + γ + 1/(2n) - 1/(12n²), accurate to
// well below 1e-10 for n ≥ 64.
func HarmonicNumber(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < 64 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const eulerGamma = 0.57721566490153286
	fn := float64(n)
	return math.Log(fn) + eulerGamma + 1/(2*fn) - 1/(12*fn*fn)
}

// MaxOfGroups is the maximum over several independent MaxOfNExponentials —
// the coordination time of a machine with heterogeneous quiesce speeds
// (e.g. a straggler population with a larger per-node mean). Groups with
// N ≤ 0 are ignored.
type MaxOfGroups struct {
	Groups []MaxOfNExponentials
}

var _ Dist = MaxOfGroups{}

// Sample draws the max across all groups (0 when no group has members).
func (d MaxOfGroups) Sample(src Source) float64 {
	max := 0.0
	for _, g := range d.Groups {
		if g.N <= 0 {
			continue
		}
		if v := g.Sample(src); v > max {
			max = v
		}
	}
	return max
}

// Mean returns a tight upper estimate of the expectation,
// max(E[groups]) ≤ E[max] ≤ ΣE[groups]; it integrates the exact CDF
// numerically over a generous range instead, so it is accurate rather than
// a bound.
func (d MaxOfGroups) Mean() float64 {
	// E[max] = ∫ (1 − ∏ F_g(t)) dt. Integrate to a high quantile.
	hi := 0.0
	for _, g := range d.Groups {
		if g.N <= 0 {
			continue
		}
		// The max of n exponentials is below mean·(ln n + 40)
		// except with probability ~e^{-40}.
		bound := g.PerNodeMean * (math.Log(float64(g.N)) + 40)
		if bound > hi {
			hi = bound
		}
	}
	if hi == 0 {
		return 0
	}
	const steps = 4000
	h := hi / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		t := (float64(i) + 0.5) * h
		prod := 1.0
		for _, g := range d.Groups {
			if g.N <= 0 {
				continue
			}
			// F_g(t) = (1 − e^{−t/θ})^n in log space.
			prod *= math.Exp(float64(g.N) * math.Log1p(-math.Exp(-t/g.PerNodeMean)))
		}
		sum += (1 - prod) * h
	}
	return sum
}

func (d MaxOfGroups) String() string {
	return fmt.Sprintf("maxgroups(%d groups)", len(d.Groups))
}

// Erlang is the Erlang-k distribution: the sum of K i.i.d. exponentials
// with total mean MeanValue. Used in tests and as an extension point for
// lower-variance recovery times.
type Erlang struct {
	K         int
	MeanValue float64
}

var _ Dist = Erlang{}

// Sample draws by summing K exponentials (product-of-uniforms form).
func (d Erlang) Sample(src Source) float64 {
	if d.K <= 0 {
		return 0
	}
	prod := 1.0
	for i := 0; i < d.K; i++ {
		prod *= open(src)
	}
	return -d.MeanValue / float64(d.K) * math.Log(prod)
}

// Mean returns the distribution mean.
func (d Erlang) Mean() float64 { return d.MeanValue }

func (d Erlang) String() string { return fmt.Sprintf("erlang(k=%d,mean=%g)", d.K, d.MeanValue) }

// HyperExponential mixes two exponentials: with probability P the sample
// comes from an exponential with mean MeanA, otherwise from one with mean
// MeanB. The paper notes generic correlated failures are "usually assumed"
// hyper-exponential (Section 3.5).
type HyperExponential struct {
	P            float64
	MeanA, MeanB float64
}

var _ Dist = HyperExponential{}

// Sample draws from the two-phase mixture.
func (d HyperExponential) Sample(src Source) float64 {
	mean := d.MeanB
	if src.Float64() < d.P {
		mean = d.MeanA
	}
	return -mean * math.Log(open(src))
}

// Mean returns P·MeanA + (1-P)·MeanB.
func (d HyperExponential) Mean() float64 {
	return d.P*d.MeanA + (1-d.P)*d.MeanB
}

func (d HyperExponential) String() string {
	return fmt.Sprintf("hyperexp(p=%g,a=%g,b=%g)", d.P, d.MeanA, d.MeanB)
}

// Weibull is the Weibull distribution with the given Shape and Scale.
// Provided as an extension for non-exponential failure processes (an item
// the paper lists as future refinement); Shape=1 degenerates to exponential.
type Weibull struct {
	Shape, Scale float64
}

var _ Dist = Weibull{}

// Sample draws by inversion: scale · (-ln U)^{1/shape}.
func (d Weibull) Sample(src Source) float64 {
	return d.Scale * math.Pow(-math.Log(open(src)), 1/d.Shape)
}

// Mean returns scale · Γ(1 + 1/shape).
func (d Weibull) Mean() float64 {
	return d.Scale * math.Gamma(1+1/d.Shape)
}

func (d Weibull) String() string {
	return fmt.Sprintf("weibull(shape=%g,scale=%g)", d.Shape, d.Scale)
}

// open returns a uniform sample in (0,1), never exactly zero, so that
// ln(u) is always finite. It delegates to the package-level Float64Open,
// whose retry loop is bounded against degenerate sources.
func open(src Source) float64 { return Float64Open(src) }
