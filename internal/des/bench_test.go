package des

import "testing"

// BenchmarkScheduleFire measures the pooled schedule→fire round trip on a
// warmed engine — the per-event floor under every trajectory. The interesting
// numbers are ns/op and allocs/op (which must be 0; TestScheduleFireZeroAlloc
// gates it, this benchmark trends it).
func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	for i := 0; i < 64; i++ {
		e.ScheduleAfter(1, "warm", noopHandler)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(1, "hot", noopHandler)
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkScheduleCancel measures the other pool edge: schedule then
// cancel, the reconcile path's cost when an activity is disabled before
// firing.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New()
	for i := 0; i < 64; i++ {
		e.ScheduleAfter(1, "warm", noopHandler)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.ScheduleAfter(1, "hot", noopHandler)
		e.Cancel(h)
	}
}

// BenchmarkScheduleFireDepth measures schedule→fire with a standing queue of
// 1024 events, so the sift cost at realistic queue depths is visible.
func BenchmarkScheduleFireDepth(b *testing.B) {
	e := New()
	for i := 0; i < 1024; i++ {
		e.ScheduleAfter(1e9, "standing", noopHandler)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(1, "hot", noopHandler)
		e.Step()
	}
}
