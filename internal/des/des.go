// Package des implements the discrete-event simulation core: a simulation
// clock and a cancellable future-event list with deterministic tie-breaking.
// Higher layers (the SAN executor in internal/san and the message-level
// protocol simulator in internal/protocol) schedule closures here.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the code executed when an event fires. It receives the engine
// so it can schedule further events.
type Handler func(e *Engine)

// Event is a scheduled occurrence. Events are created by Engine.Schedule
// and may be cancelled until they fire.
type Event struct {
	Time    float64
	Name    string
	handler Handler
	seq     uint64 // FIFO tie-break for simultaneous events
	index   int    // heap index; -1 when not queued
	state   eventState
}

// eventState distinguishes an event that ran from one that was removed:
// both leave the queue (index -1, handler nil), so a separate state is the
// only way Cancelled can answer truthfully.
type eventState uint8

const (
	eventPending eventState = iota
	eventFired
	eventCancelled
)

// Cancelled reports whether the event was removed before firing. An event
// that already fired is not cancelled.
func (ev *Event) Cancelled() bool { return ev.state == eventCancelled }

// Fired reports whether the event already executed.
func (ev *Event) Fired() bool { return ev.state == eventFired }

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return ev.state == eventPending }

// Engine is a sequential discrete-event simulator. The zero value is not
// usable; construct with New.
type Engine struct {
	now        float64
	queue      eventQueue
	nextSeq    uint64
	fired      uint64
	scheduled  uint64
	cancelled  uint64
	maxPending int
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far (useful for progress
// reporting and runaway detection in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Scheduled returns the number of events enqueued so far (fired, cancelled
// and still pending alike) — together with Cancelled and MaxPending it is
// the engine's contribution to the observability layer.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Cancelled returns the number of events removed before firing.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// MaxPending returns the high-water mark of the future-event list.
func (e *Engine) MaxPending() int { return e.maxPending }

// Schedule enqueues handler to run at absolute time t. Scheduling in the
// past (t < Now) panics: it is always a model bug, and silently clamping
// would corrupt causality. Events at identical times fire in scheduling
// order.
func (e *Engine) Schedule(t float64, name string, handler Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", name, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("des: scheduling %q at NaN", name))
	}
	ev := &Event{Time: t, Name: name, handler: handler, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.scheduled++
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	return ev
}

// ScheduleAfter enqueues handler to run delay time units from now.
func (e *Engine) ScheduleAfter(delay float64, name string, handler Handler) *Event {
	return e.Schedule(e.now+delay, name, handler)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a harmless no-op, which keeps caller bookkeeping
// simple.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.handler = nil
	ev.state = eventCancelled
	e.cancelled++
}

// Step fires the next event, advancing the clock, and reports whether an
// event was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.Time
	h := ev.handler
	ev.handler = nil
	ev.state = eventFired
	e.fired++
	h(e)
	return true
}

// RunUntil executes events until the clock would pass horizon or the queue
// empties. The clock is left at min(horizon, last event time); events
// scheduled beyond the horizon remain queued.
func (e *Engine) RunUntil(horizon float64) {
	for len(e.queue) > 0 && e.queue[0].Time <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// eventQueue is a binary min-heap ordered by (Time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
