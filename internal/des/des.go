// Package des implements the discrete-event simulation core: a simulation
// clock and a cancellable future-event list with deterministic tie-breaking.
// Higher layers (the SAN executor in internal/san and the message-level
// protocol simulator in internal/protocol) schedule closures here.
//
// The engine owns an intrusive free-list event pool: events that fire or are
// cancelled return to the pool and are recycled by the next Schedule, so a
// warmed engine allocates nothing per event (pinned by TestScheduleFireZeroAlloc).
// Callers therefore never hold *Event directly — Schedule returns a
// generation-stamped Handle that detects recycling, and Engine.Reset rewinds
// the clock and counters while keeping the queue storage and pool, so one
// engine survives across replications.
package des

import (
	"fmt"
	"math"
)

// Handler is the code executed when an event fires. It receives the engine
// so it can schedule further events.
type Handler func(e *Engine)

// Event is a scheduled occurrence. Events are owned by the engine's pool and
// recycled after they fire or are cancelled; callers refer to them through
// the generation-stamped Handle returned by Schedule.
type Event struct {
	Time    float64
	Name    string
	handler Handler
	seq     uint64 // FIFO tie-break for simultaneous events
	index   int    // heap index; -1 when not queued
	gen     uint64 // bumped on every reuse; stale Handles detect it
	state   eventState
}

// eventState distinguishes an event that ran from one that was removed:
// both leave the queue (index -1, handler nil), so a separate state is the
// only way Cancelled can answer truthfully.
type eventState uint8

const (
	eventPending eventState = iota
	eventFired
	eventCancelled
)

// Handle is a caller's reference to a scheduled event. It is a value type:
// copy it freely, compare against the zero Handle to test emptiness. A
// Handle remembers the generation of the event it was issued for, so once
// the pool recycles that event into a new occurrence the old handle turns
// inert — Cancel through it is a no-op and the state queries report it as
// recycled rather than leaking the new occupant's state. This is what lets
// san.Simulator.scheduled keep handles across firings without ever
// cancelling someone else's event.
type Handle struct {
	ev  *Event
	gen uint64
}

// live reports whether the handle still refers to the occurrence it was
// issued for (the pooled event has not been recycled since).
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Pending reports whether the event is still scheduled.
func (h Handle) Pending() bool { return h.live() && h.ev.state == eventPending }

// Fired reports whether the event already executed. False once the pool has
// recycled the event into a new occurrence.
func (h Handle) Fired() bool { return h.live() && h.ev.state == eventFired }

// Cancelled reports whether the event was removed before firing. An event
// that already fired is not cancelled. False once the pool has recycled the
// event into a new occurrence.
func (h Handle) Cancelled() bool { return h.live() && h.ev.state == eventCancelled }

// Recycled reports whether the pool has reused this handle's event for a
// newer occurrence (the handle is stale). The zero Handle is not recycled —
// it never referred to anything.
func (h Handle) Recycled() bool { return h.ev != nil && h.ev.gen != h.gen }

// Time returns the scheduled time of the occurrence, or NaN for a zero or
// recycled handle.
func (h Handle) Time() float64 {
	if !h.live() {
		return math.NaN()
	}
	return h.ev.Time
}

// Engine is a sequential discrete-event simulator. The zero value is not
// usable; construct with New.
type Engine struct {
	now        float64
	queue      []*Event
	free       []*Event // pool of fired/cancelled events awaiting reuse
	nextSeq    uint64
	fired      uint64
	scheduled  uint64
	cancelled  uint64
	poolHits   uint64
	poolMisses uint64
	maxPending int
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far (useful for progress
// reporting and runaway detection in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Scheduled returns the number of events enqueued so far (fired, cancelled
// and still pending alike) — together with Cancelled and MaxPending it is
// the engine's contribution to the observability layer.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Cancelled returns the number of events removed before firing.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// MaxPending returns the high-water mark of the future-event list.
func (e *Engine) MaxPending() int { return e.maxPending }

// PoolSize returns the number of recycled events currently waiting in the
// free list.
func (e *Engine) PoolSize() int { return len(e.free) }

// PoolHits returns the number of Schedule calls served from the free list
// since the engine was created or Reset.
func (e *Engine) PoolHits() uint64 { return e.poolHits }

// PoolMisses returns the number of Schedule calls that had to allocate a
// fresh Event since the engine was created or Reset. A warmed engine in
// steady state reports zero new misses.
func (e *Engine) PoolMisses() uint64 { return e.poolMisses }

// Schedule enqueues handler to run at absolute time t. Scheduling in the
// past (t < Now) panics: it is always a model bug, and silently clamping
// would corrupt causality. Events at identical times fire in scheduling
// order.
func (e *Engine) Schedule(t float64, name string, handler Handler) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", name, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("des: scheduling %q at NaN", name))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++
		ev.Time, ev.Name, ev.handler, ev.seq, ev.state = t, name, handler, e.nextSeq, eventPending
		e.poolHits++
	} else {
		ev = &Event{Time: t, Name: name, handler: handler, seq: e.nextSeq}
		e.poolMisses++
	}
	e.nextSeq++
	e.push(ev)
	e.scheduled++
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	return Handle{ev: ev, gen: ev.gen}
}

// ScheduleAfter enqueues handler to run delay time units from now. The delay
// must be finite-or-+Inf and non-negative: a negative or NaN delay is always
// an upstream sampling bug (a broken distribution, an uninitialised field),
// so it panics with the offending delay rather than letting it surface as a
// confusing absolute-time error from Schedule.
func (e *Engine) ScheduleAfter(delay float64, name string, handler Handler) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: scheduling %q after negative delay %v", name, delay))
	}
	if math.IsNaN(delay) {
		panic(fmt.Sprintf("des: scheduling %q after NaN delay", name))
	}
	return e.Schedule(e.now+delay, name, handler)
}

// Cancel removes a pending event. Cancelling through a zero handle, a stale
// (recycled) handle, or a handle whose event already fired or was already
// cancelled is a harmless no-op, which keeps caller bookkeeping simple.
func (e *Engine) Cancel(h Handle) {
	if !h.live() || h.ev.state != eventPending {
		return
	}
	ev := h.ev
	e.removeAt(ev.index)
	ev.handler = nil
	ev.state = eventCancelled
	e.cancelled++
	e.free = append(e.free, ev)
}

// Step fires the next event, advancing the clock, and reports whether an
// event was available. The fired event returns to the pool before its
// handler runs, so a handler that schedules immediately reuses the hottest
// event object.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.removeAt(0)
	e.now = ev.Time
	h := ev.handler
	ev.handler = nil
	ev.state = eventFired
	e.fired++
	e.free = append(e.free, ev)
	h(e)
	return true
}

// RunUntil executes events until the clock would pass horizon or the queue
// empties. The clock is left at min(horizon, last event time); events
// scheduled beyond the horizon remain queued.
func (e *Engine) RunUntil(horizon float64) {
	for len(e.queue) > 0 && e.queue[0].Time <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Reset rewinds the engine to the state New returns — clock at zero,
// sequence numbers restarted, telemetry counters cleared — while keeping
// the queue storage and the event pool, so an engine reused across
// replications reaches steady state with zero allocations. Pending events
// are discarded into the pool (their handles turn stale on reuse).
// Restarting seq at zero is what makes a replication on a recycled engine
// bit-identical to one on a fresh engine: FIFO tie-breaking depends on it.
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		ev.index = -1
		ev.handler = nil
		ev.state = eventCancelled
		e.free = append(e.free, ev)
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.nextSeq = 0
	e.fired, e.scheduled, e.cancelled = 0, 0, 0
	e.poolHits, e.poolMisses = 0, 0
	e.maxPending = 0
}

// The future-event list is a hand-rolled binary min-heap ordered by
// (Time, seq) with intrusive indices. container/heap would force an
// interface call per sift step and an allocation per Push via
// interface{} boxing; open-coding it keeps the hot loop monomorphic.

func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
}

// removeAt unlinks the event at heap position i and restores the heap
// property; it is both Pop (i == 0) and arbitrary removal (Cancel).
func (e *Engine) removeAt(i int) *Event {
	n := len(e.queue) - 1
	ev := e.queue[i]
	if i != n {
		e.swap(i, n)
	}
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if i < n {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	ev.index = -1
	return ev
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether the element moved, so removeAt knows to try
// sifting up instead (the swapped-in tail element may belong above i).
func (e *Engine) siftDown(i int) bool {
	n := len(e.queue)
	i0 := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && e.less(right, left) {
			m = right
		}
		if !e.less(m, i) {
			break
		}
		e.swap(i, m)
		i = m
	}
	return i > i0
}
