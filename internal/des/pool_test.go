package des

import (
	"math"
	"strings"
	"testing"
)

// TestScheduleAfterRejectsBadDelay pins the delay-specific panics: a
// negative or NaN delay is an upstream sampling bug and must be reported as
// such, not as a confusing absolute-time error from Schedule.
func TestScheduleAfterRejectsBadDelay(t *testing.T) {
	for name, delay := range map[string]float64{
		"negative": -1.5,
		"nan":      math.NaN(),
	} {
		t.Run(name, func(t *testing.T) {
			e := New()
			e.Schedule(10, "advance", func(*Engine) {})
			e.Run() // now = 10, so -1.5 would land at 8.5 — in the past
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("bad delay did not panic")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "delay") {
					t.Fatalf("panic %v does not mention the delay", r)
				}
			}()
			e.ScheduleAfter(delay, "bad", func(*Engine) {})
		})
	}
}

// TestEventPoolRecycles pins the free-list mechanics: fired and cancelled
// events return to the pool and the next Schedule reuses them instead of
// allocating.
func TestEventPoolRecycles(t *testing.T) {
	e := New()
	a := e.Schedule(1, "a", func(*Engine) {})
	e.Cancel(a)
	if e.PoolSize() != 1 {
		t.Fatalf("pool size after cancel = %d, want 1", e.PoolSize())
	}
	b := e.Schedule(2, "b", func(*Engine) {})
	if e.PoolSize() != 0 {
		t.Fatalf("pool size after reuse = %d, want 0", e.PoolSize())
	}
	if e.PoolHits() != 1 || e.PoolMisses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", e.PoolHits(), e.PoolMisses())
	}
	e.Run()
	if e.PoolSize() != 1 {
		t.Fatalf("pool size after fire = %d, want 1", e.PoolSize())
	}
	if !b.Fired() {
		t.Fatal("pooled event does not report Fired before reuse")
	}
}

// TestStaleHandleIsInert is the generation-counter contract: once the pool
// recycles an event into a new occurrence, old handles to it must read as
// recycled and Cancel through them must not touch the new occupant — the
// exact hazard for san.Simulator.scheduled, which holds handles across
// firings.
func TestStaleHandleIsInert(t *testing.T) {
	e := New()
	old := e.Schedule(1, "old", func(*Engine) {})
	e.Cancel(old)

	reusedFired := false
	reused := e.Schedule(2, "reused", func(*Engine) { reusedFired = true })
	if old.Pending() || old.Fired() || old.Cancelled() {
		t.Fatal("stale handle leaks the new occupant's state")
	}
	if !old.Recycled() {
		t.Fatal("stale handle does not report Recycled")
	}
	if !math.IsNaN(old.Time()) {
		t.Fatalf("stale handle Time = %v, want NaN", old.Time())
	}

	// The critical case: cancelling through the stale handle must not
	// cancel the recycled event.
	e.Cancel(old)
	if !reused.Pending() {
		t.Fatal("Cancel through a stale handle cancelled the recycled event")
	}
	e.Run()
	if !reusedFired {
		t.Fatal("recycled event did not fire")
	}
	if (Handle{}).Recycled() {
		t.Fatal("zero handle reports Recycled")
	}
}

// TestEngineReset pins that Reset rewinds clock, sequence numbers and
// telemetry while keeping the pool, and that a run on a reset engine fires
// in exactly the order a fresh engine would (seq restart ⇒ identical FIFO
// tie-breaking).
func TestEngineReset(t *testing.T) {
	run := func(e *Engine) []int {
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			e.Schedule(float64(i%3), "ev", func(*Engine) { order = append(order, i) })
		}
		e.Schedule(5, "late", func(*Engine) {})
		e.RunUntil(4) // "late" is still pending at Reset time
		return order
	}

	e := New()
	first := run(e)
	if e.Pending() != 1 {
		t.Fatalf("pending before reset = %d, want 1", e.Pending())
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 || e.Scheduled() != 0 || e.Cancelled() != 0 || e.MaxPending() != 0 {
		t.Fatalf("reset left state behind: now=%v pending=%d fired=%d scheduled=%d cancelled=%d maxPending=%d",
			e.Now(), e.Pending(), e.Fired(), e.Scheduled(), e.Cancelled(), e.MaxPending())
	}
	if e.PoolSize() != 9 {
		t.Fatalf("pool size after reset = %d, want 9 (8 fired + 1 pending discarded)", e.PoolSize())
	}

	second := run(e)
	if len(first) != len(second) {
		t.Fatalf("runs fired different counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("firing order diverged after Reset: %v vs %v", first, second)
		}
	}
	if e.PoolMisses() != 0 {
		t.Fatalf("second run allocated %d events despite a warm pool", e.PoolMisses())
	}
}

var noopHandler = func(*Engine) {}

// TestScheduleFireZeroAlloc is the allocation-regression gate for the event
// loop: a warmed engine must schedule and fire an event without touching
// the heap.
func TestScheduleFireZeroAlloc(t *testing.T) {
	e := New()
	for i := 0; i < 64; i++ { // warm the pool and the queue storage
		e.ScheduleAfter(1, "warm", noopHandler)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAfter(1, "hot", noopHandler)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocates %.1f objects/event, want 0", allocs)
	}
}

// TestCancelZeroAlloc extends the gate to the cancel path.
func TestCancelZeroAlloc(t *testing.T) {
	e := New()
	for i := 0; i < 64; i++ {
		e.ScheduleAfter(1, "warm", noopHandler)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.ScheduleAfter(1, "hot", noopHandler)
		e.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects/event, want 0", allocs)
	}
}
