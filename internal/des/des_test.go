package des

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.Schedule(tm, "ev", func(e *Engine) { fired = append(fired, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d", e.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, "tie", func(e *Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.Schedule(2.5, "a", func(e *Engine) {
		if e.Now() != 2.5 {
			t.Errorf("now = %v inside event at 2.5", e.Now())
		}
		e.ScheduleAfter(1.5, "b", func(e *Engine) {
			if e.Now() != 4.0 {
				t.Errorf("now = %v, want 4.0", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 4.0 {
		t.Fatalf("final now = %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	firedA := false
	ev := e.Schedule(1, "a", func(e *Engine) { firedA = true })
	e.Schedule(2, "b", func(e *Engine) {})
	e.Cancel(ev)
	e.Run()
	if firedA {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Double cancel and zero-handle cancel must be no-ops.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

// TestFiredEventIsNotCancelled is the regression test for the historic
// Cancelled bug: firing an event also dequeues it and nils its handler, so
// a cancelled-means-dequeued check reported fired events as cancelled.
func TestFiredEventIsNotCancelled(t *testing.T) {
	e := New()
	fired := e.Schedule(1, "fires", func(*Engine) {})
	cancelled := e.Schedule(2, "cancelled", func(*Engine) {})

	if !fired.Pending() || !cancelled.Pending() {
		t.Fatal("freshly scheduled events must be pending")
	}
	if fired.Cancelled() || fired.Fired() {
		t.Fatal("pending event reports a final state")
	}

	e.Cancel(cancelled)
	e.Run()

	if fired.Cancelled() {
		t.Fatal("fired event reports Cancelled")
	}
	if !fired.Fired() {
		t.Fatal("fired event does not report Fired")
	}
	if !cancelled.Cancelled() || cancelled.Fired() {
		t.Fatal("cancelled event state wrong")
	}

	// Cancelling an already-fired event must not rewrite history.
	e.Cancel(fired)
	if fired.Cancelled() || !fired.Fired() {
		t.Fatal("Cancel after firing changed the event state")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var fired []string
	evs := make([]Handle, 0, 20)
	for i := 0; i < 20; i++ {
		name := string(rune('a' + i))
		evs = append(evs, e.Schedule(float64(i), name, func(e *Engine) { fired = append(fired, name) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
	for _, name := range fired {
		idx := int(name[0] - 'a')
		if idx%3 == 0 {
			t.Fatalf("cancelled event %q fired", name)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, "a", func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(4, "past", func(e *Engine) {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), "tick", func(e *Engine) { count++ })
	}
	e.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("fired %d events before horizon, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("now = %v, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.RunUntil(100)
	if count != 10 {
		t.Fatalf("fired %d total, want 10", count)
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	e := New()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("now = %v, want 42", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	depth := 0
	var recurse func(e *Engine)
	recurse = func(e *Engine) {
		depth++
		if depth < 100 {
			e.ScheduleAfter(0.1, "r", recurse)
		}
	}
	e.Schedule(0, "start", recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

// TestHeapProperty uses testing/quick to confirm ordering holds for random
// schedules with random cancellations.
func TestHeapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		e := New()
		var fired []float64
		var evs []Handle
		n := src.Intn(200) + 1
		for i := 0; i < n; i++ {
			tm := src.Float64() * 100
			evs = append(evs, e.Schedule(tm, "x", func(e *Engine) { fired = append(fired, e.Now()) }))
		}
		cancelled := 0
		for _, ev := range evs {
			if src.Float64() < 0.3 {
				e.Cancel(ev)
				cancelled++
			}
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == n-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineTelemetryCounters pins the engine-level observability counters:
// Scheduled counts every enqueue, Cancelled every pre-fire removal, and
// MaxPending the queue's high-water mark.
func TestEngineTelemetryCounters(t *testing.T) {
	e := New()
	a := e.Schedule(1, "a", func(*Engine) {})
	b := e.Schedule(2, "b", func(*Engine) {})
	e.Schedule(3, "c", func(*Engine) {})
	if e.Scheduled() != 3 || e.MaxPending() != 3 {
		t.Fatalf("scheduled=%d maxPending=%d, want 3/3", e.Scheduled(), e.MaxPending())
	}
	e.Cancel(b)
	e.Cancel(b) // no-op re-cancel must not double count
	if e.Cancelled() != 1 {
		t.Fatalf("cancelled = %d, want 1", e.Cancelled())
	}
	e.Run()
	e.Cancel(a) // cancelling a fired event is a no-op
	if e.Cancelled() != 1 {
		t.Fatalf("cancelled after run = %d, want 1", e.Cancelled())
	}
	if e.Fired() != 2 || e.Scheduled() != 3 {
		t.Fatalf("fired=%d scheduled=%d, want 2/3", e.Fired(), e.Scheduled())
	}
	if e.MaxPending() != 3 || e.Pending() != 0 {
		t.Fatalf("maxPending=%d pending=%d, want 3/0", e.MaxPending(), e.Pending())
	}
}
