package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerIndexOutsidePool(t *testing.T) {
	if w := WorkerIndex(context.Background()); w != 0 {
		t.Fatalf("WorkerIndex outside a pool = %d, want 0", w)
	}
}

func TestWorkerIndexInRange(t *testing.T) {
	const workers, n = 4, 64
	seen := make([]int64, n)
	_, err := Map(context.Background(), Pool{Workers: workers}, n, func(ctx context.Context, i int) (struct{}, error) {
		seen[i] = int64(WorkerIndex(ctx))
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range seen {
		if w < 0 || w >= workers {
			t.Fatalf("job %d saw worker index %d, want [0,%d)", i, w, workers)
		}
	}
}

// TestMapLocalSequentialSharesOneState pins the zero-value contract: a
// sequential pool builds exactly one state and every job receives it.
func TestMapLocalSequentialSharesOneState(t *testing.T) {
	var created int32
	type state struct{ id int32 }
	out, err := MapLocal(context.Background(), Pool{}, 8,
		func() *state { return &state{id: atomic.AddInt32(&created, 1)} },
		func(_ context.Context, s *state, i int) (*state, error) { return s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if created != 1 {
		t.Fatalf("sequential MapLocal built %d states, want 1", created)
	}
	for i, s := range out {
		if s != out[0] {
			t.Fatalf("job %d got a different state than job 0", i)
		}
	}
}

// TestMapLocalStatesBoundedByWorkers is the resource contract the runner's
// instance cache relies on: at most Workers states are ever built, no
// matter how many jobs run, and every job of a given worker reuses that
// worker's state.
func TestMapLocalStatesBoundedByWorkers(t *testing.T) {
	const workers, n = 3, 48
	var created int32
	type state struct{ jobs int }
	var mu sync.Mutex
	states := make(map[*state]bool)
	_, err := MapLocal(context.Background(), Pool{Workers: workers}, n,
		func() *state { atomic.AddInt32(&created, 1); return &state{} },
		func(_ context.Context, s *state, i int) (int, error) {
			s.jobs++ // safe: one worker owns s
			mu.Lock()
			states[s] = true
			mu.Unlock()
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if created < 1 || created > workers {
		t.Fatalf("built %d states for %d workers", created, workers)
	}
	total := 0
	for s := range states {
		total += s.jobs
	}
	if total != n {
		t.Fatalf("states saw %d jobs in total, want %d", total, n)
	}
}

func TestMapLocalPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapLocal(context.Background(), Pool{Workers: 2}, 4,
		func() int { return 0 },
		func(_ context.Context, _ int, i int) (int, error) {
			if i == 1 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestMapLocalEmpty(t *testing.T) {
	called := false
	out, err := MapLocal(context.Background(), Pool{Workers: 4}, 0,
		func() int { called = true; return 0 },
		func(_ context.Context, _ int, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || called {
		t.Fatalf("empty MapLocal: out=%v, mk called=%v", out, called)
	}
}

// TestMapLocalDeterministicAcrossWorkerCounts mirrors the runner's
// worker-invariance property at the exec layer: when jobs derive results
// only from their index (never from worker-local state), the output is
// identical at any worker count.
func TestMapLocalDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := MapLocal(context.Background(), Pool{Workers: workers}, 32,
			func() *int { return new(int) },
			func(_ context.Context, scratch *int, i int) (int, error) {
				*scratch += i // worker-local accumulation must not leak
				return i * i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
