// Package exec is the simulation execution engine: a bounded worker pool
// that fans independent jobs out across goroutines while keeping every
// observable result deterministic.
//
// The determinism contract is structural, not lucky: callers assign all
// randomness (replication seeds, cell seeds) to jobs *before* dispatch and
// collect results by submission index, so neither the worker count nor the
// completion order can influence what a run computes. The pool adds the
// operational concerns every consumer would otherwise reimplement:
// context cancellation, per-job panic capture (a panicking job surfaces as
// an error instead of crashing the process from a nameless goroutine), and
// serialized progress snapshots for -progress style reporting.
//
// Every simulation consumer in this repository — replication fan-out in
// internal/runner, the (series, x) cell grids of internal/experiments,
// candidate sweeps in internal/opt, parameter fan-out in
// internal/sensitivity and the row sweeps of cmd/ccsweep — runs on this
// pool.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job is one unit of work. Jobs must be independent of each other; the
// pool may run them in any order and on any goroutine.
type Job func(ctx context.Context) error

// Progress is a snapshot of a pool run, delivered to Pool.OnProgress.
type Progress struct {
	// Total is the number of jobs submitted to Run.
	Total int
	// Queued is the number of jobs not yet started.
	Queued int
	// Running is the number of jobs currently executing.
	Running int
	// Done is the number of finished jobs, including failures.
	Done int
	// Failed is the number of finished jobs that returned an error or
	// panicked.
	Failed int
	// Elapsed is the wall time since the run began.
	Elapsed time.Duration
	// Final marks the last snapshot of a run. It is set exactly once per
	// Run invocation, whether the run completed every job or ended early
	// (cancellation, job failure), so consumers can flush line-oriented
	// progress displays unconditionally.
	Final bool
}

// Pool is a bounded worker pool. The zero value runs jobs sequentially on
// the calling goroutine.
type Pool struct {
	// Workers bounds concurrency. Values below 1 mean 1 (sequential).
	Workers int
	// OnProgress, when non-nil, is invoked with a snapshot after every
	// job state change (start and completion). Calls are serialized; the
	// callback must not call back into the pool and should be fast.
	OnProgress func(Progress)
	// Metrics, when non-nil, receives pool telemetry: exec.jobs_started /
	// exec.jobs_done / exec.jobs_failed counters, an exec.jobs_running
	// gauge and an exec.job_wall_s timer of per-job wall time. The
	// registry is shared and live, so a debug endpoint can watch a run.
	Metrics *obs.Registry
}

// PanicError wraps a panic recovered from a job so the caller sees an
// ordinary error (with the offending job's index and stack) instead of a
// crash from an anonymous worker goroutine.
type PanicError struct {
	// Index is the submission index of the panicking job.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// WorkerCount resolves a Workers option shared by every consumer:
// n > 0 is used as given, 0 means sequential (the historic single-threaded
// behavior of the consumers, and the zero-value default of their Options),
// and negative means one worker per CPU.
func WorkerCount(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return 1
	default:
		return runtime.NumCPU()
	}
}

// run is the shared state of one Run invocation.
type run struct {
	pool  Pool
	jobs  []Job
	start time.Time
	errs  []error // one slot per job; only the job's worker writes it

	mu      sync.Mutex
	started int
	running int
	done    int
	failed  int
	aborted bool

	// Metric handles, resolved once per Run when pool.Metrics is set.
	mStarted *obs.Counter
	mDone    *obs.Counter
	mFailed  *obs.Counter
	mRunning *obs.Gauge
	mWall    *obs.Timer
}

// Run executes the jobs on at most p.Workers goroutines and blocks until
// every started job has finished. After a job fails (error or panic) no
// further jobs start; already-running jobs complete. The returned error is
// the failure with the lowest submission index among those observed, which
// for a single failing job is independent of scheduling; with no job
// failure, Run returns ctx.Err() if cancellation prevented any job from
// running, else nil.
func (p Pool) Run(ctx context.Context, jobs []Job) error {
	r := &run{pool: p, jobs: jobs, start: time.Now(), errs: make([]error, len(jobs))}
	if m := p.Metrics; m != nil {
		r.mStarted = m.Counter("exec.jobs_started")
		r.mDone = m.Counter("exec.jobs_done")
		r.mFailed = m.Counter("exec.jobs_failed")
		r.mRunning = m.Gauge("exec.jobs_running")
		r.mWall = m.Timer("exec.job_wall_s")
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		r.worker(withWorker(ctx, 0), &counter{})
	} else {
		var wg sync.WaitGroup
		next := &counter{}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				r.worker(withWorker(ctx, w), next)
			}(w)
		}
		wg.Wait()
	}
	// A run that completed every job already emitted its final snapshot
	// from the last jobDone. Runs cut short (cancellation, failure abort)
	// and empty runs still owe observers exactly one Final snapshot.
	if r.done < len(jobs) || len(jobs) == 0 {
		r.mu.Lock()
		r.notifyLocked(true)
		r.mu.Unlock()
	}
	for _, err := range r.errs {
		if err != nil {
			return err
		}
	}
	if r.started < len(jobs) {
		return ctx.Err()
	}
	return nil
}

// workerKey carries the worker index through the job context.
type workerKey struct{}

// withWorker tags ctx with the index of the pool worker running on it.
func withWorker(ctx context.Context, w int) context.Context {
	return context.WithValue(ctx, workerKey{}, w)
}

// WorkerIndex returns the index (0-based, below the resolved worker count)
// of the pool worker executing the current job. Jobs use it to address
// worker-local state — notably MapLocal's per-worker slots. Outside a pool
// job it returns 0, so code paths shared with direct calls keep working.
func WorkerIndex(ctx context.Context) int {
	if w, ok := ctx.Value(workerKey{}).(int); ok {
		return w
	}
	return 0
}

// counter hands out job indices; shared across the run's workers.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.n
	c.n++
	return n
}

// worker claims and executes jobs until they run out, the context is
// cancelled, or a job fails.
func (r *run) worker(ctx context.Context, next *counter) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		i := next.next()
		if i >= len(r.jobs) {
			return
		}
		if !r.jobStarted() {
			return
		}
		jobStart := time.Now()
		err := capture(ctx, i, r.jobs[i])
		r.errs[i] = err
		r.jobDone(err != nil, time.Since(jobStart))
	}
}

// capture runs one job, converting a panic into a *PanicError.
func capture(ctx context.Context, i int, job Job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return job(ctx)
}

// jobStarted records a job start and reports whether the run still accepts
// work (false once a previous job has failed).
func (r *run) jobStarted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return false
	}
	r.started++
	r.running++
	if r.mStarted != nil {
		r.mStarted.Inc()
		r.mRunning.Add(1)
	}
	r.notifyLocked(false)
	return true
}

// jobDone records a job completion and its wall time.
func (r *run) jobDone(failed bool, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.running--
	r.done++
	if failed {
		r.failed++
		r.aborted = true
	}
	if r.mDone != nil {
		r.mDone.Inc()
		r.mRunning.Add(-1)
		r.mWall.Observe(wall)
		if failed {
			r.mFailed.Inc()
		}
	}
	// The natural last completion doubles as the run's final snapshot, so
	// a fully-completed run keeps its historical snapshot count.
	r.notifyLocked(r.done == len(r.jobs))
}

// notifyLocked delivers a progress snapshot; r.mu must be held, which
// serializes the callback.
func (r *run) notifyLocked(final bool) {
	if r.pool.OnProgress == nil {
		return
	}
	r.pool.OnProgress(Progress{
		Total:   len(r.jobs),
		Queued:  len(r.jobs) - r.started,
		Running: r.running,
		Done:    r.done,
		Failed:  r.failed,
		Elapsed: time.Since(r.start),
		Final:   final,
	})
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results in index order. The index-addressed result slice is what makes
// parallel runs deterministic: each job owns one slot, so completion order
// is irrelevant. On error the results are discarded and the lowest-index
// failure is returned (see Pool.Run).
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) error {
			v, err := fn(ctx, i)
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		}
	}
	if err := p.Run(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// MapLocal is Map with worker-local state: mk builds one S per worker,
// lazily, on the worker that first needs it, and every job that worker
// claims receives the same S. It exists for expensive reusable resources —
// the runner's per-worker model-instance cache is the motivating case — and
// keeps the determinism contract exactly as Map does: state must never leak
// into results (callers guarantee that a job computes the same value
// whichever worker, and therefore whichever S, runs it; the runner pins
// this with its worker-invariance tests).
//
// Each state slot is only ever touched by its own worker, so S needs no
// locking.
func MapLocal[S any, T any](ctx context.Context, p Pool, n int, mk func() S, fn func(ctx context.Context, state S, i int) (T, error)) ([]T, error) {
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1 // n == 0: Run still owes observers a final snapshot
	}
	states := make([]S, workers)
	made := make([]bool, workers)
	return Map(ctx, p, n, func(ctx context.Context, i int) (T, error) {
		w := WorkerIndex(ctx)
		if !made[w] {
			states[w] = mk()
			made[w] = true
		}
		return fn(ctx, states[w], i)
	})
}
