package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := Map(context.Background(), Pool{Workers: workers}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestWorkerCount(t *testing.T) {
	if w := WorkerCount(3); w != 3 {
		t.Fatalf("WorkerCount(3) = %d", w)
	}
	if w := WorkerCount(0); w != 1 {
		t.Fatalf("WorkerCount(0) = %d", w)
	}
	if w := WorkerCount(-1); w < 1 {
		t.Fatalf("WorkerCount(-1) = %d", w)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	// Every job fails; whatever the scheduling, the reported failure must
	// be the lowest-index one among those that ran, and with a single
	// worker that is always job 0.
	errWant := errors.New("boom 0")
	err := Pool{Workers: 1}.Run(context.Background(), []Job{
		func(context.Context) error { return errWant },
		func(context.Context) error { return errors.New("boom 1") },
	})
	if !errors.Is(err, errWant) {
		t.Fatalf("err = %v, want %v", err, errWant)
	}
}

func TestRunStopsDispatchAfterFailure(t *testing.T) {
	var ran atomic.Int32
	jobs := make([]Job, 50)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) error {
			ran.Add(1)
			if i == 0 {
				return errors.New("first job fails")
			}
			return nil
		}
	}
	if err := (Pool{Workers: 1}).Run(context.Background(), jobs); err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("%d jobs ran after sequential failure, want 1", n)
	}
}

func TestRunCapturesPanic(t *testing.T) {
	err := Pool{Workers: 4}.Run(context.Background(), []Job{
		func(context.Context) error { return nil },
		func(context.Context) error { panic("kaboom") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 1 || fmt.Sprint(pe.Value) != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = func(context.Context) error {
			ran.Add(1)
			cancel() // cancel as soon as any job runs
			return nil
		}
	}
	err := Pool{Workers: 2}.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestProgressSnapshots(t *testing.T) {
	var snaps []Progress
	pool := Pool{
		Workers:    3,
		OnProgress: func(p Progress) { snaps = append(snaps, p) }, // serialized by the pool
	}
	const n = 20
	_, err := Map(context.Background(), pool, n, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One start and one completion notification per job.
	if len(snaps) != 2*n {
		t.Fatalf("got %d snapshots, want %d", len(snaps), 2*n)
	}
	last := snaps[len(snaps)-1]
	if last.Done != n || last.Queued != 0 || last.Running != 0 || last.Failed != 0 || last.Total != n {
		t.Fatalf("final snapshot %+v", last)
	}
	for _, p := range snaps {
		if p.Queued+p.Running+p.Done != p.Total {
			t.Fatalf("inconsistent snapshot %+v", p)
		}
		if p.Elapsed < 0 {
			t.Fatalf("negative elapsed in %+v", p)
		}
	}
}

func TestEmptyRun(t *testing.T) {
	if err := (Pool{Workers: 8}).Run(context.Background(), nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	out, err := Map(context.Background(), Pool{}, 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestMapConcurrentStress(t *testing.T) {
	// Exercised under -race by the race tier target: many workers, shared
	// progress callback, per-index result slots.
	pool := Pool{Workers: 8, OnProgress: func(Progress) {}}
	got, err := Map(context.Background(), pool, 500, func(_ context.Context, i int) (float64, error) {
		return float64(i) / 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i)/3 {
			t.Fatalf("result[%d] = %v", i, v)
		}
	}
}

// TestFinalSnapshotOnCancellation is the regression test for early-ended
// runs: before Progress.Final existed, a cancelled run's last OnProgress
// call was whatever job happened to finish last, with Done < Total and no
// way for a consumer to know the run was over. Exactly one Final snapshot
// must now close every run.
func TestFinalSnapshotOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var snaps []Progress
	pool := Pool{
		Workers: 2,
		OnProgress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	}
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = func(context.Context) error {
			cancel()
			return nil
		}
	}
	if err := pool.Run(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	finals := 0
	for _, p := range snaps {
		if p.Final {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("got %d Final snapshots, want exactly 1", finals)
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatalf("last snapshot not Final: %+v", last)
	}
	if last.Running != 0 {
		t.Fatalf("final snapshot still shows running jobs: %+v", last)
	}
	if last.Done >= last.Total {
		t.Fatalf("cancellation test completed all jobs (done=%d); cannot exercise the early-end path", last.Done)
	}
}

func TestFinalSnapshotOnCompletionAndFailure(t *testing.T) {
	// Normal completion: the last jobDone doubles as the Final snapshot,
	// preserving the historical 2n snapshot count.
	var snaps []Progress
	pool := Pool{Workers: 3, OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	const n = 10
	if _, err := Map(context.Background(), pool, n, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2*n {
		t.Fatalf("got %d snapshots, want %d", len(snaps), 2*n)
	}
	for i, p := range snaps {
		if p.Final != (i == len(snaps)-1) {
			t.Fatalf("snapshot %d Final=%v: %+v", i, p.Final, p)
		}
	}

	// Failure abort: dispatch stops, yet the run still closes with one
	// Final snapshot.
	snaps = nil
	boom := errors.New("boom")
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = func(context.Context) error { return boom }
	}
	seq := Pool{OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	if err := seq.Run(context.Background(), jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	finals := 0
	for _, p := range snaps {
		if p.Final {
			finals++
		}
	}
	if finals != 1 || !snaps[len(snaps)-1].Final {
		t.Fatalf("failure-aborted run delivered %d Final snapshots (last=%+v)", finals, snaps[len(snaps)-1])
	}

	// Empty run: no jobs, still exactly one Final snapshot.
	snaps = nil
	if err := (Pool{OnProgress: func(p Progress) { snaps = append(snaps, p) }}).Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || !snaps[0].Final || snaps[0].Total != 0 {
		t.Fatalf("empty run snapshots = %+v", snaps)
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	pool := Pool{Workers: 4, Metrics: reg}
	const n = 25
	if _, err := Map(context.Background(), pool, n, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			time.Sleep(time.Millisecond)
		}
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("exec.jobs_started").Value(); got != n {
		t.Fatalf("jobs_started = %d, want %d", got, n)
	}
	if got := reg.Counter("exec.jobs_done").Value(); got != n {
		t.Fatalf("jobs_done = %d, want %d", got, n)
	}
	if got := reg.Counter("exec.jobs_failed").Value(); got != 0 {
		t.Fatalf("jobs_failed = %d, want 0", got)
	}
	if got := reg.Gauge("exec.jobs_running").Value(); got != 0 {
		t.Fatalf("jobs_running = %d after run, want 0", got)
	}
	ts := reg.Timer("exec.job_wall_s").Snapshot()
	if ts.Count != n {
		t.Fatalf("job_wall_s count = %d, want %d", ts.Count, n)
	}
	if ts.Sum < 0 || ts.Min < 0 {
		t.Fatalf("job wall times negative: %+v", ts)
	}

	// Failures are counted too, and the registry accumulates across runs.
	boom := errors.New("boom")
	if err := pool.Run(context.Background(), []Job{func(context.Context) error { return boom }}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter("exec.jobs_failed").Value(); got != 1 {
		t.Fatalf("jobs_failed = %d, want 1", got)
	}
	if got := reg.Counter("exec.jobs_done").Value(); got != n+1 {
		t.Fatalf("jobs_done = %d, want %d", got, n+1)
	}
}
