// Package trace records simulation trajectories as streams of structured
// events (one JSON object per line), for debugging the model and for
// post-processing individual runs — e.g. extracting failure inter-arrival
// times or checkpoint-cycle timelines from a single trajectory.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Event is one activity firing of a trajectory.
type Event struct {
	// Time is the simulation time of the firing, in hours.
	Time float64 `json:"t"`
	// Activity is the SAN activity that fired.
	Activity string `json:"activity"`
	// Marking holds the non-empty places after the firing; omitted when
	// marking capture is disabled.
	Marking map[string]int `json:"marking,omitempty"`
}

// Writer streams events as NDJSON.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w for event streaming.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event.
func (w *Writer) Write(ev Event) error {
	if err := w.enc.Encode(ev); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer; call once after the last event.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// maxLineBytes bounds a single NDJSON line (4 MiB — far above any real
// event, small enough that a binary file fed in by mistake fails fast).
const maxLineBytes = 4 << 20

// ErrTruncated marks an event cut off mid-object — the signature a crashed
// or killed writer leaves on its final line. Callers that replay traces
// from crash-prone producers (the resumable sweep engine, -resume
// tooling) match it with errors.Is and treat the file as incomplete work
// to redo, instead of aborting on a parse failure.
var ErrTruncated = errors.New("truncated event (partial JSON object — incomplete trace file?)")

// Reader iterates NDJSON events line by line. Malformed input produces a
// line-numbered error rather than a silent stop: bad JSON, trailing bytes
// after an object, and a truncated (unterminated) last line are all
// reported with the 1-based line they occur on. Blank lines are skipped.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r for event reading.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	return &Reader{sc: sc}
}

// Next returns the next event; io.EOF when the stream ends cleanly.
func (r *Reader) Next() (Event, error) {
	for r.sc.Scan() {
		r.line++
		data := bytes.TrimSpace(r.sc.Bytes())
		if len(data) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return Event{}, fmt.Errorf("trace: line %d: %w", r.line, ErrTruncated)
			}
			return Event{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		if dec.More() {
			return Event{}, fmt.Errorf("trace: line %d: trailing data after event object", r.line)
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return Event{}, fmt.Errorf("trace: line %d: event line exceeds %d bytes (is this an NDJSON trace?)", r.line+1, maxLineBytes)
		}
		return Event{}, fmt.Errorf("trace: line %d: %w", r.line+1, err)
	}
	return Event{}, io.EOF
}

// ReadAll drains the stream into a slice.
func ReadAll(r io.Reader) ([]Event, error) {
	tr := NewReader(r)
	var out []Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// Summary aggregates per-activity counts and the trajectory horizon.
type Summary struct {
	// Counts maps activity name to firing count.
	Counts map[string]int
	// End is the time of the last event.
	End float64
}

// Summarize folds an event slice into a Summary.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[string]int)}
	for _, ev := range events {
		s.Counts[ev.Activity]++
		if ev.Time > s.End {
			s.End = ev.Time
		}
	}
	return s
}

// InterArrivals extracts the gaps between consecutive firings of one
// activity — e.g. the empirical failure inter-arrival distribution.
func InterArrivals(events []Event, activity string) []float64 {
	var gaps []float64
	last := -1.0
	for _, ev := range events {
		if ev.Activity != activity {
			continue
		}
		if last >= 0 {
			gaps = append(gaps, ev.Time-last)
		}
		last = ev.Time
	}
	return gaps
}
