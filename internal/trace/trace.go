// Package trace records simulation trajectories as streams of structured
// events (one JSON object per line), for debugging the model and for
// post-processing individual runs — e.g. extracting failure inter-arrival
// times or checkpoint-cycle timelines from a single trajectory.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event is one activity firing of a trajectory.
type Event struct {
	// Time is the simulation time of the firing, in hours.
	Time float64 `json:"t"`
	// Activity is the SAN activity that fired.
	Activity string `json:"activity"`
	// Marking holds the non-empty places after the firing; omitted when
	// marking capture is disabled.
	Marking map[string]int `json:"marking,omitempty"`
}

// Writer streams events as NDJSON.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w for event streaming.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event.
func (w *Writer) Write(ev Event) error {
	if err := w.enc.Encode(ev); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer; call once after the last event.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Reader iterates NDJSON events.
type Reader struct {
	dec *json.Decoder
}

// NewReader wraps r for event reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(r)}
}

// Next returns the next event; io.EOF when the stream ends.
func (r *Reader) Next() (Event, error) {
	var ev Event
	if err := r.dec.Decode(&ev); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	return ev, nil
}

// ReadAll drains the stream into a slice.
func ReadAll(r io.Reader) ([]Event, error) {
	tr := NewReader(r)
	var out []Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// Summary aggregates per-activity counts and the trajectory horizon.
type Summary struct {
	// Counts maps activity name to firing count.
	Counts map[string]int
	// End is the time of the last event.
	End float64
}

// Summarize folds an event slice into a Summary.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[string]int)}
	for _, ev := range events {
		s.Counts[ev.Activity]++
		if ev.Time > s.End {
			s.End = ev.Time
		}
	}
	return s
}

// InterArrivals extracts the gaps between consecutive firings of one
// activity — e.g. the empirical failure inter-arrival distribution.
func InterArrivals(events []Event, activity string) []float64 {
	var gaps []float64
	last := -1.0
	for _, ev := range events {
		if ev.Activity != activity {
			continue
		}
		if last >= 0 {
			gaps = append(gaps, ev.Time-last)
		}
		last = ev.Time
	}
	return gaps
}
