package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Time: 0.5, Activity: "checkpoint_trigger"},
		{Time: 0.51, Activity: "dump_chkpt", Marking: map[string]int{"execution": 1}},
		{Time: 1.2, Activity: "comp_failure"},
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("read %d events", len(back))
	}
	if back[1].Marking["execution"] != 1 {
		t.Fatal("marking lost in round trip")
	}
	if back[2].Activity != "comp_failure" || back[2].Time != 1.2 {
		t.Fatalf("event corrupted: %+v", back[2])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want EOF", err)
	}
}

func TestReaderBadJSON(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

// TestReaderMalformedInput pins the hardened reader's behavior: malformed
// or truncated NDJSON yields a line-numbered error, while blank lines and
// surrounding whitespace are tolerated.
func TestReaderMalformedInput(t *testing.T) {
	good := `{"t":1,"activity":"a"}`
	cases := []struct {
		name    string
		input   string
		events  int    // events successfully read before the error/EOF
		errLine string // substring the error must contain; "" = clean EOF
	}{
		{"empty stream", "", 0, ""},
		{"only newlines", "\n\n\n", 0, ""},
		{"blank lines between events", good + "\n\n" + good + "\n", 2, ""},
		{"leading whitespace", "   " + good + "\n", 1, ""},
		{"no trailing newline", good, 1, ""},
		{"partial last line", good + "\n" + `{"t":2,"activ`, 1, "line 2"},
		{"partial only line", `{"t":1,"ac`, 0, "line 1"},
		{"bad JSON mid-stream", good + "\n" + "not json\n" + good + "\n", 1, "line 2"},
		{"wrong type", `{"t":"late","activity":"a"}` + "\n", 0, "line 1"},
		{"trailing garbage on line", good + ` {"t":2}` + "\n", 0, "line 1"},
		{"error after blank lines", "\n\n{bad\n", 0, "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.input))
			var got int
			var err error
			for {
				_, err = r.Next()
				if err != nil {
					break
				}
				got++
			}
			if got != tc.events {
				t.Errorf("read %d events, want %d", got, tc.events)
			}
			if tc.errLine == "" {
				if err != io.EOF {
					t.Errorf("err = %v, want clean EOF", err)
				}
				return
			}
			if err == io.EOF {
				t.Fatalf("want error containing %q, got clean EOF", tc.errLine)
			}
			if !strings.Contains(err.Error(), tc.errLine) {
				t.Errorf("err %q does not name the offending line %q", err, tc.errLine)
			}
		})
	}
}

// TestReaderTruncatedMarking: a trace cut mid-marking (the common "disk
// filled up" failure) reports the truncation instead of silently dropping
// the tail.
func TestReaderTruncatedMarking(t *testing.T) {
	full := `{"t":1,"activity":"a","marking":{"execution":1}}`
	truncated := full + "\n" + full[:len(full)-9]
	_, err := ReadAll(strings.NewReader(truncated))
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("unhelpful truncation error: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Time: 1, Activity: "a"},
		{Time: 2, Activity: "b"},
		{Time: 3, Activity: "a"},
	}
	s := Summarize(events)
	if s.Counts["a"] != 2 || s.Counts["b"] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.End != 3 {
		t.Fatalf("end = %v", s.End)
	}
	empty := Summarize(nil)
	if len(empty.Counts) != 0 || empty.End != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestInterArrivals(t *testing.T) {
	events := []Event{
		{Time: 1, Activity: "fail"},
		{Time: 2, Activity: "other"},
		{Time: 4, Activity: "fail"},
		{Time: 9, Activity: "fail"},
	}
	gaps := InterArrivals(events, "fail")
	if len(gaps) != 2 || math.Abs(gaps[0]-3) > 1e-12 || math.Abs(gaps[1]-5) > 1e-12 {
		t.Fatalf("gaps = %v", gaps)
	}
	if got := InterArrivals(events, "missing"); got != nil {
		t.Fatalf("missing activity gaps = %v", got)
	}
	if got := InterArrivals(events[:1], "fail"); got != nil {
		t.Fatalf("single occurrence gaps = %v", got)
	}
}

// TestTruncatedIsSentinel: crash-aware consumers (the resumable sweep
// engine's -resume path) distinguish a torn final line from genuinely
// malformed input with errors.Is, so a crashed writer's trace is redone
// rather than treated as corrupt.
func TestTruncatedIsSentinel(t *testing.T) {
	full := `{"t":1,"activity":"a"}`
	_, err := ReadAll(strings.NewReader(full + "\n" + `{"t":2,"activ`))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn line error = %v, want errors.Is(_, ErrTruncated)", err)
	}
	// Structurally bad JSON is NOT a truncation — it must stay a hard error.
	_, err = ReadAll(strings.NewReader(`{"t":"not-a-number","activity":7}`))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("malformed line error = %v, want hard non-truncation error", err)
	}
}
