package trace

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Time: 0.5, Activity: "checkpoint_trigger"},
		{Time: 0.51, Activity: "dump_chkpt", Marking: map[string]int{"execution": 1}},
		{Time: 1.2, Activity: "comp_failure"},
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("read %d events", len(back))
	}
	if back[1].Marking["execution"] != 1 {
		t.Fatal("marking lost in round trip")
	}
	if back[2].Activity != "comp_failure" || back[2].Time != 1.2 {
		t.Fatalf("event corrupted: %+v", back[2])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want EOF", err)
	}
}

func TestReaderBadJSON(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Time: 1, Activity: "a"},
		{Time: 2, Activity: "b"},
		{Time: 3, Activity: "a"},
	}
	s := Summarize(events)
	if s.Counts["a"] != 2 || s.Counts["b"] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.End != 3 {
		t.Fatalf("end = %v", s.End)
	}
	empty := Summarize(nil)
	if len(empty.Counts) != 0 || empty.End != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestInterArrivals(t *testing.T) {
	events := []Event{
		{Time: 1, Activity: "fail"},
		{Time: 2, Activity: "other"},
		{Time: 4, Activity: "fail"},
		{Time: 9, Activity: "fail"},
	}
	gaps := InterArrivals(events, "fail")
	if len(gaps) != 2 || math.Abs(gaps[0]-3) > 1e-12 || math.Abs(gaps[1]-5) > 1e-12 {
		t.Fatalf("gaps = %v", gaps)
	}
	if got := InterArrivals(events, "missing"); got != nil {
		t.Fatalf("missing activity gaps = %v", got)
	}
	if got := InterArrivals(events[:1], "fail"); got != nil {
		t.Fatalf("single occurrence gaps = %v", got)
	}
}
