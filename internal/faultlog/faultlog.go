// Package faultlog analyses failure logs: sequences of failure instants,
// either measured on a real system or synthesised from model traces. It
// fits the quantities the checkpointing model consumes — the MTTF
// (exponential maximum-likelihood), burstiness measures (coefficient of
// variation, index of dispersion), burst detection by temporal clustering
// and the in-burst/out-of-burst rate ratio, i.e. an empirical estimate of
// the paper's frate_correlated_factor r. The paper grounds its correlated-
// failure parameters in exactly this kind of field-data analysis (Tang &
// Iyer [6], Zhang et al. [18]).
package faultlog

import (
	"fmt"
	"math"
	"sort"
)

// Log is a sequence of failure instants in hours, kept sorted.
type Log struct {
	times []float64
}

// New builds a log from (possibly unsorted) failure instants.
func New(times []float64) Log {
	cp := make([]float64, len(times))
	copy(cp, times)
	sort.Float64s(cp)
	return Log{times: cp}
}

// FromInterArrivals builds a log from gaps between consecutive failures;
// the first gap anchors the first failure instant relative to time zero.
func FromInterArrivals(gaps []float64) Log {
	times := make([]float64, 0, len(gaps))
	t := 0.0
	for _, g := range gaps {
		t += g
		times = append(times, t)
	}
	return Log{times: times}
}

// Len returns the number of failures.
func (l Log) Len() int { return len(l.times) }

// Times returns a copy of the failure instants.
func (l Log) Times() []float64 {
	cp := make([]float64, len(l.times))
	copy(cp, l.times)
	return cp
}

// Span returns the time between the first and last failure.
func (l Log) Span() float64 {
	if len(l.times) < 2 {
		return 0
	}
	return l.times[len(l.times)-1] - l.times[0]
}

// InterArrivals returns the gaps between consecutive failures.
func (l Log) InterArrivals() []float64 {
	if len(l.times) < 2 {
		return nil
	}
	gaps := make([]float64, len(l.times)-1)
	for i := 1; i < len(l.times); i++ {
		gaps[i-1] = l.times[i] - l.times[i-1]
	}
	return gaps
}

// MLEExponentialMean returns the maximum-likelihood mean of an exponential
// inter-arrival model — the sample mean gap. This is the system MTBF the
// classic checkpointing models consume.
func (l Log) MLEExponentialMean() (float64, error) {
	gaps := l.InterArrivals()
	if len(gaps) == 0 {
		return 0, fmt.Errorf("faultlog: need at least two failures, have %d", l.Len())
	}
	sum := 0.0
	for _, g := range gaps {
		sum += g
	}
	return sum / float64(len(gaps)), nil
}

// CoefficientOfVariation returns σ/µ of the inter-arrival gaps. A Poisson
// process gives 1; correlated bursts push it above 1 (hyper-exponential
// signature, §3.5 of the paper).
func (l Log) CoefficientOfVariation() (float64, error) {
	gaps := l.InterArrivals()
	if len(gaps) < 2 {
		return 0, fmt.Errorf("faultlog: need at least three failures, have %d", l.Len())
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if mean == 0 {
		return 0, fmt.Errorf("faultlog: zero mean gap")
	}
	ss := 0.0
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	variance := ss / float64(len(gaps)-1)
	return math.Sqrt(variance) / mean, nil
}

// IndexOfDispersion returns Var(N)/E(N) of failure counts over windows of
// the given length — 1 for Poisson, > 1 for temporally clustered failures.
func (l Log) IndexOfDispersion(window float64) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("faultlog: window %v must be positive", window)
	}
	if l.Span() < 2*window {
		return 0, fmt.Errorf("faultlog: span %v too short for window %v", l.Span(), window)
	}
	start := l.times[0]
	bins := int(l.Span() / window)
	counts := make([]int, bins)
	for _, t := range l.times {
		i := int((t - start) / window)
		if i >= 0 && i < bins {
			counts[i]++
		}
	}
	mean := 0.0
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= float64(bins)
	if mean == 0 {
		return 0, fmt.Errorf("faultlog: empty windows")
	}
	variance := 0.0
	for _, c := range counts {
		variance += (float64(c) - mean) * (float64(c) - mean)
	}
	variance /= float64(bins)
	return variance / mean, nil
}

// Burst is a detected cluster of temporally close failures.
type Burst struct {
	// Start and End bound the burst's failures.
	Start, End float64
	// Count is the number of failures in the burst.
	Count int
}

// Duration returns the burst's extent.
func (b Burst) Duration() float64 { return b.End - b.Start }

// DetectBursts clusters failures whose gaps are at most maxGap and returns
// clusters with at least minCount failures — the empirical analogue of the
// paper's correlated-failure windows.
func (l Log) DetectBursts(maxGap float64, minCount int) []Burst {
	if len(l.times) == 0 || maxGap <= 0 || minCount < 2 {
		return nil
	}
	var bursts []Burst
	start := 0
	for i := 1; i <= len(l.times); i++ {
		if i == len(l.times) || l.times[i]-l.times[i-1] > maxGap {
			if count := i - start; count >= minCount {
				bursts = append(bursts, Burst{
					Start: l.times[start],
					End:   l.times[i-1],
					Count: count,
				})
			}
			start = i
		}
	}
	return bursts
}

// RateRatio estimates the paper's correlated-rate multiplier from detected
// bursts: the failure rate inside bursts divided by the rate outside them.
// Burst durations of zero are widened to pad on each side so the in-burst
// rate stays finite.
func (l Log) RateRatio(bursts []Burst, pad float64) (float64, error) {
	if len(l.times) < 2 {
		return 0, fmt.Errorf("faultlog: need at least two failures")
	}
	if len(bursts) == 0 {
		return 1, nil
	}
	if pad <= 0 {
		return 0, fmt.Errorf("faultlog: pad %v must be positive", pad)
	}
	inTime, inCount := 0.0, 0
	for _, b := range bursts {
		inTime += b.Duration() + 2*pad
		inCount += b.Count
	}
	total := l.Span()
	outTime := total - inTime
	outCount := l.Len() - inCount
	if outTime <= 0 || outCount <= 0 {
		return 0, fmt.Errorf("faultlog: bursts cover the whole log")
	}
	inRate := float64(inCount) / inTime
	outRate := float64(outCount) / outTime
	return inRate / outRate, nil
}
