package faultlog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/rng"
)

func TestConstructionAndAccessors(t *testing.T) {
	l := New([]float64{3, 1, 2})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	ts := l.Times()
	if ts[0] != 1 || ts[1] != 2 || ts[2] != 3 {
		t.Fatalf("not sorted: %v", ts)
	}
	ts[0] = 99 // must not alias internal state
	if l.Times()[0] != 1 {
		t.Fatal("Times aliases internal slice")
	}
	if l.Span() != 2 {
		t.Fatalf("span = %v", l.Span())
	}
	gaps := l.InterArrivals()
	if len(gaps) != 2 || gaps[0] != 1 || gaps[1] != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestFromInterArrivalsRoundTrip(t *testing.T) {
	gaps := []float64{0.5, 1.5, 2.0}
	l := FromInterArrivals(gaps)
	// The first gap anchors the first failure instant; the round trip
	// recovers the remaining gaps.
	back := l.InterArrivals()
	if len(back) != len(gaps)-1 {
		t.Fatalf("round trip length %d, want %d", len(back), len(gaps)-1)
	}
	for i, want := range gaps[1:] {
		if math.Abs(back[i]-want) > 1e-12 {
			t.Fatalf("round trip: %v vs %v", back, gaps[1:])
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	var l Log
	if l.Span() != 0 || l.InterArrivals() != nil {
		t.Fatal("empty log accessors wrong")
	}
	if _, err := l.MLEExponentialMean(); err == nil {
		t.Error("MLE on empty log accepted")
	}
	if _, err := New([]float64{1, 2}).CoefficientOfVariation(); err == nil {
		t.Error("CoV on two failures accepted")
	}
	if _, err := New([]float64{1, 2, 3}).IndexOfDispersion(0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New([]float64{1, 1.1}).IndexOfDispersion(10); err == nil {
		t.Error("window longer than span accepted")
	}
}

func TestMLERecoversPoissonRate(t *testing.T) {
	src := rng.New(3)
	d := rng.Exponential{MeanValue: 2.5}
	gaps := make([]float64, 20000)
	for i := range gaps {
		gaps[i] = d.Sample(src)
	}
	l := FromInterArrivals(gaps)
	mean, err := l.MLEExponentialMean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2.5)/2.5 > 0.03 {
		t.Fatalf("MLE mean = %v, want ~2.5", mean)
	}
	cov, err := l.CoefficientOfVariation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-1) > 0.05 {
		t.Fatalf("Poisson CoV = %v, want ~1", cov)
	}
	iod, err := l.IndexOfDispersion(25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iod-1) > 0.15 {
		t.Fatalf("Poisson index of dispersion = %v, want ~1", iod)
	}
}

func TestBurstyLogIsDetected(t *testing.T) {
	// Sparse exponential background with clusters of 5 failures 0.01
	// apart every tenth arrival.
	src := rng.New(77)
	bg := rng.Exponential{MeanValue: 10}
	var times []float64
	tt := 0.0
	for i := 0; i < 50; i++ {
		tt += bg.Sample(src)
		times = append(times, tt)
		if i%10 == 0 {
			for j := 0; j < 4; j++ {
				tt += 0.01
				times = append(times, tt)
			}
		}
	}
	l := New(times)
	cov, err := l.CoefficientOfVariation()
	if err != nil {
		t.Fatal(err)
	}
	if cov <= 1.2 {
		t.Fatalf("bursty CoV = %v, want clearly above 1", cov)
	}
	bursts := l.DetectBursts(0.1, 3)
	if len(bursts) != 5 {
		t.Fatalf("detected %d bursts, want 5", len(bursts))
	}
	for _, b := range bursts {
		if b.Count != 5 {
			t.Fatalf("burst count = %d, want 5", b.Count)
		}
		if b.Duration() > 0.05 {
			t.Fatalf("burst duration = %v", b.Duration())
		}
	}
	ratio, err := l.RateRatio(bursts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 50 {
		t.Fatalf("rate ratio = %v, want ≫ 1", ratio)
	}
}

func TestDetectBurstsEdgeCases(t *testing.T) {
	if b := New(nil).DetectBursts(1, 2); b != nil {
		t.Fatal("bursts on empty log")
	}
	if b := New([]float64{1, 2, 3}).DetectBursts(-1, 2); b != nil {
		t.Fatal("negative gap accepted")
	}
	if b := New([]float64{1, 2, 3}).DetectBursts(10, 1); b != nil {
		t.Fatal("minCount 1 accepted")
	}
	// Entire log one burst.
	b := New([]float64{1, 1.1, 1.2}).DetectBursts(0.5, 2)
	if len(b) != 1 || b[0].Count != 3 {
		t.Fatalf("whole-log burst wrong: %+v", b)
	}
	if _, err := New([]float64{1, 1.1, 1.2}).RateRatio(b, 1); err == nil {
		t.Fatal("burst covering whole log should error in RateRatio")
	}
}

func TestRateRatioNoBursts(t *testing.T) {
	l := New([]float64{1, 2, 3})
	ratio, err := l.RateRatio(nil, 0.1)
	if err != nil || ratio != 1 {
		t.Fatalf("no-burst ratio = %v, %v", ratio, err)
	}
	if _, err := l.RateRatio([]Burst{{Start: 1, End: 1.1, Count: 2}}, 0); err == nil {
		t.Fatal("zero pad accepted")
	}
}

// TestRoundTripWithModel closes the loop: traces from the checkpointing
// model with correlated-failure windows must look bursty to the analyzer,
// and traces without them must look Poisson-like.
func TestRoundTripWithModel(t *testing.T) {
	collect := func(cfg cluster.Config, seed uint64, horizon float64) Log {
		in, err := model.New(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		in.SetTrace(func(tm float64, activity string, _ map[string]int) {
			if activity == "comp_failure" || activity == "recovery_failure" {
				times = append(times, tm)
			}
		}, false)
		in.Advance(horizon)
		return New(times)
	}

	base := cluster.Default()
	base.MTTFPerNode = cluster.Years(3)

	indep := collect(base, 50, 4000)
	covI, err := indep.CoefficientOfVariation()
	if err != nil {
		t.Fatal(err)
	}

	corr := base
	corr.ProbCorrelated = 0.3
	corr.CorrelatedFactor = 800
	bursty := collect(corr, 50, 4000)
	covC, err := bursty.CoefficientOfVariation()
	if err != nil {
		t.Fatal(err)
	}
	if covC <= covI {
		t.Fatalf("correlated trace CoV %v not above independent %v", covC, covI)
	}

	// The analyzer's burst windows recover an elevated in-burst rate.
	bursts := bursty.DetectBursts(cluster.Minutes(3), 3)
	if len(bursts) == 0 {
		t.Fatal("no bursts detected in correlated trace")
	}
	ratio, err := bursty.RateRatio(bursts, cluster.Minutes(1))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5 {
		t.Fatalf("in-burst rate ratio = %v, want clearly elevated", ratio)
	}

	// The MTTF estimate from the independent trace recovers the
	// configured system rate (1/(nλ)) within ~10%.
	mean, err := indep.MLEExponentialMean()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / base.ComputeFailureRate()
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("estimated MTBF %v vs configured %v", mean, want)
	}
}

// TestMLEProperty: the MLE of merged logs is a weighted mean of gaps.
func TestMLEProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		src := rng.New(seed)
		gaps := make([]float64, n)
		sum := 0.0
		for i := range gaps {
			gaps[i] = src.Float64()*10 + 0.001
			sum += gaps[i]
		}
		l := FromInterArrivals(gaps)
		mean, err := l.MLEExponentialMean()
		// The first gap (time zero to the first failure) is not an
		// inter-arrival of the log, so the MLE covers gaps[1:].
		want := (sum - gaps[0]) / float64(n-1)
		return err == nil && math.Abs(mean-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
