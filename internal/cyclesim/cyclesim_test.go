package cyclesim

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// validated returns a base config inside the cyclesim envelope.
func validated() cluster.Config {
	cfg := cluster.Default()
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	return cfg
}

func TestNewRejectsUnsupported(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"app io", func(c *cluster.Config) { c.ComputeFraction = 0.95 }},
		{"io failures", func(c *cluster.Config) { c.NoIOFailures = false }},
		{"correlated", func(c *cluster.Config) { c.ProbCorrelated = 0.1; c.CorrelatedFactor = 400 }},
		{"blocking write", func(c *cluster.Config) { c.BlockingCheckpointWrite = true }},
		{"invalid", func(c *cluster.Config) { c.Processors = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := validated()
			c.mut(&cfg)
			if _, err := New(cfg, 1); err == nil {
				t.Fatal("unsupported config accepted")
			}
		})
	}
}

func TestRunWindowValidation(t *testing.T) {
	s, err := New(validated(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSteadyState(-1, 10); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := s.RunSteadyState(0, 0); err == nil {
		t.Error("zero measure accepted")
	}
}

func TestDeterministicInSeed(t *testing.T) {
	cfg := validated()
	run := func(seed uint64) Result {
		s, err := New(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunSteadyState(200, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(5), run(5)
	if a.UsefulWorkFraction != b.UsefulWorkFraction || a.Counters != b.Counters {
		t.Fatal("same seed diverged")
	}
	if c := run(6); c.UsefulWorkFraction == a.UsefulWorkFraction {
		t.Fatal("different seeds identical")
	}
}

func TestFailureFreeOverhead(t *testing.T) {
	cfg := validated()
	cfg.MTTFPerNode = cluster.Years(1e9)
	s, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunSteadyState(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	interval := cfg.CheckpointInterval
	want := interval / (interval + cfg.MTTQ + cfg.CheckpointDumpTime())
	if math.Abs(r.UsefulWorkFraction-want) > 0.002 {
		t.Fatalf("failure-free fraction %v, want ≈%v", r.UsefulWorkFraction, want)
	}
	if r.Counters.ComputeFailures != 0 || r.Counters.Reboots != 0 {
		t.Fatalf("phantom failures: %+v", r.Counters)
	}
	if r.Counters.CheckpointsDumped == 0 ||
		r.Counters.CheckpointsWritten > r.Counters.CheckpointsDumped {
		t.Fatalf("checkpoint counters wrong: %+v", r.Counters)
	}
}

func TestTimeoutAbortsEverything(t *testing.T) {
	cfg := validated()
	cfg.MTTFPerNode = cluster.Years(1e9)
	cfg.Coordination = cluster.CoordMaxOfN
	cfg.Timeout = cluster.Seconds(20) // E[Y] ≈ 117 s at 64K procs
	s, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunSteadyState(50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.CheckpointAborts == 0 {
		t.Fatal("no aborts with suicidal timeout")
	}
	if r.Counters.CheckpointsDumped > r.Counters.CheckpointAborts/10 {
		t.Fatalf("expected nearly all aborts: %+v", r.Counters)
	}
}

func TestRebootPath(t *testing.T) {
	cfg := validated()
	cfg.MTTFPerNode = cluster.Years(0.125)
	cfg.SevereFailureThreshold = 2
	s, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunSteadyState(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Reboots == 0 {
		t.Fatalf("no reboots on stressed system with threshold 2: %+v", r.Counters)
	}
	if r.UsefulWorkFraction <= 0 || r.UsefulWorkFraction >= 1 {
		t.Fatalf("fraction = %v", r.UsefulWorkFraction)
	}
}

func TestPermanentFailuresCounted(t *testing.T) {
	cfg := validated()
	cfg.ProbPermanentFailure = 0.5
	cfg.ReconfigurationTime = cluster.Minutes(30)
	s, err := New(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunSteadyState(200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.PermanentFailures == 0 {
		t.Fatal("no permanent failures at p=0.5")
	}
	ratio := float64(r.Counters.PermanentFailures) / float64(r.Counters.ComputeFailures)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("permanent ratio = %v", ratio)
	}
}

func TestStragglersSlowCoordination(t *testing.T) {
	base := validated()
	base.MTTFPerNode = cluster.Years(1e9)
	base.Coordination = cluster.CoordMaxOfN

	slow := base
	slow.StragglerFraction = 0.01
	slow.StragglerMTTQMultiplier = 20

	run := func(cfg cluster.Config) float64 {
		s, err := New(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunSteadyState(50, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return r.UsefulWorkFraction
	}
	if fS, fB := run(slow), run(base); fS >= fB {
		t.Fatalf("stragglers did not slow coordination: %v vs %v", fS, fB)
	}
}
