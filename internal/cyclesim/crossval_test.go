package cyclesim

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestCrossValidationAgainstSAN is the repository's strongest correctness
// check: the SAN executor (internal/san + internal/model) and this
// independent renewal-cycle implementation must produce statistically
// indistinguishable useful-work fractions on every configuration inside
// the shared envelope. The two implementations share no engine code — only
// the configuration arithmetic and the distributions.
func TestCrossValidationAgainstSAN(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"base 64K", func(c *cluster.Config) {}},
		{"128K knee", func(c *cluster.Config) { c.Processors = 128 * 1024 }},
		{"short MTTF", func(c *cluster.Config) { c.MTTFPerNode = cluster.Years(0.5) }},
		{"long interval", func(c *cluster.Config) { c.CheckpointInterval = cluster.Minutes(120) }},
		{"max-of-n coordination", func(c *cluster.Config) {
			c.Coordination = cluster.CoordMaxOfN
			c.MTTFPerNode = cluster.Years(3)
		}},
		{"timeout 100s", func(c *cluster.Config) {
			c.Coordination = cluster.CoordMaxOfN
			c.MTTFPerNode = cluster.Years(3)
			c.Timeout = cluster.Seconds(100)
		}},
		{"no buffered recovery", func(c *cluster.Config) { c.NoBufferedRecovery = true }},
		{"permanent failures", func(c *cluster.Config) {
			c.ProbPermanentFailure = 0.3
			c.ReconfigurationTime = cluster.Minutes(20)
		}},
		{"generic correlated", func(c *cluster.Config) {
			c.MTTFPerNode = cluster.Years(3)
			c.CorrelatedFactor = 400
			c.GenericCorrelatedCoefficient = 0.0025
		}},
		{"stragglers", func(c *cluster.Config) {
			c.Coordination = cluster.CoordMaxOfN
			c.MTTFPerNode = cluster.Years(3)
			c.StragglerFraction = 0.01
			c.StragglerMTTQMultiplier = 10
		}},
	}

	const (
		reps    = 4
		warmup  = 300
		measure = 2500
	)
	for i, c := range cases {
		c := c
		i := i
		t.Run(c.name, func(t *testing.T) {
			cfg := validated()
			c.mut(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			root := rng.New(uint64(9000 + i))
			var san, cyc stats.Accumulator
			for r := 0; r < reps; r++ {
				seedA, seedB := root.Uint64(), root.Uint64()
				in, err := model.New(cfg, seedA)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := in.RunSteadyState(warmup, measure)
				if err != nil {
					t.Fatal(err)
				}
				san.Add(ms.UsefulWorkFraction)

				cs, err := New(cfg, seedB)
				if err != nil {
					t.Fatal(err)
				}
				mc, err := cs.RunSteadyState(warmup, measure)
				if err != nil {
					t.Fatal(err)
				}
				cyc.Add(mc.UsefulWorkFraction)
			}
			diff := san.Mean() - cyc.Mean()
			// Two-sample tolerance: three combined standard errors plus
			// a small absolute floor for near-deterministic cases.
			tol := 3*(san.StdErr()+cyc.StdErr()) + 0.01
			if abs(diff) > tol {
				t.Fatalf("engines disagree: SAN %.4f±%.4f vs cycle %.4f±%.4f (diff %.4f > tol %.4f)",
					san.Mean(), san.StdErr(), cyc.Mean(), cyc.StdErr(), diff, tol)
			}
			t.Log(fmt.Sprintf("SAN %.4f vs cycle %.4f (diff %+.4f)", san.Mean(), cyc.Mean(), diff))
		})
	}
}

// TestCrossValidationCounters: event rates (checkpoints, failures) of the
// two engines must agree on the base configuration.
func TestCrossValidationCounters(t *testing.T) {
	cfg := validated()
	in, err := model.New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := in.RunSteadyState(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := New(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := cs.RunSteadyState(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(a, b uint64) float64 { return float64(a) / float64(b) }
	if r := ratio(ms.Counters.ComputeFailures, mc.Counters.ComputeFailures); r < 0.9 || r > 1.1 {
		t.Fatalf("failure counts diverge: SAN %d vs cycle %d", ms.Counters.ComputeFailures, mc.Counters.ComputeFailures)
	}
	if r := ratio(ms.Counters.CheckpointsDumped, mc.Counters.CheckpointsDumped); r < 0.9 || r > 1.1 {
		t.Fatalf("checkpoint counts diverge: SAN %d vs cycle %d", ms.Counters.CheckpointsDumped, mc.Counters.CheckpointsDumped)
	}
	if r := ratio(ms.Counters.RecoveryFailures+1, mc.Counters.RecoveryFailures+1); r < 0.8 || r > 1.25 {
		t.Fatalf("recovery-failure counts diverge: SAN %d vs cycle %d", ms.Counters.RecoveryFailures, mc.Counters.RecoveryFailures)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
