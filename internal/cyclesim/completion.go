package cyclesim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
)

// CompletionTime simulates from a fresh start until the job has
// accumulated `work` hours of useful work and returns the wall-clock time
// that took — the completion-time measure of Kulkarni, Nicola & Trivedi
// [17] that the paper's useful-work reward is modeled on. The simulator is
// single-use afterwards.
//
// maxWall bounds the simulation: if the machine cannot complete the work
// within it (e.g. a pathological configuration that never retains
// progress), an error is returned.
func (s *Simulator) CompletionTime(work, maxWall float64) (float64, error) {
	if work <= 0 {
		return 0, fmt.Errorf("cyclesim: work %v must be positive", work)
	}
	if maxWall <= 0 {
		maxWall = math.Inf(1)
	}
	s.warmup = math.Inf(1) // never mark: completion runs measure nothing
	s.stopTarget = work
	s.run(maxWall)
	if !s.stopped {
		return 0, fmt.Errorf("cyclesim: job (%v h of work) not complete within %v h of wall time", work, maxWall)
	}
	return s.stopTime, nil
}

// Completion summarises the completion-time distribution of a job across
// independent replications.
type Completion struct {
	// Mean is the replication-mean wall-clock completion time with CI.
	Mean stats.Interval
	// Samples holds each replication's completion time, sorted.
	Samples []float64
	// Work is the useful work the job required, in hours.
	Work float64
}

// Quantile returns the q-th empirical quantile of the completion times.
func (c Completion) Quantile(q float64) float64 {
	if len(c.Samples) == 0 {
		return 0
	}
	idx := int(q * float64(len(c.Samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.Samples) {
		idx = len(c.Samples) - 1
	}
	return c.Samples[idx]
}

// Stretch returns the mean slowdown relative to a failure-free,
// checkpoint-free machine: mean completion time / work.
func (c Completion) Stretch() float64 {
	if c.Work == 0 {
		return 0
	}
	return c.Mean.Mean / c.Work
}

// JobCompletion estimates the completion-time distribution of a job
// needing `work` hours of useful work, over the given number of
// replications. The configuration must be inside the cycle engine's
// envelope.
func JobCompletion(cfg cluster.Config, work float64, replications int, seed uint64) (Completion, error) {
	if replications < 1 {
		return Completion{}, fmt.Errorf("cyclesim: replications %d < 1", replications)
	}
	root := rng.New(seed)
	var acc stats.Accumulator
	out := Completion{Work: work, Samples: make([]float64, 0, replications)}
	// Generous wall bound: even a machine retaining 0.1% of its time
	// finishes within work×1000.
	maxWall := work * 1000
	for r := 0; r < replications; r++ {
		s, err := New(cfg, root.Uint64())
		if err != nil {
			return Completion{}, err
		}
		wall, err := s.CompletionTime(work, maxWall)
		if err != nil {
			return Completion{}, err
		}
		acc.Add(wall)
		out.Samples = append(out.Samples, wall)
	}
	sort.Float64s(out.Samples)
	out.Mean = acc.CI(0.95)
	return out, nil
}
