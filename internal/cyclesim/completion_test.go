package cyclesim

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestCompletionFailureFreeMatchesOverhead(t *testing.T) {
	cfg := validated()
	cfg.MTTFPerNode = cluster.Years(1e9)
	s, err := New(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	const work = 500.0
	wall, err := s.CompletionTime(work, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free: wall ≈ work / fraction with fraction ≈ 0.969.
	frac := cfg.CheckpointInterval / (cfg.CheckpointInterval + cfg.MTTQ + cfg.CheckpointDumpTime())
	want := work / frac
	if math.Abs(wall-want)/want > 0.01 {
		t.Fatalf("wall = %v, want ≈ %v", wall, want)
	}
}

func TestCompletionWithFailuresStretches(t *testing.T) {
	cfg := validated() // MTTF 1yr, 64K procs: fraction ≈ 0.65
	c, err := JobCompletion(cfg, 200, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Samples) != 8 {
		t.Fatalf("samples = %d", len(c.Samples))
	}
	// Stretch should be near 1/fraction ≈ 1.5, definitely within (1.2, 2.2).
	if st := c.Stretch(); st < 1.2 || st > 2.2 {
		t.Fatalf("stretch = %v, want ≈ 1.5", st)
	}
	// Quantiles bracket the mean and are ordered.
	if c.Quantile(0) > c.Quantile(0.5) || c.Quantile(0.5) > c.Quantile(1) {
		t.Fatal("quantiles not ordered")
	}
	if c.Mean.Mean < c.Quantile(0) || c.Mean.Mean > c.Quantile(1) {
		t.Fatalf("mean %v outside sample range [%v, %v]", c.Mean.Mean, c.Quantile(0), c.Quantile(1))
	}
}

func TestCompletionValidation(t *testing.T) {
	cfg := validated()
	s, err := New(cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompletionTime(0, 0); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := JobCompletion(cfg, 100, 0, 1); err == nil {
		t.Error("zero replications accepted")
	}
	bad := cluster.Default() // outside envelope
	if _, err := JobCompletion(bad, 100, 2, 1); err == nil {
		t.Error("out-of-envelope config accepted")
	}
}

func TestCompletionWallBound(t *testing.T) {
	cfg := validated()
	s, err := New(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	// A 100h job cannot finish in 10h of wall time.
	if _, err := s.CompletionTime(100, 10); err == nil {
		t.Fatal("impossible wall bound accepted")
	}
}

func TestCompletionEmptyQuantile(t *testing.T) {
	var c Completion
	if c.Quantile(0.5) != 0 || c.Stretch() != 0 {
		t.Fatal("empty completion accessors wrong")
	}
}
