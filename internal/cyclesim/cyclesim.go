// Package cyclesim is an independent second implementation of the paper's
// checkpointing model: a hand-rolled renewal-process simulator that walks
// the checkpoint cycle phase by phase (interval → broadcast → coordination
// → dump → background write) and races each phase against the pooled
// failure process, with two-stage recovery, reboot thresholds and the
// permanent-failure extension.
//
// It shares no engine code with the SAN executor (internal/san +
// internal/model): no places, no activities, no event queue. Statistically
// identical results from both implementations are the repository's
// strongest correctness evidence; see the cross-validation tests.
//
// Scope: the cycle structure assumes a pure-compute application
// (ComputeFraction == 1), no I/O-node failures (NoIOFailures), no
// correlated-failure windows and no blocking checkpoint writes; New rejects
// configurations outside this envelope. All coordination modes, timeouts,
// stragglers, buffered/durable recovery, reboots, generic correlated rate
// inflation and permanent failures are supported.
package cyclesim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/rng"
)

// Counters tallies the discrete events of one trajectory, mirroring the
// SAN model's counters for comparison.
type Counters struct {
	ComputeFailures    uint64
	RecoveryFailures   uint64
	CheckpointsDumped  uint64
	CheckpointsWritten uint64
	CheckpointAborts   uint64
	Reboots            uint64
	PermanentFailures  uint64
}

// Result is the measured outcome of one trajectory.
type Result struct {
	UsefulWorkFraction float64
	TotalUsefulWork    float64
	Counters           Counters
}

// Simulator holds one trajectory's state.
type Simulator struct {
	cfg cluster.Config
	src rng.Source

	coord    rng.Dist
	failMean float64 // mean time between compute-side failures

	t        float64 // current time
	useful   float64 // net useful work (P − L)
	capB     float64 // secured by the buffered checkpoint
	capD     float64 // secured by the durable checkpoint
	buffered bool    // a checkpoint is buffered at the I/O nodes

	ioBusyUntil  float64 // background FS write completion time
	pendingWrite bool    // a dumped checkpoint awaits its FS write
	permanent    bool    // a permanent failure awaits reconfiguration

	warmup       float64
	marked       bool
	usefulAtMark float64

	// Completion-time mode: stop once useful work reaches stopTarget.
	stopTarget float64
	stopped    bool
	stopTime   float64

	counters Counters
}

// New builds a cycle simulator for cfg, rejecting configurations whose
// dynamics fall outside the renewal-cycle structure this implementation
// assumes.
func New(cfg cluster.Config, seed uint64) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cyclesim: %w", err)
	}
	switch {
	case cfg.ComputeFraction != 1:
		return nil, fmt.Errorf("cyclesim: requires a pure-compute application (ComputeFraction=1, got %v)", cfg.ComputeFraction)
	case !cfg.NoIOFailures:
		return nil, fmt.Errorf("cyclesim: requires NoIOFailures (the cycle structure has no I/O-node failure branch)")
	case cfg.ProbCorrelated > 0:
		return nil, fmt.Errorf("cyclesim: correlated-failure windows are not supported")
	case cfg.BlockingCheckpointWrite:
		return nil, fmt.Errorf("cyclesim: blocking checkpoint writes are not supported")
	case cfg.IncrementalFraction > 0:
		return nil, fmt.Errorf("cyclesim: incremental checkpointing is not supported")
	}
	rate := cfg.ComputeFailureRate() + cfg.GenericCorrelatedRate()
	return &Simulator{
		cfg:      cfg,
		src:      rng.New(seed),
		coord:    coordinationDist(cfg),
		failMean: 1 / rate,
	}, nil
}

// coordinationDist mirrors the SAN model's mapping of coordination modes.
func coordinationDist(cfg cluster.Config) rng.Dist {
	switch cfg.Coordination {
	case cluster.CoordNone:
		return rng.Exponential{MeanValue: cfg.MTTQ}
	case cluster.CoordMaxOfN:
		if slow := cfg.StragglerCount(); slow > 0 {
			return rng.MaxOfGroups{Groups: []rng.MaxOfNExponentials{
				{N: cfg.Processors - slow, PerNodeMean: cfg.MTTQ},
				{N: slow, PerNodeMean: cfg.MTTQ * cfg.StragglerMTTQMultiplier},
			}}
		}
		return rng.MaxOfNExponentials{N: cfg.Processors, PerNodeMean: cfg.MTTQ}
	default:
		return rng.Deterministic{Value: cfg.MTTQ}
	}
}

// RunSteadyState simulates warmup+measure hours and reports the metrics of
// the measurement window.
func (s *Simulator) RunSteadyState(warmup, measure float64) (Result, error) {
	if warmup < 0 || measure <= 0 {
		return Result{}, fmt.Errorf("cyclesim: invalid window warmup=%v measure=%v", warmup, measure)
	}
	s.warmup = warmup
	horizon := warmup + measure
	s.run(horizon)
	frac := (s.useful - s.usefulAtMark) / measure
	if frac < 0 {
		frac = 0
	}
	return Result{
		UsefulWorkFraction: frac,
		TotalUsefulWork:    frac * float64(s.cfg.Processors),
		Counters:           s.counters,
	}, nil
}

// run executes the phase loop to the horizon.
func (s *Simulator) run(horizon float64) {
	cfg := s.cfg
	nextFailure := s.t + s.expFail()
	cycleStart := s.t // execution + master sleep begin here

	for s.t < horizon {
		if s.stopped {
			return
		}
		trigger := cycleStart + cfg.CheckpointInterval
		quiesceAt := trigger + cfg.BroadcastOverhead

		// Execution phase: [cycleStart, quiesceAt), racing the failure.
		if nextFailure < quiesceAt {
			if nextFailure >= horizon {
				s.accrue(cycleStart, horizon)
				s.t = horizon
				return
			}
			s.accrue(cycleStart, nextFailure)
			s.t = nextFailure
			s.handleFailure(horizon)
			if s.t >= horizon {
				return
			}
			cycleStart = s.t
			nextFailure = s.t + s.expFail()
			continue
		}
		if quiesceAt >= horizon {
			s.accrue(cycleStart, horizon)
			s.t = horizon
			return
		}
		s.accrue(cycleStart, quiesceAt)
		s.t = quiesceAt

		// Coordination phase (no useful-work accrual while quiesced).
		y := s.coord.Sample(s.src)
		var quiesceEnd float64
		aborted := false
		if cfg.Timeout > 0 && cfg.BroadcastOverhead+y > cfg.Timeout {
			aborted = true
			quiesceEnd = trigger + cfg.Timeout
		} else {
			quiesceEnd = quiesceAt + y
		}
		if done, next := s.raceNoAccrual(&nextFailure, quiesceEnd, horizon); done {
			return
		} else if next {
			cycleStart = s.t
			continue
		}
		s.t = quiesceEnd
		if aborted {
			s.counters.CheckpointAborts++
			s.mark(s.t)
			cycleStart = s.t // execution resumes, master sleeps
			continue
		}

		// Dump phase: waits for the I/O nodes to finish any background
		// write, then streams the checkpoint groups in parallel.
		dumpStart := math.Max(s.t, s.ioBusyUntil)
		dumpEnd := dumpStart + cfg.CheckpointDumpTime()
		if done, next := s.raceNoAccrual(&nextFailure, dumpEnd, horizon); done {
			return
		} else if next {
			cycleStart = s.t
			continue
		}
		s.t = dumpEnd
		s.applyWriteCompletion(s.t)
		s.counters.CheckpointsDumped++
		s.capB = s.useful
		s.buffered = true
		s.pendingWrite = true
		s.ioBusyUntil = dumpEnd + cfg.CheckpointFSWriteTime()
		s.mark(s.t)
		cycleStart = s.t // execution resumes, master sleeps
	}
}

// raceNoAccrual advances through a non-accruing phase ending at phaseEnd,
// handling a failure if it lands first. It returns (done, failed): done
// when the horizon was reached, failed when a failure interrupted the phase
// (the caller restarts its cycle at s.t).
func (s *Simulator) raceNoAccrual(nextFailure *float64, phaseEnd, horizon float64) (bool, bool) {
	if *nextFailure < phaseEnd {
		if *nextFailure >= horizon {
			s.mark(horizon)
			s.t = horizon
			return true, false
		}
		s.t = *nextFailure
		s.handleFailure(horizon)
		if s.t >= horizon {
			return true, false
		}
		*nextFailure = s.t + s.expFail()
		return false, true
	}
	if phaseEnd >= horizon {
		s.mark(horizon)
		s.t = horizon
		return true, false
	}
	s.mark(phaseEnd)
	return false, false
}

// handleFailure applies a compute-subsystem failure at s.t and runs the
// recovery process (stages, recovery failures, reboots) to completion or
// the horizon.
func (s *Simulator) handleFailure(horizon float64) {
	cfg := s.cfg
	s.applyWriteCompletion(s.t)
	s.counters.ComputeFailures++
	if cfg.ProbPermanentFailure > 0 && s.src.Float64() < cfg.ProbPermanentFailure {
		s.counters.PermanentFailures++
		s.permanent = true
	}
	if cfg.NoBufferedRecovery {
		s.capB = s.capD
	}
	s.useful = s.capB

	consecutive := 0
	for {
		if s.t >= horizon {
			s.mark(horizon)
			s.t = horizon
			return
		}
		// Stage 1: the I/O nodes read the durable checkpoint from the
		// file system — skipped while a buffered copy is usable.
		if !s.buffered || cfg.NoBufferedRecovery {
			end := s.t + cfg.CheckpointFSReadTime()
			if failed := s.recoveryStep(&consecutive, end, horizon); failed {
				continue
			}
			if s.t >= horizon {
				return
			}
			s.buffered = true
			s.capB = s.capD
		}
		// Stage 2: compute nodes read from the I/O nodes and
		// reinitialise; permanent failures add the reconfiguration.
		dur := rng.Exponential{MeanValue: cfg.MTTR}.Sample(s.src)
		if s.permanent {
			dur += cfg.ReconfigurationTime
		}
		end := s.t + dur
		if failed := s.recoveryStep(&consecutive, end, horizon); failed {
			continue
		}
		if s.t >= horizon {
			return
		}
		s.permanent = false
		return // successful recovery
	}
}

// recoveryStep runs one recovery stage ending at end, racing it against
// recovery failures and handling the severe-failure reboot. It returns
// true when the stage was interrupted and recovery must restart.
func (s *Simulator) recoveryStep(consecutive *int, end, horizon float64) bool {
	cfg := s.cfg
	rf := s.t + s.expFail()
	if rf >= end {
		if end >= horizon {
			s.mark(horizon)
			s.t = horizon
			return false
		}
		s.mark(end)
		s.t = end
		s.applyWriteCompletion(s.t)
		return false
	}
	if rf >= horizon {
		s.mark(horizon)
		s.t = horizon
		return false
	}
	s.mark(rf)
	s.t = rf
	s.applyWriteCompletion(s.t)
	s.counters.RecoveryFailures++
	*consecutive++
	if *consecutive >= cfg.SevereFailureThreshold {
		s.reboot(horizon)
		*consecutive = 0
	}
	return true
}

// reboot applies the whole-system reboot: the I/O buffers and any pending
// background write are lost, and the machine is down for the reboot time.
func (s *Simulator) reboot(horizon float64) {
	s.counters.Reboots++
	s.pendingWrite = false
	s.buffered = false
	s.capB = s.capD
	s.permanent = false
	end := s.t + s.cfg.RebootTime
	if end >= horizon {
		s.mark(horizon)
		s.t = horizon
		return
	}
	s.mark(end)
	s.t = end
	s.ioBusyUntil = s.t
}

// applyWriteCompletion makes the durable checkpoint catch up when the
// background FS write finished at or before now.
func (s *Simulator) applyWriteCompletion(now float64) {
	if s.pendingWrite && s.ioBusyUntil <= now {
		s.pendingWrite = false
		s.capD = s.capB
		s.counters.CheckpointsWritten++
	}
}

// accrue adds useful work for an execution span [from, to), records the
// warmup-boundary snapshot when the span crosses it, and detects job
// completion in completion-time mode.
func (s *Simulator) accrue(from, to float64) {
	if to <= from {
		return
	}
	if !s.marked && s.warmup <= to {
		boundary := math.Max(s.warmup, from)
		s.usefulAtMark = s.useful + (boundary - from)
		s.marked = true
	}
	if s.stopTarget > 0 && !s.stopped && s.useful+(to-from) >= s.stopTarget {
		s.stopTime = from + (s.stopTarget - s.useful)
		s.stopped = true
		s.useful = s.stopTarget
		return
	}
	s.useful += to - from
}

// mark records the warmup snapshot during non-accruing time.
func (s *Simulator) mark(now float64) {
	if !s.marked && now >= s.warmup {
		s.usefulAtMark = s.useful
		s.marked = true
	}
}

// expFail samples the next compute-side failure gap.
func (s *Simulator) expFail() float64 {
	return rng.Exponential{MeanValue: s.failMean}.Sample(s.src)
}
