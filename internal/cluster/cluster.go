// Package cluster describes the target supercomputer of Section 3 of the
// paper: compute nodes with multiple processors, dedicated I/O nodes shared
// by fixed-size groups of compute nodes, and a parallel file system behind
// them. It derives the transfer latencies (checkpoint dump, background
// file-system write, application I/O) that parameterise the stochastic
// model, mirroring Table 3.
package cluster

import (
	"errors"
	"fmt"
)

// Unit conversion constants. Model time is hours everywhere.
const (
	// SecondsPerHour converts seconds to hours.
	SecondsPerHour = 3600.0
	// HoursPerYear is the paper's MTTF unit (Julian year).
	HoursPerYear = 8766.0
	// MB is one megabyte in bytes.
	MB = 1e6
	// GB is one gigabyte in bytes.
	GB = 1e9
)

// Seconds converts a duration in seconds to model hours.
func Seconds(s float64) float64 { return s / SecondsPerHour }

// Minutes converts a duration in minutes to model hours.
func Minutes(m float64) float64 { return m * 60 / SecondsPerHour }

// Years converts a duration in years to model hours.
func Years(y float64) float64 { return y * HoursPerYear }

// Config is the full parameterisation of the target system, covering every
// row of Table 3 of the paper. All durations are hours, all rates are per
// hour, sizes are bytes and bandwidths bytes/hour.
type Config struct {
	// Processors is the total compute processor count (Table 3: 8K–256K;
	// Figures 4g/h go to 1000K).
	Processors int
	// ProcsPerNode is the number of processors integrated per compute
	// node (paper default 8; 16 and 32 in Figures 4h and 4g).
	ProcsPerNode int
	// ComputePerIONode is the number of compute nodes sharing one I/O
	// node (Table 3: 64, the BlueGene/L ratio).
	ComputePerIONode int

	// MTTFPerNode is the per-node mean time to failure (Table 3:
	// 1–25 years).
	MTTFPerNode float64
	// MTTR is the system-wide mean time for all compute nodes to read
	// the checkpoint and reinitialise (Table 3: 10 minutes).
	MTTR float64
	// MTTRIONodes is the I/O-node restart time (Table 3: 1 minute).
	MTTRIONodes float64
	// RebootTime is the whole-system reboot time after severe failures
	// (Table 3: 1 hour).
	RebootTime float64
	// SevereFailureThreshold is the number of consecutive unsuccessful
	// recoveries that triggers a full system reboot. The paper leaves the
	// value to its technical report; the default of 250 is calibrated so
	// that ordinary correlated-failure bursts (which the paper's own
	// birth–death analysis makes ~25 consecutive recovery failures long
	// at Figure 7's parameters) do not reboot the machine, matching the
	// flat Figure 7 the paper reports (TR-gap decision 2 in DESIGN.md).
	SevereFailureThreshold int

	// CheckpointInterval is the time between checkpoint initiations
	// (Table 3: 15 minutes – 4 hours).
	CheckpointInterval float64
	// MTTQ is the per-node mean time to quiesce (Table 3: 0.5–10 s).
	MTTQ float64
	// Timeout is the master's coordination timeout (Table 3: 20 s–2 min);
	// 0 disables the timeout mechanism.
	Timeout float64
	// BroadcastOverhead is the latency of a master broadcast reaching the
	// compute nodes (Table 3: 1 ms) plus the software transmission
	// overhead (Table 3: 1 ms).
	BroadcastOverhead float64

	// IOComputeCyclePeriod is the period of the application's compute/IO
	// cycle (Table 3: 3 minutes).
	IOComputeCyclePeriod float64
	// ComputeFraction is the fraction of the cycle spent computing
	// (Table 3: 0.88–1.0).
	ComputeFraction float64

	// BandwidthToIONode is the aggregate bandwidth from one group of
	// compute nodes to their I/O node (Table 3: 350 MB/s).
	BandwidthToIONode float64
	// BandwidthIOToFS is the file-system bandwidth per I/O node
	// (Table 3: 1 Gb/s = 125 MB/s).
	BandwidthIOToFS float64
	// CheckpointSizePerNode is the checkpoint state per compute node
	// (Table 3: 256 MB).
	CheckpointSizePerNode float64
	// IODataPerNode is the application data written per node per I/O
	// phase (Table 3: 10 MB).
	IODataPerNode float64

	// Correlated failure parameters (Sections 3.5 and 6).

	// ProbCorrelated is p_e, the probability that a failure triggers an
	// error-propagation correlated-failure window (Table 3: 0–0.2).
	ProbCorrelated float64
	// CorrelatedFactor is r, the failure-rate multiplier inside a
	// correlated window (Table 3: 100–1600).
	CorrelatedFactor float64
	// CorrelatedWindow is the duration of the error burst (Table 3:
	// 3 minutes).
	CorrelatedWindow float64
	// GenericCorrelatedCoefficient is α, the unconditional probability of
	// a generic correlated failure at any time (Figure 8: 0.0025);
	// 0 disables generic correlated failures.
	GenericCorrelatedCoefficient float64

	// Coordination selects how the coordination (quiesce) time of the
	// checkpoint protocol is modeled (Section 7 studies all three).
	Coordination CoordinationMode

	// Failure-model parameters (extension): the paper assumes exponential
	// inter-failure times calibrated on ASCI Q field data (Section 3.4);
	// contemporary field studies (Tan & DeBardeleben 2019) fit Weibull
	// distributions with shape < 1 to the same kind of data, which makes
	// failures burstier at equal MTTF.

	// FailureDist selects the distribution family of failure inter-arrival
	// times for the compute, I/O, and during-recovery failure processes.
	// The zero value (FailureExponential) is the paper's model.
	FailureDist FailureDistribution
	// FailureShape is the Weibull shape parameter k. Required (> 0) when
	// FailureDist is FailureWeibull and must be unset otherwise; the scale
	// is always derived so the configured MTTF is preserved (the mean stays
	// 1/rate regardless of shape). k = 1 degenerates to exponential;
	// k < 1 concentrates failures into bursts.
	FailureShape float64

	// Ablation switches. These are not Table 3 parameters; they disable
	// design features of the modeled system so their value can be
	// quantified (see the ablation benchmarks).

	// BlockingCheckpointWrite makes the checkpoint file-system write a
	// foreground operation: the compute nodes stay stopped until the I/O
	// nodes finish writing the checkpoint to the file system. Footnote 1
	// of the paper notes that current systems may lack the two-step
	// background I/O the model assumes; this switch models those systems.
	BlockingCheckpointWrite bool

	// NoBufferedRecovery disables the use of I/O-node checkpoint buffers
	// during recovery: rollback always targets the last durable (file
	// system) checkpoint and recovery always performs stage 1, even when
	// a newer checkpoint is still buffered at the I/O nodes.
	NoBufferedRecovery bool

	// NoIOFailures removes the I/O-node failure process, isolating the
	// compute-side failure dynamics. Used to quantify the contribution of
	// I/O-node failures and for cross-validating the SAN engine against
	// the independent cycle simulator (internal/cyclesim).
	NoIOFailures bool

	// StragglerFraction is the share of compute processors whose quiesce
	// is slow (heterogeneity the paper's identical-distribution
	// assumption excludes; §7.2 assumes i.i.d. quiesce times). 0 disables.
	StragglerFraction float64
	// StragglerMTTQMultiplier scales the stragglers' mean quiesce time
	// relative to MTTQ. Must be ≥ 1 when StragglerFraction is set.
	StragglerMTTQMultiplier float64

	// Extension parameters: permanent failures, which the paper
	// explicitly defers (§3.4: recovery from a permanent hardware failure
	// "would require system reconfiguration and remapping of the
	// checkpointed states into a new set of nodes (assuming that spare
	// nodes are available)", footnote 2: "the overhead of the system
	// reconfiguration will result in a larger MTTR").

	// ProbPermanentFailure is the probability that a compute-subsystem
	// failure is permanent and needs reconfiguration onto spare nodes
	// before recovery. 0 (the paper's model) disables the extension.
	ProbPermanentFailure float64
	// ReconfigurationTime is the deterministic extra time recovery takes
	// after a permanent failure (spare-node mapping plus checkpoint-state
	// remapping). Must be positive when ProbPermanentFailure is set.
	ReconfigurationTime float64

	// Incremental checkpointing (Agarwal et al. [24], cited by the paper
	// as adaptive incremental checkpointing for large-scale systems):
	// between full checkpoints, only dirty state is dumped.

	// IncrementalFraction is the size of an incremental checkpoint
	// relative to a full one (0 disables incremental checkpointing,
	// which is the paper's model).
	IncrementalFraction float64
	// FullCheckpointEvery makes every k-th checkpoint full; the k−1 in
	// between are incremental. Must be ≥ 2 when IncrementalFraction is
	// set. Recovery always reads the full chain from the file system, so
	// recovery times are unchanged.
	FullCheckpointEvery int

	// Migration-based recovery (Cappello, Casanova & Robert 2009):
	// a failure predictor announces some failures ahead of time and the
	// runtime proactively migrates the endangered processes to spare
	// nodes, averting the rollback entirely at the cost of a short
	// migration pause.

	// FailurePredictionAccuracy is the probability that a compute-
	// subsystem failure is predicted in time to migrate away from it.
	// 0 (the paper's model) disables proactive migration. Failures during
	// recovery are never predicted: there is no healthy state to migrate.
	FailurePredictionAccuracy float64
	// MigrationTime is the application pause while the predicted-failing
	// node's processes move to a spare (no work is lost). Must be
	// positive when FailurePredictionAccuracy is set.
	MigrationTime float64

	// Adaptive checkpoint interval (malleable intervals in the spirit of
	// Raghavendra & Vadhiyar): instead of the fixed Table 3 interval, the
	// master retunes the time to the next checkpoint from the failure
	// rate observed so far, using Young's first-order optimum
	// √(2·overhead·MTBF̂) with MTBF̂ = elapsed time / failures seen.

	// AdaptiveInterval enables the marking-dependent interval controller.
	// Until the first observed failure the configured CheckpointInterval
	// is used as the prior.
	AdaptiveInterval bool
	// AdaptiveIntervalMin clamps the controller from below (hours). Must
	// be positive when AdaptiveInterval is set.
	AdaptiveIntervalMin float64
	// AdaptiveIntervalMax clamps the controller from above (hours). Must
	// be ≥ AdaptiveIntervalMin when AdaptiveInterval is set.
	AdaptiveIntervalMax float64
}

// FailureDistribution enumerates the supported failure inter-arrival
// distribution families.
type FailureDistribution int

const (
	// FailureExponential is the paper's memoryless failure process (the
	// zero value, so existing configurations are unchanged).
	FailureExponential FailureDistribution = iota
	// FailureWeibull draws inter-failure times from a Weibull with the
	// configured shape, scaled to preserve the configured MTTF.
	FailureWeibull
)

func (d FailureDistribution) String() string {
	switch d {
	case FailureExponential:
		return "exponential"
	case FailureWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("FailureDistribution(%d)", int(d))
	}
}

// CoordinationMode enumerates the paper's three treatments of quiesce time.
type CoordinationMode int

const (
	// CoordFixed models the base model's "fixed quiesce time": a
	// deterministic delay of MTTQ (Section 7.1).
	CoordFixed CoordinationMode = iota + 1
	// CoordNone models "no coordination": the system-wide quiesce time is
	// a single exponential with mean MTTQ, regardless of node count
	// (Section 7.2's baseline).
	CoordNone
	// CoordMaxOfN models full coordination: the quiesce time is the max
	// of n i.i.d. exponentials with per-node mean MTTQ (Section 5).
	CoordMaxOfN
)

func (c CoordinationMode) String() string {
	switch c {
	case CoordFixed:
		return "fixed"
	case CoordNone:
		return "none"
	case CoordMaxOfN:
		return "max-of-n"
	default:
		return fmt.Sprintf("CoordinationMode(%d)", int(c))
	}
}

// Default returns the paper's base configuration (Section 7.1 plus the
// Table 3 defaults): 64K processors, 8 per node, MTTF 1 year, MTTR 10
// minutes, 30-minute checkpoint interval, fixed quiesce time, no timeout,
// no correlated failures.
func Default() Config {
	return Config{
		Processors:             64 * 1024,
		ProcsPerNode:           8,
		ComputePerIONode:       64,
		MTTFPerNode:            Years(1),
		MTTR:                   Minutes(10),
		MTTRIONodes:            Minutes(1),
		RebootTime:             1.0,
		SevereFailureThreshold: 250,
		CheckpointInterval:     Minutes(30),
		MTTQ:                   Seconds(10),
		Timeout:                0,
		BroadcastOverhead:      Seconds(0.002),
		IOComputeCyclePeriod:   Minutes(3),
		ComputeFraction:        0.95,
		BandwidthToIONode:      350 * MB * SecondsPerHour,
		BandwidthIOToFS:        (1.0 / 8) * GB * SecondsPerHour,
		CheckpointSizePerNode:  256 * MB,
		IODataPerNode:          10 * MB,
		ProbCorrelated:         0,
		CorrelatedFactor:       0,
		CorrelatedWindow:       Minutes(3),
		Coordination:           CoordFixed,
	}
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Processors <= 0:
		return errors.New("cluster: Processors must be positive")
	case c.ProcsPerNode <= 0:
		return errors.New("cluster: ProcsPerNode must be positive")
	case c.Processors%c.ProcsPerNode != 0:
		return fmt.Errorf("cluster: Processors (%d) not divisible by ProcsPerNode (%d)", c.Processors, c.ProcsPerNode)
	case c.ComputePerIONode <= 0:
		return errors.New("cluster: ComputePerIONode must be positive")
	case c.MTTFPerNode <= 0:
		return errors.New("cluster: MTTFPerNode must be positive")
	case c.MTTR <= 0:
		return errors.New("cluster: MTTR must be positive")
	case c.MTTRIONodes <= 0:
		return errors.New("cluster: MTTRIONodes must be positive")
	case c.RebootTime <= 0:
		return errors.New("cluster: RebootTime must be positive")
	case c.SevereFailureThreshold <= 0:
		return errors.New("cluster: SevereFailureThreshold must be positive")
	case c.CheckpointInterval <= 0:
		return errors.New("cluster: CheckpointInterval must be positive")
	case c.MTTQ < 0:
		return errors.New("cluster: MTTQ must be non-negative")
	case c.Timeout < 0:
		return errors.New("cluster: Timeout must be non-negative")
	case c.IOComputeCyclePeriod <= 0:
		return errors.New("cluster: IOComputeCyclePeriod must be positive")
	case c.ComputeFraction <= 0 || c.ComputeFraction > 1:
		return fmt.Errorf("cluster: ComputeFraction %v outside (0,1]", c.ComputeFraction)
	case c.BandwidthToIONode <= 0 || c.BandwidthIOToFS <= 0:
		return errors.New("cluster: bandwidths must be positive")
	case c.CheckpointSizePerNode <= 0:
		return errors.New("cluster: CheckpointSizePerNode must be positive")
	case c.IODataPerNode < 0:
		return errors.New("cluster: IODataPerNode must be non-negative")
	case c.ProbCorrelated < 0 || c.ProbCorrelated > 1:
		return fmt.Errorf("cluster: ProbCorrelated %v outside [0,1]", c.ProbCorrelated)
	case c.ProbCorrelated > 0 && c.CorrelatedFactor <= 0:
		return errors.New("cluster: ProbCorrelated set but CorrelatedFactor is not positive")
	case c.GenericCorrelatedCoefficient < 0 || c.GenericCorrelatedCoefficient > 1:
		return fmt.Errorf("cluster: GenericCorrelatedCoefficient %v outside [0,1]", c.GenericCorrelatedCoefficient)
	case c.GenericCorrelatedCoefficient > 0 && c.CorrelatedFactor <= 0:
		return errors.New("cluster: GenericCorrelatedCoefficient set but CorrelatedFactor is not positive")
	case c.Coordination < CoordFixed || c.Coordination > CoordMaxOfN:
		return fmt.Errorf("cluster: invalid Coordination %d", int(c.Coordination))
	case c.ProbPermanentFailure < 0 || c.ProbPermanentFailure > 1:
		return fmt.Errorf("cluster: ProbPermanentFailure %v outside [0,1]", c.ProbPermanentFailure)
	case c.ProbPermanentFailure > 0 && c.ReconfigurationTime <= 0:
		return errors.New("cluster: ProbPermanentFailure set but ReconfigurationTime is not positive")
	case c.StragglerFraction < 0 || c.StragglerFraction > 1:
		return fmt.Errorf("cluster: StragglerFraction %v outside [0,1]", c.StragglerFraction)
	case c.StragglerFraction > 0 && c.StragglerMTTQMultiplier < 1:
		return errors.New("cluster: StragglerFraction set but StragglerMTTQMultiplier is below 1")
	case c.IncrementalFraction < 0 || c.IncrementalFraction >= 1:
		return fmt.Errorf("cluster: IncrementalFraction %v outside [0,1)", c.IncrementalFraction)
	case c.IncrementalFraction > 0 && c.FullCheckpointEvery < 2:
		return errors.New("cluster: IncrementalFraction set but FullCheckpointEvery is below 2")
	case c.FailureDist < FailureExponential || c.FailureDist > FailureWeibull:
		return fmt.Errorf("cluster: invalid FailureDist %d", int(c.FailureDist))
	case c.FailureDist == FailureWeibull && c.FailureShape <= 0:
		return errors.New("cluster: FailureDist weibull requires a positive FailureShape")
	case c.FailureDist == FailureExponential && c.FailureShape != 0:
		return errors.New("cluster: FailureShape set but FailureDist is exponential")
	case c.FailurePredictionAccuracy < 0 || c.FailurePredictionAccuracy > 1:
		return fmt.Errorf("cluster: FailurePredictionAccuracy %v outside [0,1]", c.FailurePredictionAccuracy)
	case c.FailurePredictionAccuracy > 0 && c.MigrationTime <= 0:
		return errors.New("cluster: FailurePredictionAccuracy set but MigrationTime is not positive")
	case c.FailurePredictionAccuracy == 0 && c.MigrationTime != 0:
		return errors.New("cluster: MigrationTime set but FailurePredictionAccuracy is zero")
	case c.AdaptiveInterval && c.AdaptiveIntervalMin <= 0:
		return errors.New("cluster: AdaptiveInterval requires a positive AdaptiveIntervalMin")
	case c.AdaptiveInterval && c.AdaptiveIntervalMax < c.AdaptiveIntervalMin:
		return fmt.Errorf("cluster: AdaptiveIntervalMax %v below AdaptiveIntervalMin %v",
			c.AdaptiveIntervalMax, c.AdaptiveIntervalMin)
	case !c.AdaptiveInterval && (c.AdaptiveIntervalMin != 0 || c.AdaptiveIntervalMax != 0):
		return errors.New("cluster: adaptive-interval bounds set but AdaptiveInterval is false")
	}
	return nil
}

// StragglerCount returns the number of slow-quiescing processors.
func (c Config) StragglerCount() int {
	return int(c.StragglerFraction * float64(c.Processors))
}

// Nodes returns the number of compute nodes.
func (c Config) Nodes() int { return c.Processors / c.ProcsPerNode }

// IONodes returns the number of I/O nodes (at least one).
func (c Config) IONodes() int {
	n := (c.Nodes() + c.ComputePerIONode - 1) / c.ComputePerIONode
	if n < 1 {
		n = 1
	}
	return n
}

// NodeFailureRate is the per-node failure rate λ = 1/MTTF. The node failure
// rate equals the processor failure rate times processors per node
// (Section 3.4); MTTFPerNode already encodes that product.
func (c Config) NodeFailureRate() float64 { return 1 / c.MTTFPerNode }

// ComputeFailureRate is the aggregate independent failure rate of all
// compute nodes.
func (c Config) ComputeFailureRate() float64 {
	return float64(c.Nodes()) * c.NodeFailureRate()
}

// IOFailureRate is the aggregate independent failure rate of all I/O nodes.
// I/O nodes are nodes and share the per-node MTTF (TR-gap decision 3).
func (c Config) IOFailureRate() float64 {
	return float64(c.IONodes()) * c.NodeFailureRate()
}

// GenericCorrelatedRate is the additional system-wide failure rate due to
// generic correlated failures, αrnλ, so that the total rate is nλ(1+αr)
// as in Section 6 (λs = λsi + λsc).
func (c Config) GenericCorrelatedRate() float64 {
	return c.GenericCorrelatedCoefficient * c.CorrelatedFactor * c.ComputeFailureRate()
}

// CheckpointDumpTime is the time for a group of compute nodes to dump their
// checkpoints to the shared I/O node: group size × per-node checkpoint size
// over the shared link (≈ 46.8 s for the Table 3 values). All groups
// proceed in parallel, so this is also the system-wide dump time.
func (c Config) CheckpointDumpTime() float64 {
	return float64(c.ComputePerIONode) * c.CheckpointSizePerNode / c.BandwidthToIONode
}

// CheckpointFSWriteTime is the background time for one I/O node to write
// its buffered group checkpoint to the file system (≈ 131 s for Table 3).
func (c Config) CheckpointFSWriteTime() float64 {
	return float64(c.ComputePerIONode) * c.CheckpointSizePerNode / c.BandwidthIOToFS
}

// CheckpointFSReadTime is the recovery stage-1 time: the I/O nodes read the
// last checkpoint back from the file system (same transfer size as the
// write).
func (c Config) CheckpointFSReadTime() float64 { return c.CheckpointFSWriteTime() }

// AppIOForegroundTime is the duration of the application's foreground I/O
// phase, (1-f)·period (Section 3.3 / Table 3). Compute nodes cannot quiesce
// during this phase (non-preemptive I/O).
func (c Config) AppIOForegroundTime() float64 {
	return (1 - c.ComputeFraction) * c.IOComputeCyclePeriod
}

// AppComputeTime is the compute phase of the application cycle, f·period.
func (c Config) AppComputeTime() float64 {
	return c.ComputeFraction * c.IOComputeCyclePeriod
}

// AppIOBackgroundWriteTime is the I/O nodes' background write of one I/O
// phase's application data to the file system (≈ 5.1 s for Table 3).
func (c Config) AppIOBackgroundWriteTime() float64 {
	return float64(c.ComputePerIONode) * c.IODataPerNode / c.BandwidthIOToFS
}

// BlueGeneL returns a configuration shaped like the IBM BlueGene/L system
// the paper describes in Section 3.1: 64K dual-processor compute nodes
// (128K processors), 1024 I/O nodes (64 compute nodes each), 350 MB/s
// group links and 1 Gb/s file-system links — the hardware whose field data
// populates Table 3.
func BlueGeneL() Config {
	c := Default()
	c.ProcsPerNode = 2
	c.Processors = 65536 * 2
	return c
}

// ASCIQ returns a configuration shaped like the ASCI Q system the paper
// cites for its failure data (Section 3.4: per-node MTTF of 1 year, via
// Elnozahy et al. [11]): 2048 four-processor nodes.
func ASCIQ() Config {
	c := Default()
	c.ProcsPerNode = 4
	c.Processors = 2048 * 4
	c.MTTFPerNode = Years(1)
	return c
}
