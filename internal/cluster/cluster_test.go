package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestUnitConversions(t *testing.T) {
	if Seconds(3600) != 1 {
		t.Error("Seconds(3600) != 1h")
	}
	if Minutes(30) != 0.5 {
		t.Error("Minutes(30) != 0.5h")
	}
	if Years(1) != 8766 {
		t.Error("Years(1) != 8766h")
	}
}

// TestTable3Defaults pins the default configuration to Table 3 of the
// paper (experiment index entry "Table 3").
func TestTable3Defaults(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"processors", float64(c.Processors), 65536},
		{"procs/node", float64(c.ProcsPerNode), 8},
		{"compute nodes per I/O node", float64(c.ComputePerIONode), 64},
		{"MTTF per node (h)", c.MTTFPerNode, 8766},
		{"MTTR (h)", c.MTTR, Minutes(10)},
		{"MTTR I/O (h)", c.MTTRIONodes, Minutes(1)},
		{"reboot (h)", c.RebootTime, 1},
		{"interval (h)", c.CheckpointInterval, 0.5},
		{"MTTQ (h)", c.MTTQ, Seconds(10)},
		{"cycle period (h)", c.IOComputeCyclePeriod, Minutes(3)},
		{"correlated window (h)", c.CorrelatedWindow, Minutes(3)},
		{"checkpoint size (B)", c.CheckpointSizePerNode, 256e6},
		{"I/O data per node (B)", c.IODataPerNode, 10e6},
	}
	for _, ck := range checks {
		if math.Abs(ck.got-ck.want) > 1e-9*math.Max(1, math.Abs(ck.want)) {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	if c.ComputeFraction < 0.88 || c.ComputeFraction > 1.0 {
		t.Errorf("compute fraction %v outside Table 3 range [0.88,1.0]", c.ComputeFraction)
	}
}

func TestDerivedCounts(t *testing.T) {
	c := Default()
	if c.Nodes() != 8192 {
		t.Errorf("nodes = %d, want 8192", c.Nodes())
	}
	if c.IONodes() != 128 {
		t.Errorf("ionodes = %d, want 128", c.IONodes())
	}
	// BG/L-like scaling: 64K nodes → 1024 I/O nodes (paper Section 3.1).
	c.Processors = 64 * 1024 * 8
	if c.Nodes() != 65536 || c.IONodes() != 1024 {
		t.Errorf("BG/L scale: nodes=%d ionodes=%d", c.Nodes(), c.IONodes())
	}
	// Small systems still get one I/O node.
	c.Processors = 8
	c.ProcsPerNode = 8
	if c.IONodes() != 1 {
		t.Errorf("1-node system ionodes = %d, want 1", c.IONodes())
	}
}

func TestFailureRates(t *testing.T) {
	c := Default()
	// 8192 nodes at MTTF 1 year → ~0.934 failures/hour.
	if got, want := c.ComputeFailureRate(), 8192.0/8766.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("compute failure rate = %v, want %v", got, want)
	}
	if got, want := c.IOFailureRate(), 128.0/8766.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("io failure rate = %v, want %v", got, want)
	}
	if got, want := c.NodeFailureRate(), 1/8766.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("node failure rate = %v, want %v", got, want)
	}
}

// TestGenericCorrelatedRates pins the Section 6 identity λs = nλ(1+αr):
// with r=400 and α=0.0025 the system failure rate doubles (experiment
// index entry "Table 2" / Figure 8 parameters).
func TestGenericCorrelatedRates(t *testing.T) {
	c := Default()
	c.CorrelatedFactor = 400
	c.GenericCorrelatedCoefficient = 0.0025
	indep := c.ComputeFailureRate()
	corr := c.GenericCorrelatedRate()
	if math.Abs(corr-indep)/indep > 1e-12 {
		t.Fatalf("correlated rate %v should equal independent rate %v (doubling)", corr, indep)
	}
}

func TestTransferTimes(t *testing.T) {
	c := Default()
	// 64 × 256 MB over 350 MB/s ≈ 46.8 s.
	if got, want := c.CheckpointDumpTime()*SecondsPerHour, 64*256.0/350.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("dump time = %v s, want %v s", got, want)
	}
	// 64 × 256 MB over 125 MB/s ≈ 131 s.
	if got, want := c.CheckpointFSWriteTime()*SecondsPerHour, 64*256.0/125.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("FS write time = %v s, want %v s", got, want)
	}
	if c.CheckpointFSReadTime() != c.CheckpointFSWriteTime() {
		t.Error("FS read time should equal write time")
	}
	// 64 × 10 MB over 125 MB/s ≈ 5.12 s.
	if got, want := c.AppIOBackgroundWriteTime()*SecondsPerHour, 64*10.0/125.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("app background write = %v s, want %v s", got, want)
	}
}

func TestAppPhaseSplit(t *testing.T) {
	c := Default()
	c.ComputeFraction = 0.9
	sum := c.AppComputeTime() + c.AppIOForegroundTime()
	if math.Abs(sum-c.IOComputeCyclePeriod) > 1e-12 {
		t.Fatalf("phases sum to %v, want %v", sum, c.IOComputeCyclePeriod)
	}
	if math.Abs(c.AppComputeTime()-0.9*c.IOComputeCyclePeriod) > 1e-12 {
		t.Fatal("compute phase wrong")
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero processors", func(c *Config) { c.Processors = 0 }, "Processors"},
		{"zero procs/node", func(c *Config) { c.ProcsPerNode = 0 }, "ProcsPerNode"},
		{"indivisible", func(c *Config) { c.Processors = 100; c.ProcsPerNode = 8 }, "divisible"},
		{"zero group", func(c *Config) { c.ComputePerIONode = 0 }, "ComputePerIONode"},
		{"zero mttf", func(c *Config) { c.MTTFPerNode = 0 }, "MTTF"},
		{"zero mttr", func(c *Config) { c.MTTR = 0 }, "MTTR"},
		{"zero io mttr", func(c *Config) { c.MTTRIONodes = 0 }, "MTTRIONodes"},
		{"zero reboot", func(c *Config) { c.RebootTime = 0 }, "Reboot"},
		{"zero threshold", func(c *Config) { c.SevereFailureThreshold = 0 }, "SevereFailureThreshold"},
		{"zero interval", func(c *Config) { c.CheckpointInterval = 0 }, "CheckpointInterval"},
		{"negative mttq", func(c *Config) { c.MTTQ = -1 }, "MTTQ"},
		{"negative timeout", func(c *Config) { c.Timeout = -1 }, "Timeout"},
		{"zero cycle", func(c *Config) { c.IOComputeCyclePeriod = 0 }, "IOComputeCyclePeriod"},
		{"bad fraction", func(c *Config) { c.ComputeFraction = 1.5 }, "ComputeFraction"},
		{"zero bandwidth", func(c *Config) { c.BandwidthToIONode = 0 }, "bandwidth"},
		{"zero ckpt size", func(c *Config) { c.CheckpointSizePerNode = 0 }, "CheckpointSize"},
		{"negative io data", func(c *Config) { c.IODataPerNode = -1 }, "IOData"},
		{"bad pe", func(c *Config) { c.ProbCorrelated = 2 }, "ProbCorrelated"},
		{"pe without r", func(c *Config) { c.ProbCorrelated = 0.1; c.CorrelatedFactor = 0 }, "CorrelatedFactor"},
		{"bad alpha", func(c *Config) { c.GenericCorrelatedCoefficient = -0.1 }, "GenericCorrelatedCoefficient"},
		{"alpha without r", func(c *Config) { c.GenericCorrelatedCoefficient = 0.1; c.CorrelatedFactor = 0 }, "CorrelatedFactor"},
		{"bad coordination", func(c *Config) { c.Coordination = 0 }, "Coordination"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := Default()
			m.mut(&c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), m.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, m.want)
			}
		})
	}
}

func TestCoordinationModeString(t *testing.T) {
	if CoordFixed.String() != "fixed" || CoordNone.String() != "none" || CoordMaxOfN.String() != "max-of-n" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(CoordinationMode(9).String(), "9") {
		t.Fatal("unknown mode string should include the value")
	}
}

// TestScalingProperty: failure rate scales linearly in node count and
// inversely in MTTF for arbitrary valid configs.
func TestScalingProperty(t *testing.T) {
	f := func(nodesRaw uint16, mttfRaw uint16) bool {
		nodes := int(nodesRaw)%4096 + 1
		mttfYears := float64(mttfRaw%25) + 0.5
		c := Default()
		c.ProcsPerNode = 8
		c.Processors = nodes * 8
		c.MTTFPerNode = Years(mttfYears)
		want := float64(nodes) / Years(mttfYears)
		return math.Abs(c.ComputeFailureRate()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPresets(t *testing.T) {
	bg := BlueGeneL()
	if err := bg.Validate(); err != nil {
		t.Fatalf("BlueGeneL invalid: %v", err)
	}
	if bg.Nodes() != 65536 || bg.IONodes() != 1024 || bg.Processors != 131072 {
		t.Fatalf("BlueGeneL shape wrong: %d nodes, %d ionodes, %d procs",
			bg.Nodes(), bg.IONodes(), bg.Processors)
	}
	q := ASCIQ()
	if err := q.Validate(); err != nil {
		t.Fatalf("ASCIQ invalid: %v", err)
	}
	if q.Nodes() != 2048 || q.Processors != 8192 {
		t.Fatalf("ASCIQ shape wrong: %d nodes, %d procs", q.Nodes(), q.Processors)
	}
	if q.MTTFPerNode != Years(1) {
		t.Fatalf("ASCIQ MTTF = %v", q.MTTFPerNode)
	}
}
