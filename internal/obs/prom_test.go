package obs

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches the two legal non-comment line shapes of the text
// exposition format this package emits: `name value` and
// `name_bucket{le="bound"} value`.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner.events").Add(12)
	r.Gauge("exec.jobs_running").Set(-2)
	r.FloatGauge("runner.ci_half_width").Set(0.0125)
	h := r.Histogram("san.dirty", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 3, 3, 250} {
		h.Observe(x)
	}
	r.Timer("blocks.block_wall_s").Observe(125 * time.Millisecond)

	var sb strings.Builder
	if err := WriteProm(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d not valid exposition format: %q", lines, line)
		}
	}
	for _, want := range []string{
		"# TYPE runner_events counter\nrunner_events 12\n",
		"# TYPE exec_jobs_running gauge\nexec_jobs_running -2\n",
		"runner_ci_half_width 0.0125\n",
		`san_dirty_bucket{le="1"} 1`,
		`san_dirty_bucket{le="10"} 3`,
		`san_dirty_bucket{le="100"} 3`,
		`san_dirty_bucket{le="+Inf"} 4`,
		"san_dirty_sum 256.5\nsan_dirty_count 4\n",
		"# TYPE blocks_block_wall_s histogram",
		`blocks_block_wall_s_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"runner.events":   "runner_events",
		"phase.hours.i/o": "phase_hours_i_o",
		"9lives":          "_9lives",
		"ok_name:sub":     "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record("claim", i, "x")
	}
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Block != i+2 {
			t.Fatalf("event %d is block %d, want %d (oldest-first)", i, ev.Block, i+2)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total %d, want 5", f.Total())
	}
}
