package obs

import (
	"math"
	"sort"
)

// Shard is a per-worker view of a registry: its counters and histograms
// are plain (non-atomic) values owned by one goroutine, so a simulation
// hot loop increments them without synchronization or cache-line sharing.
// Merge folds the accumulated values into the parent registry atomically
// and resets the shard for reuse.
//
// A Shard must not be used from more than one goroutine at a time; Merge
// and Snapshot are part of that single-goroutine contract.
type Shard struct {
	reg      *Registry
	byName   map[string]any
	counters []*LocalCounter
	hists    []*LocalHistogram
}

// NewShard returns an empty shard attached to r.
func (r *Registry) NewShard() *Shard {
	return &Shard{reg: r, byName: make(map[string]any)}
}

// LocalCounter is a shard-owned counter; Inc/Add are plain integer
// operations.
type LocalCounter struct {
	name string
	n    uint64
	dst  *Counter
}

// Inc adds one.
func (c *LocalCounter) Inc() { c.n++ }

// Add adds n.
func (c *LocalCounter) Add(n uint64) { c.n += n }

// Value returns the unmerged local count.
func (c *LocalCounter) Value() uint64 { return c.n }

// LocalHistogram is a shard-owned histogram with the same bucket layout as
// its registry counterpart.
type LocalHistogram struct {
	name   string
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
	dst    *Histogram
}

// Observe records one observation.
func (h *LocalHistogram) Observe(x float64) {
	h.counts[bucketIndex(h.bounds, x)]++
	if h.count == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.count++
	h.sum += x
}

// Count returns the unmerged local observation count.
func (h *LocalHistogram) Count() uint64 { return h.count }

// Snapshot returns the local (unmerged) state as a summary without the
// bucket vectors — the compact per-replication form journal records embed.
// Quantiles are estimated from the local bucket counts before they are
// dropped, so the summary stays a pure function of the observations.
func (h *LocalHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	s.fillQuantiles(h.bounds, h.counts)
	return s
}

// Counter returns the shard-local counter named name, creating it (and its
// registry counterpart) if needed.
func (sh *Shard) Counter(name string) *LocalCounter {
	if m, ok := sh.byName[name]; ok {
		if c, ok := m.(*LocalCounter); ok {
			return c
		}
		panic("obs: shard metric " + name + " is not a counter")
	}
	c := &LocalCounter{name: name, dst: sh.reg.Counter(name)}
	sh.byName[name] = c
	sh.counters = append(sh.counters, c)
	return c
}

// Histogram returns the shard-local histogram named name, creating it (and
// its registry counterpart, with the given bounds) if needed.
func (sh *Shard) Histogram(name string, bounds []float64) *LocalHistogram {
	if m, ok := sh.byName[name]; ok {
		if h, ok := m.(*LocalHistogram); ok {
			return h
		}
		panic("obs: shard metric " + name + " is not a histogram")
	}
	dst := sh.reg.Histogram(name, bounds)
	h := &LocalHistogram{
		name:   name,
		bounds: dst.bounds,
		counts: make([]uint64, len(dst.bounds)+1),
		dst:    dst,
	}
	sh.byName[name] = h
	sh.hists = append(sh.hists, h)
	return h
}

// Merge folds every local value into the parent registry and resets the
// shard to zero, so a reused shard never double-counts.
func (sh *Shard) Merge() {
	for _, c := range sh.counters {
		if c.n > 0 {
			c.dst.Add(c.n)
			c.n = 0
		}
	}
	for _, h := range sh.hists {
		h.dst.observeBatch(h.counts, h.count, h.sum, h.min, h.max)
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.count, h.sum = 0, 0
		h.min, h.max = math.Inf(1), math.Inf(-1)
	}
}

// Snapshot returns the shard's unmerged values keyed by metric name —
// counters as uint64, histograms as summary HistogramSnapshots. The result
// is a pure function of the observations, so journal records built from it
// are deterministic. Call before Merge (which zeroes the shard).
func (sh *Shard) Snapshot() map[string]any {
	out := make(map[string]any, len(sh.byName))
	for _, c := range sh.counters {
		out[c.name] = c.n
	}
	for _, h := range sh.hists {
		out[h.name] = h.Snapshot()
	}
	return out
}

// Names returns the shard's metric names, sorted (for tests and tooling).
func (sh *Shard) Names() []string {
	names := make([]string, 0, len(sh.byName))
	for name := range sh.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
