package obs

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestMergeSnapshotsEqualsCombinedStream is the aggregator's core
// property: splitting one observation stream across k worker registries
// and merging their snapshots must equal observing the combined stream in
// one registry — exactly for counts, bucket vectors, min and max, exactly
// for the interpolated quantiles (they are a pure function of the bucket
// vector plus min/max), and within float re-association error for sums.
func TestMergeSnapshotsEqualsCombinedStream(t *testing.T) {
	bounds := ExpBuckets(1e-3, 10, 7)
	for _, workers := range []int{1, 2, 3, 7} {
		src := rng.New(uint64(1000 + workers))
		combined := NewRegistry()
		regs := make([]*Registry, workers)
		for w := range regs {
			regs[w] = NewRegistry()
		}
		const n = 5000
		for i := 0; i < n; i++ {
			x := math.Exp(src.Float64()*16 - 8) // spans well past both bucket edges
			w := int(src.Uint64() % uint64(workers))
			combined.Histogram("h", bounds).Observe(x)
			regs[w].Histogram("h", bounds).Observe(x)
			combined.Counter("events").Inc()
			regs[w].Counter("events").Inc()
		}
		snaps := make([]Snapshot, workers)
		for w, r := range regs {
			snaps[w] = r.Snapshot()
		}
		merged, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := combined.Snapshot()

		if merged.Counters["events"] != want.Counters["events"] {
			t.Fatalf("workers=%d: counter %d, want %d", workers, merged.Counters["events"], want.Counters["events"])
		}
		mh, wh := merged.Histograms["h"], want.Histograms["h"]
		if mh.Count != wh.Count {
			t.Fatalf("workers=%d: count %d, want %d", workers, mh.Count, wh.Count)
		}
		for i := range wh.Counts {
			if mh.Counts[i] != wh.Counts[i] {
				t.Fatalf("workers=%d: bucket %d = %d, want %d", workers, i, mh.Counts[i], wh.Counts[i])
			}
		}
		if mh.Min != wh.Min || mh.Max != wh.Max {
			t.Fatalf("workers=%d: min/max %g/%g, want %g/%g", workers, mh.Min, mh.Max, wh.Min, wh.Max)
		}
		if d := math.Abs(mh.Sum - wh.Sum); d > 1e-9*math.Abs(wh.Sum) {
			t.Fatalf("workers=%d: sum %g, want %g (Δ %g)", workers, mh.Sum, wh.Sum, d)
		}
		// Identical buckets + min/max ⇒ identical interpolated quantiles.
		for _, q := range [][2]float64{{mh.P50, wh.P50}, {mh.P90, wh.P90}, {mh.P99, wh.P99}} {
			if q[0] != q[1] {
				t.Fatalf("workers=%d: quantile %g, want %g", workers, q[0], q[1])
			}
		}
	}
}

func TestMergeSnapshotsGaugesAndTimers(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	a.FloatGauge("f").Set(0.25)
	a.Timer("t").Observe(1500 * time.Microsecond)
	b.Timer("t").Observe(2500 * time.Microsecond)
	merged, err := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Gauges["g"] != 2 {
		t.Fatalf("gauge last-writer = %d, want 2", merged.Gauges["g"])
	}
	if merged.FloatGauges["f"] != 0.25 {
		t.Fatalf("float gauge = %g", merged.FloatGauges["f"])
	}
	if tm := merged.Timers["t"]; tm.Count != 2 {
		t.Fatalf("timer count = %d, want 2", tm.Count)
	}
}

func TestMergeSnapshotsEmptyAndErrors(t *testing.T) {
	// No inputs, and all-empty inputs, merge to an empty snapshot.
	if s, err := MergeSnapshots(); err != nil || len(s.Counters)+len(s.Histograms) != 0 {
		t.Fatalf("empty merge = %+v, %v", s, err)
	}
	if _, err := MergeSnapshots(Snapshot{}, Snapshot{}); err != nil {
		t.Fatalf("zero-value snapshots: %v", err)
	}

	// Mismatched bucket bounds must be refused.
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", []float64{1, 2}).Observe(1)
	b.Histogram("h", []float64{1, 3}).Observe(1)
	if _, err := MergeSnapshots(a.Snapshot(), b.Snapshot()); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("mismatched bounds merged: %v", err)
	}

	// The compact (bucketless) histogram form cannot be merged soundly.
	compact := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Count: 3, Sum: 1, Min: 0.1, Max: 0.9},
	}}
	if _, err := MergeSnapshots(compact); err == nil || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("compact histogram merged: %v", err)
	}

	// An observation-free histogram merges as a no-op against real data.
	c := NewRegistry()
	c.Histogram("h", []float64{1, 2}) // registered, never observed
	merged, err := MergeSnapshots(a.Snapshot(), c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if h := merged.Histograms["h"]; h.Count != 1 || h.Min != 1 {
		t.Fatalf("empty-histogram merge = %+v", h)
	}
}
