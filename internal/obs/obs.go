// Package obs is the observability layer of the reproduction: a
// lightweight, allocation-conscious metrics registry shared by the
// simulator core (internal/san, internal/des), the execution engine
// (internal/exec), the estimation runner (internal/runner) and the CLIs.
//
// The registry holds four metric kinds — monotonic counters, gauges,
// fixed-bucket histograms and timers (histograms over seconds) — all safe
// for concurrent use through atomics, so a -debug-addr HTTP endpoint can
// read a consistent-enough snapshot while a run is in flight.
//
// Hot paths do not touch the registry directly. A simulation trajectory
// runs on one goroutine, so it records into a Shard: a per-worker view
// whose counters and histograms are plain (non-atomic) values, incremented
// without synchronization and folded into the registry once, when the
// trajectory ends (Shard.Merge). This keeps the deterministic parallel
// pool of internal/exec contention-free: replications never share a cache
// line, and the merged totals are independent of worker count and
// scheduling.
//
// The package also provides the structured JSONL run journal
// (journal.go) and the live debug HTTP server (debug.go).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set assigns the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value.
type FloatGauge struct{ bits atomic.Uint64 }

// Set assigns the gauge. Non-finite values are stored as-is but are
// clamped to 0 in snapshots, because JSON cannot represent them.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations in fixed buckets. Bucket i counts the
// observations x with x ≤ Bounds[i] (and > Bounds[i-1] for i > 0); one
// implicit overflow bucket counts x > Bounds[len-1]. The bucket layout is
// fixed at creation, so observing is lock-free: one atomic add into the
// bucket plus CAS loops for the float sum/min/max.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until the first observation
	maxBits atomic.Uint64 // -Inf until the first observation
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex returns the bucket for x: the first i with x ≤ bounds[i],
// else len(bounds) (overflow). Bucket counts are small and fixed, so a
// linear scan beats binary search on the branch predictor.
func bucketIndex(bounds []float64, x float64) int {
	for i, b := range bounds {
		if x <= b {
			return i
		}
	}
	return len(bounds)
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.counts[bucketIndex(h.bounds, x)].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, x)
	casMin(&h.minBits, x)
	casMax(&h.maxBits, x)
}

// observeBatch folds a pre-aggregated shard histogram in (see Shard.Merge).
func (h *Histogram) observeBatch(counts []uint64, count uint64, sum, min, max float64) {
	for i, n := range counts {
		if n > 0 {
			h.counts[i].Add(n)
		}
	}
	if count == 0 {
		return
	}
	h.count.Add(count)
	casAdd(&h.sumBits, sum)
	casMin(&h.minBits, min)
	casMax(&h.maxBits, max)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Snapshot returns a copy of the histogram state. Min/Max are 0 when the
// histogram is empty, so the snapshot is always JSON-marshalable.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	s.fillQuantiles(h.bounds, s.Counts)
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for
// JSON (journal records, /metricz).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// P50/P90/P99 estimate the quantiles from the bucket counts by linear
	// interpolation within the owning bucket, clamped to [Min, Max]; exact
	// when the distribution is uniform within buckets, and always inside
	// the bucket that truly contains the quantile.
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"` // len(Bounds)+1; last is overflow
}

// fillQuantiles populates P50/P90/P99 from a bucket-count vector (which
// need not be retained in the snapshot itself — the shard form drops it).
func (s *HistogramSnapshot) fillQuantiles(bounds []float64, counts []uint64) {
	if s.Count == 0 {
		return
	}
	s.P50 = bucketQuantile(bounds, counts, s.Count, s.Min, s.Max, 0.50)
	s.P90 = bucketQuantile(bounds, counts, s.Count, s.Min, s.Max, 0.90)
	s.P99 = bucketQuantile(bounds, counts, s.Count, s.Min, s.Max, 0.99)
}

// bucketQuantile estimates the q-quantile of a fixed-bucket histogram: find
// the bucket holding the rank q·total, then interpolate linearly across it.
// The first bucket's lower edge and the overflow bucket's upper edge are
// unknown, so the observed min/max stand in; every estimate is clamped to
// [min, max], which also makes single-observation histograms exact.
func bucketQuantile(bounds []float64, counts []uint64, total uint64, min, max, q float64) float64 {
	rank := q * float64(total)
	cum := 0.0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := min
			if i > 0 && bounds[i-1] > lo {
				lo = bounds[i-1]
			}
			hi := max
			if i < len(bounds) && bounds[i] < hi {
				hi = bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*((rank-cum)/float64(n))
		}
		cum = next
	}
	return max
}

// Mean returns the snapshot's mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Timer is a histogram over durations in seconds.
type Timer struct{ h *Histogram }

// DefaultTimerBuckets spans 100µs to ~15min in decades — wide enough for
// per-event work on the fast end and paper-scale replications on the slow
// end.
var DefaultTimerBuckets = []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Since records the time elapsed since start.
func (t *Timer) Since(start time.Time) { t.Observe(time.Since(start)) }

// Snapshot returns the underlying histogram snapshot (seconds).
func (t *Timer) Snapshot() HistogramSnapshot { return t.h.Snapshot() }

// LinearBuckets returns n ascending bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric handles are get-or-create, so independent
// subsystems share a metric by agreeing on its name. Reusing a name with a
// different kind (or different histogram buckets) panics — it is always a
// programming error, and silently splitting the metric would corrupt both.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the existing metric under name after asserting its kind,
// or nil. The caller holds r.mu.
func lookup[T any](r *Registry, name, kind string) *T {
	m, ok := r.metrics[name]
	if !ok {
		return nil
	}
	t, ok := m.(*T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not a %s", name, m, kind))
	}
	return t
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := lookup[Counter](r, name, "counter"); c != nil {
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := lookup[Gauge](r, name, "gauge"); g != nil {
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// FloatGauge returns the float gauge registered under name, creating it if
// needed.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := lookup[FloatGauge](r, name, "float gauge"); g != nil {
		return g
	}
	g := &FloatGauge{}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds if needed. Requesting an existing
// histogram with different bounds panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := lookup[Histogram](r, name, "histogram"); h != nil {
		if !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with bounds %v (has %v)", name, bounds, h.bounds))
		}
		return h
	}
	h := newHistogram(bounds)
	r.metrics[name] = h
	return h
}

// Timer returns the timer registered under name (buckets are
// DefaultTimerBuckets), creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := lookup[Timer](r, name, "timer"); t != nil {
		return t
	}
	t := &Timer{h: newHistogram(DefaultTimerBuckets)}
	r.metrics[name] = t
	return t
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is a point-in-time copy of a whole registry, shaped for JSON.
type Snapshot struct {
	Counters    map[string]uint64            `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers      map[string]HistogramSnapshot `json:"timers,omitempty"` // seconds
}

// Snapshot copies every metric. Counters and gauges are read atomically;
// histograms may be mid-update, so a snapshot taken during a run is
// consistent per-field, not across fields — fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make(map[string]any, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	r.mu.Unlock()
	s := Snapshot{
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
		Timers:      map[string]HistogramSnapshot{},
	}
	for name, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			s.Counters[name] = m.Value()
		case *Gauge:
			s.Gauges[name] = m.Value()
		case *FloatGauge:
			v := m.Value()
			if math.IsInf(v, 0) || math.IsNaN(v) {
				v = 0 // JSON cannot represent non-finite floats
			}
			s.FloatGauges[name] = v
		case *Histogram:
			s.Histograms[name] = m.Snapshot()
		case *Timer:
			s.Timers[name] = m.Snapshot()
		}
	}
	return s
}

// WriteTable renders a human-readable summary of every metric, sorted by
// name within each kind — the output of `ccsim -metrics`.
func (r *Registry) WriteTable(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if len(s.Counters) > 0 {
		p("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			p("  %-40s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		p("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			p("  %-40s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.FloatGauges) > 0 {
		p("float gauges:\n")
		for _, name := range sortedKeys(s.FloatGauges) {
			p("  %-40s %g\n", name, s.FloatGauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		p("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			p("  %-40s count=%d mean=%.4g min=%g p50=%.4g p99=%.4g max=%g\n", name, h.Count, h.Mean(), h.Min, h.P50, h.P99, h.Max)
		}
	}
	if len(s.Timers) > 0 {
		p("timers (seconds):\n")
		for _, name := range sortedKeys(s.Timers) {
			h := s.Timers[name]
			p("  %-40s count=%d mean=%.4gs min=%.4gs p50=%.4gs p99=%.4gs max=%.4gs\n", name, h.Count, h.Mean(), h.Min, h.P50, h.P99, h.Max)
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// casAdd atomically adds delta to the float64 stored in bits.
func casAdd(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// casMin atomically lowers the float64 stored in bits to x if x is smaller.
func casMin(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= x {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// casMax atomically raises the float64 stored in bits to x if x is larger.
func casMax(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= x {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}
