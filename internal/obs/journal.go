package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Journal writes a structured JSONL run journal: one JSON object per line,
// each carrying a "kind" discriminator and a "ts" wall-clock timestamp
// plus caller-supplied fields. Keys are emitted in sorted order
// (encoding/json map ordering), so journal content is byte-identical for
// identical field values — the runner's worker-count determinism test
// relies on this, stripping only the wall-clock fields ("ts", "wall_ms").
//
// Record is safe for concurrent use; concurrent writers interleave at line
// granularity, never mid-line.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// TimestampFields names the journal keys that carry wall-clock values and
// are therefore excluded from determinism guarantees.
var TimestampFields = []string{"ts", "wall_ms"}

// NewJournal returns a journal writing to w. The caller owns w and closes
// it after the run; check Err before closing.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Record writes one journal line of the given kind. The fields map is not
// retained. Non-finite float fields are replaced by nil, because JSON
// cannot represent them. The first write error is sticky: it is returned
// here and from Err, and later records are dropped.
func (j *Journal) Record(kind string, fields map[string]any) error {
	m := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		if f, ok := v.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			v = nil
		}
		m[k] = v
	}
	m["kind"] = kind
	m["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("obs: journal record %q: %w", kind, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: journal write: %w", err)
		return j.err
	}
	return nil
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
